// Quickstart: build a small uncertain graph, estimate s-t reliability, and
// ask the solver for the k best edges to add.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/solver.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"

using namespace relmax;

int main() {
  // An uncertain graph: every edge exists independently with a probability.
  // Model a tiny delivery network: depot (0) -> hubs (1, 2, 3) -> customer
  // region (4, 5) -> destination (6).
  UncertainGraph g = UncertainGraph::Directed(7);
  struct {
    NodeId u, v;
    double p;
  } edges[] = {{0, 1, 0.8}, {0, 2, 0.6}, {1, 3, 0.5}, {2, 3, 0.7},
               {1, 4, 0.4}, {3, 4, 0.6}, {3, 5, 0.5}, {4, 6, 0.5},
               {5, 6, 0.6}};
  for (const auto& e : edges) {
    RELMAX_CHECK(g.AddEdge(e.u, e.v, e.p).ok());
  }

  const NodeId depot = 0;
  const NodeId customer = 6;

  // Estimate reliability three ways: exact (tiny graphs only), Monte Carlo,
  // and recursive stratified sampling.
  const double exact = ExactReliabilityFactoring(g, depot, customer).value();
  const double mc = EstimateReliability(g, depot, customer,
                                        {.num_samples = 20000, .seed = 1});
  const double rss = EstimateReliabilityRss(g, depot, customer,
                                            {.num_samples = 5000, .seed = 1});
  std::printf("delivery reliability 0 -> 6:\n");
  std::printf("  exact (factoring)      %.4f\n", exact);
  std::printf("  Monte Carlo            %.4f\n", mc);
  std::printf("  stratified sampling    %.4f\n", rss);

  // Where should we build 2 new routes (each materializing with p = 0.6) to
  // maximize that reliability?
  SolverOptions options;
  options.budget_k = 2;
  options.zeta = 0.6;
  options.top_r = 7;     // keep all nodes: the graph is tiny
  options.hop_h = -1;    // no distance constraint
  options.num_samples = 4000;
  auto solution = MaximizeReliability(g, depot, customer, options);
  RELMAX_CHECK(solution.ok());

  std::printf("\nsolver picked %zu new edges:\n",
              solution->added_edges.size());
  for (const Edge& e : solution->added_edges) {
    std::printf("  %u -> %u (p = %.2f)\n", e.src, e.dst, e.prob);
  }
  std::printf("reliability %.3f -> %.3f (gain %.3f)\n",
              solution->reliability_before, solution->reliability_after,
              solution->gain());
  return 0;
}
