// Road-network route reliability (the paper's transportation motivation):
// a city grid where each road segment survives congestion with some
// probability. Plan k new road links (flyovers) within a physical distance
// budget to maximize the worst-case delivery reliability from two depots to
// three customer zones (multi-source-target, Minimum aggregate).
//
//   $ ./build/examples/road_network [--k 4] [--grid 12]
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "core/multi.h"
#include "graph/uncertain_graph.h"

using namespace relmax;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int k = static_cast<int>(flags.GetInt("k", 4));
  const int grid = static_cast<int>(flags.GetInt("grid", 12));

  // Build a grid road network; congestion-prone arterials in the middle.
  const NodeId n = static_cast<NodeId>(grid * grid);
  UncertainGraph roads = UncertainGraph::Undirected(n);
  Rng rng(2026);
  auto id = [grid](int x, int y) { return static_cast<NodeId>(y * grid + x); };
  for (int y = 0; y < grid; ++y) {
    for (int x = 0; x < grid; ++x) {
      // Middle rows model a congested river crossing: low survival prob.
      const bool congested = y == grid / 2 || y == grid / 2 - 1;
      const double base = congested ? 0.25 : 0.75;
      if (x + 1 < grid) {
        RELMAX_CHECK(roads
                         .AddEdge(id(x, y), id(x + 1, y),
                                  base + rng.NextDouble(-0.1, 0.1))
                         .ok());
      }
      if (y + 1 < grid) {
        RELMAX_CHECK(roads
                         .AddEdge(id(x, y), id(x, y + 1),
                                  base + rng.NextDouble(-0.1, 0.1))
                         .ok());
      }
    }
  }

  // Two depots south of the river, three customer zones north of it.
  const std::vector<NodeId> depots = {id(1, 1), id(grid - 2, 1)};
  const std::vector<NodeId> customers = {id(1, grid - 2),
                                         id(grid / 2, grid - 1),
                                         id(grid - 2, grid - 2)};

  std::printf("road grid: %u junctions, %zu segments\n", roads.num_nodes(),
              roads.num_edges());
  std::printf("depots: %zu, customer zones: %zu\n", depots.size(),
              customers.size());

  SolverOptions options;
  options.budget_k = k;
  options.zeta = 0.9;  // a new flyover is reliable
  options.top_r = 60;
  options.top_l = 15;
  options.hop_h = 3;  // a flyover can only bridge nearby junctions
  options.num_samples = 400;
  options.elimination_samples = 400;

  auto plan = MaximizeMultiReliability(roads, depots, customers,
                                       Aggregate::kMinimum, options);
  RELMAX_CHECK(plan.ok());

  std::printf(
      "\nworst-case depot->customer reliability: %.3f -> %.3f (+%.3f)\n",
      plan->aggregate_before, plan->aggregate_after, plan->gain());
  std::printf("planned flyovers (%zu):\n", plan->added_edges.size());
  for (const Edge& e : plan->added_edges) {
    std::printf("  junction (%u,%u) <-> (%u,%u), p = %.2f\n", e.src % grid,
                e.src / grid, e.dst % grid, e.dst / grid, e.prob);
  }
  std::printf(
      "\nthe Minimum aggregate forces the plan to help the least reliable\n"
      "depot-customer pair first — typically bridging the congested rows.\n");
  return 0;
}
