// Sensor-network reliability maximization (the paper's §8.4.1 case study):
// given the Intel-Lab-style 54-sensor network, add 3 short-range links to
// maximize packet-delivery reliability between two far-apart sensors.
//
//   $ ./build/examples/sensor_network [--budget 3] [--max-dist 15]
#include <cstdio>

#include "apps/sensor.h"
#include "common/flags.h"
#include "gen/datasets.h"

using namespace relmax;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int budget = static_cast<int>(flags.GetInt("budget", 3));
  const double max_dist = flags.GetDouble("max-dist", 15.0);

  auto lab = MakeDataset("intel_lab");
  RELMAX_CHECK(lab.ok());
  std::printf("Intel-Lab-style network: %u sensors, %zu directed links\n",
              lab->graph.num_nodes(), lab->graph.num_edges());

  // Pick the pair with the greatest physical separation.
  NodeId a = 0;
  NodeId b = 0;
  double best = -1.0;
  for (NodeId u = 0; u < lab->graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < lab->graph.num_nodes(); ++v) {
      const double d = DistanceMeters(*lab, u, v);
      if (d > best) {
        best = d;
        a = u;
        b = v;
      }
    }
  }
  std::printf("improving delivery from sensor %u to sensor %u (%.1f m apart)\n",
              a, b, best);

  SolverOptions options;
  options.top_r = 54;
  options.num_samples = 2000;
  options.elimination_samples = 2000;
  auto result = ImproveSensorPair(*lab, a, b, budget, /*link_prob=*/0.33,
                                  max_dist, options);
  RELMAX_CHECK(result.ok());

  std::printf("\nreliability %.3f -> %.3f with %zu new links:\n",
              result->reliability_before, result->reliability_after,
              result->new_links.size());
  for (const Edge& e : result->new_links) {
    std::printf("  sensor %2u -> %2u: %.1f m, p = %.2f\n", e.src, e.dst,
                DistanceMeters(*lab, e.src, e.dst), e.prob);
  }
  std::printf(
      "\nonly links under %.0f m are buildable; the solver bridges the\n"
      "sparse region toward the dense cluster rather than attempting one\n"
      "long (impossible) hop.\n",
      max_dist);
  return 0;
}
