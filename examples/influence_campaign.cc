// Targeted influence maximization by link recommendation (paper §8.4.2):
// on a DBLP-like collaboration network, recommend k new collaborations so a
// group of senior researchers influences as many junior researchers as
// possible under the independent-cascade model.
//
//   $ ./build/examples/influence_campaign [--k 8] [--scale 0.05]
#include <cstdio>

#include "apps/influence.h"
#include "common/flags.h"
#include "core/evaluate.h"
#include "gen/datasets.h"

using namespace relmax;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int k = static_cast<int>(flags.GetInt("k", 8));
  const double scale = flags.GetDouble("scale", 0.05);

  auto dblp = MakeDataset("dblp", scale, /*seed=*/11);
  RELMAX_CHECK(dblp.ok());
  std::printf("DBLP-like network: %u authors, %zu collaborations\n",
              dblp->graph.num_nodes(), dblp->graph.num_edges());

  auto scenario = MakeCollaborationScenario(dblp->graph, /*num_seniors=*/8,
                                            /*num_juniors=*/120, /*seed=*/5);
  RELMAX_CHECK(scenario.ok());
  std::printf("campaign: %zu seniors -> %zu juniors\n",
              scenario->seniors.size(), scenario->juniors.size());

  SolverOptions options;
  options.budget_k = k;
  options.top_r = 60;
  options.top_l = 15;
  options.num_samples = 400;
  options.elimination_samples = 400;
  auto result = MaximizeInfluenceSpread(dblp->graph, scenario->seniors,
                                        scenario->juniors, options,
                                        /*pair_cap=*/32);
  RELMAX_CHECK(result.ok());

  std::printf("\nexpected influenced juniors: %.1f -> %.1f (+%.1f)\n",
              result->spread_before, result->spread_after,
              result->spread_after - result->spread_before);
  std::printf("recommended collaborations (%zu):\n",
              result->recommended_edges.size());
  for (const Edge& e : result->recommended_edges) {
    std::printf("  author %u <-> author %u (adoption prob %.2f)\n", e.src,
                e.dst, e.prob);
  }
  std::printf(
      "\nunder the IC model an activation is a possible-world path, so the\n"
      "recommendation problem is multi-source-target reliability\n"
      "maximization with the average/spread objective.\n");
  return 0;
}
