// Regenerates Table 7: running time of the top-k edge selection phase
// (HC / MRP / BE) with MC sampling vs recursive stratified sampling.
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const char* names[] = {"lastfm", "as_topology", "dblp", "twitter"};
  const Method methods[] = {Method::kHillClimbing, Method::kMrp, Method::kBe};

  TablePrinter table({"Dataset", "Estimator", "Z", "HC (sec)", "MRP (sec)",
                      "BE (sec)"});
  for (const char* name : names) {
    Dataset dataset = LoadDataset(name, config);
    const auto queries = MakeQueries(dataset.graph, config);

    for (const bool use_rss : {false, true}) {
      BenchConfig variant = config;
      variant.samples = use_rss ? config.samples / 2 : config.samples;
      variant.estimator = use_rss ? Estimator::kRss : Estimator::kMonteCarlo;
      const SolverOptions options = variant.ToSolverOptions();

      double seconds[3] = {0.0, 0.0, 0.0};
      for (const auto& [s, t] : queries) {
        const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
        for (int m = 0; m < 3; ++m) {
          // RunMethodEliminated folds in elimination time; subtract it to
          // isolate the selection phase as the paper's Table 7 does.
          MethodResult result = RunMethodEliminated(dataset.graph, s, t, eq,
                                                    methods[m], variant);
          seconds[m] += result.seconds - eq.elimination_seconds;
        }
      }
      table.AddRow({dataset.name, use_rss ? "RSS" : "MC",
                    Fmt(variant.samples), Fmt(seconds[0] / queries.size(), 3),
                    Fmt(seconds[1] / queries.size(), 3),
                    Fmt(seconds[2] / queries.size(), 3)});
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "paper Table 7 shape: RSS at half the sample budget cuts selection\n"
      "time for the sampling-based methods (HC most, BE least).\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Table 7: MC vs RSS for top-k edge selection",
                             config);
  relmax::bench::Run(config);
  return 0;
}
