#ifndef RELMAX_BENCH_BENCH_UTIL_H_
#define RELMAX_BENCH_BENCH_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "core/candidates.h"
#include "core/solver.h"
#include "core/types.h"
#include "gen/datasets.h"
#include "gen/queries.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace bench {

/// Shared knobs for all paper-table benches, overridable via command line
/// (--scale, --queries, --k, --zeta, --r, --l, --h, --samples,
/// --seed, --threads, --reuse-worlds) or
/// the RELMAX_* environment variables. Defaults are laptop-scale: the whole
/// harness finishes in minutes on one core while preserving the paper's
/// relative ordering of methods.
struct BenchConfig {
  double scale = 0.1;
  int queries = 3;
  int k = 10;
  double zeta = 0.5;
  int r = 40;
  int l = 30;
  int h = 3;
  int samples = 300;
  int elim_samples = 300;
  /// Samples for the final reported gain (higher to stabilize the tables).
  int gain_samples = 2000;
  uint64_t seed = 42;
  /// Worker lanes for every sampling step (--threads; <= 0 = all hardware
  /// threads). Results are bit-identical regardless of this value.
  int num_threads = 1;
  /// Shared possible-world bank for the greedy selection loops
  /// (--reuse-worlds=0 disables; see SolverOptions::reuse_worlds).
  bool reuse_worlds = true;
  /// Estimator for the elimination/selection phases (Tables 6-7 compare).
  Estimator estimator = Estimator::kMonteCarlo;
  /// The per-candidate greedy baselines (Individual Top-k, Hill Climbing)
  /// get this multiple of `samples` — they compare hundreds of noisy
  /// estimates per round and degrade into random picks otherwise. Their
  /// reported time honestly includes the extra sampling, which is exactly
  /// the paper's point about their cost.
  int greedy_sample_boost = 3;
  /// Print the canonical environment JSON block under the bench banner
  /// (--print-env), ready to paste into a BENCH_*.json record.
  bool print_env = false;

  static BenchConfig FromFlags(const Flags& flags);
  SolverOptions ToSolverOptions() const;
};

/// Canonical `environment` block shared by every BENCH_*.json record —
/// identical shape ({cpus_available, compiler, benchmark_library, note})
/// for the sampling and selection files, emitted from this one helper so
/// the schemas cannot drift apart again. `benchmark_library` names the
/// timing harness ("google-benchmark x.y" or "WallTimer harness").
std::string EnvironmentJson(const std::string& benchmark_library,
                            const std::string& note);

/// Methods compared across the paper's tables.
enum class Method {
  kIndividualTopK,
  kHillClimbing,
  kDegree,
  kBetweenness,
  kEigen,
  kMrp,
  kIp,
  kBe,
  kExact,
  kIndividualTopKFast,
  kHillClimbingFast,
};

const char* MethodLabel(Method method);

/// Outcome of one method on one query.
struct MethodResult {
  double gain = 0.0;
  double seconds = 0.0;
  size_t peak_rss_bytes = 0;
  std::vector<Edge> edges;
};

/// Precomputed search-space elimination for one query: the candidate set
/// plus the induced "relevant" subgraph of C(s) ∪ C(t) ∪ {s, t} on which
/// iterative baselines run (Table 5 couples every baseline with
/// elimination).
struct EliminatedQuery {
  CandidateSet candidates;
  double elimination_seconds = 0.0;
  UncertainGraph sub = UncertainGraph::Directed(0);
  std::vector<NodeId> sub_nodes;  ///< sub id -> original id
  NodeId sub_s = 0;
  NodeId sub_t = 0;
  std::vector<Edge> sub_candidates;  ///< candidates in sub coordinates
};

/// Runs Algorithm 4 and assembles the induced working subgraph.
EliminatedQuery Eliminate(const UncertainGraph& g, NodeId s, NodeId t,
                          const SolverOptions& options);

/// Runs `method` inside the eliminated subgraph, maps the chosen edges back
/// to original ids, and measures the reliability gain on the full graph
/// with `config.gain_samples` Monte Carlo samples.
MethodResult RunMethodEliminated(const UncertainGraph& g, NodeId s, NodeId t,
                                 const EliminatedQuery& eq, Method method,
                                 const BenchConfig& config);

/// Runs `method` directly on the full graph against an explicit candidate
/// list (Table 4: no elimination). Slow by design for the sampling methods.
MethodResult RunMethodDirect(const UncertainGraph& g, NodeId s, NodeId t,
                             const std::vector<Edge>& candidates,
                             Method method, const BenchConfig& config);

/// Reliability gain of adding `edges` to g, measured on the full graph.
double MeasureGain(const UncertainGraph& g, NodeId s, NodeId t,
                   const std::vector<Edge>& edges, int num_samples,
                   uint64_t seed, int num_threads = 1);

/// Loads a dataset at the bench scale, failing loudly.
Dataset LoadDataset(const std::string& name, const BenchConfig& config);

/// Paper-style query workload for a dataset (3-5 hop pairs).
std::vector<std::pair<NodeId, NodeId>> MakeQueries(const UncertainGraph& g,
                                                   const BenchConfig& config);

/// Prints the bench banner ("=== Table 9 ... ===" plus the config line).
void PrintHeader(const std::string& title, const BenchConfig& config);

}  // namespace bench
}  // namespace relmax

#endif  // RELMAX_BENCH_BENCH_UTIL_H_
