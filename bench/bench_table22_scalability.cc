// Regenerates Table 22: scalability of BE across growing graph sizes
// (six Twitter-like graphs; the paper uses 1M-6M-node subgraphs, we grow
// the generator scale by the same 1x..6x ratios).
#include <cstdio>

#include "bench_util.h"
#include "common/memory.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  TablePrinter table({"#Nodes", "Reliability Gain", "Running Time (sec)",
                      "Memory (GB)"});
  for (int factor = 1; factor <= 6; ++factor) {
    BenchConfig variant = config;
    variant.scale = config.scale * factor;
    Dataset dataset = LoadDataset("twitter", variant);
    const auto queries = MakeQueries(dataset.graph, variant);
    const SolverOptions options = variant.ToSolverOptions();

    double gain = 0.0;
    double secs = 0.0;
    size_t mem = 0;
    for (const auto& [s, t] : queries) {
      const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
      const MethodResult result =
          RunMethodEliminated(dataset.graph, s, t, eq, Method::kBe, variant);
      gain += result.gain;
      secs += result.seconds;
      mem = std::max(mem, result.peak_rss_bytes);
    }
    const double q = static_cast<double>(queries.size());
    table.AddRow({Fmt(dataset.graph.num_nodes()), Fmt(gain / q),
                  Fmt(secs / q, 4), Fmt(BytesToGiB(mem), 3)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 22 shape: BE's running time and memory grow linearly\n"
      "with the graph size (the elimination pass dominates), while the\n"
      "achievable gain stays roughly flat.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Table 22: scalability of BE (twitter-like)",
                             config);
  relmax::bench::Run(config);
  return 0;
}
