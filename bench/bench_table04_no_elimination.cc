// Regenerates Table 4: reliability gain and running time of every method on
// the LastFM-like graph *without* search-space elimination — candidates are
// all missing edges within h hops, so the sampling-driven baselines pay the
// full O(|E+|) estimation cost per step. Run at a deliberately small scale
// (the point of the table is the relative cost, which is scale-free).
#include <cstdio>

#include "bench_util.h"
#include "core/candidates.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("lastfm", config);
  const auto queries = MakeQueries(dataset.graph, config);

  const Method methods[] = {
      Method::kIndividualTopK, Method::kHillClimbing, Method::kDegree,
      Method::kBetweenness,    Method::kEigen,        Method::kMrp,
      Method::kIp,             Method::kBe,
  };

  TablePrinter table({"Method", "Reliability Gain", "Running Time (sec)"});
  for (Method method : methods) {
    double gain = 0.0;
    double seconds = 0.0;
    for (const auto& [s, t] : queries) {
      const std::vector<Edge> candidates =
          AllMissingEdges(dataset.graph, config.zeta, config.h);
      const MethodResult result =
          RunMethodDirect(dataset.graph, s, t, candidates, method, config);
      gain += result.gain;
      seconds += result.seconds;
    }
    table.AddRow({MethodLabel(method), Fmt(gain / queries.size()),
                  Fmt(seconds / queries.size(), 2)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 4 shape: HC has the best gain but is orders of magnitude\n"
      "slower; BE approaches HC's gain at path-search cost; centrality and\n"
      "eigenvalue methods are fast but weak.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("scale")) config.scale = 0.012;  // ~80 nodes: HC is O(n^2 k Z)
  if (!flags.Has("queries")) config.queries = 2;
  if (!flags.Has("k")) config.k = 5;
  relmax::bench::PrintHeader(
      "Table 4: methods without search-space elimination (lastfm-like)",
      config);
  relmax::bench::Run(config);
  return 0;
}
