// Regenerates Tables 12-13: reliability gain and running time as the budget
// k grows, on the LastFM-like and DBLP-like graphs (HC / MRP / IP / BE).
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const char* names[] = {"lastfm", "dblp"};
  const int budgets[] = {3, 5, 8, 10, 15, 20, 30, 50};
  const Method methods[] = {Method::kHillClimbing, Method::kMrp, Method::kIp,
                            Method::kBe};

  for (const char* name : names) {
    Dataset dataset = LoadDataset(name, config);
    const auto queries = MakeQueries(dataset.graph, config);
    std::printf("\n--- %s ---\n", name);
    TablePrinter table({"k", "HC gain", "MRP gain", "IP gain", "BE gain",
                        "HC s", "MRP s", "IP s", "BE s"});
    for (int k : budgets) {
      BenchConfig variant = config;
      variant.k = k;
      const SolverOptions options = variant.ToSolverOptions();
      double gain[4] = {0, 0, 0, 0};
      double secs[4] = {0, 0, 0, 0};
      for (const auto& [s, t] : queries) {
        const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
        for (int m = 0; m < 4; ++m) {
          const MethodResult result = RunMethodEliminated(
              dataset.graph, s, t, eq, methods[m], variant);
          gain[m] += result.gain;
          secs[m] += result.seconds;
        }
      }
      const double q = static_cast<double>(queries.size());
      table.AddRow({Fmt(k), Fmt(gain[0] / q), Fmt(gain[1] / q),
                    Fmt(gain[2] / q), Fmt(gain[3] / q), Fmt(secs[0] / q, 2),
                    Fmt(secs[1] / q, 2), Fmt(secs[2] / q, 2),
                    Fmt(secs[3] / q, 2)});
      std::fflush(stdout);
    }
    table.Print();
  }
  std::printf(
      "paper Tables 12-13 shape: gains grow with k and saturate (LastFM\n"
      "~k=30, DBLP ~k=20); MRP's gain flattens immediately (one path);\n"
      "HC time grows linearly in k, IP/BE stay near-flat.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Tables 12-13: varying the budget k", config);
  relmax::bench::Run(config);
  return 0;
}
