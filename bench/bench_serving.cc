// Serving latency under synthetic open-loop traffic: a Zipf-skewed query
// stream with Poisson arrivals driven into ServeCore at its scheduled rate
// (arrivals do not wait for completions — queueing delay shows up in the
// measured latency instead of silently throttling the load). Three configs:
//
//   flood    — every window answered by shared word-parallel floods
//   indexed  — answers served from the offline reliability index
//   overload — burst arrivals against a tiny admission queue, so admission
//              control must shed (typed Unavailable), not melt
//
// Latency is completion time minus *scheduled* arrival time (the open-loop
// convention: a query that waited in the queue is charged its wait). The
// harness re-verifies the serving determinism contract on every config:
// each answered value must be bit-identical to a fresh QueryEngine batch
// over the same pairs — the same (version, estimator, seed, Z, query) tuple
// `relmax batch` answers from. A non-empty --json PATH writes the canonical
// BENCH_*.json shape for tools/check_bench_json.py (label "serving").
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "serve/serve_core.h"

namespace relmax {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Arrival {
  double at_seconds = 0.0;  // offset from stream start
  NodeId s = 0;
  NodeId t = 0;
};

/// Zipf-skewed sources (weight (rank+1)^-theta), uniform targets, Poisson
/// arrivals at `qps`. Fully determined by (graph size, count, qps, theta,
/// seed) so runs are comparable across configs and machines.
std::vector<Arrival> MakeTraffic(NodeId num_nodes, int count, double qps,
                                 double theta, uint64_t seed) {
  std::vector<double> cdf(num_nodes);
  double total = 0.0;
  for (NodeId r = 0; r < num_nodes; ++r) {
    total += std::pow(static_cast<double>(r) + 1.0, -theta);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  Rng rng(seed);
  std::vector<Arrival> traffic;
  traffic.reserve(static_cast<size_t>(count));
  double now = 0.0;
  for (int i = 0; i < count; ++i) {
    // Exponential inter-arrival gap: open-loop Poisson process at `qps`.
    now += -std::log(1.0 - rng.NextDouble()) / qps;
    Arrival a;
    a.at_seconds = now;
    const double u = rng.NextDouble();
    a.s = static_cast<NodeId>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (a.s >= num_nodes) a.s = num_nodes - 1;
    do {
      a.t = static_cast<NodeId>(rng.NextUint64(num_nodes));
    } while (a.t == a.s);
    traffic.push_back(a);
  }
  return traffic;
}

// Nearest-rank percentile over an ascending latency vector.
double PercentileMs(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = std::ceil(p * static_cast<double>(sorted_ms.size()));
  const size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct ConfigResult {
  std::string name;
  int queries = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  uint64_t shed = 0;
  int window_us = 0;
  bool identical = false;
};

/// One completed query's record, written once by whichever thread answers
/// it; ServeCore::Drain() orders every write before the main thread reads.
struct Slot {
  bool answered = false;
  double value = 0.0;
  Clock::time_point done_at;
};

ConfigResult RunConfig(const std::string& name, const UncertainGraph& g,
                       const std::vector<Arrival>& traffic, double offered_qps,
                       const serve::ServeOptions& options) {
  ConfigResult r;
  r.name = name;
  r.queries = static_cast<int>(traffic.size());
  r.offered_qps = offered_qps;
  r.window_us = options.window_us;

  std::vector<Slot> slots(traffic.size());
  Clock::time_point last_done;
  {
    serve::ServeCore core(g, options);
    const Clock::time_point start = Clock::now();
    for (size_t i = 0; i < traffic.size(); ++i) {
      const Clock::time_point due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(traffic[i].at_seconds));
      std::this_thread::sleep_until(due);
      core.Submit(traffic[i].s, traffic[i].t,
                  [slot = &slots[i]](const StatusOr<double>& result,
                                     uint64_t /*epoch*/) {
                    if (result.ok()) {
                      slot->answered = true;
                      slot->value = *result;
                    }
                    slot->done_at = Clock::now();
                  });
    }
    core.Drain();
    r.shed = core.Stats().shed;
    last_done = Clock::now();

    // Latency per answered query, against its *scheduled* arrival.
    std::vector<double> latencies_ms;
    latencies_ms.reserve(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].answered) continue;
      const Clock::time_point due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(traffic[i].at_seconds));
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(slots[i].done_at - due)
              .count());
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());
    r.p50_ms = PercentileMs(latencies_ms, 0.50);
    r.p99_ms = PercentileMs(latencies_ms, 0.99);
    r.p999_ms = PercentileMs(latencies_ms, 0.999);
    const double elapsed =
        std::chrono::duration<double>(last_done - start).count();
    r.achieved_qps =
        elapsed > 0.0 ? static_cast<double>(latencies_ms.size()) / elapsed
                      : 0.0;
  }

  // The serving determinism pin: every answered value must match a fresh
  // batch engine over the same pairs — the exact tuple `relmax batch`
  // answers from. Micro-batch windowing, lane count, and shedding must not
  // be observable in the values.
  QuerySet set;
  std::vector<size_t> answered_idx;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].answered) continue;
    set.AddSt(traffic[i].s, traffic[i].t);
    answered_idx.push_back(i);
  }
  r.identical = true;
  if (!answered_idx.empty()) {
    QueryEngine reference(g, options.engine);
    const auto batch = reference.Answer(set);
    if (!batch.ok()) {
      r.identical = false;
    } else {
      for (size_t j = 0; j < answered_idx.size(); ++j) {
        if (slots[answered_idx[j]].value != batch->st_values[j]) {
          r.identical = false;
          break;
        }
      }
    }
  }
  return r;
}

void Run(const Flags& flags) {
  const std::string dataset_name = flags.GetString("dataset", "as_topology");
  const double scale = flags.GetDouble("scale", 0.1);
  const int num_samples = static_cast<int>(flags.GetInt("samples", 2000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 2000));
  const double qps = flags.GetDouble("qps", 2000.0);
  const double theta = flags.GetDouble("theta", 0.8);
  const int window_us = static_cast<int>(flags.GetInt("window-us", 2000));
  const int lanes = static_cast<int>(flags.GetInt("lanes", 1));
  const std::string json_path = flags.GetString("json", "");

  auto dataset = MakeDataset(dataset_name, scale, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  const UncertainGraph& g = dataset->graph;
  std::printf("=== Serving latency: open-loop Zipf/Poisson traffic vs "
              "micro-batched epoch-snapshot daemon ===\n");
  std::printf(
      "%s scale %.2f: %u nodes, %zu edges; Z = %d, seed = %llu, "
      "%d queries at %.0f qps (theta %.2f), window %d us, %d lane(s)\n\n",
      dataset_name.c_str(), scale, g.num_nodes(), g.num_edges(), num_samples,
      static_cast<unsigned long long>(seed), num_queries, qps, theta,
      window_us, lanes);

  serve::ServeOptions base;
  base.engine.num_samples = num_samples;
  base.engine.seed = seed;
  base.window_us = window_us;
  base.lanes = lanes;

  const std::vector<Arrival> traffic =
      MakeTraffic(g.num_nodes(), num_queries, qps, theta, seed);

  std::vector<ConfigResult> results;
  {
    serve::ServeOptions options = base;
    options.engine.use_index = false;
    results.push_back(RunConfig("flood", g, traffic, qps, options));
  }
  {
    serve::ServeOptions options = base;
    options.engine.use_index = true;
    results.push_back(RunConfig("indexed", g, traffic, qps, options));
  }
  {
    // Overload: the same query mix arrives as a hard burst against a tiny
    // admission queue. The daemon must shed (typed) rather than queue
    // without bound; the queries it does answer stay bit-identical.
    serve::ServeOptions options = base;
    options.engine.use_index = false;
    options.max_queue = 8;
    const double burst_qps = 1e6;
    std::vector<Arrival> burst =
        MakeTraffic(g.num_nodes(), num_queries, burst_qps, theta, seed);
    results.push_back(RunConfig("overload", g, burst, burst_qps, options));
  }

  TablePrinter table({"Config", "Queries", "Offered q/s", "Answered q/s",
                      "p50 ms", "p99 ms", "p999 ms", "Shed", "Identical"});
  bool all_identical = true;
  for (const ConfigResult& r : results) {
    all_identical = all_identical && r.identical;
    table.AddRow({r.name, Fmt(r.queries), Fmt(r.offered_qps, 0),
                  Fmt(r.achieved_qps, 1), Fmt(r.p50_ms, 3), Fmt(r.p99_ms, 3),
                  Fmt(r.p999_ms, 3), Fmt(static_cast<int>(r.shed)),
                  r.identical ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nmicro-batching amortizes one shared flood across every query in a\n"
      "bounded-delay window, so p50 tracks the window while throughput\n"
      "tracks the flood rate; the indexed config answers from label-plane\n"
      "popcounts instead; overload answers what fits its queue and sheds\n"
      "the rest with a typed Unavailable status.\n");

  const auto enforce_identical = [&all_identical] {
    if (all_identical) return;
    std::fprintf(stderr,
                 "FAIL: served answers were not bit-identical to the batch "
                 "engine for the same (version, estimator, seed, Z, query) "
                 "tuple\n");
    std::exit(1);
  };
  if (json_path.empty()) {
    enforce_identical();
    return;
  }
  std::string json = "{\n  \"label\": \"serving\",\n";
  json += "  \"command\": \"bench_serving --dataset " + dataset_name +
          " --scale " + Fmt(scale, 2) + " --samples " +
          std::to_string(num_samples) + " --seed " + std::to_string(seed) +
          " --queries " + std::to_string(num_queries) + " --qps " +
          Fmt(qps, 0) + "\",\n";
  json += "  \"environment\": " +
          EnvironmentJson("WallTimer harness",
                          "open-loop arrivals: latency = completion minus "
                          "scheduled arrival, queueing delay included; "
                          "answers pinned bit-identical to a fresh "
                          "QueryEngine batch per config") +
          ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    json += "    {\"name\": \"ServingTraffic/" + r.name + "\", \"queries\": " +
            std::to_string(r.queries) + ", \"offered_qps\": " +
            Fmt(r.offered_qps, 0) + ", \"qps\": " + Fmt(r.achieved_qps, 1) +
            ", \"p50_ms\": " + Fmt(r.p50_ms, 4) + ", \"p99_ms\": " +
            Fmt(r.p99_ms, 4) + ", \"p999_ms\": " + Fmt(r.p999_ms, 4) +
            ", \"shed\": " + std::to_string(r.shed) + ", \"window_us\": " +
            std::to_string(r.window_us) + ", \"bit_identical\": " +
            (r.identical ? "true" : "false") + "}" +
            (i + 1 < results.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  enforce_identical();
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::bench::Run(relmax::Flags::Parse(argc, argv));
  return 0;
}
