// Regenerates Table 11: the exact solution (ES) vs IP and BE on the Intel
// Lab sensor network — k = 3 new links of probability 0.33, restricted to
// sensor pairs at most 15 m apart (the paper's case-study constraints).
//
// ES enumerates candidate combinations; when the pool is too large for full
// enumeration it is pre-filtered to the top candidates by single-edge
// delta gain (noted in the output), which preserves the optimum in practice.
#include <algorithm>
#include <cstdio>

#include "apps/sensor.h"
#include "baselines/exact.h"
#include "baselines/fast_gain.h"
#include "bench_util.h"
#include "common/timer.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset lab = LoadDataset("intel_lab", config);
  const double kLinkProb = 0.33;
  const double kMaxDistance = 15.0;
  const std::vector<Edge> candidates =
      SensorCandidateLinks(lab, kMaxDistance, kLinkProb);
  std::printf("candidate links within %.0f m: %zu\n", kMaxDistance,
              candidates.size());

  // Remote, low-reliability sensor pairs, as in the paper's setup.
  auto queries = GenerateQueries(
      lab.graph, config.queries,
      {.min_hops = 3, .max_hops = 6, .seed = config.seed ^ 0x1ab});
  RELMAX_CHECK(queries.ok());

  BenchConfig local = config;
  local.k = 3;
  local.zeta = kLinkProb;
  SolverOptions options = local.ToSolverOptions();
  options.top_r = static_cast<int>(lab.graph.num_nodes());

  const size_t kExactPool = 26;  // C(26,3) = 2600 combos: tractable
  TablePrinter table({"Method", "Reliability Gain", "Running Time (sec)"});
  double gain[3] = {0, 0, 0};
  double secs[3] = {0, 0, 0};
  int matches = 0;
  for (const auto& [s, t] : *queries) {
    // ES: pre-filter pool with the single-edge delta-gain ensemble.
    WallTimer es_timer;
    std::vector<Edge> pool = candidates;
    if (pool.size() > kExactPool) {
      const WorldEnsemble ensemble(lab.graph, s, t, 2000,
                                   config.seed ^ 0xe5);
      std::sort(pool.begin(), pool.end(), [&](const Edge& a, const Edge& b) {
        return ensemble.DeltaGain(a.src, a.dst, a.prob) >
               ensemble.DeltaGain(b.src, b.dst, b.prob);
      });
      pool.resize(kExactPool);
    }
    auto es = SelectExact(lab.graph, s, t, pool, options);
    RELMAX_CHECK(es.ok());
    secs[0] += es_timer.ElapsedSeconds();
    gain[0] += MeasureGain(lab.graph, s, t, *es, local.gain_samples,
                           config.seed ^ 0x11);

    CandidateSet cs;
    cs.edges = candidates;
    WallTimer ip_timer;
    auto ip = MaximizeReliabilityWithCandidates(lab.graph, s, t, cs, options,
                                                CoreMethod::kIndividualPaths);
    RELMAX_CHECK(ip.ok());
    secs[1] += ip_timer.ElapsedSeconds();
    gain[1] += MeasureGain(lab.graph, s, t, ip->added_edges,
                           local.gain_samples, config.seed ^ 0x11);

    WallTimer be_timer;
    auto be = MaximizeReliabilityWithCandidates(lab.graph, s, t, cs, options,
                                                CoreMethod::kBatchEdges);
    RELMAX_CHECK(be.ok());
    secs[2] += be_timer.ElapsedSeconds();
    gain[2] += MeasureGain(lab.graph, s, t, be->added_edges,
                           local.gain_samples, config.seed ^ 0x11);

    // Does BE return the exact solution's edge set?
    auto canon = [](std::vector<Edge> edges) {
      std::sort(edges.begin(), edges.end(),
                [](const Edge& a, const Edge& b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                });
      return edges;
    };
    matches += canon(*es) == canon(be->added_edges) ? 1 : 0;
  }

  const double q = static_cast<double>(queries->size());
  table.AddRow({"ES", Fmt(gain[0] / q), Fmt(secs[0] / q, 2)});
  table.AddRow({"IP", Fmt(gain[1] / q), Fmt(secs[1] / q, 2)});
  table.AddRow({"BE", Fmt(gain[2] / q), Fmt(secs[2] / q, 2)});
  table.Print();
  std::printf("BE returned the same edge set as ES on %d/%zu queries\n",
              matches, queries->size());
  std::printf(
      "paper Table 11 shape: BE is within a few percent of ES's gain at\n"
      "orders of magnitude lower cost (paper: 0.237 vs 0.252, 12 s vs 19189\n"
      "s, same edges on 25/30 queries).\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 6;
  // The 54-node network is tiny; a generous budget sharpens BE's batch
  // ranking so its edge sets line up with the exact enumeration more often.
  if (!flags.Has("samples")) config.samples = 1500;
  if (!flags.Has("gain-samples")) config.gain_samples = 6000;
  relmax::bench::PrintHeader(
      "Table 11: exact solution vs IP/BE on the Intel Lab network", config);
  relmax::bench::Run(config);
  return 0;
}
