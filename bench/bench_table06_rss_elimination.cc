// Regenerates Table 6: samples-to-convergence (index of dispersion
// rho_Z < 0.001) and running time of MC vs recursive stratified sampling
// for the search-space-elimination phase on the four "real" datasets.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "sampling/convergence.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const char* names[] = {"lastfm", "as_topology", "dblp", "twitter"};
  const std::vector<int> candidate_sizes = {50, 100, 250, 500, 1000, 2000};
  const double threshold = 0.002;
  const int repeats = 24;

  auto mc = [](const UncertainGraph& g, NodeId s, NodeId t, int z,
               uint64_t seed) {
    return EstimateReliability(g, s, t, {.num_samples = z, .seed = seed});
  };
  auto rss = [](const UncertainGraph& g, NodeId s, NodeId t, int z,
                uint64_t seed) {
    return EstimateReliabilityRss(g, s, t, {.num_samples = z, .seed = seed});
  };

  TablePrinter table({"Dataset", "MC Z", "MC Time (sec)", "RSS Z",
                      "RSS Time (sec)"});
  for (const char* name : names) {
    Dataset dataset = LoadDataset(name, config);
    const auto queries = MakeQueries(dataset.graph, config);

    const DispersionResult mc_conv = FindConvergedSampleSize(
        dataset.graph, queries, candidate_sizes, repeats, threshold, mc,
        config.seed);
    const DispersionResult rss_conv = FindConvergedSampleSize(
        dataset.graph, queries, candidate_sizes, repeats, threshold, rss,
        config.seed);

    // Elimination cost at the converged Z: reliability from s to all nodes
    // plus to t from all nodes (the two passes Algorithm 4 makes).
    const auto [s, t] = queries[0];
    WallTimer mc_timer;
    {
      MonteCarloSampler sampler(dataset.graph, config.seed);
      sampler.FromSource(s, mc_conv.num_samples);
      sampler.ToTarget(t, mc_conv.num_samples);
    }
    const double mc_seconds = mc_timer.ElapsedSeconds();
    WallTimer rss_timer;
    {
      RssSampler sampler(dataset.graph, {.num_samples = rss_conv.num_samples,
                                         .seed = config.seed});
      sampler.FromSource(s);
      sampler.ToTarget(t);
    }
    const double rss_seconds = rss_timer.ElapsedSeconds();

    table.AddRow({dataset.name, Fmt(mc_conv.num_samples),
                  Fmt(mc_seconds, 3), Fmt(rss_conv.num_samples),
                  Fmt(rss_seconds, 3)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 6 shape: RSS reaches the dispersion threshold with a\n"
      "smaller Z than MC and spends less elimination time.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("scale")) config.scale = 0.03;
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader(
      "Table 6: MC vs RSS for search-space elimination", config);
  relmax::bench::Run(config);
  return 0;
}
