// Regenerates Figure 5: multi-source-target reliability gain (a) and
// running time (b) of BE as the budget k grows, for all three aggregates.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/evaluate.h"
#include "core/multi.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("twitter", config);
  auto query = GenerateMultiQuery(dataset.graph, 4,
                                  {.seed = config.seed ^ 0xf16});
  RELMAX_CHECK(query.ok());
  const auto& sources = query->sources;
  const auto& targets = query->targets;

  TablePrinter table({"k", "Min gain", "Max gain", "Avg gain", "Min s",
                      "Max s", "Avg s"});
  for (int k : {4, 6, 10, 16, 24}) {
    BenchConfig variant = config;
    variant.k = k;
    const SolverOptions options = variant.ToSolverOptions();
    double gain[3];
    double secs[3];
    const Aggregate aggs[3] = {Aggregate::kMinimum, Aggregate::kMaximum,
                               Aggregate::kAverage};
    for (int a = 0; a < 3; ++a) {
      const double before = AggregateMatrix(
          PairwiseReliability(dataset.graph, sources, targets,
                              config.gain_samples, config.seed ^ 0xf5),
          aggs[a]);
      WallTimer timer;
      auto solution = MaximizeMultiReliability(dataset.graph, sources,
                                               targets, aggs[a], options);
      RELMAX_CHECK(solution.ok());
      secs[a] = timer.ElapsedSeconds();
      const double after = AggregateMatrix(
          PairwiseReliability(
              AugmentGraph(dataset.graph, solution->added_edges), sources,
              targets, config.gain_samples, config.seed ^ 0xf5),
          aggs[a]);
      gain[a] = after - before;
    }
    table.AddRow({Fmt(k), Fmt(gain[0]), Fmt(gain[1]), Fmt(gain[2]),
                  Fmt(secs[0], 2), Fmt(secs[1], 2), Fmt(secs[2], 2)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Figure 5 shape: all three aggregates gain more with larger k;\n"
      "Avg's time grows nearly linearly in k while Min/Max are less\n"
      "sensitive (their per-round budget k1 keeps selection work constant).\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("scale")) config.scale = 0.03;
  relmax::bench::PrintHeader("Figure 5: multi-source-target gain/time vs k",
                             config);
  relmax::bench::Run(config);
  return 0;
}
