// Regenerates Tables 17-18: the effect of the elimination width r on
// quality and on the elimination (Time 1) vs selection (Time 2) split,
// on the LastFM-like and DBLP-like graphs.
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const char* names[] = {"lastfm", "dblp"};
  const int rs[] = {10, 20, 40, 60, 80, 120};
  const Method methods[] = {Method::kHillClimbing, Method::kMrp, Method::kIp,
                            Method::kBe};

  for (const char* name : names) {
    Dataset dataset = LoadDataset(name, config);
    const auto queries = MakeQueries(dataset.graph, config);
    std::printf("\n--- %s ---\n", name);
    TablePrinter table({"r", "HC gain", "MRP gain", "IP gain", "BE gain",
                        "Time1 s", "HC s", "MRP s", "IP s", "BE s"});
    for (int r : rs) {
      BenchConfig variant = config;
      variant.r = r;
      const SolverOptions options = variant.ToSolverOptions();
      double gain[4] = {0, 0, 0, 0};
      double secs[4] = {0, 0, 0, 0};
      double time1 = 0.0;
      for (const auto& [s, t] : queries) {
        const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
        time1 += eq.elimination_seconds;
        for (int m = 0; m < 4; ++m) {
          const MethodResult result = RunMethodEliminated(
              dataset.graph, s, t, eq, methods[m], variant);
          gain[m] += result.gain;
          // Report the selection phase (Time 2) alone, as the paper does.
          secs[m] += result.seconds - eq.elimination_seconds;
        }
      }
      const double q = static_cast<double>(queries.size());
      table.AddRow({Fmt(r), Fmt(gain[0] / q), Fmt(gain[1] / q),
                    Fmt(gain[2] / q), Fmt(gain[3] / q), Fmt(time1 / q, 2),
                    Fmt(secs[0] / q, 2), Fmt(secs[1] / q, 2),
                    Fmt(secs[2] / q, 2), Fmt(secs[3] / q, 2)});
      std::fflush(stdout);
    }
    table.Print();
  }
  std::printf(
      "paper Tables 17-18 shape: small r loses accuracy (over-elimination);\n"
      "gains plateau by r~80-100; Time 1 grows with r (O(r^2) candidate\n"
      "assembly), selection times grow for HC/MRP but barely for IP/BE.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Tables 17-18: varying the elimination width r",
                             config);
  relmax::bench::Run(config);
  return 0;
}
