// Regenerates Tables 23-25: multiple-source-target budgeted reliability
// maximization with the Min / Max / Avg aggregates on the Twitter-like
// graph — BE (ours) vs HC, EO (eigen), ESSSP and IMA.
#include <cstdio>
#include <unordered_set>

#include "baselines/eigen.h"
#include "baselines/esssp.h"
#include "baselines/greedy.h"
#include "baselines/ima.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/evaluate.h"
#include "core/multi.h"

namespace relmax {
namespace bench {
namespace {

struct MultiWorkspace {
  CandidateSet candidates;
  UncertainGraph sub = UncertainGraph::Directed(0);
  std::vector<NodeId> nodes;          // sub id -> original id
  std::vector<NodeId> sub_sources;    // query sets in sub coordinates
  std::vector<NodeId> sub_targets;
  std::vector<Edge> sub_candidates;
  double elimination_seconds = 0.0;
};

MultiWorkspace PrepareMulti(const UncertainGraph& g,
                            const std::vector<NodeId>& sources,
                            const std::vector<NodeId>& targets,
                            const SolverOptions& options) {
  MultiWorkspace ws;
  WallTimer timer;
  auto candidates = SelectCandidatesMulti(g, sources, targets, options);
  RELMAX_CHECK(candidates.ok());
  ws.candidates = *std::move(candidates);
  ws.elimination_seconds = timer.ElapsedSeconds();

  std::unordered_set<NodeId> seen;
  auto push = [&](NodeId v) {
    if (seen.insert(v).second) ws.nodes.push_back(v);
  };
  for (NodeId v : sources) push(v);
  for (NodeId v : targets) push(v);
  for (NodeId v : ws.candidates.from_source) push(v);
  for (NodeId v : ws.candidates.to_target) push(v);
  auto sub = g.InducedSubgraph(ws.nodes);
  RELMAX_CHECK(sub.ok());
  ws.sub = *std::move(sub);

  std::vector<NodeId> to_sub(g.num_nodes(), kInvalidNode);
  for (size_t i = 0; i < ws.nodes.size(); ++i) {
    to_sub[ws.nodes[i]] = static_cast<NodeId>(i);
  }
  for (NodeId v : sources) ws.sub_sources.push_back(to_sub[v]);
  for (NodeId v : targets) ws.sub_targets.push_back(to_sub[v]);
  for (const Edge& e : ws.candidates.edges) {
    ws.sub_candidates.push_back({to_sub[e.src], to_sub[e.dst], e.prob});
  }
  return ws;
}

enum class MultiMethod { kHc, kEo, kEsssp, kIma, kBe };

const char* Label(MultiMethod m) {
  switch (m) {
    case MultiMethod::kHc:
      return "HC";
    case MultiMethod::kEo:
      return "EO";
    case MultiMethod::kEsssp:
      return "ESSSP";
    case MultiMethod::kIma:
      return "IMA";
    case MultiMethod::kBe:
      return "BE";
  }
  return "?";
}

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("twitter", config);
  const SolverOptions options = config.ToSolverOptions();
  const int set_sizes[] = {2, 3, 5};
  const MultiMethod methods[] = {MultiMethod::kHc, MultiMethod::kEo,
                                 MultiMethod::kEsssp, MultiMethod::kIma,
                                 MultiMethod::kBe};

  for (Aggregate agg :
       {Aggregate::kMinimum, Aggregate::kMaximum, Aggregate::kAverage}) {
    std::printf("\n--- aggregate: %s ---\n", AggregateName(agg));
    TablePrinter table({"|S|:|T|", "Method", "Gain", "Time (sec)"});
    for (int size : set_sizes) {
      auto query = GenerateMultiQuery(
          dataset.graph, size,
          {.seed = config.seed ^ (0x5e7 + static_cast<uint64_t>(size))});
      if (!query.ok()) continue;
      const auto& sources = query->sources;
      const auto& targets = query->targets;
      const double before = AggregateMatrix(
          PairwiseReliability(dataset.graph, sources, targets,
                              config.gain_samples, config.seed ^ 0xb4),
          agg);
      const MultiWorkspace ws =
          PrepareMulti(dataset.graph, sources, targets, options);

      for (MultiMethod method : methods) {
        WallTimer timer;
        std::vector<Edge> sub_edges;
        if (method == MultiMethod::kBe) {
          auto solution = MaximizeMultiReliability(
              dataset.graph, sources, targets, agg, options);
          RELMAX_CHECK(solution.ok());
          // BE already returns original-coordinate edges.
          const double after = AggregateMatrix(
              PairwiseReliability(
                  AugmentGraph(dataset.graph, solution->added_edges), sources,
                  targets, config.gain_samples, config.seed ^ 0xb4),
              agg);
          table.AddRow({Fmt(size) + ":" + Fmt(size), Label(method),
                        Fmt(after - before), Fmt(timer.ElapsedSeconds(), 2)});
          std::fflush(stdout);
          continue;
        }
        switch (method) {
          case MultiMethod::kHc: {
            auto r = SelectHillClimbingMulti(ws.sub, ws.sub_sources,
                                             ws.sub_targets, agg,
                                             ws.sub_candidates, options);
            RELMAX_CHECK(r.ok());
            sub_edges = *std::move(r);
            break;
          }
          case MultiMethod::kEo:
            sub_edges = SelectByEigenScore(ws.sub, ws.sub_candidates,
                                           options.budget_k, options.zeta);
            break;
          case MultiMethod::kEsssp: {
            auto r = SelectEsssp(ws.sub, ws.sub_sources, ws.sub_targets,
                                 ws.sub_candidates, options);
            RELMAX_CHECK(r.ok());
            sub_edges = *std::move(r);
            break;
          }
          case MultiMethod::kIma: {
            auto r = SelectIma(ws.sub, ws.sub_sources, ws.sub_targets,
                               ws.sub_candidates, options);
            RELMAX_CHECK(r.ok());
            sub_edges = *std::move(r);
            break;
          }
          case MultiMethod::kBe:
            break;  // handled above
        }
        std::vector<Edge> edges;
        for (const Edge& e : sub_edges) {
          edges.push_back({ws.nodes[e.src], ws.nodes[e.dst], e.prob});
        }
        const double seconds =
            timer.ElapsedSeconds() + ws.elimination_seconds;
        const double after = AggregateMatrix(
            PairwiseReliability(AugmentGraph(dataset.graph, edges), sources,
                                targets, config.gain_samples,
                                config.seed ^ 0xb4),
            agg);
        table.AddRow({Fmt(size) + ":" + Fmt(size), Label(method),
                      Fmt(after - before), Fmt(seconds, 2)});
        std::fflush(stdout);
      }
    }
    table.Print();
  }
  std::printf(
      "paper Tables 23-25 shape: BE leads on all three aggregates; EO lags\n"
      "most on Min/Max (its global objective ignores the extreme pair);\n"
      "IMA approaches BE only under the Avg aggregate.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("k")) config.k = 6;
  if (!flags.Has("scale")) config.scale = 0.03;
  if (!flags.Has("r")) config.r = 20;  // HC/ESSSP/IMA are O(|E+|) per round
  if (!flags.Has("h")) config.h = 4;   // sparse stand-in needs the reach
  relmax::bench::PrintHeader(
      "Tables 23-25: multiple-source-target aggregates (twitter-like)",
      config);
  relmax::bench::Run(config);
  return 0;
}
