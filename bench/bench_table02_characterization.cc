// Regenerates Table 2 (+ Figure 3): the reliability of the three candidate
// 2-edge solutions on the characterization example, showing that the optimal
// set flips with alpha and zeta (Observations 1-3).
#include <cstdio>

#include "bench_util.h"
#include "graph/exact_reliability.h"

namespace relmax {
namespace {

double SolutionReliability(double alpha, double zeta, bool sa, bool sb,
                           bool bt) {
  UncertainGraph g = UncertainGraph::Undirected(4);
  const NodeId s = 0, a = 1, b = 2, t = 3;
  RELMAX_CHECK(g.AddEdge(a, b, alpha).ok());
  RELMAX_CHECK(g.AddEdge(a, t, alpha).ok());
  if (sa) RELMAX_CHECK(g.AddEdge(s, a, zeta).ok());
  if (sb) RELMAX_CHECK(g.AddEdge(s, b, zeta).ok());
  if (bt) RELMAX_CHECK(g.AddEdge(b, t, zeta).ok());
  return ExactReliabilityFactoring(g, s, t).value();
}

void Run() {
  TablePrinter table({"alpha", "zeta", "{sA,sB}", "{sA,Bt}", "{sB,Bt}",
                      "optimal"});
  const double settings[3][2] = {{0.5, 0.7}, {0.5, 0.3}, {0.9, 0.7}};
  for (const auto& [alpha, zeta] : settings) {
    const double r1 = SolutionReliability(alpha, zeta, true, true, false);
    const double r2 = SolutionReliability(alpha, zeta, true, false, true);
    const double r3 = SolutionReliability(alpha, zeta, false, true, true);
    const char* optimal = r1 >= r2 && r1 >= r3   ? "{sA,sB}"
                          : r2 >= r1 && r2 >= r3 ? "{sA,Bt}"
                                                 : "{sB,Bt}";
    table.AddRow({Fmt(alpha, 1), Fmt(zeta, 1), Fmt(r1), Fmt(r2), Fmt(r3),
                  optimal});
  }
  table.Print();
  std::printf(
      "paper Table 2: rows flip the optimum {sB,Bt} -> {sA,sB} -> {sA,sB},\n"
      "demonstrating dependence on zeta (Obs. 1) and alpha (Obs. 2).\n");
}

}  // namespace
}  // namespace relmax

int main() {
  std::printf("=== Table 2: problem characterization (exact) ===\n");
  relmax::Run();
  return 0;
}
