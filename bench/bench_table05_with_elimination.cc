// Regenerates Table 5: the same method lineup as Table 4 but with
// reliability-based search-space elimination (Algorithm 4) applied first —
// every method then works on the relevant O(r^2) candidate space.
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config, bool print_edges) {
  Dataset dataset = LoadDataset("lastfm", config);
  const auto queries = MakeQueries(dataset.graph, config);
  const SolverOptions options = config.ToSolverOptions();

  const Method methods[] = {
      Method::kIndividualTopK, Method::kHillClimbing, Method::kDegree,
      Method::kBetweenness,    Method::kEigen,        Method::kMrp,
      Method::kIp,             Method::kBe,
  };

  // One elimination per query, shared across methods (as the paper does).
  std::vector<EliminatedQuery> eliminated;
  double elimination_seconds = 0.0;
  for (const auto& [s, t] : queries) {
    eliminated.push_back(Eliminate(dataset.graph, s, t, options));
    elimination_seconds += eliminated.back().elimination_seconds;
  }
  std::printf("search-space elimination: %.2f sec/query\n",
              elimination_seconds / queries.size());

  TablePrinter table({"Method", "Reliability Gain", "Running Time (sec)"});
  for (Method method : methods) {
    double gain = 0.0;
    double seconds = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      const auto [s, t] = queries[q];
      const MethodResult result = RunMethodEliminated(
          dataset.graph, s, t, eliminated[q], method, config);
      gain += result.gain;
      seconds += result.seconds;
      if (print_edges) {
        // A/B verification line (e.g. --reuse-worlds on vs off): selected
        // edge sets can be diffed directly across runs.
        std::printf("edges %s q%zu:", MethodLabel(method), q);
        for (const Edge& e : result.edges) {
          std::printf(" (%u,%u)", e.src, e.dst);
        }
        std::printf("\n");
      }
    }
    table.AddRow({MethodLabel(method), Fmt(gain / queries.size()),
                  Fmt(seconds / queries.size(), 2)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 5 shape: elimination cuts every sampling method's cost\n"
      "by ~99%% with no accuracy loss; BE best gain, IP fastest selection.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  relmax::bench::PrintHeader(
      "Table 5: methods with search-space elimination (lastfm-like)", config);
  relmax::bench::Run(config, flags.GetBool("print-edges", false));
  return 0;
}
