// Regenerates Table 19: reliability gain and running time as the query
// distance d (exact hop count between s and t) varies, AS-Topology-like
// graph, HC vs BE.
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("as_topology", config);
  const SolverOptions options = config.ToSolverOptions();

  TablePrinter table({"d", "HC gain", "BE gain", "HC s", "BE s"});
  for (int d = 2; d <= 6; ++d) {
    auto queries = GenerateQueries(
        dataset.graph, config.queries,
        {.min_hops = d, .max_hops = d, .seed = config.seed ^ (0xd0 + d)});
    if (!queries.ok()) {
      table.AddRow({Fmt(d), "-", "-", "-", "-"});
      continue;
    }
    double gain[2] = {0, 0};
    double secs[2] = {0, 0};
    for (const auto& [s, t] : *queries) {
      const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
      const Method methods[2] = {Method::kHillClimbing, Method::kBe};
      for (int m = 0; m < 2; ++m) {
        const MethodResult result =
            RunMethodEliminated(dataset.graph, s, t, eq, methods[m], config);
        gain[m] += result.gain;
        secs[m] += result.seconds;
      }
    }
    const double q = static_cast<double>(queries->size());
    table.AddRow({Fmt(d), Fmt(gain[0] / q), Fmt(gain[1] / q),
                  Fmt(secs[0] / q, 2), Fmt(secs[1] / q, 2)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 19 shape: the gain peaks at d = 3-4 (closer pairs are\n"
      "already reliable, farther pairs are beyond repair); time falls at\n"
      "the extremes where fewer candidates survive.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Table 19: varying the query distance d",
                             config);
  relmax::bench::Run(config);
  return 0;
}
