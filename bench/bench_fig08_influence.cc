// Regenerates Figure 8: influence spread from a senior-researcher group to
// a junior group on the DBLP-like graph, before and after adding k edges —
// eigenvalue optimization (EO) vs our BE-based influence maximizer.
#include <cstdio>

#include "apps/influence.h"
#include "baselines/eigen.h"
#include "bench_util.h"
#include "core/candidates.h"
#include "core/evaluate.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("dblp", config);
  // Scaled version of the paper's 50 seniors -> 1000 juniors.
  const int num_seniors = 10;
  const int num_juniors = 150;
  auto scenario = MakeCollaborationScenario(dataset.graph, num_seniors,
                                            num_juniors, config.seed ^ 0xf8);
  RELMAX_CHECK(scenario.ok());
  const double before =
      InfluenceSpread(dataset.graph, scenario->seniors, scenario->juniors,
                      config.gain_samples, config.seed ^ 0x5d);
  std::printf("original influence spread: %.1f of %d juniors\n", before,
              num_juniors);

  TablePrinter table({"k", "EO spread", "BE spread", "EO gain", "BE gain"});
  for (int k : {5, 10, 20}) {
    SolverOptions options = config.ToSolverOptions();
    options.budget_k = k;

    // EO: eigen-score edges from the multi candidate space.
    auto candidates = SelectCandidatesMulti(dataset.graph, scenario->seniors,
                                            scenario->juniors, options);
    RELMAX_CHECK(candidates.ok());
    const std::vector<Edge> eo_edges = SelectByEigenScore(
        dataset.graph, candidates->edges, k, options.zeta);
    const double eo_after = InfluenceSpread(
        AugmentGraph(dataset.graph, eo_edges), scenario->seniors,
        scenario->juniors, config.gain_samples, config.seed ^ 0x5d);

    auto be = MaximizeInfluenceSpread(dataset.graph, scenario->seniors,
                                      scenario->juniors, options,
                                      /*pair_cap=*/40);
    RELMAX_CHECK(be.ok());
    const double be_after = InfluenceSpread(
        AugmentGraph(dataset.graph, be->recommended_edges),
        scenario->seniors, scenario->juniors, config.gain_samples,
        config.seed ^ 0x5d);

    table.AddRow({Fmt(k), Fmt(eo_after, 1), Fmt(be_after, 1),
                  Fmt(eo_after - before, 1), Fmt(be_after - before, 1)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Figure 8 shape: BE's targeted objective beats the global\n"
      "eigenvalue heuristic at every budget (paper: ~326 more influenced\n"
      "juniors at k = 100).\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("scale")) config.scale = 0.04;
  relmax::bench::PrintHeader("Figure 8: influence maximization (dblp-like)",
                             config);
  relmax::bench::Run(config);
  return 0;
}
