// Regenerates Table 21: sensitivity of IP and BE to the number of most
// reliable paths l, Twitter-like graph.
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("twitter", config);
  const auto queries = MakeQueries(dataset.graph, config);

  TablePrinter table({"l", "IP gain", "BE gain", "IP s", "BE s"});
  for (int l : {10, 20, 30, 40, 50}) {
    BenchConfig variant = config;
    variant.l = l;
    const SolverOptions options = variant.ToSolverOptions();
    double gain[2] = {0, 0};
    double secs[2] = {0, 0};
    for (const auto& [s, t] : queries) {
      const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
      const Method methods[2] = {Method::kIp, Method::kBe};
      for (int m = 0; m < 2; ++m) {
        const MethodResult result =
            RunMethodEliminated(dataset.graph, s, t, eq, methods[m], variant);
        gain[m] += result.gain;
        secs[m] += result.seconds;
      }
    }
    const double q = static_cast<double>(queries.size());
    table.AddRow({Fmt(l), Fmt(gain[0] / q), Fmt(gain[1] / q),
                  Fmt(secs[0] / q, 2), Fmt(secs[1] / q, 2)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 21 shape: gains rise with l and saturate around l = 30;\n"
      "running time grows linearly in l.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Table 21: varying the number of paths l",
                             config);
  relmax::bench::Run(config);
  return 0;
}
