#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <unordered_set>

#include "baselines/centrality.h"
#include "baselines/eigen.h"
#include "baselines/exact.h"
#include "baselines/fast_gain.h"
#include "baselines/greedy.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/evaluate.h"
#include "core/selection.h"
#include "paths/layered_mrp.h"
#include "paths/yen.h"
#include "sampling/reliability.h"

namespace relmax {
namespace bench {

std::string EnvironmentJson(const std::string& benchmark_library,
                            const std::string& note) {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
#if defined(__clang__)
  const std::string compiler = "clang++ " __clang_version__;
#elif defined(__GNUC__)
  const std::string compiler = "g++ " __VERSION__;
#else
  const std::string compiler = "unknown";
#endif
#ifdef NDEBUG
  const std::string build = " (Release)";
#else
  const std::string build = " (Debug)";
#endif
  const unsigned cpus = std::thread::hardware_concurrency();
  std::string json = "{\n";
  json += "  \"cpus_available\": " + std::to_string(cpus) + ",\n";
  json += "  \"compiler\": \"" + escape(compiler + build) + "\",\n";
  json += "  \"benchmark_library\": \"" + escape(benchmark_library) + "\",\n";
  json += "  \"note\": \"" + escape(note) + "\"\n";
  json += "}";
  return json;
}

BenchConfig BenchConfig::FromFlags(const Flags& flags) {
  BenchConfig config;
  config.scale = flags.GetDouble("scale", config.scale);
  config.queries = static_cast<int>(flags.GetInt("queries", config.queries));
  config.k = static_cast<int>(flags.GetInt("k", config.k));
  config.zeta = flags.GetDouble("zeta", config.zeta);
  config.r = static_cast<int>(flags.GetInt("r", config.r));
  config.l = static_cast<int>(flags.GetInt("l", config.l));
  config.h = static_cast<int>(flags.GetInt("h", config.h));
  config.samples = static_cast<int>(flags.GetInt("samples", config.samples));
  config.elim_samples =
      static_cast<int>(flags.GetInt("elim-samples", config.elim_samples));
  config.gain_samples =
      static_cast<int>(flags.GetInt("gain-samples", config.gain_samples));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.num_threads =
      static_cast<int>(flags.GetInt("threads", config.num_threads));
  config.reuse_worlds = flags.GetBool("reuse-worlds", config.reuse_worlds);
  config.print_env = flags.GetBool("print-env", config.print_env);
  return config;
}

SolverOptions BenchConfig::ToSolverOptions() const {
  SolverOptions options;
  options.budget_k = k;
  options.zeta = zeta;
  options.top_r = r;
  options.top_l = l;
  options.hop_h = h;
  options.num_samples = samples;
  options.elimination_samples = elim_samples;
  options.seed = seed;
  options.estimator = estimator;
  options.num_threads = num_threads;
  options.reuse_worlds = reuse_worlds;
  return options;
}

const char* MethodLabel(Method method) {
  switch (method) {
    case Method::kIndividualTopK:
      return "Individual Top-k";
    case Method::kHillClimbing:
      return "Hill Climbing";
    case Method::kDegree:
      return "Centrality (degree)";
    case Method::kBetweenness:
      return "Centrality (betweenness)";
    case Method::kEigen:
      return "Eigenvalue-based";
    case Method::kMrp:
      return "Most Reliable Path";
    case Method::kIp:
      return "Individual Path (IP)";
    case Method::kBe:
      return "Batch-edge (BE)";
    case Method::kExact:
      return "Exact Solution (ES)";
    case Method::kIndividualTopKFast:
      return "Individual Top-k (delta-gain)";
    case Method::kHillClimbingFast:
      return "Hill Climbing (delta-gain)";
  }
  return "?";
}

EliminatedQuery Eliminate(const UncertainGraph& g, NodeId s, NodeId t,
                          const SolverOptions& options) {
  EliminatedQuery eq;
  WallTimer timer;
  auto candidates = SelectCandidates(g, s, t, options);
  RELMAX_CHECK(candidates.ok());
  eq.candidates = *std::move(candidates);
  eq.elimination_seconds = timer.ElapsedSeconds();

  std::unordered_set<NodeId> seen;
  auto push = [&](NodeId v) {
    if (seen.insert(v).second) eq.sub_nodes.push_back(v);
  };
  push(s);
  push(t);
  for (NodeId v : eq.candidates.from_source) push(v);
  for (NodeId v : eq.candidates.to_target) push(v);

  auto sub = g.InducedSubgraph(eq.sub_nodes);
  RELMAX_CHECK(sub.ok());
  eq.sub = *std::move(sub);
  eq.sub_s = 0;
  eq.sub_t = 1;

  std::vector<NodeId> to_sub(g.num_nodes(), kInvalidNode);
  for (size_t i = 0; i < eq.sub_nodes.size(); ++i) {
    to_sub[eq.sub_nodes[i]] = static_cast<NodeId>(i);
  }
  for (const Edge& e : eq.candidates.edges) {
    eq.sub_candidates.push_back({to_sub[e.src], to_sub[e.dst], e.prob});
  }
  return eq;
}

double MeasureGain(const UncertainGraph& g, NodeId s, NodeId t,
                   const std::vector<Edge>& edges, int num_samples,
                   uint64_t seed, int num_threads) {
  const double before = EstimateReliability(
      g, s, t,
      {.num_samples = num_samples, .seed = seed, .num_threads = num_threads});
  if (edges.empty()) return 0.0;
  const double after = EstimateReliability(
      AugmentGraph(g, edges), s, t,
      {.num_samples = num_samples, .seed = seed, .num_threads = num_threads});
  return after - before;
}

namespace {

// Dispatches one method on (graph, s, t, candidates). The caller decides
// whether `graph` is the full graph or the eliminated subgraph.
std::vector<Edge> Dispatch(const UncertainGraph& graph, NodeId s, NodeId t,
                           const std::vector<Edge>& candidates,
                           Method method, const SolverOptions& options) {
  switch (method) {
    case Method::kIndividualTopK: {
      auto r = SelectIndividualTopK(graph, s, t, candidates, options);
      RELMAX_CHECK(r.ok());
      return *std::move(r);
    }
    case Method::kHillClimbing: {
      auto r = SelectHillClimbing(graph, s, t, candidates, options);
      RELMAX_CHECK(r.ok());
      return *std::move(r);
    }
    case Method::kDegree:
      return SelectByDegreeCentrality(graph, candidates, options.budget_k);
    case Method::kBetweenness:
      return SelectByBetweennessCentrality(graph, candidates,
                                           options.budget_k);
    case Method::kEigen:
      return SelectByEigenScore(graph, candidates, options.budget_k,
                                options.zeta);
    case Method::kMrp: {
      auto r = ImproveMostReliablePathWithCandidates(
          graph, s, t, options.budget_k, candidates);
      RELMAX_CHECK(r.ok());
      return r->added_edges;
    }
    case Method::kIp:
    case Method::kBe: {
      CandidateSet cs;
      cs.edges = candidates;
      auto r = MaximizeReliabilityWithCandidates(
          graph, s, t, cs, options,
          method == Method::kBe ? CoreMethod::kBatchEdges
                                : CoreMethod::kIndividualPaths);
      RELMAX_CHECK(r.ok());
      return r->added_edges;
    }
    case Method::kExact: {
      auto r = SelectExact(graph, s, t, candidates, options);
      RELMAX_CHECK(r.ok());
      return *std::move(r);
    }
    case Method::kIndividualTopKFast: {
      auto r = SelectIndividualTopKFast(graph, s, t, candidates, options);
      RELMAX_CHECK(r.ok());
      return *std::move(r);
    }
    case Method::kHillClimbingFast: {
      auto r = SelectHillClimbingFast(graph, s, t, candidates, options);
      RELMAX_CHECK(r.ok());
      return *std::move(r);
    }
  }
  return {};
}

}  // namespace

namespace {

bool IsGreedyBaseline(Method method) {
  return method == Method::kIndividualTopK || method == Method::kHillClimbing;
}

}  // namespace

MethodResult RunMethodEliminated(const UncertainGraph& g, NodeId s, NodeId t,
                                 const EliminatedQuery& eq, Method method,
                                 const BenchConfig& config) {
  MethodResult result;
  SolverOptions options = config.ToSolverOptions();
  if (IsGreedyBaseline(method)) {
    options.num_samples *= config.greedy_sample_boost;
  }
  WallTimer timer;
  const std::vector<Edge> sub_edges =
      Dispatch(eq.sub, eq.sub_s, eq.sub_t, eq.sub_candidates, method, options);
  result.seconds = timer.ElapsedSeconds() + eq.elimination_seconds;

  result.edges.reserve(sub_edges.size());
  for (const Edge& e : sub_edges) {
    result.edges.push_back(
        {eq.sub_nodes[e.src], eq.sub_nodes[e.dst], e.prob});
  }
  result.gain = MeasureGain(g, s, t, result.edges, config.gain_samples,
                            config.seed ^ 0x9a19, config.num_threads);
  result.peak_rss_bytes = PeakRssBytes();
  return result;
}

MethodResult RunMethodDirect(const UncertainGraph& g, NodeId s, NodeId t,
                             const std::vector<Edge>& candidates,
                             Method method, const BenchConfig& config) {
  MethodResult result;
  SolverOptions options = config.ToSolverOptions();
  if (IsGreedyBaseline(method)) {
    options.num_samples *= config.greedy_sample_boost;
  }
  WallTimer timer;
  result.edges = Dispatch(g, s, t, candidates, method, options);
  result.seconds = timer.ElapsedSeconds();
  result.gain = MeasureGain(g, s, t, result.edges, config.gain_samples,
                            config.seed ^ 0x9a19, config.num_threads);
  result.peak_rss_bytes = PeakRssBytes();
  return result;
}

Dataset LoadDataset(const std::string& name, const BenchConfig& config) {
  auto dataset = MakeDataset(name, config.scale, config.seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "failed to build dataset %s: %s\n", name.c_str(),
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(dataset);
}

std::vector<std::pair<NodeId, NodeId>> MakeQueries(const UncertainGraph& g,
                                                   const BenchConfig& config) {
  // Paper protocol: s uniform, t a 3-5-hop neighbor. At bench scale such
  // pairs often start at reliability ~0 (everything would trivially gain
  // ~1.0), so additionally prefer pairs whose starting reliability is
  // moderate — the regime the paper's tables report.
  auto candidates = GenerateQueries(
      g, config.queries * 8,
      {.min_hops = 3, .max_hops = 5, .seed = config.seed ^ 0x40e51e5});
  if (!candidates.ok()) {
    candidates = GenerateQueries(
        g, config.queries * 8,
        {.min_hops = 2, .max_hops = 6, .seed = config.seed ^ 0x40e51e5});
  }
  RELMAX_CHECK(candidates.ok());

  std::vector<std::pair<NodeId, NodeId>> picked;
  std::vector<std::pair<double, std::pair<NodeId, NodeId>>> fallback;
  for (const auto& [s, t] : *candidates) {
    if (static_cast<int>(picked.size()) >= config.queries) break;
    const double reliability = EstimateReliability(
        g, s, t, {.num_samples = 800, .seed = config.seed ^ 0x5e1ec7});
    if (reliability >= 0.25 && reliability <= 0.60) {
      picked.push_back({s, t});
    } else {
      fallback.push_back({std::abs(reliability - 0.4), {s, t}});
    }
  }
  // Not enough in-band pairs (sparse scaled graphs): take the closest ones.
  std::sort(fallback.begin(), fallback.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0;
       static_cast<int>(picked.size()) < config.queries && i < fallback.size();
       ++i) {
    picked.push_back(fallback[i].second);
  }
  return picked;
}

void PrintHeader(const std::string& title, const BenchConfig& config) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf(
      "config: scale=%.3g queries=%d k=%d zeta=%.2f r=%d l=%d h=%d "
      "Z=%d elimZ=%d seed=%llu reuse-worlds=%d\n",
      config.scale, config.queries, config.k, config.zeta, config.r, config.l,
      config.h, config.samples, config.elim_samples,
      static_cast<unsigned long long>(config.seed),
      config.reuse_worlds ? 1 : 0);
  if (config.print_env) {
    std::printf("environment: %s\n",
                EnvironmentJson("WallTimer harness",
                                "paper-table bench driver")
                    .c_str());
  }
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace relmax
