// Regenerates Table 8: properties of all 13 datasets — node/edge counts,
// edge-probability moments and quartiles, average and longest shortest-path
// length, and clustering coefficient.
#include <cstdio>

#include "bench_util.h"
#include "graph/graph_stats.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  TablePrinter table({"Dataset", "#Nodes", "#Edges", "Prob mean±SD",
                      "Quartiles", "Type", "Avg SPL", "Longest SPL",
                      "C.Coe."});
  for (const std::string& name : DatasetNames()) {
    Dataset dataset = LoadDataset(name, config);
    const GraphStats stats = ComputeGraphStats(
        dataset.graph, {.num_bfs_sources = 16, .seed = config.seed});
    const std::string probs = Fmt(stats.prob_mean, 2) + "±" +
                              Fmt(stats.prob_sd, 2);
    const std::string quartiles = "{" + Fmt(stats.prob_q1, 2) + ", " +
                                  Fmt(stats.prob_q2, 2) + ", " +
                                  Fmt(stats.prob_q3, 2) + "}";
    table.AddRow({dataset.name, Fmt(stats.num_nodes), Fmt(stats.num_edges),
                  probs, quartiles,
                  dataset.graph.directed() ? "Directed" : "Undirected",
                  Fmt(stats.avg_spl, 1), Fmt(stats.longest_spl),
                  Fmt(stats.clustering_coefficient, 2)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 8 shape: regular graphs pair the longest paths with high\n"
      "clustering; small-world/scale-free graphs have short paths; random\n"
      "graphs have the lowest clustering.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  relmax::bench::PrintHeader("Table 8: dataset properties", config);
  relmax::bench::Run(config);
  return 0;
}
