// Offline reliability index vs the flood-per-source batch path vs the naive
// per-query loop, on the workload the index exists for: random (s, t) pairs,
// where almost every query is a new source and PR 5's flood amortization has
// nothing to share. The index precomputes per-world component/SCC labels
// once, so each answer is a popcount over Z bits — per-query cost O(Z/64)
// instead of O(E · Z/64 · passes).
//
// The harness re-verifies the bit-purity contract on every size: index
// answers must equal the shared-flood answers exactly (same bank, same
// bits), across --threads 1/4. A non-empty --json PATH writes the result
// entry in the canonical BENCH_*.json shape ({label, command, environment,
// benchmarks}) for tools/check_bench_json.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "index/reliability_index.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "sampling/reliability.h"

namespace relmax {
namespace bench {
namespace {

struct SizeResult {
  int num_pairs = 0;
  size_t num_sources = 0;
  double naive_per_query_seconds = 0.0;
  double flood_seconds = 0.0;        // shared-flood Answer() of the batch
  double index_seconds = 0.0;        // index Answer() of the batch (steady)
  double index_build_seconds = 0.0;  // bank sampling + labeling, paid once
  size_t label_bytes = 0;
  bool identical = false;  // index == flood, threads 1/4
};

// Random pairs with s != t, a pure function of (n, seed).
QuerySet RandomPairs(NodeId n, int num_pairs, uint64_t seed,
                     std::vector<StQuery>* pairs) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  QuerySet set;
  for (int i = 0; i < num_pairs; ++i) {
    const NodeId s = static_cast<NodeId>(rng.NextUint64(n));
    NodeId t = static_cast<NodeId>(rng.NextUint64(n));
    while (t == s) t = static_cast<NodeId>(rng.NextUint64(n));
    pairs->push_back({s, t});
    set.AddSt(s, t);
  }
  return set;
}

SizeResult RunSize(const UncertainGraph& g, int num_pairs, int num_samples,
                   uint64_t seed, int naive_pairs, int index_reps) {
  SizeResult r;
  r.num_pairs = num_pairs;
  std::vector<StQuery> pairs;
  const QuerySet set = RandomPairs(g.num_nodes(), num_pairs, seed, &pairs);
  {
    std::vector<bool> seen(g.num_nodes(), false);
    for (const StQuery& q : pairs) {
      if (!seen[q.s]) {
        seen[q.s] = true;
        ++r.num_sources;
      }
    }
  }

  // Naive loop on a fixed-size sample of the pairs (one independent
  // sampling pass per query is far too slow to run for the whole batch),
  // reported per query.
  const int naive_count = std::min<int>(naive_pairs, num_pairs);
  WallTimer timer;
  for (int i = 0; i < naive_count; ++i) {
    EstimateReliability(g, pairs[i].s, pairs[i].t,
                        {.num_samples = num_samples, .seed = seed});
  }
  r.naive_per_query_seconds =
      timer.ElapsedSeconds() / std::max(naive_count, 1);

  QueryEngineOptions options;
  options.num_samples = num_samples;
  options.seed = seed;
  // Disable the result cache so repeated Answer() calls re-resolve every
  // pair — the timed sections measure the resolution paths, not the cache.
  options.cache_results = false;

  // Flood path: warm the bank on a one-pair batch, then time the batch —
  // one word-parallel flood per distinct source.
  QueryEngine flood(g, options);
  QuerySet warmup;
  warmup.AddSt(pairs[0].s, pairs[0].t);
  if (!flood.Answer(warmup).ok()) return r;
  timer.Restart();
  const auto flood_result = flood.Answer(set);
  r.flood_seconds = timer.ElapsedSeconds();
  if (!flood_result.ok()) {
    std::fprintf(stderr, "flood batch failed: %s\n",
                 flood_result.status().ToString().c_str());
    return r;
  }

  // Index path: the warmup pays bank sampling + labeling once (reported as
  // build time); steady-state batches are then pure popcounts, timed over
  // `index_reps` repetitions for resolution.
  QueryEngineOptions indexed_options = options;
  indexed_options.use_index = true;
  QueryEngine indexed(g, indexed_options);
  timer.Restart();
  if (!indexed.Answer(warmup).ok()) return r;
  r.index_build_seconds = timer.ElapsedSeconds();
  timer.Restart();
  StatusOr<BatchResult> index_result = indexed.Answer(set);
  for (int rep = 1; rep < index_reps; ++rep) index_result = indexed.Answer(set);
  r.index_seconds = timer.ElapsedSeconds() / std::max(index_reps, 1);
  if (!index_result.ok()) {
    std::fprintf(stderr, "index batch failed: %s\n",
                 index_result.status().ToString().c_str());
    return r;
  }
  r.label_bytes = indexed.index()->label_bytes();

  // Bit-purity: index answers equal the flood answers exactly, and stay
  // identical under a different thread count.
  QueryEngineOptions four = indexed_options;
  four.num_threads = 4;
  QueryEngine indexed4(g, four);
  const auto index_result4 = indexed4.Answer(set);
  r.identical = index_result4.ok() &&
                index_result->st_values == flood_result->st_values &&
                index_result4->st_values == flood_result->st_values;
  return r;
}

void Run(const Flags& flags) {
  const std::string dataset_name = flags.GetString("dataset", "lastfm");
  const double scale = flags.GetDouble("scale", 0.1);
  const int num_samples = static_cast<int>(flags.GetInt("samples", 2000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int max_pairs = static_cast<int>(flags.GetInt("max-pairs", 256));
  const int naive_pairs = static_cast<int>(flags.GetInt("naive-pairs", 8));
  const int index_reps = static_cast<int>(flags.GetInt("index-reps", 32));
  const std::string json_path = flags.GetString("json", "");

  auto dataset = MakeDataset(dataset_name, scale, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  const UncertainGraph& g = dataset->graph;
  std::printf("=== Reliability index: offline per-world labels vs "
              "flood-per-source vs naive ===\n");
  std::printf("%s scale %.2f: %u nodes, %zu edges; Z = %d, seed = %llu\n\n",
              dataset_name.c_str(), scale, g.num_nodes(), g.num_edges(),
              num_samples, static_cast<unsigned long long>(seed));

  TablePrinter table({"Pairs", "Sources", "Naive q/s", "Flood q/s",
                      "Index q/s", "Index/Flood", "Build s", "Identical"});
  std::vector<SizeResult> results;
  bool all_identical = true;
  for (const int num_pairs : {64, 256}) {
    if (num_pairs > max_pairs) continue;
    const SizeResult r =
        RunSize(g, num_pairs, num_samples, seed, naive_pairs, index_reps);
    results.push_back(r);
    all_identical = all_identical && r.identical;
    table.AddRow(
        {Fmt(r.num_pairs), Fmt(static_cast<int>(r.num_sources)),
         Fmt(1.0 / std::max(r.naive_per_query_seconds, 1e-12), 1),
         Fmt(r.num_pairs / std::max(r.flood_seconds, 1e-12), 1),
         Fmt(r.num_pairs / std::max(r.index_seconds, 1e-12), 1),
         Fmt(r.flood_seconds / std::max(r.index_seconds, 1e-12), 1),
         Fmt(r.index_build_seconds, 3), r.identical ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nrandom pairs defeat flood amortization (every query is its own\n"
      "source); the index pays bank sampling + per-world labeling once and\n"
      "answers each query as a popcount over Z bits, so Index/Flood is the\n"
      "per-query speedup after the one-off build.\n");

  const auto enforce_identical = [&all_identical] {
    if (all_identical) return;
    std::fprintf(stderr,
                 "FAIL: index answers were not bit-identical to the "
                 "shared-flood path across threads\n");
    std::exit(1);
  };
  if (json_path.empty()) {
    enforce_identical();
    return;
  }
  std::string json = "{\n  \"label\": \"index_queries\",\n";
  json += "  \"command\": \"bench_index_queries --dataset " + dataset_name +
          " --scale " + Fmt(scale, 2) + " --samples " +
          std::to_string(num_samples) + " --seed " + std::to_string(seed) +
          "\",\n";
  json += "  \"environment\": " +
          EnvironmentJson("WallTimer harness",
                          "naive = one EstimateReliability pass per query; "
                          "flood = QueryEngine shared WorldBank, one flood "
                          "per distinct source; index = per-world component "
                          "labels, one popcount per query") +
          ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json += "    {\"name\": \"IndexQueries/" + std::to_string(r.num_pairs) +
            "\", \"pairs\": " + std::to_string(r.num_pairs) +
            ", \"sources\": " + std::to_string(r.num_sources) +
            ", \"naive_per_query_seconds\": " +
            Fmt(r.naive_per_query_seconds, 6) +
            ", \"flood_seconds\": " + Fmt(r.flood_seconds, 6) +
            ", \"index_seconds\": " + Fmt(r.index_seconds, 6) +
            ", \"index_build_seconds\": " + Fmt(r.index_build_seconds, 6) +
            ", \"speedup_index_vs_flood\": " +
            Fmt(r.flood_seconds / std::max(r.index_seconds, 1e-12), 2) +
            ", \"label_bytes\": " + std::to_string(r.label_bytes) +
            ", \"bit_identical\": " + (r.identical ? "true" : "false") + "}" +
            (i + 1 < results.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  enforce_identical();
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::bench::Run(relmax::Flags::Parse(argc, argv));
  return 0;
}
