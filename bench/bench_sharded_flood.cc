// Partition-sharded WorldBank vs the flat bit-matrix, at the scale the
// sharding exists for: a synthetic graph whose flat bank footprint is ~10x
// the default 256 MB per-shard cap. Each configuration (flat, 2/4/8 shards)
// samples the bank once and runs the same flood schedule; reported are the
// fill time, flood throughput in worlds/sec, and the process RSS — the flat
// bank pays one contiguous multi-GB matrix, the sharded bank the same bytes
// split into per-shard matrices plus partition/CSR bookkeeping.
//
// The harness re-verifies the canonical-layout contract on every config: a
// checksum over the full reach matrices of every flood must be identical
// across shard counts (the world draws are one stream; the fixpoint of the
// monotone word algebra is unique). Any mismatch exits 1.
//
// A non-empty --json PATH writes the result entry in the canonical
// BENCH_*.json shape ({label, command, environment, benchmarks}) for
// tools/check_bench_json.py. The CI smoke variant shrinks every knob:
//   bench_sharded_flood --nodes 2000 --edges 6000 --samples 256 --floods 2
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/memory.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/uncertain_graph.h"
#include "sampling/bitlane.h"
#include "sampling/world_view.h"

namespace relmax {
namespace bench {
namespace {

// Ring + random chords, undirected: connected (every flood reaches the
// whole graph, so the checksum covers every row), degree-bounded, and a
// pure function of (nodes, edges, seed).
UncertainGraph SyntheticGraph(NodeId nodes, size_t edges, uint64_t seed) {
  UncertainGraph g = UncertainGraph::Undirected(nodes);
  Rng rng(seed);
  for (NodeId v = 0; v < nodes; ++v) {
    (void)g.AddEdge(v, (v + 1) % nodes, rng.NextDouble(0.05, 0.95));
  }
  while (g.num_edges() < edges) {
    const NodeId u = static_cast<NodeId>(rng.NextUint64(nodes));
    const NodeId v = static_cast<NodeId>(rng.NextUint64(nodes));
    if (u == v) continue;
    // Duplicate edges fail; the draw stream advances either way, so the
    // graph is still deterministic.
    (void)g.AddEdge(u, v, rng.NextDouble(0.05, 0.95));
  }
  return g;
}

struct ConfigResult {
  int shards = 1;
  double fill_seconds = 0.0;
  double flood_seconds = 0.0;
  double worlds_per_second = 0.0;
  size_t bank_bytes = 0;      // logical bit-matrix bytes, summed over shards
  size_t rss_bytes = 0;       // CurrentRssBytes after fill + floods
  size_t peak_rss_bytes = 0;  // process-wide peak (monotonic across configs)
  uint64_t checksum = 0;      // over every flood's full reach matrix
  bool bit_identical = false; // checksum equals the flat config's
};

ConfigResult RunConfig(const UncertainGraph& g, int shards, int num_samples,
                       int num_floods, uint64_t seed) {
  ConfigResult r;
  r.shards = shards;

  WallTimer timer;
  const std::unique_ptr<WorldView> view =
      MakeWorldView(g, {.num_samples = num_samples,
                        .seed = seed,
                        .num_threads = 1,
                        .num_partitions = shards});
  r.fill_seconds = timer.ElapsedSeconds();
  for (const size_t bytes : view->ShardBankBytes()) r.bank_bytes += bytes;

  const std::vector<EdgeId> all = view->AllEdges();
  bitlane::BitMatrix reach;
  timer.Restart();
  for (int i = 0; i < num_floods; ++i) {
    // Deterministic well-spread sources, identical for every config.
    const NodeId source = static_cast<NodeId>(
        (static_cast<uint64_t>(i) * 2654435761ULL) % g.num_nodes());
    view->ReachabilityFixpoint(source, /*backward=*/false, all, &reach);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const uint64_t word : reach.row_span(v)) {
        r.checksum = (r.checksum * 1099511628211ULL) ^ word;
      }
    }
  }
  r.flood_seconds = timer.ElapsedSeconds();
  r.worlds_per_second = static_cast<double>(num_samples) * num_floods /
                        (r.flood_seconds > 0.0 ? r.flood_seconds : 1e-12);
  r.rss_bytes = CurrentRssBytes();
  r.peak_rss_bytes = PeakRssBytes();
  return r;
}

void Run(const Flags& flags) {
  const NodeId nodes = static_cast<NodeId>(flags.GetInt("nodes", 2000000));
  const size_t edges =
      static_cast<size_t>(flags.GetInt("edges", 10000000));
  const int num_samples = static_cast<int>(flags.GetInt("samples", 2048));
  const int num_floods = static_cast<int>(flags.GetInt("floods", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const std::string json_path = flags.GetString("json", "");

  std::printf("=== Sharded WorldBank: flat vs 2/4/8 partition shards ===\n");
  WallTimer timer;
  const UncertainGraph g = SyntheticGraph(nodes, edges, seed);
  const size_t flat_bytes = BankBytes(g.num_edges(), num_samples);
  std::printf(
      "synthetic ring+chords: %u nodes, %zu edges, built in %.1f s;\n"
      "Z = %d -> flat bank %.1f MiB (default per-shard cap is 256 MiB)\n\n",
      g.num_nodes(), g.num_edges(), timer.ElapsedSeconds(), num_samples,
      static_cast<double>(flat_bytes) / (1024.0 * 1024.0));

  TablePrinter table({"Shards", "Fill s", "Flood s", "Worlds/s", "Bank MiB",
                      "RSS MiB", "Identical"});
  std::vector<ConfigResult> results;
  bool all_identical = true;
  for (const int shards : {1, 2, 4, 8}) {
    ConfigResult r = RunConfig(g, shards, num_samples, num_floods, seed);
    r.bit_identical = results.empty() || r.checksum == results[0].checksum;
    all_identical = all_identical && r.bit_identical;
    results.push_back(r);
    table.AddRow({shards == 1 ? "flat" : Fmt(shards), Fmt(r.fill_seconds, 2),
                  Fmt(r.flood_seconds, 2), Fmt(r.worlds_per_second, 1),
                  Fmt(static_cast<double>(r.bank_bytes) / (1024.0 * 1024.0), 1),
                  Fmt(static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0), 1),
                  r.bit_identical ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nevery config floods the same sources over the same sampled worlds;\n"
      "the sharded bank trades one contiguous multi-GB matrix for per-shard\n"
      "matrices a per-shard byte budget can admit, at the cost of the\n"
      "boundary-exchange rounds visible in Flood s.\n");

  const auto enforce_identical = [&all_identical] {
    if (all_identical) return;
    std::fprintf(stderr,
                 "FAIL: sharded flood checksums were not bit-identical to "
                 "the flat bank's\n");
    std::exit(1);
  };
  if (json_path.empty()) {
    enforce_identical();
    return;
  }
  std::string json = "{\n  \"label\": \"sharded_flood\",\n";
  json += "  \"command\": \"bench_sharded_flood --nodes " +
          std::to_string(nodes) + " --edges " + std::to_string(edges) +
          " --samples " + std::to_string(num_samples) + " --floods " +
          std::to_string(num_floods) + " --seed " + std::to_string(seed) +
          "\",\n";
  json += "  \"environment\": " +
          EnvironmentJson("WallTimer harness",
                          "flat = WorldBank; shards = ShardedWorldBank with "
                          "boundary-exchange floods; checksums over full "
                          "reach matrices enforce canonical-layout "
                          "bit-identity; peak_rss_bytes is the process-wide "
                          "peak and monotonic across configs") +
          ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    json += "    {\"name\": \"ShardedFlood/" +
            (r.shards == 1 ? std::string("flat")
                           : std::to_string(r.shards)) +
            "\", \"shards\": " + std::to_string(r.shards) +
            ", \"fill_seconds\": " + Fmt(r.fill_seconds, 6) +
            ", \"flood_seconds\": " + Fmt(r.flood_seconds, 6) +
            ", \"worlds_per_second\": " + Fmt(r.worlds_per_second, 2) +
            ", \"bank_bytes\": " + std::to_string(r.bank_bytes) +
            ", \"rss_bytes\": " + std::to_string(r.rss_bytes) +
            ", \"peak_rss_bytes\": " + std::to_string(r.peak_rss_bytes) +
            ", \"bit_identical\": " + (r.bit_identical ? "true" : "false") +
            "}" + (i + 1 < results.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  enforce_identical();
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::bench::Run(relmax::Flags::Parse(argc, argv));
  return 0;
}
