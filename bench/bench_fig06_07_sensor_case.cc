// Regenerates Figures 6-7: the Intel Lab case study. Two sensor pairs — a
// right-to-left pair (Figure 6) and a diagonal pair (Figure 7) — each get 3
// new <=15 m links chosen by BE; the chosen links and before/after
// reliabilities are printed, plus an ASCII floor map.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/sensor.h"
#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void DrawMap(const Dataset& lab, const SensorCaseResult& result) {
  // 40 m x 30 m floor on a character grid.
  const int kWidth = 78;
  const int kHeight = 22;
  std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
  auto plot = [&](double x, double y, char ch) {
    const int cx = std::clamp(static_cast<int>(x / 40.0 * (kWidth - 1)), 0,
                              kWidth - 1);
    const int cy = std::clamp(
        kHeight - 1 - static_cast<int>(y / 30.0 * (kHeight - 1)), 0,
        kHeight - 1);
    canvas[cy][cx] = ch;
  };
  for (NodeId v = 0; v < lab.graph.num_nodes(); ++v) {
    plot(lab.positions[v].first, lab.positions[v].second, 'o');
  }
  for (const Edge& e : result.new_links) {
    // Midpoints of new links drawn as '*' chains.
    for (double f = 0.0; f <= 1.0; f += 0.125) {
      const double x = lab.positions[e.src].first * (1 - f) +
                       lab.positions[e.dst].first * f;
      const double y = lab.positions[e.src].second * (1 - f) +
                       lab.positions[e.dst].second * f;
      plot(x, y, '*');
    }
  }
  plot(lab.positions[result.source].first, lab.positions[result.source].second,
       'S');
  plot(lab.positions[result.target].first, lab.positions[result.target].second,
       'T');
  for (const std::string& line : canvas) std::printf("|%s|\n", line.c_str());
}

void RunCase(const Dataset& lab, const char* title, NodeId s, NodeId t,
             const BenchConfig& config) {
  SolverOptions options = config.ToSolverOptions();
  options.top_r = static_cast<int>(lab.graph.num_nodes());
  auto result = ImproveSensorPair(lab, s, t, /*budget=*/3,
                                  /*link_prob=*/0.33,
                                  /*max_distance_m=*/15.0, options);
  RELMAX_CHECK(result.ok());
  std::printf("\n--- %s: sensor %u -> sensor %u ---\n", title, s, t);
  std::printf("reliability: %.3f -> %.3f\n", result->reliability_before,
              result->reliability_after);
  for (const Edge& e : result->new_links) {
    std::printf("  new link %2u -> %2u  (%.1f m, p = %.2f)\n", e.src, e.dst,
                DistanceMeters(lab, e.src, e.dst), e.prob);
  }
  DrawMap(lab, *result);
}

void Run(const BenchConfig& config) {
  Dataset lab = LoadDataset("intel_lab", config);

  // Figure 6: right side to left side (most-separated x coordinates).
  NodeId right = 0;
  NodeId left = 0;
  for (NodeId v = 0; v < lab.graph.num_nodes(); ++v) {
    if (lab.positions[v].first > lab.positions[right].first) right = v;
    if (lab.positions[v].first < lab.positions[left].first) left = v;
  }
  RunCase(lab, "Figure 6 (right -> left)", right, left, config);

  // Figure 7: diagonal pair (bottom-left to top-right).
  NodeId bl = 0;
  NodeId tr = 0;
  auto corner_score = [&](NodeId v, bool top_right) {
    const auto& [x, y] = lab.positions[v];
    return top_right ? x + y : -(x + y);
  };
  for (NodeId v = 0; v < lab.graph.num_nodes(); ++v) {
    if (corner_score(v, false) > corner_score(bl, false)) bl = v;
    if (corner_score(v, true) > corner_score(tr, true)) tr = v;
  }
  RunCase(lab, "Figure 7 (diagonal)", bl, tr, config);

  std::printf(
      "\npaper Figures 6-7 shape: the solver bridges the weakly connected\n"
      "side to the dense cluster with short physical links, roughly\n"
      "doubling the end-to-end delivery reliability.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  relmax::bench::PrintHeader("Figures 6-7: Intel Lab sensor case study",
                             config);
  relmax::bench::Run(config);
  return 0;
}
