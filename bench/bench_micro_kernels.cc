// Micro-kernel benchmarks (google-benchmark): the primitives the solver
// pipeline is built from — MC sampling, RSS, reliability-to-all passes,
// most-reliable-path Dijkstra, Yen top-l, search-space elimination, and the
// delta-gain world ensemble.
#include <benchmark/benchmark.h>

#include "baselines/fast_gain.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "gen/datasets.h"
#include "gen/queries.h"
#include "paths/most_reliable_path.h"
#include "paths/yen.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"
#include "sampling/world_bank.h"
#include "sampling/world_view.h"

namespace relmax {
namespace {

const Dataset& TestGraph() {
  static const Dataset* dataset = [] {
    auto d = MakeDataset("lastfm", 0.5, 7);
    RELMAX_CHECK(d.ok());
    return new Dataset(*std::move(d));
  }();
  return *dataset;
}

std::pair<NodeId, NodeId> TestQuery() {
  static const auto query = [] {
    auto q = GenerateQueries(TestGraph().graph, 1, {.seed = 3});
    RELMAX_CHECK(q.ok());
    return (*q)[0];
  }();
  return query;
}

void BM_MonteCarloReliability(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  MonteCarloSampler sampler(TestGraph().graph, 11);
  const int z = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Reliability(s, t, z));
  }
  state.SetItemsProcessed(state.iterations() * z);
}
BENCHMARK(BM_MonteCarloReliability)->Arg(100)->Arg(500)->Arg(1000);

// The batched parallel MC kernel: same estimate bit-for-bit at every thread
// count (second range arg), wall-clock scaling with lanes.
void BM_MonteCarloReliabilityParallel(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  const int z = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateReliability(
        TestGraph().graph, s, t,
        {.num_samples = z, .seed = 11, .num_threads = threads}));
  }
  state.SetItemsProcessed(state.iterations() * z);
}
BENCHMARK(BM_MonteCarloReliabilityParallel)
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({2000, 4})
    ->Args({2000, 8})
    ->UseRealTime();

void BM_RssReliabilityParallel(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  const int z = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  RssSampler sampler(TestGraph().graph,
                     {.num_samples = z, .seed = 11, .num_threads = threads});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Reliability(s, t));
  }
  state.SetItemsProcessed(state.iterations() * z);
}
BENCHMARK(BM_RssReliabilityParallel)
    ->Args({2000, 1})
    ->Args({2000, 4})
    ->UseRealTime();

void BM_RssReliability(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  const int z = static_cast<int>(state.range(0));
  RssSampler sampler(TestGraph().graph, {.num_samples = z, .seed = 11});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Reliability(s, t));
  }
  state.SetItemsProcessed(state.iterations() * z);
}
BENCHMARK(BM_RssReliability)->Arg(100)->Arg(500);

void BM_ReliabilityFromSourceToAll(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  (void)t;
  MonteCarloSampler sampler(TestGraph().graph, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.FromSource(s, 200));
  }
}
BENCHMARK(BM_ReliabilityFromSourceToAll);

void BM_MostReliablePath(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MostReliablePath(TestGraph().graph, s, t));
  }
}
BENCHMARK(BM_MostReliablePath);

void BM_YenTopL(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  const int l = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopLReliablePaths(TestGraph().graph, s, t, l));
  }
}
BENCHMARK(BM_YenTopL)->Arg(10)->Arg(30);

void BM_SearchSpaceElimination(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  SolverOptions options;
  options.top_r = static_cast<int>(state.range(0));
  options.elimination_samples = 300;
  options.hop_h = 3;
  for (auto _ : state) {
    auto candidates = SelectCandidates(TestGraph().graph, s, t, options);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_SearchSpaceElimination)->Arg(20)->Arg(50)->Arg(100);

// The word-parallel reachability fixpoint — the inner kernel behind
// WorldBank selection, batch queries, and the index's lazy reach rows. One
// iteration floods all Z worlds from s over the full edge set into a reused
// scratch, so worlds/sec here is the number every shared-world consumer
// ultimately pays.
void BM_ReachabilityFixpoint(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  (void)t;
  const int z = static_cast<int>(state.range(0));
  const WorldBank bank(TestGraph().graph,
                       {.num_samples = z, .seed = 29, .num_threads = 1});
  const std::vector<EdgeId> active = bank.AllEdges();
  bitlane::BitMatrix reach;
  for (auto _ : state) {
    bank.ReachabilityFixpoint(s, /*backward=*/false, active, &reach);
    benchmark::DoNotOptimize(reach);
  }
  state.SetItemsProcessed(state.iterations() * z);
}
BENCHMARK(BM_ReachabilityFixpoint)->Arg(500)->Arg(2000)->Arg(8000);

// The same fixpoint through the WorldView factory at 1/2/4/8 partition
// shards (1 = the flat bank, the baseline above). The sharded matrices hold
// the identical bits, so any slope here is pure boundary-exchange overhead.
void BM_ShardedFixpoint(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  (void)t;
  const int shards = static_cast<int>(state.range(0));
  constexpr int kZ = 2000;
  const std::unique_ptr<WorldView> view =
      MakeWorldView(TestGraph().graph, {.num_samples = kZ,
                                        .seed = 29,
                                        .num_threads = 1,
                                        .num_partitions = shards});
  const std::vector<EdgeId> active = view->AllEdges();
  bitlane::BitMatrix reach;
  for (auto _ : state) {
    view->ReachabilityFixpoint(s, /*backward=*/false, active, &reach);
    benchmark::DoNotOptimize(reach);
  }
  state.SetItemsProcessed(state.iterations() * kZ);
}
BENCHMARK(BM_ShardedFixpoint)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Bank fill: sampling Z worlds over every edge into the bit-matrix. One
// iteration is one full bank construction (the once-per-solve cost that
// reuse_worlds amortizes).
void BM_WorldBankFill(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldBank bank(TestGraph().graph,
                   {.num_samples = z, .seed = 31, .num_threads = 1});
    benchmark::DoNotOptimize(bank.num_worlds());
  }
  state.SetItemsProcessed(state.iterations() * z);
}
BENCHMARK(BM_WorldBankFill)->Arg(500)->Arg(2000);

void BM_WorldEnsembleBuild(benchmark::State& state) {
  const auto [s, t] = TestQuery();
  const int z = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldEnsemble ensemble(TestGraph().graph, s, t, z, 17);
    benchmark::DoNotOptimize(ensemble.BaseReliability());
  }
}
BENCHMARK(BM_WorldEnsembleBuild)->Arg(100)->Arg(500);

}  // namespace
}  // namespace relmax

BENCHMARK_MAIN();
