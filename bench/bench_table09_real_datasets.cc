// Regenerates Table 9: single-source-target reliability maximization on the
// four "real" datasets — reliability gain, running time, and memory for HC,
// MRP, IP, and BE (all with search-space elimination).
#include <cstdio>

#include "bench_util.h"
#include "common/memory.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const char* names[] = {"lastfm", "as_topology", "dblp", "twitter"};
  const Method methods[] = {Method::kHillClimbing, Method::kMrp, Method::kIp,
                            Method::kBe};

  TablePrinter table({"Dataset", "Method", "Reliability Gain",
                      "Running Time (sec)", "Memory (GB)"});
  for (const char* name : names) {
    Dataset dataset = LoadDataset(name, config);
    const auto queries = MakeQueries(dataset.graph, config);
    const SolverOptions options = config.ToSolverOptions();

    std::vector<EliminatedQuery> eliminated;
    for (const auto& [s, t] : queries) {
      eliminated.push_back(Eliminate(dataset.graph, s, t, options));
    }
    for (Method method : methods) {
      double gain = 0.0;
      double seconds = 0.0;
      size_t mem = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        const auto [s, t] = queries[q];
        const MethodResult result = RunMethodEliminated(
            dataset.graph, s, t, eliminated[q], method, config);
        gain += result.gain;
        seconds += result.seconds;
        mem = std::max(mem, result.peak_rss_bytes);
      }
      table.AddRow({dataset.name, MethodLabel(method),
                    Fmt(gain / queries.size()),
                    Fmt(seconds / queries.size(), 2),
                    Fmt(BytesToGiB(mem), 3)});
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "paper Table 9 shape: BE wins or ties the gain on every dataset at\n"
      "~1/10th-1/30th of HC's time; MRP is cheapest and weakest; the BE\n"
      "advantage is largest on the sparse twitter-like graph.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  relmax::bench::PrintHeader(
      "Table 9: single-source-target on real-dataset stand-ins", config);
  relmax::bench::Run(config);
  return 0;
}
