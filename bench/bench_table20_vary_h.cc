// Regenerates Table 20: the effect of the h-hop distance constraint on new
// edges, Twitter-like graph, HC vs BE.
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("twitter", config);
  const auto queries = MakeQueries(dataset.graph, config);

  TablePrinter table({"h", "HC gain", "BE gain", "HC s", "BE s",
                      "|E+| (avg)"});
  for (int h = 2; h <= 5; ++h) {
    BenchConfig variant = config;
    variant.h = h;
    const SolverOptions options = variant.ToSolverOptions();
    double gain[2] = {0, 0};
    double secs[2] = {0, 0};
    double candidates = 0.0;
    for (const auto& [s, t] : queries) {
      const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
      candidates += static_cast<double>(eq.candidates.edges.size());
      const Method methods[2] = {Method::kHillClimbing, Method::kBe};
      for (int m = 0; m < 2; ++m) {
        const MethodResult result =
            RunMethodEliminated(dataset.graph, s, t, eq, methods[m], variant);
        gain[m] += result.gain;
        secs[m] += result.seconds;
      }
    }
    const double q = static_cast<double>(queries.size());
    table.AddRow({Fmt(h), Fmt(gain[0] / q), Fmt(gain[1] / q),
                  Fmt(secs[0] / q, 2), Fmt(secs[1] / q, 2),
                  Fmt(candidates / q, 0)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 20 shape: larger h admits more remote candidate links,\n"
      "raising both the achievable gain and the running time.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader(
      "Table 20: varying the candidate distance constraint h", config);
  relmax::bench::Run(config);
  return 0;
}
