// Regenerates Table 16: per-edge random probabilities on new edges instead
// of a fixed zeta — uniform ranges and a clipped normal — on the
// Twitter-like graph (HC / MRP / IP / BE).
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"

namespace relmax {
namespace bench {
namespace {

enum class ProbModel { kRand01, kRand0206, kRand0408, kNormal };

const char* ModelLabel(ProbModel model) {
  switch (model) {
    case ProbModel::kRand01:
      return "rand(0, 1)";
    case ProbModel::kRand0206:
      return "rand(0.2, 0.6)";
    case ProbModel::kRand0408:
      return "rand(0.4, 0.8)";
    case ProbModel::kNormal:
      return "N(0.5, 0.038)";
  }
  return "?";
}

double Draw(ProbModel model, Rng* rng) {
  switch (model) {
    case ProbModel::kRand01:
      return rng->NextDouble(0.001, 1.0);
    case ProbModel::kRand0206:
      return rng->NextDouble(0.2, 0.6);
    case ProbModel::kRand0408:
      return rng->NextDouble(0.4, 0.8);
    case ProbModel::kNormal: {
      const double p = 0.5 + 0.038 * rng->NextGaussian();
      return p < 0.001 ? 0.001 : (p > 1.0 ? 1.0 : p);
    }
  }
  return 0.5;
}

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("twitter", config);
  const auto queries = MakeQueries(dataset.graph, config);
  const SolverOptions options = config.ToSolverOptions();
  const Method methods[] = {Method::kHillClimbing, Method::kMrp, Method::kIp,
                            Method::kBe};

  TablePrinter table({"New-edge probabilities", "HC gain", "MRP gain",
                      "IP gain", "BE gain", "HC s", "MRP s", "IP s", "BE s"});
  for (ProbModel model :
       {ProbModel::kRand01, ProbModel::kRand0206, ProbModel::kRand0408,
        ProbModel::kNormal}) {
    double gain[4] = {0, 0, 0, 0};
    double secs[4] = {0, 0, 0, 0};
    for (const auto& [s, t] : queries) {
      EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
      // Overwrite the fixed zeta with per-edge draws (same draws for every
      // method, as the paper supplies them as part of the input).
      Rng rng(config.seed ^ (static_cast<uint64_t>(model) * 77 + s));
      for (size_t i = 0; i < eq.candidates.edges.size(); ++i) {
        const double p = Draw(model, &rng);
        eq.candidates.edges[i].prob = p;
        eq.sub_candidates[i].prob = p;
      }
      for (int m = 0; m < 4; ++m) {
        const MethodResult result =
            RunMethodEliminated(dataset.graph, s, t, eq, methods[m], config);
        gain[m] += result.gain;
        secs[m] += result.seconds;
      }
    }
    const double q = static_cast<double>(queries.size());
    table.AddRow({ModelLabel(model), Fmt(gain[0] / q), Fmt(gain[1] / q),
                  Fmt(gain[2] / q), Fmt(gain[3] / q), Fmt(secs[0] / q, 2),
                  Fmt(secs[1] / q, 2), Fmt(secs[2] / q, 2),
                  Fmt(secs[3] / q, 2)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "paper Table 16 shape: BE stays best under every per-edge probability\n"
      "model; higher probability ranges yield higher gains.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader(
      "Table 16: per-edge probabilities on new edges (twitter-like)", config);
  relmax::bench::Run(config);
  return 0;
}
