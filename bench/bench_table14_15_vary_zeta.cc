// Regenerates Tables 14-15: reliability gain and running time as the
// new-edge probability zeta varies, on the AS-Topology-like and
// Twitter-like graphs (HC / MRP / IP / BE).
#include <cstdio>

#include "bench_util.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const char* names[] = {"as_topology", "twitter"};
  const double zetas[] = {0.3, 0.4, 0.5, 0.6, 0.7, 1.0};
  const Method methods[] = {Method::kHillClimbing, Method::kMrp, Method::kIp,
                            Method::kBe};

  for (const char* name : names) {
    Dataset dataset = LoadDataset(name, config);
    const auto queries = MakeQueries(dataset.graph, config);
    std::printf("\n--- %s ---\n", name);
    TablePrinter table({"zeta", "HC gain", "MRP gain", "IP gain", "BE gain",
                        "HC s", "MRP s", "IP s", "BE s"});
    for (double zeta : zetas) {
      BenchConfig variant = config;
      variant.zeta = zeta;
      const SolverOptions options = variant.ToSolverOptions();
      double gain[4] = {0, 0, 0, 0};
      double secs[4] = {0, 0, 0, 0};
      for (const auto& [s, t] : queries) {
        const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
        for (int m = 0; m < 4; ++m) {
          const MethodResult result = RunMethodEliminated(
              dataset.graph, s, t, eq, methods[m], variant);
          gain[m] += result.gain;
          secs[m] += result.seconds;
        }
      }
      const double q = static_cast<double>(queries.size());
      table.AddRow({Fmt(zeta, 1), Fmt(gain[0] / q), Fmt(gain[1] / q),
                    Fmt(gain[2] / q), Fmt(gain[3] / q), Fmt(secs[0] / q, 2),
                    Fmt(secs[1] / q, 2), Fmt(secs[2] / q, 2),
                    Fmt(secs[3] / q, 2)});
      std::fflush(stdout);
    }
    table.Print();
  }
  std::printf(
      "paper Tables 14-15 shape: gain grows roughly linearly with zeta\n"
      "(super-linear jumps when the optimal edge set flips, Obs. 1);\n"
      "running time is insensitive to zeta.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Tables 14-15: varying the new-edge probability",
                             config);
  relmax::bench::Run(config);
  return 0;
}
