// Batch multi-query throughput: the naive per-query loop (one full
// EstimateReliability sampling pass per query — the only option before the
// query engine existed) against QueryEngine's shared-world batch path, which
// samples Z worlds once and runs one word-parallel flood per distinct
// source. The workload is an S × T query grid, the regime the engine is
// built for: every query shares its source with T − 1 others.
//
// Beyond throughput, the harness re-verifies the engine's determinism
// contract on every size: batch answers bit-identical across --threads 1/4
// and bit-identical to per-query EstimateSt() on a fresh engine. A non-empty
// --json PATH writes the result entry in the canonical BENCH_*.json shape
// ({label, command, environment, benchmarks}) for tools/check_bench_json.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "sampling/reliability.h"

namespace relmax {
namespace bench {
namespace {

struct SizeResult {
  int num_queries = 0;
  int num_sources = 0;
  double naive_seconds = 0.0;
  double batched_seconds = 0.0;
  double cached_seconds = 0.0;
  bool identical = false;  // threads 1/4 and batch == per-query EstimateSt
};

SizeResult RunSize(const UncertainGraph& g, int num_sources, int num_targets,
                   int num_samples, uint64_t seed) {
  SizeResult r;
  r.num_sources = num_sources;
  r.num_queries = num_sources * num_targets;
  // Query grid: sources from the front of the id range, targets from the
  // middle — arbitrary but fixed, so runs are comparable.
  std::vector<StQuery> pairs;
  QuerySet set;
  const NodeId n = g.num_nodes();
  for (int si = 0; si < num_sources; ++si) {
    for (int ti = 0; ti < num_targets; ++ti) {
      const NodeId s = static_cast<NodeId>(si);
      const NodeId t = static_cast<NodeId>((n / 2 + ti) % n);
      pairs.push_back({s, t});
      set.AddSt(s, t);
    }
  }

  // Naive loop: what a caller does without the engine — one independent
  // sampling pass per query.
  std::vector<double> naive(pairs.size());
  WallTimer timer;
  for (size_t i = 0; i < pairs.size(); ++i) {
    naive[i] = EstimateReliability(
        g, pairs[i].s, pairs[i].t,
        {.num_samples = num_samples, .seed = seed});
  }
  r.naive_seconds = timer.ElapsedSeconds();

  // Batched: one engine, one Answer() call.
  QueryEngineOptions options;
  options.num_samples = num_samples;
  options.seed = seed;
  QueryEngine engine(g, options);
  timer.Restart();
  auto batched = engine.Answer(set);
  r.batched_seconds = timer.ElapsedSeconds();
  if (!batched.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 batched.status().ToString().c_str());
    return r;
  }

  // Repeat-query traffic: the whole batch served from the result cache.
  timer.Restart();
  auto cached = engine.Answer(set);
  r.cached_seconds = timer.ElapsedSeconds();

  // Determinism contract. Thread invariance, then batch-composition
  // invariance spot-checked on every 8th pair (full per-query re-estimation
  // would dwarf the timed section at large sizes).
  QueryEngineOptions four = options;
  four.num_threads = 4;
  QueryEngine engine4(g, four);
  auto batched4 = engine4.Answer(set);
  r.identical = batched4.ok() && cached.ok() &&
                batched4->st_values == batched->st_values &&
                cached->st_values == batched->st_values;
  for (size_t i = 0; r.identical && i < pairs.size(); i += 8) {
    QueryEngine solo(g, options);
    const auto value = solo.EstimateSt(pairs[i].s, pairs[i].t);
    r.identical = value.ok() && *value == batched->st_values[i];
  }
  return r;
}

void Run(const Flags& flags) {
  const std::string dataset_name = flags.GetString("dataset", "as_topology");
  const double scale = flags.GetDouble("scale", 0.1);
  const int num_samples = static_cast<int>(flags.GetInt("samples", 2000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int max_queries = static_cast<int>(flags.GetInt("max-queries", 256));
  const std::string json_path = flags.GetString("json", "");

  auto dataset = MakeDataset(dataset_name, scale, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  const UncertainGraph& g = dataset->graph;
  std::printf("=== Batch query engine: naive per-query loop vs shared-world "
              "batch ===\n");
  std::printf("%s scale %.2f: %u nodes, %zu edges; Z = %d, seed = %llu\n\n",
              dataset_name.c_str(), scale, g.num_nodes(), g.num_edges(),
              num_samples, static_cast<unsigned long long>(seed));

  TablePrinter table({"Queries", "Sources", "Naive q/s", "Batched q/s",
                      "Speedup", "Cached q/s", "Identical"});
  std::vector<SizeResult> results;
  bool all_identical = true;
  for (const auto& [sources, targets] :
       {std::pair{4, 4}, std::pair{8, 8}, std::pair{8, 32}}) {
    if (sources * targets > max_queries) continue;
    const SizeResult r = RunSize(g, sources, targets, num_samples, seed);
    results.push_back(r);
    all_identical = all_identical && r.identical;
    const double naive_qps = r.num_queries / r.naive_seconds;
    const double batched_qps = r.num_queries / r.batched_seconds;
    table.AddRow({Fmt(r.num_queries), Fmt(r.num_sources), Fmt(naive_qps, 1),
                  Fmt(batched_qps, 1),
                  Fmt(r.naive_seconds / r.batched_seconds, 2),
                  Fmt(r.num_queries / std::max(r.cached_seconds, 1e-9), 1),
                  r.identical ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nthe batched path pays the world bank once (Z x edges coin flips)\n"
      "and one reachability flood per distinct source, so its advantage\n"
      "grows with queries-per-source; the cached column is repeat traffic\n"
      "served entirely from the (graph version, Z, seed)-keyed result "
      "cache.\n");

  // The bench doubles as the determinism check the bench-smoke CI job runs
  // on the real dataset: a broken contract must fail the job, not just
  // print "NO" in a green log. (The JSON below is still written first so
  // the failing run's numbers are inspectable.)
  const auto enforce_identical = [&all_identical] {
    if (all_identical) return;
    std::fprintf(stderr,
                 "FAIL: batch answers were not bit-identical across "
                 "threads / cache replay / batch composition\n");
    std::exit(1);
  };
  if (json_path.empty()) {
    enforce_identical();
    return;
  }
  std::string json = "{\n  \"label\": \"batch_vs_naive\",\n";
  json += "  \"command\": \"bench_batch_queries --dataset " + dataset_name +
          " --scale " + Fmt(scale, 2) + " --samples " +
          std::to_string(num_samples) + " --seed " + std::to_string(seed) +
          "\",\n";
  json += "  \"environment\": " +
          EnvironmentJson("WallTimer harness",
                          "naive loop = one EstimateReliability pass per "
                          "query; batched = QueryEngine shared WorldBank, "
                          "one flood per distinct source") +
          ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json += "    {\"name\": \"BatchQueries/" +
            std::to_string(r.num_queries) + "\", \"queries\": " +
            std::to_string(r.num_queries) + ", \"sources\": " +
            std::to_string(r.num_sources) + ", \"naive_seconds\": " +
            Fmt(r.naive_seconds, 6) + ", \"batched_seconds\": " +
            Fmt(r.batched_seconds, 6) + ", \"cached_seconds\": " +
            Fmt(r.cached_seconds, 6) + ", \"speedup\": " +
            Fmt(r.naive_seconds / r.batched_seconds, 2) +
            ", \"bit_identical\": " + (r.identical ? "true" : "false") + "}" +
            (i + 1 < results.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  enforce_identical();
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::bench::Run(relmax::Flags::Parse(argc, argv));
  return 0;
}
