// Ablations for the design choices called out in DESIGN.md §1.4:
//   A. estimator inside BE: MC vs RSS
//   B. selection: IP vs BE (same candidates/paths)
//   C. top-l path search: eliminated subgraph vs full augmented graph
//   D. hill climbing: faithful per-candidate re-estimation vs the
//      single-edge delta-gain ensemble (quality should match, time should
//      not)
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/solver.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  Dataset dataset = LoadDataset("lastfm", config);
  const auto queries = MakeQueries(dataset.graph, config);

  // --- A + C: solver pipeline variants ------------------------------------
  struct PipelineVariant {
    const char* label;
    Estimator estimator;
    bool paths_on_subgraph;
    CoreMethod method;
  };
  const PipelineVariant variants[] = {
      {"BE / MC / paths-on-subgraph", Estimator::kMonteCarlo, true,
       CoreMethod::kBatchEdges},
      {"BE / RSS / paths-on-subgraph", Estimator::kRss, true,
       CoreMethod::kBatchEdges},
      {"BE / MC / paths-on-full-graph", Estimator::kMonteCarlo, false,
       CoreMethod::kBatchEdges},
      {"IP / MC / paths-on-subgraph", Estimator::kMonteCarlo, true,
       CoreMethod::kIndividualPaths},
  };
  TablePrinter pipeline({"Variant", "Gain", "Time (sec)"});
  for (const PipelineVariant& variant : variants) {
    double gain = 0.0;
    double secs = 0.0;
    for (const auto& [s, t] : queries) {
      SolverOptions options = config.ToSolverOptions();
      options.estimator = variant.estimator;
      options.paths_on_eliminated_subgraph = variant.paths_on_subgraph;
      WallTimer timer;
      auto solution =
          MaximizeReliability(dataset.graph, s, t, options, variant.method);
      RELMAX_CHECK(solution.ok());
      secs += timer.ElapsedSeconds();
      gain += MeasureGain(dataset.graph, s, t, solution->added_edges,
                          config.gain_samples, config.seed ^ 0xab1);
    }
    pipeline.AddRow({variant.label, Fmt(gain / queries.size()),
                     Fmt(secs / queries.size(), 2)});
    std::fflush(stdout);
  }
  pipeline.Print();

  // --- D: faithful vs delta-gain hill climbing ----------------------------
  TablePrinter hc({"Hill climbing", "Gain", "Time (sec)"});
  const Method hc_methods[] = {Method::kHillClimbing,
                               Method::kHillClimbingFast,
                               Method::kIndividualTopK,
                               Method::kIndividualTopKFast};
  const SolverOptions options = config.ToSolverOptions();
  for (Method method : hc_methods) {
    double gain = 0.0;
    double secs = 0.0;
    for (const auto& [s, t] : queries) {
      const EliminatedQuery eq = Eliminate(dataset.graph, s, t, options);
      const MethodResult result =
          RunMethodEliminated(dataset.graph, s, t, eq, method, config);
      gain += result.gain;
      secs += result.seconds;
    }
    hc.AddRow({MethodLabel(method), Fmt(gain / queries.size()),
               Fmt(secs / queries.size(), 2)});
    std::fflush(stdout);
  }
  hc.Print();
  std::printf(
      "expected: RSS matches MC's gain with less time; paths-on-full-graph\n"
      "matches subgraph quality at higher cost; delta-gain variants match\n"
      "their faithful counterparts' gain at a fraction of the time.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader("Ablations: estimator / selection / path scope",
                             config);
  relmax::bench::Run(config);
  return 0;
}
