// Regenerates Table 10: single-source-target reliability maximization on
// the eight synthetic datasets (Random/Regular/SmallWorld/ScaleFree x 2).
#include <cstdio>

#include "bench_util.h"
#include "common/memory.h"

namespace relmax {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const char* names[] = {"random1",     "random2",     "regular1",
                         "regular2",    "smallworld1", "smallworld2",
                         "scalefree1",  "scalefree2"};
  const Method methods[] = {Method::kHillClimbing, Method::kMrp, Method::kIp,
                            Method::kBe};

  TablePrinter table({"Dataset", "Method", "Reliability Gain",
                      "Running Time (sec)", "Memory (GB)"});
  for (const char* name : names) {
    Dataset dataset = LoadDataset(name, config);
    const auto queries = MakeQueries(dataset.graph, config);
    const SolverOptions options = config.ToSolverOptions();

    std::vector<EliminatedQuery> eliminated;
    for (const auto& [s, t] : queries) {
      eliminated.push_back(Eliminate(dataset.graph, s, t, options));
    }
    for (Method method : methods) {
      double gain = 0.0;
      double seconds = 0.0;
      size_t mem = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        const auto [s, t] = queries[q];
        const MethodResult result = RunMethodEliminated(
            dataset.graph, s, t, eliminated[q], method, config);
        gain += result.gain;
        seconds += result.seconds;
        mem = std::max(mem, result.peak_rss_bytes);
      }
      table.AddRow({dataset.name, MethodLabel(method),
                    Fmt(gain / queries.size()),
                    Fmt(seconds / queries.size(), 2),
                    Fmt(BytesToGiB(mem), 3)});
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "paper Table 10 shape: BE leads everywhere; regular graphs allow the\n"
      "largest gains (long paths leave room for shortcuts) and run fastest;\n"
      "random graphs are slowest.\n");
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::Flags flags = relmax::Flags::Parse(argc, argv);
  relmax::bench::BenchConfig config =
      relmax::bench::BenchConfig::FromFlags(flags);
  if (!flags.Has("queries")) config.queries = 2;
  relmax::bench::PrintHeader(
      "Table 10: single-source-target on synthetic datasets", config);
  relmax::bench::Run(config);
  return 0;
}
