// Persistent index I/O: what a saved index file buys over rebuilding. For
// each shard layout the harness builds the offline reliability index from
// scratch (bank sampling + per-world labeling), saves it with SaveIndex,
// then mmap-loads it back with LoadIndex — the load path's whole job is to
// be O(file size) with zero sampling and zero relabeling, so
// load_seconds << build_seconds is the entire point of the format.
//
// Bit-purity is enforced in-harness on every row: the loaded index must
// return exactly the same connected-world bitsets and Query values as the
// freshly built one, or the run exits 1. A non-empty --json PATH writes the
// result entry in the canonical BENCH_*.json shape ({label, command,
// environment, benchmarks}) for tools/check_bench_json.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "index/index_io.h"
#include "index/reliability_index.h"
#include "sampling/world_view.h"

namespace relmax {
namespace bench {
namespace {

struct ShardResult {
  int shards = 0;
  double build_seconds = 0.0;  // bank sampling + labeling, from scratch
  double save_seconds = 0.0;   // SaveIndex (write-temp + fsync + rename)
  double load_seconds = 0.0;   // LoadIndex (mmap + validate + adopt)
  double speedup_load_vs_build = 0.0;
  size_t file_bytes = 0;
  bool bit_identical = false;  // loaded answers == built answers, exactly
};

// Random pairs with s != t, a pure function of (n, seed).
std::vector<std::pair<NodeId, NodeId>> RandomPairs(NodeId n, int num_pairs,
                                                   uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < num_pairs; ++i) {
    const NodeId s = static_cast<NodeId>(rng.NextUint64(n));
    NodeId t = static_cast<NodeId>(rng.NextUint64(n));
    while (t == s) t = static_cast<NodeId>(rng.NextUint64(n));
    pairs.emplace_back(s, t);
  }
  return pairs;
}

ShardResult RunShards(const UncertainGraph& g, int shards, int num_samples,
                      uint64_t seed, int load_reps, const std::string& path) {
  ShardResult r;
  r.shards = shards;
  const WorldViewOptions world_options = {.num_samples = num_samples,
                                          .seed = seed,
                                          .num_partitions = shards};

  // Build from scratch: the cost the file exists to avoid paying twice.
  WallTimer timer;
  std::unique_ptr<WorldView> bank = MakeWorldView(g, world_options);
  ReliabilityIndex built(*bank, {});
  r.build_seconds = timer.ElapsedSeconds();

  timer.Restart();
  const StatusOr<size_t> saved =
      SaveIndex(*bank, built, world_options, /*generation=*/1, path);
  r.save_seconds = timer.ElapsedSeconds();
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n",
                 saved.status().ToString().c_str());
    return r;
  }
  r.file_bytes = *saved;

  // Load repeatedly for timing resolution (a single mmap + checksum pass is
  // sub-millisecond at bench scale); the last LoadedIndex is verified.
  StatusOr<LoadedIndex> loaded = Status::Internal("not loaded");
  timer.Restart();
  for (int rep = 0; rep < load_reps; ++rep) {
    loaded = LoadIndex(path, g, world_options, {});
    if (!loaded.ok()) break;
  }
  r.load_seconds = timer.ElapsedSeconds() / std::max(load_reps, 1);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return r;
  }
  r.speedup_load_vs_build = r.build_seconds / std::max(r.load_seconds, 1e-12);

  // Bit-purity: the loaded index answers from mmap-ed bytes, the built one
  // from freshly computed labels — every connected-world bitset and every
  // Query value must match exactly.
  r.bit_identical = true;
  for (const auto& [s, t] : RandomPairs(g.num_nodes(), 64, seed)) {
    if (loaded->index->ConnectedWorlds(s, t) != built.ConnectedWorlds(s, t) ||
        loaded->index->Query(s, t) != built.Query(s, t)) {
      r.bit_identical = false;
      break;
    }
  }
  std::remove(path.c_str());
  return r;
}

void Run(const Flags& flags) {
  const std::string dataset_name = flags.GetString("dataset", "lastfm");
  const double scale = flags.GetDouble("scale", 0.1);
  const int num_samples = static_cast<int>(flags.GetInt("samples", 2000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int load_reps = static_cast<int>(flags.GetInt("load-reps", 16));
  const std::string path =
      flags.GetString("index-file", "/tmp/bench_index_io.rmx");
  const std::string json_path = flags.GetString("json", "");

  auto dataset = MakeDataset(dataset_name, scale, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  const UncertainGraph& g = dataset->graph;
  std::printf("=== Persistent index: mmap load vs rebuild from scratch ===\n");
  std::printf("%s scale %.2f: %u nodes, %zu edges; Z = %d, seed = %llu\n\n",
              dataset_name.c_str(), scale, g.num_nodes(), g.num_edges(),
              num_samples, static_cast<unsigned long long>(seed));

  TablePrinter table({"Shards", "Build s", "Save s", "Load s", "Load/Build",
                      "File bytes", "Identical"});
  std::vector<ShardResult> results;
  bool all_identical = true;
  for (const int shards : {1, 4}) {
    const ShardResult r =
        RunShards(g, shards, num_samples, seed, load_reps, path);
    results.push_back(r);
    all_identical = all_identical && r.bit_identical;
    table.AddRow({Fmt(r.shards), Fmt(r.build_seconds, 4),
                  Fmt(r.save_seconds, 4), Fmt(r.load_seconds, 6),
                  Fmt(r.speedup_load_vs_build, 1) + "x",
                  Fmt(static_cast<int>(r.file_bytes)),
                  r.bit_identical ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nbuild pays Z world draws plus per-world labeling every process\n"
      "start; load is one mmap + checksum walk over the file, adopting the\n"
      "bank rows zero-copy — Load/Build is the startup speedup a persisted\n"
      "index buys, with answers guaranteed bit-identical.\n");

  const auto enforce_identical = [&all_identical] {
    if (all_identical) return;
    std::fprintf(stderr,
                 "FAIL: loaded index answers were not bit-identical to the "
                 "freshly built index\n");
    std::exit(1);
  };
  if (json_path.empty()) {
    enforce_identical();
    return;
  }
  std::string json = "{\n  \"label\": \"index_io\",\n";
  json += "  \"command\": \"bench_index_io --dataset " + dataset_name +
          " --scale " + Fmt(scale, 2) + " --samples " +
          std::to_string(num_samples) + " --seed " + std::to_string(seed) +
          "\",\n";
  json += "  \"environment\": " +
          EnvironmentJson("WallTimer harness",
                          "build = MakeWorldView sampling + ReliabilityIndex "
                          "labeling from scratch; save = SaveIndex "
                          "write-temp + rename; load = LoadIndex mmap + "
                          "checksum validation + zero-copy bank adoption, "
                          "averaged over --load-reps") +
          ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ShardResult& r = results[i];
    const std::string common =
        ", \"shards\": " + std::to_string(r.shards) +
        ", \"build_seconds\": " + Fmt(r.build_seconds, 6) +
        ", \"save_seconds\": " + Fmt(r.save_seconds, 6) +
        ", \"load_seconds\": " + Fmt(r.load_seconds, 6) +
        ", \"speedup_load_vs_build\": " + Fmt(r.speedup_load_vs_build, 2) +
        ", \"file_bytes\": " + std::to_string(r.file_bytes) +
        ", \"bit_identical\": " + (r.bit_identical ? "true" : "false") + "}";
    json += "    {\"name\": \"BM_IndexSave/" + std::to_string(r.shards) +
            "\"" + common + ",\n";
    json += "    {\"name\": \"BM_IndexLoad/" + std::to_string(r.shards) +
            "\"" + common +
            (i + 1 < results.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  enforce_identical();
}

}  // namespace
}  // namespace bench
}  // namespace relmax

int main(int argc, char** argv) {
  relmax::bench::Run(relmax::Flags::Parse(argc, argv));
  return 0;
}
