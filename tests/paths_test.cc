#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "paths/most_reliable_path.h"
#include "paths/yen.h"

namespace relmax {
namespace {

// All simple s-t paths by DFS, sorted by probability descending (test
// oracle for Yen's algorithm).
void EnumeratePathsDfs(const UncertainGraph& g, NodeId t,
                       std::vector<NodeId>* stack, std::vector<char>* on_stack,
                       double prob, std::vector<PathResult>* out) {
  const NodeId u = stack->back();
  if (u == t) {
    out->push_back({*stack, prob});
    return;
  }
  for (const Arc& arc : g.OutArcs(u)) {
    if ((*on_stack)[arc.to] || arc.prob <= 0.0) continue;
    stack->push_back(arc.to);
    (*on_stack)[arc.to] = 1;
    EnumeratePathsDfs(g, t, stack, on_stack, prob * arc.prob, out);
    (*on_stack)[arc.to] = 0;
    stack->pop_back();
  }
}

std::vector<PathResult> AllSimplePaths(const UncertainGraph& g, NodeId s,
                                       NodeId t) {
  std::vector<PathResult> out;
  std::vector<NodeId> stack = {s};
  std::vector<char> on_stack(g.num_nodes(), 0);
  on_stack[s] = 1;
  EnumeratePathsDfs(g, t, &stack, &on_stack, 1.0, &out);
  std::sort(out.begin(), out.end(), [](const PathResult& a,
                                       const PathResult& b) {
    return a.probability != b.probability ? a.probability > b.probability
                                          : a.nodes < b.nodes;
  });
  return out;
}

// ----------------------------------------------------------- MostReliablePath

TEST(MostReliablePathTest, TrivialAndUnreachable) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  const auto self = MostReliablePath(g, 2, 2);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->nodes, (std::vector<NodeId>{2}));
  EXPECT_DOUBLE_EQ(self->probability, 1.0);
  EXPECT_FALSE(MostReliablePath(g, 0, 2).has_value());
  EXPECT_FALSE(MostReliablePath(g, 1, 0).has_value());
}

TEST(MostReliablePathTest, PrefersHigherProductOverFewerHops) {
  // Direct edge 0.3 vs two-hop 0.8*0.8 = 0.64.
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 2, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 0.8).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.8).ok());
  const auto path = MostReliablePath(g, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_NEAR(path->probability, 0.64, 1e-12);
}

TEST(MostReliablePathTest, ZeroProbabilityEdgesAreNotTraversed) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  EXPECT_FALSE(MostReliablePath(g, 0, 2).has_value());
}

TEST(MostReliablePathTest, UndirectedTraversesBothWays) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(2, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 0.5).ok());
  const auto path = MostReliablePath(g, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_NEAR(path->probability, 0.25, 1e-12);
}

TEST(MostReliablePathTest, TreeProbabilitiesMatchSingleQueries) {
  Rng rng(55);
  UncertainGraph g = UncertainGraph::Directed(12);
  for (int i = 0; i < 40; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextUint64(12));
    const NodeId v = static_cast<NodeId>(rng.NextUint64(12));
    if (u == v || g.HasEdge(u, v)) continue;
    ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.1, 0.9)).ok());
  }
  const std::vector<double> tree = MostReliablePathProbabilities(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto single = MostReliablePath(g, 0, v);
    EXPECT_NEAR(tree[v], single.has_value() ? single->probability : 0.0,
                1e-12)
        << "node " << v;
  }
}

// --------------------------------------------------------------------- Yen

TEST(YenTest, DiamondTopPaths) {
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 3, 0.6).ok());
  const std::vector<PathResult> paths = TopLReliablePaths(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{0, 1, 3}));  // 0.81
  EXPECT_EQ(paths[1].nodes, (std::vector<NodeId>{0, 3}));     // 0.60
  EXPECT_EQ(paths[2].nodes, (std::vector<NodeId>{0, 2, 3}));  // 0.25
  EXPECT_NEAR(paths[0].probability, 0.81, 1e-12);
  EXPECT_NEAR(paths[1].probability, 0.60, 1e-12);
  EXPECT_NEAR(paths[2].probability, 0.25, 1e-12);
}

TEST(YenTest, ReturnsFewerWhenGraphHasFewerPaths) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  EXPECT_EQ(TopLReliablePaths(g, 0, 2, 10).size(), 1u);
  EXPECT_TRUE(TopLReliablePaths(g, 2, 0, 10).empty());
}

TEST(YenTest, SourceEqualsTarget) {
  UncertainGraph g = UncertainGraph::Directed(2);
  const auto paths = TopLReliablePaths(g, 1, 1, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].probability, 1.0);
}

// Yen against the DFS oracle over random graphs, directed and undirected.
class YenOracleSweep : public testing::TestWithParam<int> {};

TEST_P(YenOracleSweep, MatchesExhaustiveEnumeration) {
  Rng rng(9000 + GetParam());
  const NodeId n = static_cast<NodeId>(rng.NextInt(4, 8));
  UncertainGraph g = GetParam() % 2 == 0 ? UncertainGraph::Directed(n)
                                         : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(0.5)) {
        ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  const NodeId s = 0;
  const NodeId t = n - 1;
  const std::vector<PathResult> oracle = AllSimplePaths(g, s, t);
  const int l = 8;
  const std::vector<PathResult> yen = TopLReliablePaths(g, s, t, l);

  ASSERT_EQ(yen.size(), std::min<size_t>(l, oracle.size()));
  std::set<std::vector<NodeId>> distinct;
  for (size_t i = 0; i < yen.size(); ++i) {
    // Probabilities must match the oracle ranking exactly.
    EXPECT_NEAR(yen[i].probability, oracle[i].probability, 1e-12)
        << "rank " << i;
    // Paths must be simple and distinct.
    std::set<NodeId> unique_nodes(yen[i].nodes.begin(), yen[i].nodes.end());
    EXPECT_EQ(unique_nodes.size(), yen[i].nodes.size());
    EXPECT_TRUE(distinct.insert(yen[i].nodes).second);
    // Non-increasing order.
    if (i > 0) EXPECT_LE(yen[i].probability, yen[i - 1].probability + 1e-15);
    // Path endpoints and edges are real.
    EXPECT_EQ(yen[i].nodes.front(), s);
    EXPECT_EQ(yen[i].nodes.back(), t);
    double prob = 1.0;
    for (size_t j = 0; j + 1 < yen[i].nodes.size(); ++j) {
      const auto p = g.EdgeProb(yen[i].nodes[j], yen[i].nodes[j + 1]);
      ASSERT_TRUE(p.has_value());
      prob *= *p;
    }
    EXPECT_NEAR(prob, yen[i].probability, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YenOracleSweep, testing::Range(0, 12));

}  // namespace
}  // namespace relmax
