// WorldBank: the shared possible-world bit-matrix behind reuse_worlds. The
// bank must be bit-identical for any fill thread count, its estimates must
// track the exact factoring oracle, the word-parallel reachability fixpoint
// must agree with per-world brute force, and the answers must be
// bit-identical across lane kernels (scalar vs blocked/SIMD) — the
// (threads, lane-width)-invariance determinism contract.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "sampling/bitlane.h"
#include "sampling/world_bank.h"

namespace relmax {
namespace {

UncertainGraph DiamondGraph() {
  // s=0 -> {1, 2} -> t=3, all edges 0.5, plus a direct 0->3 edge at 0.2.
  UncertainGraph g = UncertainGraph::Directed(4);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 3, 0.2).ok());
  return g;
}

UncertainGraph BridgeGraph() {
  // Two triangles joined by a bridge edge 2-3 (undirected).
  UncertainGraph g = UncertainGraph::Undirected(6);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(3, 4, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(4, 5, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(3, 5, 0.7).ok());
  return g;
}

std::vector<uint64_t> ToVec(std::span<const uint64_t> bits) {
  return std::vector<uint64_t>(bits.begin(), bits.end());
}

std::vector<uint64_t> Row(const bitlane::BitMatrix& m, NodeId v) {
  return ToVec(m.row_span(v));
}

TEST(WorldBankTest, BitMatrixIdenticalAcrossThreadCounts) {
  const UncertainGraph g = BridgeGraph();
  WorldBank reference(g, {.num_samples = 1000, .seed = 7, .num_threads = 1});
  for (int threads : {2, 8}) {
    WorldBank bank(g, {.num_samples = 1000, .seed = 7,
                       .num_threads = threads});
    for (size_t e = 0; e < g.num_edges(); ++e) {
      ASSERT_EQ(ToVec(bank.EdgeUpWorlds(static_cast<EdgeId>(e))),
                ToVec(reference.EdgeUpWorlds(static_cast<EdgeId>(e))))
          << "edge " << e << " threads " << threads;
    }
  }
}

// The determinism contract of this PR's kernel rewrite: flood answers are
// bit-identical across fill thread counts AND across lane kernels, for
// directed and undirected graphs, at a Z that is not a multiple of 64 (so
// the tail word and the lane-block padding are both exercised).
TEST(WorldBankTest, FloodBitsInvariantAcrossLaneModeAndThreads) {
  const UncertainGraph graphs[] = {DiamondGraph(), BridgeGraph()};
  for (const UncertainGraph& g : graphs) {
    // 500 % 64 != 0: the last logical word is a tail, and 500 bits also
    // leave whole pad words inside the 512-bit lane block.
    bitlane::BitMatrix expected;
    {
      bitlane::ScopedLaneMode set(bitlane::LaneMode::kBlocked);
      WorldBank bank(g, {.num_samples = 500, .seed = 29, .num_threads = 1});
      bank.ReachabilityFixpoint(0, /*backward=*/false, bank.AllEdges(),
                                &expected);
    }
    for (int threads : {1, 4}) {
      for (bitlane::LaneMode mode :
           {bitlane::LaneMode::kScalar, bitlane::LaneMode::kBlocked}) {
        bitlane::ScopedLaneMode set(mode);
        WorldBank bank(g,
                       {.num_samples = 500, .seed = 29,
                        .num_threads = threads});
        bitlane::BitMatrix reach;
        bank.ReachabilityFixpoint(0, /*backward=*/false, bank.AllEdges(),
                                  &reach);
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          ASSERT_EQ(Row(reach, v), Row(expected, v))
              << "node " << v << " threads " << threads << " mode "
              << bitlane::ModeName(mode)
              << (g.directed() ? " directed" : " undirected");
        }
        // Tail bits beyond num_worlds stay clear in every row.
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          EXPECT_EQ(WorldBank::CountBits(reach.row_span(v),
                                         static_cast<size_t>(
                                             bank.num_worlds())),
                    WorldBank::CountBits(reach.row_span(v),
                                         64 * bank.world_words()))
              << "node " << v;
        }
      }
    }
  }
}

// Frontier regression: a converged scratch re-run under kSeedsAreFacts must
// touch its seeded blocks once and propagate nothing.
TEST(WorldBankTest, ConvergedStateNeedsZeroExtraPropagation) {
  for (const UncertainGraph& g : {DiamondGraph(), BridgeGraph()}) {
    WorldBank bank(g, {.num_samples = 500, .seed = 31, .num_threads = 1});
    const std::vector<EdgeId> active = bank.AllEdges();
    bitlane::BitMatrix reach;
    const int64_t first =
        bank.ReachabilityFixpoint(0, /*backward=*/false, active, &reach);
    EXPECT_GT(first, 0);
    const int64_t again =
        bank.ReachabilityFixpoint(0, /*backward=*/false, active, &reach,
                                  WorldBank::SeedPolicy::kSeedsAreFacts);
    EXPECT_EQ(again, 0) << (g.directed() ? "directed" : "undirected");
  }
}

TEST(WorldBankTest, ConnectedFractionTracksExactOracle) {
  const UncertainGraph diamond = DiamondGraph();
  const UncertainGraph bridge = BridgeGraph();
  WorldBank diamond_bank(diamond,
                         {.num_samples = 60000, .seed = 3, .num_threads = 4});
  WorldBank bridge_bank(bridge,
                        {.num_samples = 60000, .seed = 5, .num_threads = 4});
  EXPECT_NEAR(
      diamond_bank.ConnectedFraction(0, 3, diamond_bank.AllEdges(), {}),
      ExactReliabilityFactoring(diamond, 0, 3).value(), 0.01);
  EXPECT_NEAR(
      bridge_bank.ConnectedFraction(0, 5, bridge_bank.AllEdges(), {}),
      ExactReliabilityFactoring(bridge, 0, 5).value(), 0.01);
}

TEST(WorldBankTest, EdgeFrequenciesMatchProbabilities) {
  const UncertainGraph g = DiamondGraph();
  WorldBank bank(g, {.num_samples = 40000, .seed = 11, .num_threads = 2});
  for (size_t e = 0; e < g.num_edges(); ++e) {
    const int64_t up = WorldBank::CountBits(
        bank.EdgeUpWorlds(static_cast<EdgeId>(e)),
        static_cast<size_t>(bank.num_worlds()));
    EXPECT_NEAR(static_cast<double>(up) / bank.num_worlds(),
                g.EdgeById(static_cast<EdgeId>(e)).prob, 0.01)
        << "edge " << e;
  }
}

TEST(WorldBankTest, WorldsWithAllEdgesMatchesPerWorldScan) {
  const UncertainGraph g = BridgeGraph();
  WorldBank bank(g, {.num_samples = 500, .seed = 13, .num_threads = 1});
  const std::vector<EdgeId> subset = {0, 1, 3};  // arbitrary edge subset
  const std::vector<uint64_t> up = bank.WorldsWithAllEdges(subset);
  for (int w = 0; w < bank.num_worlds(); ++w) {
    bool all = true;
    for (EdgeId e : subset) all = all && bank.EdgePresent(w, e);
    EXPECT_EQ((up[w / 64] >> (w % 64)) & 1u, all ? 1u : 0u) << "world " << w;
  }
  // Guard bits beyond num_worlds must stay clear (500 is not a multiple of
  // 64, so the last word has a tail).
  EXPECT_EQ(WorldBank::CountBits(up, static_cast<size_t>(bank.num_worlds())),
            WorldBank::CountBits(up, 64 * up.size()));
}

// Per-world reference: BFS over the edges present in world w.
bool BruteForceConnects(const WorldBank& bank, const UncertainGraph& g, int w,
                        NodeId s, NodeId t,
                        const std::vector<EdgeId>& active) {
  std::vector<char> edge_active(g.num_edges(), 0);
  for (EdgeId e : active) edge_active[e] = 1;
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> queue = {s};
  seen[s] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    for (const Arc& arc : g.OutArcs(queue[head])) {
      if (!edge_active[arc.edge_id] || !bank.EdgePresent(w, arc.edge_id) ||
          seen[arc.to]) {
        continue;
      }
      seen[arc.to] = 1;
      queue.push_back(arc.to);
    }
  }
  return seen[t];
}

TEST(WorldBankTest, ReachabilityFixpointMatchesPerWorldBfs) {
  for (const UncertainGraph& g : {DiamondGraph(), BridgeGraph()}) {
    const NodeId t = g.num_nodes() - 1;
    WorldBank bank(g, {.num_samples = 300, .seed = 17, .num_threads = 1});
    // Exercise a strict subset of edges too, not just the full universe.
    std::vector<EdgeId> partial;
    for (size_t e = 0; e + 1 < g.num_edges(); ++e) {
      partial.push_back(static_cast<EdgeId>(e));
    }
    for (const std::vector<EdgeId>& active : {bank.AllEdges(), partial}) {
      bitlane::BitMatrix reach;
      bank.ReachabilityFixpoint(0, /*backward=*/false, active, &reach);
      for (int w = 0; w < bank.num_worlds(); ++w) {
        EXPECT_EQ((reach.row(t)[w / 64] >> (w % 64)) & 1u,
                  BruteForceConnects(bank, g, w, 0, t, active) ? 1u : 0u)
            << "world " << w << " |active| = " << active.size();
      }
    }
  }
}

TEST(WorldBankTest, BackwardFixpointMatchesForwardOnTranspose) {
  // reach-to-t on g computed backward must equal reach-from-t forward with
  // every arc direction ignored for undirected graphs; for the directed
  // diamond, backward reach from t marks exactly the nodes that can reach t.
  const UncertainGraph g = DiamondGraph();
  WorldBank bank(g, {.num_samples = 300, .seed = 19, .num_threads = 1});
  bitlane::BitMatrix to_t;
  bank.ReachabilityFixpoint(3, /*backward=*/true, bank.AllEdges(), &to_t);
  bitlane::BitMatrix from_s;
  bank.ReachabilityFixpoint(0, /*backward=*/false, bank.AllEdges(), &from_s);
  // s-t connectivity is symmetric between the two sweeps.
  EXPECT_EQ(Row(to_t, 0), Row(from_s, 3));
}

TEST(WorldBankTest, SeededReachIsKeptAndSound) {
  // Pre-seeded bits (the selection fast path: worlds where a whole path is
  // up) must be preserved under kSeedsAreFacts and must not change the final
  // connected count.
  const UncertainGraph g = DiamondGraph();
  WorldBank bank(g, {.num_samples = 4096, .seed = 21, .num_threads = 1});
  const std::vector<EdgeId> active = bank.AllEdges();

  bitlane::BitMatrix plain;
  bank.ReachabilityFixpoint(0, /*backward=*/false, active, &plain);

  // Edges 0+2 form the path 0-1-3; edge 4 is the direct 0->3 edge.
  bitlane::BitMatrix seeded(g.num_nodes(), bank.world_words());
  const std::vector<uint64_t> path = bank.WorldsWithAllEdges({0, 2});
  const std::vector<uint64_t> direct = bank.WorldsWithAllEdges({4});
  uint64_t* const at_t = seeded.row(3);
  for (size_t i = 0; i < path.size(); ++i) at_t[i] = path[i] | direct[i];
  bank.ReachabilityFixpoint(0, /*backward=*/false, active, &seeded,
                            WorldBank::SeedPolicy::kSeedsAreFacts);

  EXPECT_EQ(Row(seeded, 3), Row(plain, 3));
}

TEST(WorldBankTest, ReusedScratchIsWipedByDefault) {
  // Regression: a size-matched scratch reused across sources used to keep
  // the previous flood's bits as "facts", silently inflating the next
  // answer. The kernel now wipes non-source rows itself under the default
  // policy — callers need no clear() between sources.
  const UncertainGraph g = DiamondGraph();
  WorldBank bank(g, {.num_samples = 512, .seed = 23, .num_threads = 1});
  const std::vector<EdgeId> active = bank.AllEdges();

  bitlane::BitMatrix fresh;
  bank.ReachabilityFixpoint(2, /*backward=*/false, active, &fresh);

  bitlane::BitMatrix reused;
  // First flood from the well-connected source 0 sets bits everywhere…
  bank.ReachabilityFixpoint(0, /*backward=*/false, active, &reused);
  // …which must not leak into a subsequent flood from source 2.
  bank.ReachabilityFixpoint(2, /*backward=*/false, active, &reused);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(Row(reused, v), Row(fresh, v)) << "node " << v;
  }

  // Opting in keeps the seeds, growing reachability monotonically (the
  // greedy BeginRound contract).
  bitlane::BitMatrix seeded;
  bank.ReachabilityFixpoint(0, /*backward=*/false, active, &seeded);
  const std::vector<uint64_t> from_zero = Row(seeded, 3);
  bank.ReachabilityFixpoint(2, /*backward=*/false, active, &seeded,
                            WorldBank::SeedPolicy::kSeedsAreFacts);
  for (size_t w = 0; w < bank.world_words(); ++w) {
    EXPECT_EQ(seeded.row(3)[w] & from_zero[w], from_zero[w]) << "word " << w;
  }
}

}  // namespace
}  // namespace relmax
