#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/evaluate.h"
#include "core/selection.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"
#include "paths/yen.h"

namespace relmax {
namespace {

// The paper's run-through Example 3 (Figure 4c core): directed graph with
// blue edges C->B (0.9) and C->t (0.3); candidate (red) edges sB, sC, Bt at
// zeta = 0.5. s = 0, B = 1, C = 2, t = 3.
struct Example3 {
  UncertainGraph g = UncertainGraph::Directed(4);
  UncertainGraph g_plus = UncertainGraph::Directed(0);
  std::vector<Edge> candidates;
  std::vector<AnnotatedPath> annotated;

  static constexpr NodeId kS = 0;
  static constexpr NodeId kB = 1;
  static constexpr NodeId kC = 2;
  static constexpr NodeId kT = 3;

  Example3() {
    EXPECT_TRUE(g.AddEdge(kC, kB, 0.9).ok());
    EXPECT_TRUE(g.AddEdge(kC, kT, 0.3).ok());
    candidates = {{kS, kB, 0.5}, {kS, kC, 0.5}, {kB, kT, 0.5}};
    g_plus = AugmentGraph(g, candidates);
    const std::vector<PathResult> paths =
        TopLReliablePaths(g_plus, kS, kT, 10);
    annotated = AnnotatePaths(g_plus, paths, candidates);
  }
};

SolverOptions EvalOptions() {
  SolverOptions options;
  options.budget_k = 2;
  options.num_samples = 4000;  // selection subgraphs are tiny, keep noise low
  options.seed = 11;
  return options;
}

TEST(AnnotatePathsTest, LabelsMatchCandidateEdges) {
  Example3 ex;
  ASSERT_EQ(ex.annotated.size(), 3u);  // sBt, sCBt, sCt
  // Find each path by its node sequence and check its label.
  auto label_of = [&](const std::vector<NodeId>& nodes) -> std::vector<int> {
    for (const AnnotatedPath& p : ex.annotated) {
      if (p.path.nodes == nodes) return p.candidate_indices;
    }
    ADD_FAILURE() << "path not found";
    return {};
  };
  EXPECT_EQ(label_of({0, 1, 3}), (std::vector<int>{0, 2}));  // sB, Bt
  EXPECT_EQ(label_of({0, 2, 3}), (std::vector<int>{1}));     // sC
  EXPECT_EQ(label_of({0, 2, 1, 3}), (std::vector<int>{1, 2}));  // sC, Bt
}

TEST(BuildPathBatchesTest, GroupsByLabel) {
  Example3 ex;
  const std::vector<PathBatch> batches = BuildPathBatches(ex.annotated);
  EXPECT_EQ(batches.size(), 3u);  // three distinct labels
  size_t total_paths = 0;
  for (const PathBatch& b : batches) total_paths += b.path_indices.size();
  EXPECT_EQ(total_paths, ex.annotated.size());
}

TEST(BuildPathBatchesTest, SharedLabelsMerge) {
  // Two paths with identical candidate label end up in one batch.
  UncertainGraph g = UncertainGraph::Directed(5);
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(2, 4, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 0.5).ok());
  const std::vector<Edge> candidates = {{0, 1, 0.5}};
  const UncertainGraph g_plus = AugmentGraph(g, candidates);
  const auto paths = TopLReliablePaths(g_plus, 0, 4, 10);
  ASSERT_EQ(paths.size(), 2u);  // 0-1-2-4 and 0-1-3-4, both using edge (0,1)
  const auto annotated = AnnotatePaths(g_plus, paths, candidates);
  const auto batches = BuildPathBatches(annotated);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].label, (std::vector<int>{0}));
  EXPECT_EQ(batches[0].path_indices.size(), 2u);
}

// Example 3's punchline: individual path selection greedily takes path sBt
// (raw gain 0.25) and ends with {sB, Bt}; batch selection recognizes that
// {sC, Bt} activates both sCBt and sCt for a joint gain of 0.3075.
TEST(SelectionTest, PaperExample3IndividualPicksSbBt) {
  Example3 ex;
  const std::vector<int> chosen = SelectEdgesByIndividualPaths(
      ex.g_plus, Example3::kS, Example3::kT, ex.annotated, EvalOptions());
  EXPECT_EQ(chosen, (std::vector<int>{0, 2}));  // sB, Bt
}

TEST(SelectionTest, PaperExample3BatchesPickScBt) {
  Example3 ex;
  const std::vector<int> chosen = SelectEdgesByPathBatches(
      ex.g_plus, Example3::kS, Example3::kT, ex.annotated, EvalOptions());
  EXPECT_EQ(chosen, (std::vector<int>{1, 2}));  // sC, Bt
}

TEST(SelectionTest, BatchSolutionBeatsIndividualOnExample3) {
  Example3 ex;
  auto reliability_with = [&](const std::vector<int>& picks) {
    std::vector<Edge> edges;
    for (int i : picks) edges.push_back(ex.candidates[i]);
    return EstimateWithOptions(AugmentGraph(ex.g, edges), Example3::kS,
                               Example3::kT, EvalOptions(), 99);
  };
  const double be = reliability_with(SelectEdgesByPathBatches(
      ex.g_plus, Example3::kS, Example3::kT, ex.annotated, EvalOptions()));
  const double ip = reliability_with(SelectEdgesByIndividualPaths(
      ex.g_plus, Example3::kS, Example3::kT, ex.annotated, EvalOptions()));
  EXPECT_NEAR(be, 0.3075, 0.03);
  EXPECT_NEAR(ip, 0.25, 0.03);
  EXPECT_GT(be, ip);
}

TEST(SelectionTest, BudgetOneSelectsSingleEdgePath) {
  Example3 ex;
  SolverOptions options = EvalOptions();
  options.budget_k = 1;
  // Only path sCt fits in budget 1; both methods must return {sC}.
  EXPECT_EQ(SelectEdgesByIndividualPaths(ex.g_plus, Example3::kS,
                                         Example3::kT, ex.annotated, options),
            (std::vector<int>{1}));
  EXPECT_EQ(SelectEdgesByPathBatches(ex.g_plus, Example3::kS, Example3::kT,
                                     ex.annotated, options),
            (std::vector<int>{1}));
}

TEST(SelectionTest, LargeBudgetTakesEverythingUseful) {
  Example3 ex;
  SolverOptions options = EvalOptions();
  options.budget_k = 10;
  const std::vector<int> chosen = SelectEdgesByPathBatches(
      ex.g_plus, Example3::kS, Example3::kT, ex.annotated, options);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1, 2}));
}

// Parity pin for SolverOptions::reuse_worlds: at an adequate (equal) sample
// budget the shared-world evaluator and per-evaluation re-sampling must make
// the same greedy decisions. Example 3's gaps (0.25 vs 0.3075) are far wider
// than sampling noise at Z = 4000, so the chosen sets are required to be
// identical, not merely close; estimator-level estimates legitimately differ
// (different world streams), which is why the pin is on decisions.
TEST(SelectionTest, ReuseWorldsOnAndOffAgreeOnExample3) {
  Example3 ex;
  for (const bool reuse : {true, false}) {
    SolverOptions options = EvalOptions();
    options.reuse_worlds = reuse;
    EXPECT_EQ(SelectEdgesByIndividualPaths(ex.g_plus, Example3::kS,
                                           Example3::kT, ex.annotated,
                                           options),
              (std::vector<int>{0, 2}))
        << "reuse_worlds = " << reuse;
    EXPECT_EQ(SelectEdgesByPathBatches(ex.g_plus, Example3::kS, Example3::kT,
                                       ex.annotated, options),
              (std::vector<int>{1, 2}))
        << "reuse_worlds = " << reuse;
  }
}

TEST(SelectionTest, ReuseWorldsRepeatedEvaluationIsDeterministic) {
  // The shared evaluator draws no RNG in the greedy loop, so re-running the
  // whole selection must be exactly reproducible.
  Example3 ex;
  SolverOptions options = EvalOptions();
  options.reuse_worlds = true;
  const std::vector<int> first = SelectEdgesByPathBatches(
      ex.g_plus, Example3::kS, Example3::kT, ex.annotated, options);
  const std::vector<int> second = SelectEdgesByPathBatches(
      ex.g_plus, Example3::kS, Example3::kT, ex.annotated, options);
  EXPECT_EQ(first, second);
}

TEST(SelectionTest, NoPathsMeansNoEdges) {
  UncertainGraph g = UncertainGraph::Directed(3);
  const SolverOptions options = EvalOptions();
  EXPECT_TRUE(
      SelectEdgesByIndividualPaths(g, 0, 2, {}, options).empty());
  EXPECT_TRUE(SelectEdgesByPathBatches(g, 0, 2, {}, options).empty());
}

TEST(SelectionTest, FreePathsDoNotConsumeBudget) {
  // One existing path and one candidate path; free path must not count
  // against k.
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.6).ok());
  const std::vector<Edge> candidates = {{0, 2, 0.5}, {2, 3, 0.5}};
  const UncertainGraph g_plus = AugmentGraph(g, candidates);
  const auto paths = TopLReliablePaths(g_plus, 0, 3, 10);
  const auto annotated = AnnotatePaths(g_plus, paths, candidates);
  SolverOptions options = EvalOptions();
  options.budget_k = 2;
  const std::vector<int> chosen =
      SelectEdgesByPathBatches(g_plus, 0, 3, annotated, options);
  EXPECT_EQ(chosen, (std::vector<int>{0, 1}));  // both candidates still fit
}

}  // namespace
}  // namespace relmax
