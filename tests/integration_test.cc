// End-to-end integration tests: the full pipeline (dataset generation ->
// query generation -> elimination -> path extraction -> selection ->
// verification) across module boundaries, plus cross-method consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <regex>
#include <string>

#include "baselines/greedy.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "core/evaluate.h"
#include "core/multi.h"
#include "core/solver.h"
#include "gen/datasets.h"
#include "gen/queries.h"
#include "graph/graph_io.h"
#include "sampling/reliability.h"

namespace relmax {
namespace {

SolverOptions PipelineOptions() {
  SolverOptions options;
  options.budget_k = 5;
  options.zeta = 0.5;
  options.top_r = 30;
  options.top_l = 20;
  options.hop_h = 3;
  options.elimination_samples = 300;
  options.num_samples = 300;
  options.seed = 77;
  return options;
}

class DatasetPipelineSweep : public testing::TestWithParam<const char*> {};

TEST_P(DatasetPipelineSweep, EndToEndSolveOnDataset) {
  auto dataset = MakeDataset(GetParam(), 0.05, 9);
  ASSERT_TRUE(dataset.ok());
  auto queries = GenerateQueries(dataset->graph, 2,
                                 {.min_hops = 2, .max_hops = 5, .seed = 4});
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  for (const auto& [s, t] : *queries) {
    auto solution = MaximizeReliability(dataset->graph, s, t,
                                        PipelineOptions());
    ASSERT_TRUE(solution.ok()) << GetParam();
    EXPECT_LE(solution->added_edges.size(), 5u);
    // Independent verification of the claimed reliabilities.
    const double before = EstimateReliability(
        dataset->graph, s, t, {.num_samples = 3000, .seed = 123});
    EXPECT_NEAR(solution->reliability_before, before, 0.1) << GetParam();
    const double after = EstimateReliability(
        AugmentGraph(dataset->graph, solution->added_edges), s, t,
        {.num_samples = 3000, .seed = 123});
    EXPECT_NEAR(solution->reliability_after, after, 0.1) << GetParam();
    EXPECT_GE(after + 0.05, before) << GetParam();  // additions cannot hurt
    // Every added edge respects the h-hop constraint and is genuinely new.
    for (const Edge& e : solution->added_edges) {
      EXPECT_FALSE(dataset->graph.HasEdge(e.src, e.dst));
      EXPECT_DOUBLE_EQ(e.prob, 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetPipelineSweep,
                         testing::Values("lastfm", "as_topology", "dblp",
                                         "twitter", "smallworld1",
                                         "scalefree1"));

TEST(IntegrationTest, SolverBeatsNaiveBaselineOnAverage) {
  auto dataset = MakeDataset("lastfm", 0.05, 11);
  ASSERT_TRUE(dataset.ok());
  auto queries = GenerateQueries(dataset->graph, 3,
                                 {.min_hops = 3, .max_hops = 5, .seed = 6});
  ASSERT_TRUE(queries.ok());

  double be_total = 0.0;
  double topk_total = 0.0;
  const SolverOptions options = PipelineOptions();
  for (const auto& [s, t] : *queries) {
    auto candidates = SelectCandidates(dataset->graph, s, t, options);
    ASSERT_TRUE(candidates.ok());
    auto be = MaximizeReliabilityWithCandidates(dataset->graph, s, t,
                                                *candidates, options);
    ASSERT_TRUE(be.ok());
    auto topk = SelectIndividualTopK(dataset->graph, s, t, candidates->edges,
                                     options);
    ASSERT_TRUE(topk.ok());

    auto measure = [&](const std::vector<Edge>& edges) {
      return EstimateReliability(AugmentGraph(dataset->graph, edges), s, t,
                                 {.num_samples = 4000, .seed = 99});
    };
    be_total += measure(be->added_edges);
    topk_total += measure(*topk);
  }
  // BE models edge interactions; individual top-k does not. Allow noise.
  EXPECT_GE(be_total + 0.05, topk_total);
}

TEST(IntegrationTest, GraphRoundTripPreservesSolverBehavior) {
  auto dataset = MakeDataset("smallworld1", 0.03, 13);
  ASSERT_TRUE(dataset.ok());
  const std::string path = testing::TempDir() + "/relmax_integration.graph";
  ASSERT_TRUE(WriteEdgeList(dataset->graph, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());

  auto queries = GenerateQueries(dataset->graph, 1,
                                 {.min_hops = 3, .max_hops = 5, .seed = 2});
  ASSERT_TRUE(queries.ok());
  const auto [s, t] = (*queries)[0];
  auto original = MaximizeReliability(dataset->graph, s, t,
                                      PipelineOptions());
  auto reloaded = MaximizeReliability(*loaded, s, t, PipelineOptions());
  ASSERT_TRUE(original.ok() && reloaded.ok());
  // Serialization canonicalizes arc order, so the sampler consumes
  // randomness differently and may pick a different — equally valid — edge
  // set. What must hold: both solutions are feasible and both improve the
  // query's reliability on the same underlying graph.
  EXPECT_LE(reloaded->added_edges.size(), 5u);
  const double before = EstimateReliability(
      dataset->graph, s, t, {.num_samples = 5000, .seed = 3});
  auto measure = [&](const std::vector<Edge>& edges) {
    return EstimateReliability(AugmentGraph(dataset->graph, edges), s, t,
                               {.num_samples = 5000, .seed = 3});
  };
  EXPECT_GE(measure(original->added_edges) + 0.02, before);
  EXPECT_GE(measure(reloaded->added_edges) + 0.02, before);
  for (const Edge& e : reloaded->added_edges) {
    EXPECT_FALSE(loaded->HasEdge(e.src, e.dst));
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, MultiAverageConsistentWithSinglePairUnion) {
  auto dataset = MakeDataset("smallworld1", 0.03, 17);
  ASSERT_TRUE(dataset.ok());
  auto query = GenerateMultiQuery(dataset->graph, 3, {.seed = 21});
  ASSERT_TRUE(query.ok());
  auto solution = MaximizeMultiReliability(dataset->graph, query->sources,
                                           query->targets,
                                           Aggregate::kAverage,
                                           PipelineOptions());
  ASSERT_TRUE(solution.ok());
  const auto before = PairwiseReliability(dataset->graph, query->sources,
                                          query->targets, 3000, 5);
  const auto after = PairwiseReliability(
      AugmentGraph(dataset->graph, solution->added_edges), query->sources,
      query->targets, 3000, 5);
  EXPECT_GE(AggregateMatrix(after, Aggregate::kAverage) + 0.02,
            AggregateMatrix(before, Aggregate::kAverage));
}

// ------------------------------------------------------ golden CLI pins
//
// Full-binary runs of relmax_cli with pinned stdout. The estimates and the
// selected edge sets are bit-identical functions of (graph file, flags,
// seed) — including the CSR arc order driving every RNG stream — so any
// regression in edge visitation order, probability bookkeeping, or flag
// plumbing fails these loudly. Wall-clock timings are normalized away;
// thread counts 1 and 4 must produce byte-identical normalized output.

std::string RunCli(const std::string& args) {
  const std::string cmd = std::string(RELMAX_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return "";
  std::string out;
  char buffer[4096];
  size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    out.append(buffer, n);
  }
  EXPECT_EQ(pclose(pipe), 0) << cmd << "\n" << out;
  return out;
}

// Replaces wall-clock figures ("0.37 s") with a fixed token so the golden
// comparison only sees deterministic content.
std::string NormalizeTimings(const std::string& s) {
  static const std::regex kTiming("[0-9]+\\.[0-9]+ s");
  return std::regex_replace(s, kTiming, "<t> s");
}

// The paper's run-through Example 3 (Figure 4c core): directed, blue edges
// C->B (0.9) and C->t (0.3); s = 0, B = 1, C = 2, t = 3.
std::string WriteExample3Graph() {
  UncertainGraph g = UncertainGraph::Directed(4);
  EXPECT_TRUE(g.AddEdge(2, 1, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.3).ok());
  const std::string path = testing::TempDir() + "/golden_example3.graph";
  EXPECT_TRUE(WriteEdgeList(g, path).ok());
  return path;
}

// The solver_test two-cluster fixture: dense clusters around s and t joined
// by one weak bridge.
std::string WriteTwoClusterGraph() {
  Rng rng(3);
  UncertainGraph g = UncertainGraph::Undirected(12);
  auto connect_cluster = [&](NodeId lo, NodeId hi) {
    for (NodeId u = lo; u < hi; ++u) {
      for (NodeId v = u + 1; v <= hi; ++v) {
        if (rng.NextBernoulli(0.8)) {
          (void)g.AddEdge(u, v, rng.NextDouble(0.4, 0.8));
        }
      }
    }
  };
  connect_cluster(0, 5);
  connect_cluster(6, 11);
  EXPECT_TRUE(g.AddEdge(5, 6, 0.15).ok());
  const std::string path = testing::TempDir() + "/golden_two_cluster.graph";
  EXPECT_TRUE(WriteEdgeList(g, path).ok());
  return path;
}

// Batch query workload for the Example-3 graph, exercising comments,
// duplicate queries, and unreachable pairs.
std::string WriteExample3Queries() {
  const std::string path = testing::TempDir() + "/golden_example3.queries";
  FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(
      "# Example-3 batch: answered from one shared world bank\n"
      "2 3\n2 1\n0 3\n2 3\n1 3\n",
      f);
  std::fclose(f);
  return path;
}

class GoldenCliThreadSweep : public testing::TestWithParam<int> {};

TEST_P(GoldenCliThreadSweep, Example3SolveAndEstimateStdoutPinned) {
  const std::string graph = WriteExample3Graph();
  const std::string threads = std::to_string(GetParam());

  const std::string solve = NormalizeTimings(RunCli(
      "solve --graph " + graph +
      " --s 0 --t 3 --k 2 --zeta 0.01 --h -1 --r 12 --samples 4000"
      " --seed 11 --threads " + threads));
  EXPECT_EQ(solve,
            "method BE: reliability 0.0000 -> 0.0132 (gain 0.0132) in <t> s\n"
            "  add 0 -> 3 (p = 0.010)\n"
            "  add 0 -> 2 (p = 0.010)\n"
            "candidates: 2 after elimination, 2 on top-30 paths\n");

  const std::string estimate = NormalizeTimings(RunCli(
      "estimate --graph " + graph +
      " --s 2 --t 3 --samples 20000 --seed 5 --threads " + threads));
  EXPECT_EQ(estimate, "R(2, 3) = 0.3004   (20000 samples, <t> s)\n");
}

TEST_P(GoldenCliThreadSweep, Example3BatchStdoutPinned) {
  const std::string graph = WriteExample3Graph();
  const std::string queries = WriteExample3Queries();
  const std::string threads = std::to_string(GetParam());

  // Shared-world path: worlds sampled once, one flood per distinct source
  // (2, 0, 1), duplicate (2, 3) served from the deduplicated pair set.
  const std::string batch = NormalizeTimings(RunCli(
      "batch --graph " + graph + " --queries " + queries +
      " --samples 20000 --seed 5 --threads " + threads));
  EXPECT_EQ(batch,
            "R(2, 3) = 0.3004\n"
            "R(2, 1) = 0.9006\n"
            "R(0, 3) = 0.0000\n"
            "R(2, 3) = 0.3004\n"
            "R(1, 3) = 0.0000\n"
            "batch: 5 queries, 4 distinct pairs, 3 floods, "
            "0 fallback estimates, 0 index answers, 0 cache hits "
            "(20000 samples, shard bank bytes [5008], <t> s)\n");

  // Index path: same bank, same bits — the R values must equal the
  // shared-flood run digit for digit. 4 nodes -> 2 label bits; 20000 worlds
  // -> 313 words -> 4 * 2 * 313 * 8 = 20032 label bytes; the build labels
  // all 20000 worlds; the acyclic Example-3 graph has singleton SCCs, so
  // each of the 3 distinct sources needs one lazy reach flood.
  const std::string indexed = NormalizeTimings(RunCli(
      "batch --graph " + graph + " --queries " + queries +
      " --samples 20000 --seed 5 --index --threads " + threads));
  EXPECT_EQ(indexed,
            "R(2, 3) = 0.3004\n"
            "R(2, 1) = 0.9006\n"
            "R(0, 3) = 0.0000\n"
            "R(2, 3) = 0.3004\n"
            "R(1, 3) = 0.0000\n"
            "batch: 5 queries, 4 distinct pairs, 0 floods, "
            "0 fallback estimates, 4 index answers, 0 cache hits "
            "(20000 samples, shard bank bytes [5008], <t> s)\n"
            "index: 20000 worlds, 2 label bits, 20032 label bytes, "
            "20000 worlds relabeled, 3 reach floods\n");

  // Partition-sharded bank: identical R values and flood counts — the
  // sharded fill replays the flat bank's canonical draw stream, so only the
  // per-shard byte accounting may differ from the flat run. Example-3's two
  // edges both land in shard 1 (edge owner is the min endpoint shard), so
  // the partitioner warns once that shard 0 owns no edges.
  const std::string sharded = NormalizeTimings(RunCli(
      "batch --graph " + graph + " --queries " + queries +
      " --samples 20000 --seed 5 --partitions 2 --threads " + threads));
  EXPECT_EQ(sharded,
            "relmax: partitioner: 1 of 2 shards own no edges (graph too "
            "small for the requested --partitions); they contribute nothing "
            "but bookkeeping\n"
            "R(2, 3) = 0.3004\n"
            "R(2, 1) = 0.9006\n"
            "R(0, 3) = 0.0000\n"
            "R(2, 3) = 0.3004\n"
            "R(1, 3) = 0.0000\n"
            "batch: 5 queries, 4 distinct pairs, 3 floods, "
            "0 fallback estimates, 0 index answers, 0 cache hits "
            "(20000 samples, shard bank bytes [0 5008], <t> s)\n");

  // Per-query fallback: one estimate per distinct pair. R(2, 3) must match
  // the `estimate` golden above exactly — the fallback IS that code path.
  const std::string fallback = NormalizeTimings(RunCli(
      "batch --graph " + graph + " --queries " + queries +
      " --samples 20000 --seed 5 --reuse-worlds=0 --threads " + threads));
  EXPECT_EQ(fallback,
            "R(2, 3) = 0.3004\n"
            "R(2, 1) = 0.8962\n"
            "R(0, 3) = 0.0000\n"
            "R(2, 3) = 0.3004\n"
            "R(1, 3) = 0.0000\n"
            "batch: 5 queries, 4 distinct pairs, 0 floods, "
            "4 fallback estimates, 0 index answers, 0 cache hits "
            "(20000 samples, shard bank bytes [], <t> s)\n");
}

TEST_P(GoldenCliThreadSweep, Example3IndexFileStdoutPinned) {
  const std::string graph = WriteExample3Graph();
  const std::string queries = WriteExample3Queries();
  const std::string threads = std::to_string(GetParam());
  const std::string index_file =
      testing::TempDir() + "/golden_example3_t" + threads + ".rmx";
  std::remove(index_file.c_str());

  // The index-file path varies with the temp dir; goldens pin content only.
  const auto normalize = [&](std::string s) {
    size_t at;
    while ((at = s.find(index_file)) != std::string::npos) {
      s.replace(at, index_file.size(), "<index>");
    }
    return NormalizeTimings(s);
  };

  // No file yet: batch silently builds and saves (generation 1). R values
  // must equal the --index golden digit for digit — persistence cannot
  // change a single bit of any answer.
  const std::string built = normalize(RunCli(
      "batch --graph " + graph + " --queries " + queries +
      " --samples 20000 --seed 5 --index-file " + index_file +
      " --threads " + threads));
  EXPECT_EQ(built,
            "R(2, 3) = 0.3004\n"
            "R(2, 1) = 0.9006\n"
            "R(0, 3) = 0.0000\n"
            "R(2, 3) = 0.3004\n"
            "R(1, 3) = 0.0000\n"
            "batch: 5 queries, 4 distinct pairs, 0 floods, "
            "0 fallback estimates, 4 index answers, 0 cache hits "
            "(20000 samples, shard bank bytes [5008], <t> s)\n"
            "index: 20000 worlds, 2 label bits, 20032 label bytes, "
            "20000 worlds relabeled, 3 reach floods\n"
            "index_io: 0 loads, 1 saves, 0 load failures, "
            "generation 1, 105384 file bytes\n");

  // `index load` validates the full file (key, layout, checksums) and
  // reports its shape. The byte size pins the on-disk format itself: header
  // 96 + table + 64-byte-aligned sections (bank 5120, labels 20032,
  // compaction 80000) + footer.
  const std::string loaded = normalize(RunCli(
      "index load --graph " + graph + " --index-file " + index_file +
      " --samples 20000 --seed 5 --threads " + threads));
  EXPECT_EQ(loaded,
            "loaded <index>: generation 1, 105384 bytes (20000 worlds, "
            "2 label bits, 20032 label bytes, 1 shards, <t> s)\n");

  // Second batch: mmap-load, no sampling, no relabeling — "0 worlds
  // relabeled" is the load path's signature. Answers identical again.
  const std::string reloaded = normalize(RunCli(
      "batch --graph " + graph + " --queries " + queries +
      " --samples 20000 --seed 5 --index-file " + index_file +
      " --threads " + threads));
  EXPECT_EQ(reloaded,
            "R(2, 3) = 0.3004\n"
            "R(2, 1) = 0.9006\n"
            "R(0, 3) = 0.0000\n"
            "R(2, 3) = 0.3004\n"
            "R(1, 3) = 0.0000\n"
            "batch: 5 queries, 4 distinct pairs, 0 floods, "
            "0 fallback estimates, 4 index answers, 0 cache hits "
            "(20000 samples, shard bank bytes [5008], <t> s)\n"
            "index: 20000 worlds, 2 label bits, 20032 label bytes, "
            "0 worlds relabeled, 3 reach floods\n"
            "index_io: 1 loads, 0 saves, 0 load failures, "
            "generation 1, 105384 file bytes\n");

  // Explicit `index save` rebuilds and atomically overwrites (generation 1
  // again — a fresh save, not a republish).
  const std::string saved = normalize(RunCli(
      "index save --graph " + graph + " --index-file " + index_file +
      " --samples 20000 --seed 5 --threads " + threads));
  EXPECT_EQ(saved,
            "saved <index>: generation 1, 105384 bytes (20000 worlds, "
            "2 label bits, 20032 label bytes, 1 shards, <t> s)\n");
}

TEST_P(GoldenCliThreadSweep, TwoClusterSolveAndEstimateStdoutPinned) {
  const std::string graph = WriteTwoClusterGraph();
  const std::string threads = std::to_string(GetParam());

  const std::string solve = NormalizeTimings(RunCli(
      "solve --graph " + graph +
      " --s 0 --t 11 --k 3 --r 12 --l 15 --h -1 --samples 400"
      " --elim-samples 400 --seed 21 --threads " + threads));
  EXPECT_EQ(solve,
            "method BE: reliability 0.1400 -> 0.8825 (gain 0.7425) in <t> s\n"
            "  add 0 -> 11 (p = 0.500)\n"
            "  add 4 -> 11 (p = 0.500)\n"
            "  add 3 -> 11 (p = 0.500)\n"
            "candidates: 40 after elimination, 14 on top-15 paths\n");

  const std::string estimate = NormalizeTimings(RunCli(
      "estimate --graph " + graph +
      " --s 0 --t 11 --samples 20000 --seed 5 --threads " + threads));
  EXPECT_EQ(estimate, "R(0, 11) = 0.1197   (20000 samples, <t> s)\n");
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenCliThreadSweep, testing::Values(1, 4));

}  // namespace
}  // namespace relmax
