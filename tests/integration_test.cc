// End-to-end integration tests: the full pipeline (dataset generation ->
// query generation -> elimination -> path extraction -> selection ->
// verification) across module boundaries, plus cross-method consistency.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/greedy.h"
#include "core/candidates.h"
#include "core/evaluate.h"
#include "core/multi.h"
#include "core/solver.h"
#include "gen/datasets.h"
#include "gen/queries.h"
#include "graph/graph_io.h"
#include "sampling/reliability.h"

namespace relmax {
namespace {

SolverOptions PipelineOptions() {
  SolverOptions options;
  options.budget_k = 5;
  options.zeta = 0.5;
  options.top_r = 30;
  options.top_l = 20;
  options.hop_h = 3;
  options.elimination_samples = 300;
  options.num_samples = 300;
  options.seed = 77;
  return options;
}

class DatasetPipelineSweep : public testing::TestWithParam<const char*> {};

TEST_P(DatasetPipelineSweep, EndToEndSolveOnDataset) {
  auto dataset = MakeDataset(GetParam(), 0.05, 9);
  ASSERT_TRUE(dataset.ok());
  auto queries = GenerateQueries(dataset->graph, 2,
                                 {.min_hops = 2, .max_hops = 5, .seed = 4});
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  for (const auto& [s, t] : *queries) {
    auto solution = MaximizeReliability(dataset->graph, s, t,
                                        PipelineOptions());
    ASSERT_TRUE(solution.ok()) << GetParam();
    EXPECT_LE(solution->added_edges.size(), 5u);
    // Independent verification of the claimed reliabilities.
    const double before = EstimateReliability(
        dataset->graph, s, t, {.num_samples = 3000, .seed = 123});
    EXPECT_NEAR(solution->reliability_before, before, 0.1) << GetParam();
    const double after = EstimateReliability(
        AugmentGraph(dataset->graph, solution->added_edges), s, t,
        {.num_samples = 3000, .seed = 123});
    EXPECT_NEAR(solution->reliability_after, after, 0.1) << GetParam();
    EXPECT_GE(after + 0.05, before) << GetParam();  // additions cannot hurt
    // Every added edge respects the h-hop constraint and is genuinely new.
    for (const Edge& e : solution->added_edges) {
      EXPECT_FALSE(dataset->graph.HasEdge(e.src, e.dst));
      EXPECT_DOUBLE_EQ(e.prob, 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetPipelineSweep,
                         testing::Values("lastfm", "as_topology", "dblp",
                                         "twitter", "smallworld1",
                                         "scalefree1"));

TEST(IntegrationTest, SolverBeatsNaiveBaselineOnAverage) {
  auto dataset = MakeDataset("lastfm", 0.05, 11);
  ASSERT_TRUE(dataset.ok());
  auto queries = GenerateQueries(dataset->graph, 3,
                                 {.min_hops = 3, .max_hops = 5, .seed = 6});
  ASSERT_TRUE(queries.ok());

  double be_total = 0.0;
  double topk_total = 0.0;
  const SolverOptions options = PipelineOptions();
  for (const auto& [s, t] : *queries) {
    auto candidates = SelectCandidates(dataset->graph, s, t, options);
    ASSERT_TRUE(candidates.ok());
    auto be = MaximizeReliabilityWithCandidates(dataset->graph, s, t,
                                                *candidates, options);
    ASSERT_TRUE(be.ok());
    auto topk = SelectIndividualTopK(dataset->graph, s, t, candidates->edges,
                                     options);
    ASSERT_TRUE(topk.ok());

    auto measure = [&](const std::vector<Edge>& edges) {
      return EstimateReliability(AugmentGraph(dataset->graph, edges), s, t,
                                 {.num_samples = 4000, .seed = 99});
    };
    be_total += measure(be->added_edges);
    topk_total += measure(*topk);
  }
  // BE models edge interactions; individual top-k does not. Allow noise.
  EXPECT_GE(be_total + 0.05, topk_total);
}

TEST(IntegrationTest, GraphRoundTripPreservesSolverBehavior) {
  auto dataset = MakeDataset("smallworld1", 0.03, 13);
  ASSERT_TRUE(dataset.ok());
  const std::string path = testing::TempDir() + "/relmax_integration.graph";
  ASSERT_TRUE(WriteEdgeList(dataset->graph, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());

  auto queries = GenerateQueries(dataset->graph, 1,
                                 {.min_hops = 3, .max_hops = 5, .seed = 2});
  ASSERT_TRUE(queries.ok());
  const auto [s, t] = (*queries)[0];
  auto original = MaximizeReliability(dataset->graph, s, t,
                                      PipelineOptions());
  auto reloaded = MaximizeReliability(*loaded, s, t, PipelineOptions());
  ASSERT_TRUE(original.ok() && reloaded.ok());
  // Serialization canonicalizes arc order, so the sampler consumes
  // randomness differently and may pick a different — equally valid — edge
  // set. What must hold: both solutions are feasible and both improve the
  // query's reliability on the same underlying graph.
  EXPECT_LE(reloaded->added_edges.size(), 5u);
  const double before = EstimateReliability(
      dataset->graph, s, t, {.num_samples = 5000, .seed = 3});
  auto measure = [&](const std::vector<Edge>& edges) {
    return EstimateReliability(AugmentGraph(dataset->graph, edges), s, t,
                               {.num_samples = 5000, .seed = 3});
  };
  EXPECT_GE(measure(original->added_edges) + 0.02, before);
  EXPECT_GE(measure(reloaded->added_edges) + 0.02, before);
  for (const Edge& e : reloaded->added_edges) {
    EXPECT_FALSE(loaded->HasEdge(e.src, e.dst));
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, MultiAverageConsistentWithSinglePairUnion) {
  auto dataset = MakeDataset("smallworld1", 0.03, 17);
  ASSERT_TRUE(dataset.ok());
  auto query = GenerateMultiQuery(dataset->graph, 3, {.seed = 21});
  ASSERT_TRUE(query.ok());
  auto solution = MaximizeMultiReliability(dataset->graph, query->sources,
                                           query->targets,
                                           Aggregate::kAverage,
                                           PipelineOptions());
  ASSERT_TRUE(solution.ok());
  const auto before = PairwiseReliability(dataset->graph, query->sources,
                                          query->targets, 3000, 5);
  const auto after = PairwiseReliability(
      AugmentGraph(dataset->graph, solution->added_edges), query->sources,
      query->targets, 3000, 5);
  EXPECT_GE(AggregateMatrix(after, Aggregate::kAverage) + 0.02,
            AggregateMatrix(before, Aggregate::kAverage));
}

}  // namespace
}  // namespace relmax
