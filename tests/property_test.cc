// Property-based sweeps over randomly generated graphs: invariants every
// estimator and solver component must satisfy regardless of topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/greedy.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "core/evaluate.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "oracle_util.h"
#include "paths/most_reliable_path.h"
#include "paths/yen.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "sampling/bitlane.h"
#include "sampling/lazy_propagation.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"
#include "sampling/world_bank.h"
#include "sampling/world_view.h"

namespace relmax {
namespace {

UncertainGraph RandomGraph(uint64_t seed, NodeId n, double density,
                           bool directed) {
  Rng rng(seed);
  UncertainGraph g =
      directed ? UncertainGraph::Directed(n) : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(density)) {
        EXPECT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  return g;
}

class ReliabilityInvariantSweep : public testing::TestWithParam<int> {};

// R is sandwiched between the most reliable path's probability (one way to
// connect) and 1; and the union bound over the top paths dominates both.
TEST_P(ReliabilityInvariantSweep, PathProbabilityBounds) {
  const UncertainGraph g =
      RandomGraph(100 + GetParam(), 7, 0.35, GetParam() % 2 == 0);
  const NodeId s = 0;
  const NodeId t = 6;
  const double exact = ExactReliabilityFactoring(g, s, t, 50).value();
  const auto mrp = MostReliablePath(g, s, t);
  if (!mrp.has_value()) {
    EXPECT_DOUBLE_EQ(exact, 0.0);
    return;
  }
  // Lower bound: any single path's existence implies connection.
  EXPECT_GE(exact + 1e-12, mrp->probability);
  // Upper bound: union bound over all simple paths.
  double union_bound = 0.0;
  for (const PathResult& p : TopLReliablePaths(g, s, t, 1000)) {
    union_bound += p.probability;
  }
  EXPECT_LE(exact, std::min(1.0, union_bound) + 1e-12);
}

// Raising any edge probability cannot decrease reliability.
TEST_P(ReliabilityInvariantSweep, MonotoneInEdgeProbability) {
  UncertainGraph g = RandomGraph(200 + GetParam(), 6, 0.4, true);
  if (g.num_edges() == 0) return;
  const double base = ExactReliabilityFactoring(g, 0, 5, 50).value();
  Rng rng(300 + GetParam());
  const auto edges = g.Edges();
  const Edge& edge = edges[rng.NextUint64(edges.size())];
  const double bumped = std::min(1.0, edge.prob + 0.3);
  ASSERT_TRUE(g.UpdateEdgeProb(edge.src, edge.dst, bumped).ok());
  EXPECT_GE(ExactReliabilityFactoring(g, 0, 5, 50).value() + 1e-12, base);
}

// Adding any edge cannot decrease reliability.
TEST_P(ReliabilityInvariantSweep, MonotoneInEdgeAddition) {
  const UncertainGraph g =
      RandomGraph(400 + GetParam(), 6, 0.3, GetParam() % 2 == 1);
  const double base = ExactReliabilityFactoring(g, 0, 5, 50).value();
  for (const Edge& e : AllMissingEdges(g, 0.5, -1)) {
    UncertainGraph aug = g;
    ASSERT_TRUE(aug.AddEdge(e.src, e.dst, 0.5).ok());
    EXPECT_GE(ExactReliabilityFactoring(aug, 0, 5, 50).value() + 1e-12, base)
        << "(" << e.src << "," << e.dst << ")";
    break;  // one edge per seed keeps the sweep fast
  }
}

// MC and RSS agree with the exact value within sampling error.
TEST_P(ReliabilityInvariantSweep, EstimatorsAgreeWithExact) {
  const UncertainGraph g =
      RandomGraph(500 + GetParam(), 6, 0.4, GetParam() % 2 == 0);
  const double exact = ExactReliabilityFactoring(g, 0, 5, 50).value();
  const double mc =
      EstimateReliability(g, 0, 5, {.num_samples = 30000, .seed = 1});
  EXPECT_NEAR(mc, exact, 0.015);
  double rss_mean = 0.0;
  Rng seeds(600 + GetParam());
  for (int run = 0; run < 20; ++run) {
    rss_mean += EstimateReliabilityRss(
        g, 0, 5, {.num_samples = 400, .seed = seeds.Next()});
  }
  EXPECT_NEAR(rss_mean / 20, exact, 0.03);
}

// InfluenceSpread specializes to reliability when |S| = |T| = 1, and the
// pairwise matrix agrees with single-pair estimation.
TEST_P(ReliabilityInvariantSweep, SpreadAndPairwiseConsistency) {
  const UncertainGraph g = RandomGraph(700 + GetParam(), 7, 0.35, true);
  const double exact = ExactReliabilityFactoring(g, 0, 6, 50).value();
  EXPECT_NEAR(InfluenceSpread(g, {0}, {6}, 30000, 9), exact, 0.015);
  const auto matrix = PairwiseReliability(g, {0}, {6}, 30000, 9);
  EXPECT_NEAR(matrix[0][0], exact, 0.015);
}

// Parallel MC and RSS agree with exact factoring within 3σ confidence
// bounds on random DAGs, for every thread count. A DAG (edges only from
// lower to higher ids) keeps the exact oracle cheap while still exercising
// multi-path strata.
TEST_P(ReliabilityInvariantSweep, ParallelEstimatorsWithin3SigmaOnRandomDag) {
  Rng rng(900 + GetParam());
  const NodeId n = 8;
  UncertainGraph g = UncertainGraph::Directed(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(0.4)) {
        ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.1, 0.9)).ok());
      }
    }
  }
  const NodeId s = 0;
  const NodeId t = n - 1;
  const double exact = ExactReliabilityFactoring(g, s, t, 50).value();

  const int kSamples = 20000;
  // One MC sample is Bernoulli(R): σ = sqrt(R(1-R)/Z). RSS only has lower
  // variance, so the same bound holds for it a fortiori.
  const double sigma =
      std::sqrt(std::max(exact * (1.0 - exact), 1e-6) / kSamples);
  for (int threads : {1, 2, 8}) {
    const double mc = EstimateReliability(
        g, s, t,
        {.num_samples = kSamples, .seed = 77, .num_threads = threads});
    EXPECT_NEAR(mc, exact, 3.0 * sigma) << "MC, num_threads = " << threads;
    const double rss = EstimateReliabilityRss(
        g, s, t,
        {.num_samples = kSamples, .seed = 78, .num_threads = threads});
    EXPECT_NEAR(rss, exact, 3.0 * sigma) << "RSS, num_threads = " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliabilityInvariantSweep,
                         testing::Range(0, 10));

// ------------------------------------------- exact-oracle conformance sweep

// The brute-force oracle itself is checked against closed forms and the
// factoring oracle before it referees the estimators.
TEST(ExactOracleTest, OracleMatchesClosedFormsAndFactoring) {
  // Two parallel s-t edges: R = 1 − (1 − p1)(1 − p2). Parallel edges are not
  // supported, so route the second path through a p = 1 relay.
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 2, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  EXPECT_NEAR(oracle::BruteForceReliability(g, 0, 2),
              1.0 - (1.0 - 0.6) * (1.0 - 0.5), 1e-12);

  // Series chain: R = Π p_i.
  UncertainGraph chain = UncertainGraph::Undirected(4);
  ASSERT_TRUE(chain.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(chain.AddEdge(1, 2, 0.8).ok());
  ASSERT_TRUE(chain.AddEdge(2, 3, 0.7).ok());
  EXPECT_NEAR(oracle::BruteForceReliability(chain, 0, 3), 0.9 * 0.8 * 0.7,
              1e-12);

  // Against the independent factoring oracle on random topologies.
  for (int seed = 0; seed < 6; ++seed) {
    const UncertainGraph r =
        oracle::SmallRandomGraph(40 + seed, 6, 9, seed % 2 == 0);
    const NodeId t = r.num_nodes() - 1;
    EXPECT_NEAR(oracle::BruteForceReliability(r, 0, t),
                ExactReliabilityFactoring(r, 0, t, 50).value(), 1e-9)
        << "seed " << seed;
  }
}

// Every estimator backend — MC (serial and batched-parallel), RSS, lazy
// propagation, and the WorldBank word-parallel fixpoint — agrees with the
// brute-force enumeration oracle within 3σ, on random directed and
// undirected graphs of ≤ 10 edges. All streams are fixed-seed, so the
// tolerance is deterministic, not flaky.
class ExactOracleConformanceSweep : public testing::TestWithParam<int> {};

TEST_P(ExactOracleConformanceSweep, EstimatorsMatchBruteForceEnumeration) {
  const int param = GetParam();
  const bool directed = param % 2 == 0;
  const NodeId n = 5 + param % 3;
  const UncertainGraph g =
      oracle::SmallRandomGraph(1300 + param, n, 10, directed);
  const NodeId s = 0;
  const NodeId t = n - 1;
  const double exact = oracle::BruteForceReliability(g, s, t);

  const int kSamples = 20000;
  const double band = oracle::ThreeSigma(exact, kSamples);

  // MC: within the band, and bit-identical across thread counts and lane
  // kernels (the estimate is a pure function of (Z, seed)).
  const double mc_ref = EstimateReliability(
      g, s, t, {.num_samples = kSamples, .seed = 91, .num_threads = 1});
  EXPECT_NEAR(mc_ref, exact, band) << "MC";
  for (const bitlane::LaneMode mode :
       {bitlane::LaneMode::kBlocked, bitlane::LaneMode::kScalar}) {
    const bitlane::ScopedLaneMode scoped(mode);
    for (int threads : {1, 3}) {
      const double mc = EstimateReliability(
          g, s, t,
          {.num_samples = kSamples, .seed = 91, .num_threads = threads});
      EXPECT_EQ(mc, mc_ref)
          << "MC, " << bitlane::ModeName(mode) << ", threads = " << threads;
    }
  }
  const double rss = EstimateReliabilityRss(
      g, s, t, {.num_samples = kSamples, .seed = 92});
  EXPECT_NEAR(rss, exact, band) << "RSS";

  const double lazy = EstimateReliabilityLazy(g, s, t, kSamples, 93);
  EXPECT_NEAR(lazy, exact, band) << "lazy propagation";

  // The WorldBank fixpoint answer must be within the band AND bit-identical
  // across lane kernels: scalar and blocked walk the same monotone algebra,
  // whose fixpoint is unique.
  const WorldBank bank(g, {.num_samples = kSamples, .seed = 94});
  double fixpoint_ref = -1.0;
  for (const bitlane::LaneMode mode :
       {bitlane::LaneMode::kBlocked, bitlane::LaneMode::kScalar}) {
    const bitlane::ScopedLaneMode scoped(mode);
    const double fixpoint = bank.ConnectedFraction(s, t, bank.AllEdges(), {});
    if (fixpoint_ref < 0.0) {
      fixpoint_ref = fixpoint;
      EXPECT_NEAR(fixpoint, exact, band) << "WorldBank fixpoint";
    } else {
      EXPECT_EQ(fixpoint, fixpoint_ref)
          << "WorldBank fixpoint differs under " << bitlane::ModeName(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactOracleConformanceSweep,
                         testing::Range(0, 12));

// ------------------------------------- batch query engine conformance sweep

// The batch engine's two resolution paths against the ≤10-edge oracle
// fixtures: the per-query fallback must reproduce EstimateReliability
// bit-for-bit (it IS the single-query public API), and the shared-world
// path must sit within 3σ of the brute-force enumeration while being
// bit-identical across thread counts and batch compositions.
class BatchQueryConformanceSweep : public testing::TestWithParam<int> {};

TEST_P(BatchQueryConformanceSweep, BatchedAnswersMatchPerQueryAndOracle) {
  const int param = GetParam();
  const bool directed = param % 2 == 0;
  const NodeId n = 5 + param % 3;
  const UncertainGraph g =
      oracle::SmallRandomGraph(2100 + param, n, 10, directed);
  const int kSamples = 20000;

  std::vector<StQuery> pairs;
  QuerySet set;
  for (NodeId s = 0; s < 2; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      pairs.push_back({s, t});
      set.AddSt(s, t);
    }
  }

  QueryEngineOptions options;
  options.num_samples = kSamples;
  options.seed = 81;

  // (1) Fallback path: batched answers equal per-query EstimateReliability
  // exactly — same Z, seed, and thread count, bitwise.
  QueryEngineOptions fallback = options;
  fallback.reuse_worlds = false;
  QueryEngine per_query(g, fallback);
  const auto fallback_result = per_query.Answer(set);
  ASSERT_TRUE(fallback_result.ok());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(fallback_result->st_values[i],
              EstimateReliability(g, pairs[i].s, pairs[i].t,
                                  {.num_samples = kSamples, .seed = 81}))
        << "(" << pairs[i].s << ", " << pairs[i].t << ")";
  }

  // (2) Shared-world path: one bank for the whole batch; the answers must
  // be bit-identical across thread counts, lane kernels, AND partition
  // shard counts (the (threads, lane-width, shards)-invariance contract),
  // and within 3σ of the exact enumeration.
  std::vector<double> reference;
  for (const int shards : {1, 2, 4}) {
    for (const bitlane::LaneMode mode :
         {bitlane::LaneMode::kBlocked, bitlane::LaneMode::kScalar}) {
      const bitlane::ScopedLaneMode scoped(mode);
      for (const int threads : {1, 3}) {
        QueryEngineOptions shared = options;
        shared.num_threads = threads;
        shared.num_partitions = shards;
        QueryEngine engine(g, shared);
        const auto result = engine.Answer(set);
        ASSERT_TRUE(result.ok());
        if (reference.empty()) {
          reference = result->st_values;
        } else {
          EXPECT_EQ(result->st_values, reference)
              << bitlane::ModeName(mode) << ", threads = " << threads
              << ", shards = " << shards;
        }
      }
    }
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    const double exact =
        oracle::BruteForceReliability(g, pairs[i].s, pairs[i].t);
    EXPECT_NEAR(reference[i], exact, oracle::ThreeSigma(exact, kSamples))
        << "(" << pairs[i].s << ", " << pairs[i].t << ")";
    QueryEngine solo(g, options);
    EXPECT_EQ(solo.EstimateSt(pairs[i].s, pairs[i].t).value(), reference[i])
        << "single-query batch must agree bit-for-bit";
  }

  // (3) Index path: per-world component/SCC labels over the same bank must
  // reproduce the shared-flood answers bit-for-bit (hence also within 3σ of
  // the oracle), for any thread count, lane kernel, and shard count (the
  // sharded union-find labeling joins shard-local components across cut
  // edges; union-find's final partition is order-independent).
  for (const int shards : {1, 2, 4}) {
    for (const bitlane::LaneMode mode :
         {bitlane::LaneMode::kBlocked, bitlane::LaneMode::kScalar}) {
      const bitlane::ScopedLaneMode scoped(mode);
      for (const int threads : {1, 3}) {
        QueryEngineOptions indexed = options;
        indexed.use_index = true;
        indexed.num_threads = threads;
        indexed.num_partitions = shards;
        QueryEngine engine(g, indexed);
        const auto result = engine.Answer(set);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result->st_values, reference)
            << "index, " << bitlane::ModeName(mode)
            << ", threads = " << threads << ", shards = " << shards;
        EXPECT_EQ(result->stats.floods, 0u);
        EXPECT_EQ(result->stats.index_answers, result->stats.distinct_pairs);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchQueryConformanceSweep,
                         testing::Range(0, 8));

// ------------------------------------ partition-shard conformance sweep

// Every bank consumer — the evaluate primitive (ConnectedFraction), greedy
// hill-climbing selection, the batch query engine, and the reliability-index
// path — must produce bit-equal answers across {1, 2, 4} partition shards ×
// {blocked, scalar} lane kernels × {1, 3} threads. Z = 4030 (4030 % 64 = 62)
// keeps the tail-masking word live in every combination: a sharded scatter
// or boundary exchange that leaks pad bits shows up here as a popcount
// mismatch.
class ShardedConformanceSweep : public testing::TestWithParam<int> {};

TEST_P(ShardedConformanceSweep, ConsumersBitEqualAcrossShardsLanesThreads) {
  const int param = GetParam();
  const bool directed = param % 2 == 0;
  const NodeId n = 6 + param % 3;
  const UncertainGraph g =
      oracle::SmallRandomGraph(3100 + param, n, 12, directed);
  const int kSamples = 4030;
  const NodeId s = 0;
  const NodeId t = n - 1;

  std::vector<Edge> candidates;
  for (const Edge& e : AllMissingEdges(g, 0.5, -1)) {
    candidates.push_back(e);
    if (candidates.size() == 4) break;
  }

  QuerySet set;
  for (NodeId v = 0; v < n; ++v) set.AddSt(s, v);

  const auto endpoints = [](const std::vector<Edge>& edges) {
    std::vector<std::pair<NodeId, NodeId>> out;
    out.reserve(edges.size());
    for (const Edge& e : edges) out.emplace_back(e.src, e.dst);
    return out;
  };

  bool have_ref = false;
  double evaluate_ref = 0.0;
  std::vector<std::pair<NodeId, NodeId>> greedy_ref;
  std::vector<double> batch_ref;
  for (const int shards : {1, 2, 4}) {
    for (const bitlane::LaneMode mode :
         {bitlane::LaneMode::kBlocked, bitlane::LaneMode::kScalar}) {
      const bitlane::ScopedLaneMode scoped(mode);
      for (const int threads : {1, 3}) {
        const std::string where = std::string(bitlane::ModeName(mode)) +
                                  ", threads = " + std::to_string(threads) +
                                  ", shards = " + std::to_string(shards);

        // Evaluate path: the flood-lane primitive behind EstimateWithOptions
        // and PathSetEvaluator, straight through the WorldView factory.
        const std::unique_ptr<WorldView> view =
            MakeWorldView(g, {.num_samples = kSamples,
                              .seed = 61,
                              .num_threads = threads,
                              .num_partitions = shards});
        const double frac = view->ConnectedFraction(s, t, view->AllEdges());

        // Greedy selection path: hill climbing scores candidates over a
        // shared bank built with the same partition count.
        SolverOptions solver;
        solver.budget_k = 2;
        solver.num_samples = kSamples;
        solver.elimination_samples = kSamples;
        solver.seed = 62;
        solver.num_threads = threads;
        solver.num_partitions = shards;
        const auto picked = SelectHillClimbing(g, s, t, candidates, solver);
        ASSERT_TRUE(picked.ok()) << where;

        // Batch query path.
        QueryEngineOptions batch_options;
        batch_options.num_samples = kSamples;
        batch_options.seed = 63;
        batch_options.num_threads = threads;
        batch_options.num_partitions = shards;
        QueryEngine engine(g, batch_options);
        const auto batch = engine.Answer(set);
        ASSERT_TRUE(batch.ok()) << where;

        // Index path: must equal this combination's flood answers exactly.
        QueryEngineOptions index_options = batch_options;
        index_options.use_index = true;
        QueryEngine index_engine(g, index_options);
        const auto indexed = index_engine.Answer(set);
        ASSERT_TRUE(indexed.ok()) << where;
        EXPECT_EQ(indexed->st_values, batch->st_values) << "index, " << where;

        if (!have_ref) {
          have_ref = true;
          evaluate_ref = frac;
          greedy_ref = endpoints(*picked);
          batch_ref = batch->st_values;
        } else {
          EXPECT_EQ(frac, evaluate_ref) << "evaluate, " << where;
          EXPECT_EQ(endpoints(*picked), greedy_ref) << "greedy, " << where;
          EXPECT_EQ(batch->st_values, batch_ref) << "batch, " << where;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedConformanceSweep, testing::Range(0, 6));

// ------------------------------------------------------- failure injection

TEST(FailureInjectionTest, AllZeroProbabilityGraph) {
  UncertainGraph g = UncertainGraph::Directed(4);
  for (NodeId i = 0; i + 1 < 4; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1, 0.0).ok());
  EXPECT_DOUBLE_EQ(
      EstimateReliability(g, 0, 3, {.num_samples = 100, .seed = 1}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateReliabilityRss(g, 0, 3), 0.0);
  EXPECT_FALSE(MostReliablePath(g, 0, 3).has_value());
  EXPECT_DOUBLE_EQ(ExactReliabilityFactoring(g, 0, 3).value(), 0.0);
}

TEST(FailureInjectionTest, AllOneProbabilityGraph) {
  UncertainGraph g = UncertainGraph::Undirected(5);
  for (NodeId i = 0; i + 1 < 5; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1, 1.0).ok());
  EXPECT_DOUBLE_EQ(
      EstimateReliability(g, 0, 4, {.num_samples = 100, .seed = 1}), 1.0);
  EXPECT_DOUBLE_EQ(EstimateReliabilityRss(g, 0, 4), 1.0);
  EXPECT_DOUBLE_EQ(MostReliablePath(g, 0, 4)->probability, 1.0);
}

TEST(FailureInjectionTest, SingletonAndEdgelessGraphs) {
  UncertainGraph lonely = UncertainGraph::Directed(1);
  EXPECT_DOUBLE_EQ(
      EstimateReliability(lonely, 0, 0, {.num_samples = 10, .seed = 1}), 1.0);

  UncertainGraph empty = UncertainGraph::Undirected(10);
  EXPECT_DOUBLE_EQ(
      EstimateReliability(empty, 0, 9, {.num_samples = 100, .seed = 1}), 0.0);
  EXPECT_TRUE(TopLReliablePaths(empty, 0, 9, 5).empty());
}

TEST(FailureInjectionTest, EliminationOnDisconnectedQuery) {
  // s and t in different components: the candidate set must still form
  // (C(s) x C(t)) so the solver can bridge the components.
  UncertainGraph g = UncertainGraph::Undirected(6);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, 0.9).ok());
  SolverOptions options;
  options.hop_h = -1;
  options.top_r = 6;
  auto candidates = SelectCandidates(g, 0, 5, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_FALSE(candidates->edges.empty());
  // With the h-hop constraint the components cannot be bridged: no
  // candidates should survive (distance between components is infinite).
  options.hop_h = 3;
  auto constrained = SelectCandidates(g, 0, 5, options);
  ASSERT_TRUE(constrained.ok());
  for (const Edge& e : constrained->edges) {
    // Any surviving candidate must stay within one component.
    const bool src_left = e.src <= 2;
    const bool dst_left = e.dst <= 2;
    EXPECT_EQ(src_left, dst_left);
  }
}

TEST(FailureInjectionTest, ExtremeProbabilitiesInRss) {
  // Mix of 0, 1, and mid probabilities must not break stratification.
  UncertainGraph g = UncertainGraph::Directed(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 4, 0.9).ok());
  const double exact = ExactReliabilityFactoring(g, 0, 4).value();
  EXPECT_NEAR(exact, 0.5, 1e-12);
  double mean = 0.0;
  Rng seeds(4);
  for (int run = 0; run < 30; ++run) {
    mean += EstimateReliabilityRss(g, 0, 4,
                                   {.num_samples = 200, .seed = seeds.Next()});
  }
  EXPECT_NEAR(mean / 30, exact, 0.03);
}

}  // namespace
}  // namespace relmax
