#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "sampling/lazy_propagation.h"
#include "sampling/reliability.h"

namespace relmax {
namespace {

TEST(LazyPropagationTest, MatchesExactOnDiamond) {
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  const double exact = ExactReliabilityFactoring(g, 0, 3).value();
  EXPECT_NEAR(EstimateReliabilityLazy(g, 0, 3, 60000, 7), exact, 0.01);
}

TEST(LazyPropagationTest, DegenerateProbabilities) {
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_DOUBLE_EQ(EstimateReliabilityLazy(g, 0, 1, 200, 1), 1.0);
  EXPECT_DOUBLE_EQ(EstimateReliabilityLazy(g, 0, 2, 200, 1), 0.0);
  EXPECT_DOUBLE_EQ(EstimateReliabilityLazy(g, 0, 3, 200, 1), 1.0);
  EXPECT_DOUBLE_EQ(EstimateReliabilityLazy(g, 2, 2, 10, 1), 1.0);
}

TEST(LazyPropagationTest, UndirectedSingleCoinPerWorld) {
  UncertainGraph g = UncertainGraph::Undirected(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.3).ok());
  EXPECT_NEAR(EstimateReliabilityLazy(g, 0, 1, 60000, 3), 0.3, 0.01);
}

TEST(LazyPropagationTest, AgreesWithPlainMonteCarloOnLowProbGraph) {
  // DBLP-like regime: many low-probability edges — LP's home turf.
  Rng rng(11);
  UncertainGraph g = UncertainGraph::Undirected(40);
  for (int i = 0; i < 150; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextUint64(40));
    const NodeId v = static_cast<NodeId>(rng.NextUint64(40));
    if (u == v || g.HasEdge(u, v)) continue;
    ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.02, 0.2)).ok());
  }
  const double mc =
      EstimateReliability(g, 0, 39, {.num_samples = 60000, .seed = 5});
  const double lazy = EstimateReliabilityLazy(g, 0, 39, 60000, 6);
  EXPECT_NEAR(lazy, mc, 0.01);
}

TEST(LazyPropagationTest, FromSourceMatchesExactPerNode) {
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.2).ok());
  LazyPropagationSampler sampler(g, 9);
  const std::vector<double> from_s = sampler.FromSource(0, 60000);
  EXPECT_DOUBLE_EQ(from_s[0], 1.0);
  for (NodeId v = 1; v < 3; ++v) {
    EXPECT_NEAR(from_s[v], ExactReliabilityFactoring(g, 0, v).value(), 0.01)
        << "node " << v;
  }
  EXPECT_DOUBLE_EQ(from_s[3], 0.0);
}

TEST(LazyPropagationTest, DeterministicForSeed) {
  UncertainGraph g = UncertainGraph::Undirected(6);
  for (NodeId i = 0; i + 1 < 6; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1, 0.4).ok());
  EXPECT_DOUBLE_EQ(EstimateReliabilityLazy(g, 0, 5, 500, 17),
                   EstimateReliabilityLazy(g, 0, 5, 500, 17));
}

// Unbiasedness sweep across random graphs, as for MC and RSS.
class LazyUnbiasednessSweep : public testing::TestWithParam<int> {};

TEST_P(LazyUnbiasednessSweep, RandomGraph) {
  Rng rng(3000 + GetParam());
  const NodeId n = 6;
  UncertainGraph g = GetParam() % 2 == 0 ? UncertainGraph::Directed(n)
                                         : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(0.4)) {
        ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  const double exact = ExactReliabilityFactoring(g, 0, n - 1, 40).value();
  EXPECT_NEAR(EstimateReliabilityLazy(g, 0, n - 1, 40000, rng.Next()), exact,
              0.012);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyUnbiasednessSweep, testing::Range(0, 6));

}  // namespace
}  // namespace relmax
