#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

// Closed-form sanity cases ---------------------------------------------------

TEST(ExactReliabilityTest, SingleEdge) {
  UncertainGraph g = UncertainGraph::Directed(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.3).ok());
  EXPECT_NEAR(ExactReliabilityBruteForce(g, 0, 1).value(), 0.3, 1e-12);
  EXPECT_NEAR(ExactReliabilityFactoring(g, 0, 1).value(), 0.3, 1e-12);
}

TEST(ExactReliabilityTest, SourceEqualsTarget) {
  UncertainGraph g = UncertainGraph::Directed(2);
  EXPECT_DOUBLE_EQ(ExactReliabilityBruteForce(g, 1, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(ExactReliabilityFactoring(g, 1, 1).value(), 1.0);
}

TEST(ExactReliabilityTest, Disconnected) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  EXPECT_DOUBLE_EQ(ExactReliabilityBruteForce(g, 0, 2).value(), 0.0);
  EXPECT_DOUBLE_EQ(ExactReliabilityFactoring(g, 0, 2).value(), 0.0);
}

TEST(ExactReliabilityTest, SeriesPath) {
  // R = p1 * p2 for a 2-edge chain.
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.4).ok());
  EXPECT_NEAR(ExactReliabilityBruteForce(g, 0, 2).value(), 0.2, 1e-12);
  EXPECT_NEAR(ExactReliabilityFactoring(g, 0, 2).value(), 0.2, 1e-12);
}

TEST(ExactReliabilityTest, ParallelEdgesViaTwoRoutes) {
  // Two disjoint 1-hop routes s->a->t and s->b->t:
  // R = 1 - (1 - pa1*pa2)(1 - pb1*pb2).
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.7).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.8).ok());
  const double expected = 1.0 - (1.0 - 0.3) * (1.0 - 0.56);
  EXPECT_NEAR(ExactReliabilityBruteForce(g, 0, 3).value(), expected, 1e-12);
  EXPECT_NEAR(ExactReliabilityFactoring(g, 0, 3).value(), expected, 1e-12);
}

TEST(ExactReliabilityTest, UndirectedBridge) {
  // Undirected triangle s-a, a-t, s-t: R = 1-(1-p_st)(1-p_sa*p_at).
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  const double expected = 1.0 - (1.0 - 0.5) * (1.0 - 0.25);
  EXPECT_NEAR(ExactReliabilityBruteForce(g, 0, 2).value(), expected, 1e-12);
  EXPECT_NEAR(ExactReliabilityFactoring(g, 0, 2).value(), expected, 1e-12);
}

TEST(ExactReliabilityTest, DeterministicEdgesShortCircuit) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.0).ok());
  EXPECT_DOUBLE_EQ(ExactReliabilityBruteForce(g, 0, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(ExactReliabilityBruteForce(g, 0, 2).value(), 0.0);
  EXPECT_DOUBLE_EQ(ExactReliabilityFactoring(g, 0, 2).value(), 0.0);
}

// Paper examples --------------------------------------------------------------

// Figure 2 graph: V = {s, A, t}; edges st (0.5), sA (0.5), At (0.5); the
// Lemma 1 counterexample values.
TEST(ExactReliabilityTest, PaperFigure2Values) {
  const NodeId s = 0;
  const NodeId a = 1;
  const NodeId t = 2;
  {
    // X = {st}: R = 0.5.
    UncertainGraph g = UncertainGraph::Directed(3);
    ASSERT_TRUE(g.AddEdge(s, t, 0.5).ok());
    EXPECT_NEAR(ExactReliabilityFactoring(g, s, t).value(), 0.5, 1e-12);
  }
  {
    // X ∪ {At} = {st, At}: still 0.5 (At alone is useless).
    UncertainGraph g = UncertainGraph::Directed(3);
    ASSERT_TRUE(g.AddEdge(s, t, 0.5).ok());
    ASSERT_TRUE(g.AddEdge(a, t, 0.5).ok());
    EXPECT_NEAR(ExactReliabilityFactoring(g, s, t).value(), 0.5, 1e-12);
  }
  {
    // Y ∪ {At} = {st, sA, At}: 1 - (1-0.5)(1-0.25) = 0.625.
    UncertainGraph g = UncertainGraph::Directed(3);
    ASSERT_TRUE(g.AddEdge(s, t, 0.5).ok());
    ASSERT_TRUE(g.AddEdge(s, a, 0.5).ok());
    ASSERT_TRUE(g.AddEdge(a, t, 0.5).ok());
    EXPECT_NEAR(ExactReliabilityFactoring(g, s, t).value(), 0.625, 1e-12);
  }
  {
    // X' ∪ {At} = {sA, At}: 0.25.
    UncertainGraph g = UncertainGraph::Directed(3);
    ASSERT_TRUE(g.AddEdge(s, a, 0.5).ok());
    ASSERT_TRUE(g.AddEdge(a, t, 0.5).ok());
    EXPECT_NEAR(ExactReliabilityFactoring(g, s, t).value(), 0.25, 1e-12);
  }
}

// Table 2 solutions on the Figure 3 graph: nodes {s, A, B, t}, existing
// edges AB and At with probability alpha; candidate solutions add edges with
// probability zeta.
double Figure3Reliability(double alpha, double zeta, bool add_sa, bool add_sb,
                          bool add_bt) {
  // The paper's closed forms for this example treat edges as undirected
  // (e.g. solution {sA, sB} uses the walk s-B-A-t across edge AB).
  UncertainGraph g = UncertainGraph::Undirected(4);
  const NodeId s = 0;
  const NodeId a = 1;
  const NodeId b = 2;
  const NodeId t = 3;
  EXPECT_TRUE(g.AddEdge(a, b, alpha).ok());
  EXPECT_TRUE(g.AddEdge(a, t, alpha).ok());
  if (add_sa) EXPECT_TRUE(g.AddEdge(s, a, zeta).ok());
  if (add_sb) EXPECT_TRUE(g.AddEdge(s, b, zeta).ok());
  if (add_bt) EXPECT_TRUE(g.AddEdge(b, t, zeta).ok());
  return ExactReliabilityFactoring(g, s, t).value();
}

TEST(ExactReliabilityTest, PaperTable2Row1) {
  // alpha = 0.5, zeta = 0.7.
  EXPECT_NEAR(Figure3Reliability(0.5, 0.7, true, true, false), 0.403, 6e-4);
  EXPECT_NEAR(Figure3Reliability(0.5, 0.7, true, false, true), 0.473, 6e-4);
  EXPECT_NEAR(Figure3Reliability(0.5, 0.7, false, true, true), 0.543, 6e-4);
}

TEST(ExactReliabilityTest, PaperTable2Row2) {
  // alpha = 0.5, zeta = 0.3: optimal flips to {sA, sB}.
  EXPECT_NEAR(Figure3Reliability(0.5, 0.3, true, true, false), 0.203, 6e-4);
  EXPECT_NEAR(Figure3Reliability(0.5, 0.3, true, false, true), 0.173, 6e-4);
  EXPECT_NEAR(Figure3Reliability(0.5, 0.3, false, true, true), 0.143, 6e-4);
}

TEST(ExactReliabilityTest, PaperTable2Row3) {
  // alpha = 0.9, zeta = 0.7.
  EXPECT_NEAR(Figure3Reliability(0.9, 0.7, true, true, false), 0.800, 6e-4);
  EXPECT_NEAR(Figure3Reliability(0.9, 0.7, true, false, true), 0.674, 6e-4);
  EXPECT_NEAR(Figure3Reliability(0.9, 0.7, false, true, true), 0.660, 6e-4);
}

// Agreement between the two exact methods on random graphs -------------------

TEST(ExactReliabilityTest, BruteForceMatchesFactoringOnRandomGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.NextInt(3, 7));
    UncertainGraph g = trial % 2 == 0 ? UncertainGraph::Directed(n)
                                      : UncertainGraph::Undirected(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u == v || g.HasEdge(u, v)) continue;
        if (rng.NextBernoulli(0.4)) {
          ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
        }
      }
    }
    if (g.num_edges() > 18) continue;  // keep brute force fast
    const NodeId s = 0;
    const NodeId t = n - 1;
    auto brute = ExactReliabilityBruteForce(g, s, t, 18);
    auto factored = ExactReliabilityFactoring(g, s, t);
    ASSERT_TRUE(brute.ok());
    ASSERT_TRUE(factored.ok());
    EXPECT_NEAR(brute.value(), factored.value(), 1e-10)
        << "trial " << trial << " n=" << n << " m=" << g.num_edges();
  }
}

// Guard rails -----------------------------------------------------------------

TEST(ExactReliabilityTest, RefusesLargeGraphs) {
  UncertainGraph g = UncertainGraph::Directed(40);
  for (NodeId i = 0; i + 1 < 40; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 1, 0.5).ok());
  }
  EXPECT_EQ(ExactReliabilityBruteForce(g, 0, 39, 24).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExactReliabilityFactoring(g, 0, 39, 24).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExactReliabilityTest, RejectsOutOfRangeQuery) {
  UncertainGraph g = UncertainGraph::Directed(2);
  EXPECT_EQ(ExactReliabilityBruteForce(g, 0, 5).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ExactReliabilityFactoring(g, 5, 0).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace relmax
