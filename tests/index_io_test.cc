// index_io: the persistent index file must round-trip bit-identically across
// every (directedness × partitions × lane mode × threads) combination, every
// corruption of the file must surface as a typed Status (never UB) with the
// query engine falling back to a clean rebuild, and atomic republish must
// bump the generation counter.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "index/index_io.h"
#include "index/reliability_index.h"
#include "oracle_util.h"
#include "query/query_engine.h"
#include "sampling/bitlane.h"
#include "sampling/world_view.h"

namespace relmax {
namespace {

UncertainGraph RandomGraph(uint64_t seed, NodeId n, double density,
                           bool directed) {
  Rng rng(seed);
  UncertainGraph g =
      directed ? UncertainGraph::Directed(n) : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(density)) {
        EXPECT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  return g;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<uint64_t> FloodRow(const WorldView& bank, NodeId s, NodeId t) {
  bitlane::BitMatrix reach;
  bank.ReachabilityFixpoint(s, /*backward=*/false, bank.AllEdges(), &reach);
  const std::span<const uint64_t> row = reach.row_span(t);
  return std::vector<uint64_t>(row.begin(), row.end());
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

// Builds bank + index for (g, world_options) and saves to `path`.
void BuildAndSave(const UncertainGraph& g,
                  const WorldViewOptions& world_options,
                  const std::string& path) {
  const std::unique_ptr<WorldView> bank = MakeWorldView(g, world_options);
  const ReliabilityIndex index(*bank,
                               {.num_threads = world_options.num_threads});
  const StatusOr<size_t> saved =
      SaveIndex(*bank, index, world_options, /*generation=*/1, path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_GT(*saved, sizeof(IndexFileHeader));
}

// Z = 200 on purpose: 4 words with a partial tail word, so tail masking in
// both the saved rows and the loaded query path is always exercised.
constexpr int kZ = 200;

TEST(IndexIoTest, RoundTripSweepIsBitIdentical) {
  for (const bool directed : {false, true}) {
    const UncertainGraph g = RandomGraph(211, 13, 0.2, directed);
    // The reference answers come from a flat single-threaded scalar build;
    // every other configuration must reproduce them bit for bit after a
    // save/load round trip.
    const std::unique_ptr<WorldView> ref_bank =
        MakeWorldView(g, {.num_samples = kZ, .seed = 7});
    ReliabilityIndex ref(*ref_bank, {});
    for (const int partitions : {1, 2, 4}) {
      for (const bitlane::LaneMode mode :
           {bitlane::LaneMode::kScalar, bitlane::LaneMode::kBlocked}) {
        for (const int threads : {1, 3}) {
          const bitlane::ScopedLaneMode scoped(mode);
          const WorldViewOptions options{.num_samples = kZ,
                                         .seed = 7,
                                         .num_threads = threads,
                                         .num_partitions = partitions};
          const std::string path = TempPath("roundtrip.rmx");
          BuildAndSave(g, options, path);
          StatusOr<LoadedIndex> loaded = LoadIndex(path, g, options, {});
          ASSERT_TRUE(loaded.ok())
              << loaded.status().ToString() << " directed=" << directed
              << " partitions=" << partitions << " threads=" << threads;
          // Restored with no sampling and no relabeling.
          EXPECT_EQ(loaded->index->stats().builds, 0u);
          EXPECT_EQ(loaded->index->stats().worlds_relabeled, 0u);
          EXPECT_EQ(loaded->generation, 1u);
          for (NodeId s = 0; s < g.num_nodes(); ++s) {
            for (NodeId t = 0; t < g.num_nodes(); ++t) {
              EXPECT_EQ(loaded->index->ConnectedWorlds(s, t),
                        ref.ConnectedWorlds(s, t))
                  << "directed=" << directed << " partitions=" << partitions
                  << " mode=" << bitlane::ModeName(mode)
                  << " threads=" << threads << " (" << s << ", " << t << ")";
            }
          }
          // The adopted mmap-ed bank itself floods identically too.
          EXPECT_EQ(FloodRow(*loaded->bank, 0, g.num_nodes() - 1),
                    FloodRow(*ref_bank, 0, g.num_nodes() - 1));
        }
      }
    }
  }
}

TEST(IndexIoTest, LoadedIndexMatchesExactOracle) {
  for (const bool directed : {false, true}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const UncertainGraph g =
          oracle::SmallRandomGraph(900 + seed, 7, 10, directed);
      if (g.num_edges() == 0) continue;
      const WorldViewOptions options{.num_samples = 4000, .seed = 13};
      const std::string path = TempPath("oracle.rmx");
      BuildAndSave(g, options, path);
      StatusOr<LoadedIndex> loaded = LoadIndex(path, g, options, {});
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      for (NodeId s = 0; s < g.num_nodes(); ++s) {
        for (NodeId t = 0; t < g.num_nodes(); ++t) {
          const double exact = oracle::BruteForceReliability(g, s, t);
          EXPECT_NEAR(loaded->index->Query(s, t), exact,
                      oracle::ThreeSigma(exact, options.num_samples))
              << "directed=" << directed << " seed=" << seed << " (" << s
              << ", " << t << ")";
        }
      }
    }
  }
}

TEST(IndexIoTest, GraphContentDigestIsContentSensitive) {
  UncertainGraph a = UncertainGraph::Undirected(4);
  ASSERT_TRUE(a.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(a.AddEdge(1, 2, 0.25).ok());
  UncertainGraph same = UncertainGraph::Undirected(4);
  ASSERT_TRUE(same.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(same.AddEdge(1, 2, 0.25).ok());
  EXPECT_EQ(GraphContentDigest(a), GraphContentDigest(same));

  UncertainGraph prob = UncertainGraph::Undirected(4);
  ASSERT_TRUE(prob.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(prob.AddEdge(1, 2, 0.250001).ok());
  EXPECT_NE(GraphContentDigest(a), GraphContentDigest(prob));

  UncertainGraph endpoint = UncertainGraph::Undirected(4);
  ASSERT_TRUE(endpoint.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(endpoint.AddEdge(1, 3, 0.25).ok());
  EXPECT_NE(GraphContentDigest(a), GraphContentDigest(endpoint));

  UncertainGraph directed = UncertainGraph::Directed(4);
  ASSERT_TRUE(directed.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(directed.AddEdge(1, 2, 0.25).ok());
  EXPECT_NE(GraphContentDigest(a), GraphContentDigest(directed));
}

TEST(IndexIoTest, MissingFileIsNotFound) {
  const UncertainGraph g = RandomGraph(3, 6, 0.3, false);
  const StatusOr<LoadedIndex> loaded =
      LoadIndex(TempPath("never_written.rmx"), g, {.num_samples = kZ}, {});
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// Fixture for the corruption battery: one saved sharded file (sharded so a
// partition-map section exists), plus helpers that corrupt a copy and assert
// the typed error AND the query engine's clean rebuild fallback.
class IndexIoCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = RandomGraph(401, 12, 0.25, true);
    options_ = WorldViewOptions{.num_samples = kZ, .seed = 5,
                                .num_partitions = 2};
    path_ = TempPath("corrupt.rmx");
    BuildAndSave(graph_, options_, path_);
    pristine_ = ReadFileBytes(path_);
    const StatusOr<IndexFileInfo> info = InspectIndexFile(path_);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    info_ = *info;
    ASSERT_EQ(info_.header.num_sections, info_.sections.size());
    // 2 bank shards + labels + compaction + partition map.
    ASSERT_EQ(info_.sections.size(), 5u);
  }

  StatusCode LoadCode(std::string* message = nullptr) {
    const StatusOr<LoadedIndex> loaded =
        LoadIndex(path_, graph_, options_, {});
    if (message != nullptr) *message = loaded.status().message();
    return loaded.status().code();
  }

  // The engine must answer correctly despite the bad file: warn, count a
  // load failure, rebuild from scratch, and republish a good file over it.
  void ExpectEngineRebuildFallback() {
    QueryEngineOptions engine_options;
    engine_options.num_samples = options_.num_samples;
    engine_options.seed = options_.seed;
    engine_options.num_partitions = options_.num_partitions;
    engine_options.index_file = path_;
    QueryEngine with_file(graph_, engine_options);
    QueryEngineOptions no_file = engine_options;
    no_file.index_file.clear();
    no_file.use_index = true;
    QueryEngine fresh(graph_, no_file);
    const StatusOr<double> got = with_file.EstimateSt(0, 5);
    const StatusOr<double> want = fresh.EstimateSt(0, 5);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(*got, *want);
    EXPECT_EQ(with_file.index_io_stats().load_failures, 1u);
    EXPECT_EQ(with_file.index_io_stats().loads, 0u);
    // The rebuild republished: the file is valid again for a second engine.
    EXPECT_EQ(with_file.index_io_stats().saves, 1u);
    const StatusOr<LoadedIndex> reloaded =
        LoadIndex(path_, graph_, options_, {});
    EXPECT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  }

  UncertainGraph graph_ = UncertainGraph::Undirected(0);
  WorldViewOptions options_;
  std::string path_;
  std::vector<unsigned char> pristine_;
  IndexFileInfo info_;
};

TEST_F(IndexIoCorruptionTest, TruncationAtEveryBoundaryIsIoError) {
  std::vector<size_t> cuts = {0, 1, sizeof(IndexFileHeader) - 1,
                              sizeof(IndexFileHeader)};
  for (const IndexSectionEntry& s : info_.sections) {
    cuts.push_back(s.offset);
    cuts.push_back(s.offset + s.length / 2);
    cuts.push_back(s.offset + s.length);
  }
  cuts.push_back(pristine_.size() - 1);
  for (const size_t cut : cuts) {
    std::vector<unsigned char> bytes(pristine_.begin(),
                                     pristine_.begin() + cut);
    WriteFileBytes(path_, bytes);
    EXPECT_EQ(LoadCode(), StatusCode::kIoError) << "cut at " << cut;
  }
  WriteFileBytes(path_, pristine_.begin() == pristine_.end()
                            ? pristine_
                            : std::vector<unsigned char>(
                                  pristine_.begin(), pristine_.end() - 1));
  ExpectEngineRebuildFallback();
}

TEST_F(IndexIoCorruptionTest, BitFlipInEverySectionIsIoError) {
  for (size_t i = 0; i < info_.sections.size(); ++i) {
    const IndexSectionEntry& s = info_.sections[i];
    ASSERT_GT(s.length, 0u);
    std::vector<unsigned char> bytes = pristine_;
    bytes[s.offset + s.length / 2] ^= 0x10;
    WriteFileBytes(path_, bytes);
    std::string message;
    EXPECT_EQ(LoadCode(&message), StatusCode::kIoError) << "section " << i;
    EXPECT_NE(message.find("checksum"), std::string::npos) << message;
  }
  ExpectEngineRebuildFallback();
}

TEST_F(IndexIoCorruptionTest, BitFlipInSectionTableIsIoError) {
  std::vector<unsigned char> bytes = pristine_;
  // Flip a low bit of the first entry's length. Depending on how the lie
  // interacts with the 64-byte layout walk this surfaces as a layout error
  // or a table-checksum mismatch — either way it must be typed, never UB.
  bytes[sizeof(IndexFileHeader) + offsetof(IndexSectionEntry, length)] ^= 1;
  WriteFileBytes(path_, bytes);
  const StatusCode code = LoadCode();
  EXPECT_TRUE(code == StatusCode::kIoError ||
              code == StatusCode::kInvalidArgument)
      << static_cast<int>(code);
  ExpectEngineRebuildFallback();
}

TEST_F(IndexIoCorruptionTest, SwappedDigestIsFailedPrecondition) {
  std::vector<unsigned char> bytes = pristine_;
  uint64_t digest;
  std::memcpy(&digest, bytes.data() + offsetof(IndexFileHeader, graph_digest),
              sizeof(digest));
  digest ^= 0xdeadbeef;
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, graph_digest), &digest,
              sizeof(digest));
  WriteFileBytes(path_, bytes);
  std::string message;
  EXPECT_EQ(LoadCode(&message), StatusCode::kFailedPrecondition);
  EXPECT_NE(message.find("different graph"), std::string::npos) << message;
  ExpectEngineRebuildFallback();
}

TEST_F(IndexIoCorruptionTest, HeaderLyingAboutZIsTyped) {
  // A file whose header claims a different Z than the caller expects is a
  // key mismatch (the honest case: a stale file saved under other options).
  std::vector<unsigned char> bytes = pristine_;
  uint32_t z = kZ + 64;
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, num_worlds), &z,
              sizeof(z));
  WriteFileBytes(path_, bytes);
  std::string message;
  EXPECT_EQ(LoadCode(&message), StatusCode::kFailedPrecondition);
  EXPECT_NE(message.find("worlds"), std::string::npos) << message;

  // A header whose derived fields disagree with each other (world_words
  // cannot match a lied-about Z) is structural corruption.
  bytes = pristine_;
  uint32_t words = kZ / 64 + 7;
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, world_words), &words,
              sizeof(words));
  WriteFileBytes(path_, bytes);
  EXPECT_EQ(LoadCode(), StatusCode::kInvalidArgument);
  ExpectEngineRebuildFallback();
}

TEST_F(IndexIoCorruptionTest, ZeroedFooterIsIoError) {
  std::vector<unsigned char> bytes = pristine_;
  const size_t footer_bytes =
      (2 + info_.sections.size()) * sizeof(uint64_t);
  std::memset(bytes.data() + bytes.size() - footer_bytes, 0, footer_bytes);
  WriteFileBytes(path_, bytes);
  std::string message;
  EXPECT_EQ(LoadCode(&message), StatusCode::kIoError);
  EXPECT_NE(message.find("footer"), std::string::npos) << message;
  ExpectEngineRebuildFallback();
}

TEST_F(IndexIoCorruptionTest, BadMagicAndVersionAreFailedPrecondition) {
  std::vector<unsigned char> bytes = pristine_;
  bytes[0] ^= 0xff;
  WriteFileBytes(path_, bytes);
  EXPECT_EQ(LoadCode(), StatusCode::kFailedPrecondition);

  bytes = pristine_;
  uint32_t version = kIndexFormatVersion + 1;
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, format_version),
              &version, sizeof(version));
  WriteFileBytes(path_, bytes);
  EXPECT_EQ(LoadCode(), StatusCode::kFailedPrecondition);
  ExpectEngineRebuildFallback();
}

TEST_F(IndexIoCorruptionTest, OutOfRangePartitionMapIsInvalidArgument) {
  // Corrupt the partition map to an impossible shard id and re-checksum that
  // section so the failure exercises the payload validation, not the
  // checksum. The footer layout is [magic][table checksum][per-section...].
  std::vector<unsigned char> bytes = pristine_;
  const IndexSectionEntry& pm = info_.sections.back();
  uint32_t shard = 0xffff;
  std::memcpy(bytes.data() + pm.offset, &shard, sizeof(shard));
  const uint64_t checksum = HashBytes(bytes.data() + pm.offset, pm.length);
  const size_t checksum_at = bytes.size() -
                             info_.sections.size() * sizeof(uint64_t) +
                             (info_.sections.size() - 1) * sizeof(uint64_t);
  std::memcpy(bytes.data() + checksum_at, &checksum, sizeof(checksum));
  WriteFileBytes(path_, bytes);
  std::string message;
  EXPECT_EQ(LoadCode(&message), StatusCode::kInvalidArgument);
  EXPECT_NE(message.find("shard"), std::string::npos) << message;
  ExpectEngineRebuildFallback();
}

TEST(IndexIoEngineTest, BatchLoadElseBuildAndSave) {
  const UncertainGraph g = RandomGraph(55, 11, 0.3, false);
  const std::string path = TempPath("engine_lifecycle.rmx");
  std::remove(path.c_str());
  QueryEngineOptions options;
  options.num_samples = kZ;
  options.index_file = path;

  // First engine: no file yet — silent build-and-save.
  QueryEngine builder(g, options);
  const StatusOr<double> built = builder.EstimateSt(0, 9);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(builder.index_io_stats().loads, 0u);
  EXPECT_EQ(builder.index_io_stats().load_failures, 0u);
  EXPECT_EQ(builder.index_io_stats().saves, 1u);
  EXPECT_EQ(builder.index_io_stats().generation, 1u);
  ASSERT_NE(builder.index(), nullptr);
  EXPECT_GT(builder.index()->stats().worlds_relabeled, 0u);

  // Second engine: loads, answers identically, relabels nothing.
  QueryEngine loader(g, options);
  const StatusOr<double> loaded = loader.EstimateSt(0, 9);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, *built);
  EXPECT_EQ(loader.index_io_stats().loads, 1u);
  EXPECT_EQ(loader.index_io_stats().saves, 0u);
  EXPECT_EQ(loader.index_io_stats().generation, 1u);
  ASSERT_NE(loader.index(), nullptr);
  EXPECT_EQ(loader.index()->stats().worlds_relabeled, 0u);
}

TEST(IndexIoEngineTest, IncrementalRelabelRepublishesWithBumpedGeneration) {
  UncertainGraph g = RandomGraph(77, 10, 0.3, false);
  const std::string path = TempPath("engine_republish.rmx");
  std::remove(path.c_str());
  QueryEngineOptions options;
  options.num_samples = kZ;
  options.index_file = path;

  QueryEngine engine(g, options);
  ASSERT_TRUE(engine.EstimateSt(0, 9).ok());
  EXPECT_EQ(engine.index_io_stats().generation, 1u);

  const Edge first = g.EdgesById()[0];
  ASSERT_TRUE(g.UpdateEdgeProb(first.src, first.dst, 0.999).ok());
  const StatusOr<double> after = engine.EstimateSt(0, 9);
  ASSERT_TRUE(after.ok());
  // Incremental maintenance ran (not a from-scratch second build)...
  ASSERT_NE(engine.index(), nullptr);
  EXPECT_EQ(engine.index()->stats().incremental_updates, 1u);
  // ...and republished atomically with the generation bumped.
  EXPECT_EQ(engine.index_io_stats().saves, 2u);
  EXPECT_EQ(engine.index_io_stats().generation, 2u);

  // A brand-new engine over the mutated graph loads generation 2 and agrees
  // with a fresh no-file engine bit for bit.
  QueryEngine reloaded(g, options);
  QueryEngineOptions no_file = options;
  no_file.index_file.clear();
  no_file.use_index = true;
  QueryEngine fresh(g, no_file);
  const StatusOr<double> a = reloaded.EstimateSt(0, 9);
  const StatusOr<double> b = fresh.EstimateSt(0, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(reloaded.index_io_stats().loads, 1u);
  EXPECT_EQ(reloaded.index_io_stats().generation, 2u);
}

TEST(IndexIoEngineTest, StaleFileFromOldGraphRebuildsAndRepublishes) {
  // A file saved for the pre-mutation graph is keyed on its digest; a new
  // engine over the mutated graph must reject it (typed), rebuild, republish.
  UncertainGraph g = RandomGraph(88, 9, 0.35, false);
  const std::string path = TempPath("engine_stale.rmx");
  std::remove(path.c_str());
  QueryEngineOptions options;
  options.num_samples = kZ;
  options.index_file = path;
  {
    QueryEngine engine(g, options);
    ASSERT_TRUE(engine.EstimateSt(0, 8).ok());
  }
  const Edge first = g.EdgesById()[0];
  ASSERT_TRUE(g.UpdateEdgeProb(first.src, first.dst, 0.123).ok());
  QueryEngine engine(g, options);
  const StatusOr<double> got = engine.EstimateSt(0, 8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(engine.index_io_stats().load_failures, 1u);
  EXPECT_EQ(engine.index_io_stats().saves, 1u);
  QueryEngineOptions no_file = options;
  no_file.index_file.clear();
  no_file.use_index = true;
  QueryEngine fresh(g, no_file);
  const StatusOr<double> want = fresh.EstimateSt(0, 8);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST(IndexIoEngineTest, SaveFailureWarnsButKeepsAnswering) {
  const UncertainGraph g = RandomGraph(99, 8, 0.3, false);
  QueryEngineOptions options;
  options.num_samples = kZ;
  options.index_file = "/nonexistent-dir/cannot/write/index.rmx";
  QueryEngine engine(g, options);
  const StatusOr<double> got = engine.EstimateSt(0, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(engine.index_io_stats().saves, 0u);
  QueryEngineOptions no_file = options;
  no_file.index_file.clear();
  no_file.use_index = true;
  QueryEngine fresh(g, no_file);
  const StatusOr<double> want = fresh.EstimateSt(0, 7);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

}  // namespace
}  // namespace relmax
