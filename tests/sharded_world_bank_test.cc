// ShardedWorldBank: the partition-sharded bit-matrix behind --partitions.
// The load-bearing contract is canonical-layout bit-identity — a sharded
// bank's edge rows and flood fixpoints must equal the flat WorldBank's bit
// for bit, for any shard count, because the world draws are the same stream
// and only their storage destination differs. Also pinned: the
// boundary-exchange flood's convergence property (rerunning on a converged
// matrix propagates zero blocks) and tail masking at Z % 64 != 0.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "sampling/bitlane.h"
#include "sampling/sharded_world_bank.h"
#include "sampling/world_bank.h"
#include "sampling/world_view.h"

namespace relmax {
namespace {

UncertainGraph RandomGraph(uint64_t seed, NodeId n, double density,
                           bool directed) {
  UncertainGraph g = directed ? UncertainGraph::Directed(n)
                              : UncertainGraph::Undirected(n);
  Rng rng(seed);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = directed ? 0 : u + 1; v < n; ++v) {
      if (u == v) continue;
      if (rng.NextDouble() < density) {
        EXPECT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  return g;
}

std::vector<uint64_t> ToVec(std::span<const uint64_t> bits) {
  return std::vector<uint64_t>(bits.begin(), bits.end());
}

// Z = 150 exercises the Z % 64 != 0 tail (150 = 2*64 + 22).
constexpr int kSamples = 150;

TEST(ShardedWorldBankTest, EdgeRowsBitIdenticalToFlatBank) {
  for (bool directed : {false, true}) {
    const UncertainGraph g = RandomGraph(31, 24, 0.25, directed);
    const WorldBank flat(g, {.num_samples = kSamples, .seed = 13});
    for (int shards : {1, 2, 4, 8}) {
      const ShardedWorldBank sharded(
          g, {.num_samples = kSamples, .seed = 13, .num_partitions = shards});
      ASSERT_EQ(sharded.num_worlds(), flat.num_worlds());
      ASSERT_EQ(sharded.num_edges(), flat.num_edges());
      ASSERT_EQ(sharded.num_shards(), shards);
      for (size_t e = 0; e < g.num_edges(); ++e) {
        ASSERT_EQ(ToVec(sharded.EdgeUpWorlds(static_cast<EdgeId>(e))),
                  ToVec(flat.EdgeUpWorlds(static_cast<EdgeId>(e))))
            << "edge " << e << " shards " << shards
            << (directed ? " directed" : " undirected");
      }
    }
  }
}

TEST(ShardedWorldBankTest, FloodFixpointBitIdenticalToFlatBank) {
  for (bool directed : {false, true}) {
    const UncertainGraph g = RandomGraph(47, 20, 0.2, directed);
    const WorldBank flat(g, {.num_samples = kSamples, .seed = 5});
    const std::vector<EdgeId> all = flat.AllEdges();
    for (int shards : {2, 4}) {
      const ShardedWorldBank sharded(
          g, {.num_samples = kSamples, .seed = 5, .num_partitions = shards});
      for (NodeId s : {NodeId{0}, NodeId{7}, NodeId{19}}) {
        for (bool backward : {false, true}) {
          bitlane::BitMatrix want, got;
          flat.ReachabilityFixpoint(s, backward, all, &want);
          sharded.ReachabilityFixpoint(s, backward, all, &got);
          for (NodeId v = 0; v < g.num_nodes(); ++v) {
            ASSERT_EQ(ToVec(got.row_span(v)), ToVec(want.row_span(v)))
                << "s=" << s << " v=" << v << " shards=" << shards
                << " backward=" << backward;
          }
        }
      }
    }
  }
}

TEST(ShardedWorldBankTest, ConvergedRerunPropagatesZeroBlocks) {
  // kSeedsAreFacts on an already-converged reach matrix must report 0
  // changed-block propagations — the boundary exchange's termination proof
  // in regression form (a shard re-enqueueing unchanged boundary blocks
  // would spin here).
  const UncertainGraph g = RandomGraph(9, 18, 0.25, false);
  const ShardedWorldBank bank(
      g, {.num_samples = kSamples, .seed = 21, .num_partitions = 4});
  const std::vector<EdgeId> all = bank.AllEdges();
  bitlane::BitMatrix reach;
  const int64_t first =
      bank.ReachabilityFixpoint(0, /*backward=*/false, all, &reach);
  EXPECT_GT(first, 0);
  const int64_t rerun = bank.ReachabilityFixpoint(
      0, /*backward=*/false, all, &reach,
      WorldView::SeedPolicy::kSeedsAreFacts);
  EXPECT_EQ(rerun, 0);
}

TEST(ShardedWorldBankTest, ActiveEdgeSubsetsRespected) {
  // Floods with a restricted active set must match the flat bank's — the
  // per-shard sub-CSRs carry edge ids, and inactive edges must not leak
  // across shard boundaries.
  const UncertainGraph g = RandomGraph(63, 16, 0.3, true);
  const WorldBank flat(g, {.num_samples = kSamples, .seed = 2});
  const ShardedWorldBank sharded(
      g, {.num_samples = kSamples, .seed = 2, .num_partitions = 3});
  std::vector<EdgeId> half;
  for (size_t e = 0; e < g.num_edges(); e += 2) {
    half.push_back(static_cast<EdgeId>(e));
  }
  bitlane::BitMatrix want, got;
  flat.ReachabilityFixpoint(1, /*backward=*/false, half, &want);
  sharded.ReachabilityFixpoint(1, /*backward=*/false, half, &got);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(ToVec(got.row_span(v)), ToVec(want.row_span(v))) << "v=" << v;
  }
}

TEST(ShardedWorldBankTest, ShardBankBytesPartitionTheFlatFootprint) {
  const UncertainGraph g = RandomGraph(55, 22, 0.25, false);
  const WorldBank flat(g, {.num_samples = kSamples, .seed = 77});
  const size_t flat_bytes = flat.ShardBankBytes()[0];
  for (int shards : {2, 4}) {
    const ShardedWorldBank sharded(
        g, {.num_samples = kSamples, .seed = 77, .num_partitions = shards});
    const std::vector<size_t> per_shard = sharded.ShardBankBytes();
    ASSERT_EQ(per_shard.size(), static_cast<size_t>(shards));
    size_t total = 0;
    for (size_t b : per_shard) total += b;
    EXPECT_EQ(total, flat_bytes);
  }
}

TEST(ShardedWorldBankTest, MakeWorldViewPicksTheRightImplementation) {
  const UncertainGraph g = RandomGraph(4, 10, 0.3, false);
  const std::unique_ptr<WorldView> flat =
      MakeWorldView(g, {.num_samples = kSamples, .seed = 1});
  EXPECT_EQ(flat->num_shards(), 1);
  EXPECT_EQ(flat->partition(), nullptr);
  const std::unique_ptr<WorldView> sharded = MakeWorldView(
      g, {.num_samples = kSamples, .seed = 1, .num_partitions = 3});
  EXPECT_EQ(sharded->num_shards(), 3);
  ASSERT_NE(sharded->partition(), nullptr);
  // The views answer identically through the common interface.
  for (size_t e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(ToVec(sharded->EdgeUpWorlds(static_cast<EdgeId>(e))),
              ToVec(flat->EdgeUpWorlds(static_cast<EdgeId>(e))));
  }
}

}  // namespace
}  // namespace relmax
