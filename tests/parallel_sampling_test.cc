// Determinism and accuracy of the batched parallel sampling runtime: a fixed
// seed must give bit-identical estimates for any thread count, and the
// estimates must still track the exact factoring oracle. The same contract
// covers WorldBank-backed solves (reuse_worlds): selected edges and reported
// reliabilities must not depend on num_threads.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/greedy.h"
#include "core/evaluate.h"
#include "core/solver.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "sampling/parallel.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"

namespace relmax {
namespace {

UncertainGraph DiamondGraph() {
  // s=0 -> {1, 2} -> t=3, all edges 0.5, plus a direct 0->3 edge at 0.2.
  UncertainGraph g = UncertainGraph::Directed(4);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 3, 0.2).ok());
  return g;
}

UncertainGraph BridgeGraph() {
  // Two triangles joined by a bridge edge 2-3 (undirected): the classic
  // factoring fixture — the bridge dominates s=0 to t=5 reliability.
  UncertainGraph g = UncertainGraph::Undirected(6);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(3, 4, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(4, 5, 0.7).ok());
  EXPECT_TRUE(g.AddEdge(3, 5, 0.7).ok());
  return g;
}

const int kThreadCounts[] = {1, 2, 8};

TEST(ParallelMcTest, BitIdenticalAcrossThreadCountsOnDiamond) {
  const UncertainGraph g = DiamondGraph();
  const double reference =
      EstimateReliability(g, 0, 3, {.num_samples = 10000, .seed = 7,
                                    .num_threads = 1});
  for (int threads : kThreadCounts) {
    const double estimate =
        EstimateReliability(g, 0, 3, {.num_samples = 10000, .seed = 7,
                                      .num_threads = threads});
    EXPECT_EQ(estimate, reference) << "num_threads = " << threads;
  }
}

TEST(ParallelMcTest, BitIdenticalAcrossThreadCountsOnBridge) {
  const UncertainGraph g = BridgeGraph();
  const double reference =
      EstimateReliability(g, 0, 5, {.num_samples = 9999, .seed = 13,
                                    .num_threads = 1});
  for (int threads : kThreadCounts) {
    const double estimate =
        EstimateReliability(g, 0, 5, {.num_samples = 9999, .seed = 13,
                                      .num_threads = threads});
    EXPECT_EQ(estimate, reference) << "num_threads = " << threads;
  }
}

TEST(ParallelMcTest, MatchesExactFactoringOnDiamond) {
  const UncertainGraph g = DiamondGraph();
  const double exact = ExactReliabilityFactoring(g, 0, 3).value();
  for (int threads : kThreadCounts) {
    const double estimate =
        EstimateReliability(g, 0, 3, {.num_samples = 60000, .seed = 1,
                                      .num_threads = threads});
    EXPECT_NEAR(estimate, exact, 0.01) << "num_threads = " << threads;
  }
}

TEST(ParallelMcTest, MatchesExactFactoringOnBridge) {
  const UncertainGraph g = BridgeGraph();
  const double exact = ExactReliabilityFactoring(g, 0, 5).value();
  for (int threads : kThreadCounts) {
    const double estimate =
        EstimateReliability(g, 0, 5, {.num_samples = 60000, .seed = 3,
                                      .num_threads = threads});
    EXPECT_NEAR(estimate, exact, 0.01) << "num_threads = " << threads;
  }
}

TEST(ParallelMcTest, ZeroThreadsMeansAllCoresAndStaysIdentical) {
  const UncertainGraph g = BridgeGraph();
  const double serial =
      EstimateReliability(g, 0, 5, {.num_samples = 5000, .seed = 21,
                                    .num_threads = 1});
  const double all_cores =
      EstimateReliability(g, 0, 5, {.num_samples = 5000, .seed = 21,
                                    .num_threads = 0});
  EXPECT_EQ(all_cores, serial);
}

TEST(ParallelMcTest, FromSourceBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = DiamondGraph();
  const std::vector<double> reference = ReliabilityFromSource(
      g, 0, {.num_samples = 8000, .seed = 5, .num_threads = 1});
  for (int threads : kThreadCounts) {
    const std::vector<double> estimate = ReliabilityFromSource(
        g, 0, {.num_samples = 8000, .seed = 5, .num_threads = threads});
    EXPECT_EQ(estimate, reference) << "num_threads = " << threads;
  }
  // And the values still track the oracle.
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    const double exact = ExactReliabilityFactoring(g, 0, v).value();
    EXPECT_NEAR(reference[v], exact, 0.02) << "node " << v;
  }
}

TEST(ParallelMcTest, ToTargetBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = BridgeGraph();
  const std::vector<double> reference = ReliabilityToTarget(
      g, 5, {.num_samples = 8000, .seed = 29, .num_threads = 1});
  for (int threads : kThreadCounts) {
    const std::vector<double> estimate = ReliabilityToTarget(
        g, 5, {.num_samples = 8000, .seed = 29, .num_threads = threads});
    EXPECT_EQ(estimate, reference) << "num_threads = " << threads;
  }
}

TEST(ParallelMcTest, SetReliabilityBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = BridgeGraph();
  const double reference = ParallelSetReliability(
      g, {0, 1}, 5, {.num_samples = 8000, .seed = 31, .num_threads = 1});
  for (int threads : kThreadCounts) {
    const double estimate = ParallelSetReliability(
        g, {0, 1}, 5, {.num_samples = 8000, .seed = 31,
                       .num_threads = threads});
    EXPECT_EQ(estimate, reference) << "num_threads = " << threads;
  }
}

TEST(ParallelRssTest, BitIdenticalAcrossThreadCountsOnDiamond) {
  const UncertainGraph g = DiamondGraph();
  const double reference = EstimateReliabilityRss(
      g, 0, 3, {.num_samples = 2000, .seed = 7, .num_threads = 1});
  for (int threads : kThreadCounts) {
    const double estimate = EstimateReliabilityRss(
        g, 0, 3, {.num_samples = 2000, .seed = 7, .num_threads = threads});
    EXPECT_EQ(estimate, reference) << "num_threads = " << threads;
  }
}

TEST(ParallelRssTest, BitIdenticalAcrossThreadCountsOnBridge) {
  const UncertainGraph g = BridgeGraph();
  const double reference = EstimateReliabilityRss(
      g, 0, 5, {.num_samples = 2000, .seed = 11, .num_threads = 1});
  for (int threads : kThreadCounts) {
    const double estimate = EstimateReliabilityRss(
        g, 0, 5, {.num_samples = 2000, .seed = 11, .num_threads = threads});
    EXPECT_EQ(estimate, reference) << "num_threads = " << threads;
  }
}

TEST(ParallelRssTest, MatchesExactFactoring) {
  const UncertainGraph diamond = DiamondGraph();
  const UncertainGraph bridge = BridgeGraph();
  EXPECT_NEAR(EstimateReliabilityRss(diamond, 0, 3,
                                     {.num_samples = 20000, .seed = 3,
                                      .num_threads = 4}),
              ExactReliabilityFactoring(diamond, 0, 3).value(), 0.02);
  EXPECT_NEAR(EstimateReliabilityRss(bridge, 0, 5,
                                     {.num_samples = 20000, .seed = 3,
                                      .num_threads = 4}),
              ExactReliabilityFactoring(bridge, 0, 5).value(), 0.02);
}

TEST(ParallelRssTest, FromSourceBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = BridgeGraph();
  RssSampler reference_sampler(
      g, {.num_samples = 1000, .seed = 5, .num_threads = 1});
  const std::vector<double> reference = reference_sampler.FromSource(0);
  for (int threads : kThreadCounts) {
    RssSampler sampler(g,
                       {.num_samples = 1000, .seed = 5,
                        .num_threads = threads});
    EXPECT_EQ(sampler.FromSource(0), reference)
        << "num_threads = " << threads;
  }
}

TEST(ParallelEvaluateTest, PairwiseBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = BridgeGraph();
  const auto reference = PairwiseReliability(g, {0, 1}, {4, 5}, 6000, 17, 1);
  for (int threads : kThreadCounts) {
    const auto matrix = PairwiseReliability(g, {0, 1}, {4, 5}, 6000, 17,
                                            threads);
    EXPECT_EQ(matrix, reference) << "num_threads = " << threads;
  }
  EXPECT_NEAR(reference[1][1], ExactReliabilityFactoring(g, 1, 5).value(),
              0.02);
}

TEST(ParallelEvaluateTest, InfluenceSpreadBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = DiamondGraph();
  const double reference = InfluenceSpread(g, {0}, {1, 2, 3}, 6000, 19, 1);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(InfluenceSpread(g, {0}, {1, 2, 3}, 6000, 19, threads),
              reference)
        << "num_threads = " << threads;
  }
}

TEST(WorldBankSolveTest, BeIpSolvesBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = BridgeGraph();
  CandidateSet candidates;
  candidates.edges = {{0, 3, 0.5}, {1, 4, 0.5}, {2, 5, 0.5}, {0, 4, 0.5}};
  for (CoreMethod method :
       {CoreMethod::kBatchEdges, CoreMethod::kIndividualPaths}) {
    SolverOptions options;
    options.budget_k = 2;
    options.num_samples = 3000;
    options.seed = 23;
    options.reuse_worlds = true;
    options.num_threads = 1;
    const auto reference =
        MaximizeReliabilityWithCandidates(g, 0, 5, candidates, options,
                                          method);
    ASSERT_TRUE(reference.ok());
    EXPECT_FALSE(reference->added_edges.empty());
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      const auto solution =
          MaximizeReliabilityWithCandidates(g, 0, 5, candidates, options,
                                            method);
      ASSERT_TRUE(solution.ok());
      EXPECT_EQ(solution->added_edges, reference->added_edges)
          << CoreMethodName(method) << " num_threads = " << threads;
      EXPECT_EQ(solution->reliability_after, reference->reliability_after)
          << CoreMethodName(method) << " num_threads = " << threads;
    }
  }
}

TEST(WorldBankSolveTest, GreedyBaselinesBitIdenticalAcrossThreadCounts) {
  const UncertainGraph g = BridgeGraph();
  const std::vector<Edge> candidates = {
      {0, 3, 0.5}, {1, 4, 0.5}, {2, 5, 0.5}, {0, 4, 0.5}};
  SolverOptions options;
  options.budget_k = 2;
  options.num_samples = 3000;
  options.seed = 29;
  options.reuse_worlds = true;
  options.num_threads = 1;
  const auto hill_reference = SelectHillClimbing(g, 0, 5, candidates, options);
  const auto topk_reference = SelectIndividualTopK(g, 0, 5, candidates,
                                                   options);
  ASSERT_TRUE(hill_reference.ok());
  ASSERT_TRUE(topk_reference.ok());
  EXPECT_EQ(hill_reference->size(), 2u);
  for (int threads : kThreadCounts) {
    options.num_threads = threads;
    const auto hill = SelectHillClimbing(g, 0, 5, candidates, options);
    const auto topk = SelectIndividualTopK(g, 0, 5, candidates, options);
    ASSERT_TRUE(hill.ok());
    ASSERT_TRUE(topk.ok());
    EXPECT_EQ(*hill, *hill_reference) << "num_threads = " << threads;
    EXPECT_EQ(*topk, *topk_reference) << "num_threads = " << threads;
  }
}

TEST(ParallelEvaluateTest, SolverOptionsThreadsDoNotChangeEstimates) {
  const UncertainGraph g = BridgeGraph();
  SolverOptions serial;
  serial.num_samples = 4000;
  serial.num_threads = 1;
  SolverOptions parallel = serial;
  parallel.num_threads = 8;
  EXPECT_EQ(EstimateWithOptions(g, 0, 5, serial, 3),
            EstimateWithOptions(g, 0, 5, parallel, 3));
  serial.estimator = Estimator::kRss;
  parallel.estimator = Estimator::kRss;
  EXPECT_EQ(EstimateWithOptions(g, 0, 5, serial, 3),
            EstimateWithOptions(g, 0, 5, parallel, 3));
}

}  // namespace
}  // namespace relmax
