#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/candidates.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

// Chain s=0 -> 1 -> 2 -> 3 -> t=4 with strong probabilities, plus a stray
// node 5 connected only to t's side.
UncertainGraph ChainGraph() {
  UncertainGraph g = UncertainGraph::Directed(6);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(3, 4, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(5, 4, 0.9).ok());
  return g;
}

SolverOptions FastOptions() {
  SolverOptions options;
  options.elimination_samples = 400;
  options.num_samples = 200;
  options.hop_h = -1;
  options.seed = 7;
  return options;
}

TEST(CandidatesTest, SourceAndTargetAlwaysIncluded) {
  const UncertainGraph g = ChainGraph();
  auto result = SelectCandidates(g, 0, 4, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_NE(std::find(result->from_source.begin(), result->from_source.end(),
                      0u),
            result->from_source.end());
  EXPECT_NE(std::find(result->to_target.begin(), result->to_target.end(), 4u),
            result->to_target.end());
  // C(s) is sorted by reliability from s: s itself first.
  EXPECT_EQ(result->from_source.front(), 0u);
  EXPECT_EQ(result->to_target.front(), 4u);
}

TEST(CandidatesTest, ZeroReliabilityNodesExcluded) {
  const UncertainGraph g = ChainGraph();
  auto result = SelectCandidates(g, 0, 4, FastOptions());
  ASSERT_TRUE(result.ok());
  // Node 5 is unreachable from s = 0, so it cannot be in C(s).
  EXPECT_EQ(std::find(result->from_source.begin(), result->from_source.end(),
                      5u),
            result->from_source.end());
  // But node 5 reaches t, so it belongs to C(t).
  EXPECT_NE(std::find(result->to_target.begin(), result->to_target.end(), 5u),
            result->to_target.end());
}

TEST(CandidatesTest, TopRLimitsSetSizes) {
  const UncertainGraph g = ChainGraph();
  SolverOptions options = FastOptions();
  options.top_r = 2;
  auto result = SelectCandidates(g, 0, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->from_source.size(), 2u);
  EXPECT_LE(result->to_target.size(), 2u);
  // The anchors survive even with tiny r.
  EXPECT_NE(std::find(result->from_source.begin(), result->from_source.end(),
                      0u),
            result->from_source.end());
  EXPECT_NE(std::find(result->to_target.begin(), result->to_target.end(), 4u),
            result->to_target.end());
}

TEST(CandidatesTest, CandidateEdgesAreMissingNonSelfPairs) {
  const UncertainGraph g = ChainGraph();
  auto result = SelectCandidates(g, 0, 4, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->edges.empty());
  for (const Edge& e : result->edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_FALSE(g.HasEdge(e.src, e.dst)) << e.src << "->" << e.dst;
    EXPECT_DOUBLE_EQ(e.prob, FastOptions().zeta);
  }
  // The direct s-t edge is a candidate (Observation 4 relies on this).
  const bool has_st =
      std::any_of(result->edges.begin(), result->edges.end(),
                  [](const Edge& e) { return e.src == 0 && e.dst == 4; });
  EXPECT_TRUE(has_st);
}

TEST(CandidatesTest, HopConstraintFiltersRemotePairs) {
  const UncertainGraph g = ChainGraph();
  SolverOptions options = FastOptions();
  options.hop_h = 2;
  auto result = SelectCandidates(g, 0, 4, options);
  ASSERT_TRUE(result.ok());
  for (const Edge& e : result->edges) {
    // 0 and 4 are 4 hops apart, so (0, 4) must be filtered out.
    EXPECT_FALSE(e.src == 0 && e.dst == 4);
  }
}

TEST(CandidatesTest, UndirectedCandidatesDeduped) {
  UncertainGraph g = UncertainGraph::Undirected(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  auto result = SelectCandidates(g, 0, 3, FastOptions());
  ASSERT_TRUE(result.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : result->edges) {
    const auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate candidate " << e.src << "-" << e.dst;
  }
}

TEST(CandidatesTest, ValidatesArguments) {
  const UncertainGraph g = ChainGraph();
  EXPECT_EQ(SelectCandidates(g, 0, 99, FastOptions()).status().code(),
            StatusCode::kOutOfRange);
  SolverOptions bad_r = FastOptions();
  bad_r.top_r = 0;
  EXPECT_EQ(SelectCandidates(g, 0, 4, bad_r).status().code(),
            StatusCode::kInvalidArgument);
  SolverOptions bad_zeta = FastOptions();
  bad_zeta.zeta = 0.0;
  EXPECT_EQ(SelectCandidates(g, 0, 4, bad_zeta).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CandidatesTest, MultiUnionsPerQuerySets) {
  const UncertainGraph g = ChainGraph();
  auto result = SelectCandidatesMulti(g, {0, 5}, {4}, FastOptions());
  ASSERT_TRUE(result.ok());
  // Both sources appear in the union C(s).
  EXPECT_NE(std::find(result->from_source.begin(), result->from_source.end(),
                      0u),
            result->from_source.end());
  EXPECT_NE(std::find(result->from_source.begin(), result->from_source.end(),
                      5u),
            result->from_source.end());
  EXPECT_EQ(SelectCandidatesMulti(g, {}, {4}, FastOptions()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CandidatesTest, AllMissingEdgesCountsAndConstraints) {
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  // Directed complete graph minus self loops has 12 ordered pairs; one
  // exists.
  const std::vector<Edge> all = AllMissingEdges(g, 0.5, -1);
  EXPECT_EQ(all.size(), 11u);
  for (const Edge& e : all) {
    EXPECT_FALSE(g.HasEdge(e.src, e.dst));
    EXPECT_DOUBLE_EQ(e.prob, 0.5);
  }
  // Undirected: C(4,2) = 6 pairs, one exists.
  UncertainGraph u = UncertainGraph::Undirected(4);
  ASSERT_TRUE(u.AddEdge(0, 1, 0.5).ok());
  EXPECT_EQ(AllMissingEdges(u, 0.5, -1).size(), 5u);
  // Hop constraint: with h = 1 nothing qualifies (all non-adjacent pairs are
  // at distance > 1 by definition, adjacent pairs already have edges).
  EXPECT_TRUE(AllMissingEdges(u, 0.5, 1).empty());
}

}  // namespace
}  // namespace relmax
