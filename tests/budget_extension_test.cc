#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/budget_extension.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

SolverOptions FastOptions() {
  SolverOptions options;
  options.top_r = 12;
  options.top_l = 15;
  options.hop_h = -1;
  options.elimination_samples = 500;
  options.num_samples = 1500;
  options.seed = 5;
  return options;
}

// Two-hop gap: s(0) - 1 exists, 1 - 2 and 0 - 2 are missing, t = 2.
UncertainGraph GapGraph() {
  UncertainGraph g = UncertainGraph::Undirected(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.8).ok());
  return g;
}

TEST(BudgetExtensionTest, AllocatesBudgetToUsefulEdges) {
  const UncertainGraph g = GapGraph();
  BudgetOptions budget{.total_budget = 0.9, .max_edges = 2, .units = 9,
                       .max_edge_prob = 0.9};
  auto solution =
      MaximizeReliabilityWithProbabilityBudget(g, 0, 2, budget, FastOptions());
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_FALSE(solution->added_edges.empty());
  EXPECT_LE(solution->budget_used, 0.9 + 1e-9);
  EXPECT_GT(solution->gain(), 0.3);
  // The best single allocation is the full 0.9 on the direct edge (0, 2):
  // R = 1 - (1 - 0.9)(1 - 0.8 p_12)... with p_12 = 0 -> 0.9.
  ASSERT_EQ(solution->added_edges.size(), 1u);
  const Edge& e = solution->added_edges[0];
  EXPECT_TRUE((e.src == 0 && e.dst == 2) || (e.src == 2 && e.dst == 0));
  EXPECT_NEAR(e.prob, 0.9, 1e-9);
}

TEST(BudgetExtensionTest, MaxEdgesLimitsDistinctEdges) {
  // Rich candidate space but only one distinct edge allowed.
  UncertainGraph g = UncertainGraph::Undirected(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 4, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(2, 4, 0.5).ok());
  BudgetOptions budget{.total_budget = 1.6, .max_edges = 1, .units = 8,
                       .max_edge_prob = 0.8};
  auto solution =
      MaximizeReliabilityWithProbabilityBudget(g, 0, 4, budget, FastOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_LE(solution->added_edges.size(), 1u);
  if (!solution->added_edges.empty()) {
    EXPECT_LE(solution->added_edges[0].prob, 0.8 + 1e-9);
  }
}

TEST(BudgetExtensionTest, BudgetCapBinds) {
  const UncertainGraph g = GapGraph();
  BudgetOptions small{.total_budget = 0.3, .max_edges = 3, .units = 3,
                      .max_edge_prob = 0.95};
  BudgetOptions large{.total_budget = 1.8, .max_edges = 3, .units = 18,
                      .max_edge_prob = 0.95};
  auto with_small =
      MaximizeReliabilityWithProbabilityBudget(g, 0, 2, small, FastOptions());
  auto with_large =
      MaximizeReliabilityWithProbabilityBudget(g, 0, 2, large, FastOptions());
  ASSERT_TRUE(with_small.ok() && with_large.ok());
  EXPECT_LE(with_small->budget_used, 0.3 + 1e-9);
  // More budget can never hurt (greedy may leave slack but not regress).
  EXPECT_GE(with_large->gain() + 0.05, with_small->gain());
}

TEST(BudgetExtensionTest, FixedZetaIsASpecialCase) {
  // With budget = k * zeta, units = k, and max_edge_prob = zeta, each opened
  // edge gets exactly zeta — the original Problem 1 allocation.
  const UncertainGraph g = GapGraph();
  BudgetOptions budget{.total_budget = 1.0, .max_edges = 2, .units = 2,
                       .max_edge_prob = 0.5};
  auto solution =
      MaximizeReliabilityWithProbabilityBudget(g, 0, 2, budget, FastOptions());
  ASSERT_TRUE(solution.ok());
  for (const Edge& e : solution->added_edges) {
    EXPECT_NEAR(e.prob, 0.5, 1e-9);
  }
}

TEST(BudgetExtensionTest, DegenerateAndInvalidInputs) {
  const UncertainGraph g = GapGraph();
  auto self = MaximizeReliabilityWithProbabilityBudget(
      g, 1, 1, {.total_budget = 1.0}, FastOptions());
  ASSERT_TRUE(self.ok());
  EXPECT_DOUBLE_EQ(self->reliability_after, 1.0);

  EXPECT_EQ(MaximizeReliabilityWithProbabilityBudget(
                g, 0, 9, {.total_budget = 1.0}, FastOptions())
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(MaximizeReliabilityWithProbabilityBudget(
                g, 0, 2, {.total_budget = -1.0}, FastOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MaximizeReliabilityWithProbabilityBudget(
                g, 0, 2, {.total_budget = 1.0, .max_edges = 0}, FastOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      MaximizeReliabilityWithProbabilityBudget(
          g, 0, 2, {.total_budget = 1.0, .max_edge_prob = 1.5}, FastOptions())
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(BudgetExtensionTest, SplitAllocationBeatsSingleEdgeWhenCapBinds) {
  // With a low per-edge cap, spreading budget across two parallel routes
  // beats piling it on one: 1-(1-0.4)(1-0.4) = 0.64 > 0.4.
  UncertainGraph g = UncertainGraph::Undirected(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  // Missing: (1, 3) and (2, 3); direct (0, 3) too.
  BudgetOptions budget{.total_budget = 0.8, .max_edges = 3, .units = 8,
                       .max_edge_prob = 0.4};
  auto solution =
      MaximizeReliabilityWithProbabilityBudget(g, 0, 3, budget, FastOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(solution->added_edges.size(), 2u);
  EXPECT_GT(solution->gain(), 0.5);
}

}  // namespace
}  // namespace relmax
