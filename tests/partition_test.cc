// PartitionGraph: the BFS/label-propagation edge-cut partitioner behind the
// sharded WorldBank. The contract under test: the partition is a pure
// function of (graph, options) — deterministic for a given seed — every node
// and edge is assigned exactly once, edge ownership follows the documented
// min-endpoint-shard rule, boundary bookkeeping (lists + per-node shard
// masks) is consistent with the assignment, and degenerate shard counts
// (1, > nodes, > kMaxPartitionShards) clamp instead of crashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "partition/partitioner.h"

namespace relmax {
namespace {

UncertainGraph RandomGraph(uint64_t seed, NodeId n, double density,
                           bool directed) {
  UncertainGraph g = directed ? UncertainGraph::Directed(n)
                              : UncertainGraph::Undirected(n);
  Rng rng(seed);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = directed ? 0 : u + 1; v < n; ++v) {
      if (u == v) continue;
      if (rng.NextDouble() < density) {
        EXPECT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.1, 0.9)).ok());
      }
    }
  }
  return g;
}

// Structural invariants every partition must satisfy, regardless of graph
// shape or options.
void CheckInvariants(const UncertainGraph& g, const Partition& p) {
  ASSERT_GE(p.num_shards, 1);
  ASSERT_EQ(p.node_shard.size(), g.num_nodes());
  ASSERT_EQ(p.edge_shard.size(), g.num_edges());
  ASSERT_EQ(p.shard_edges.size(), static_cast<size_t>(p.num_shards));
  ASSERT_EQ(p.boundary_nodes.size(), static_cast<size_t>(p.num_shards));
  ASSERT_EQ(p.node_shard_mask.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_LT(p.node_shard[v], static_cast<uint32_t>(p.num_shards));
  }
  // Edge ownership: min endpoint shard; shard_edges lists each edge exactly
  // once, under its owner, in ascending id order.
  size_t listed = 0;
  const std::vector<Edge>& edges = g.EdgesById();
  for (size_t e = 0; e < edges.size(); ++e) {
    const uint32_t owner =
        std::min(p.node_shard[edges[e].src], p.node_shard[edges[e].dst]);
    ASSERT_EQ(p.edge_shard[e], owner);
  }
  for (int k = 0; k < p.num_shards; ++k) {
    ASSERT_TRUE(std::is_sorted(p.shard_edges[k].begin(),
                               p.shard_edges[k].end()));
    for (EdgeId e : p.shard_edges[k]) {
      ASSERT_EQ(p.edge_shard[e], static_cast<uint32_t>(k));
    }
    listed += p.shard_edges[k].size();
  }
  ASSERT_EQ(listed, g.num_edges());
  // Boundary nodes are exactly the nodes whose shard mask has >= 2 bits, and
  // a node's own shard is always in its mask when it touches any edge.
  size_t cut = 0;
  for (size_t e = 0; e < edges.size(); ++e) {
    if (p.node_shard[edges[e].src] != p.node_shard[edges[e].dst]) ++cut;
  }
  ASSERT_EQ(p.cut_edges, cut);
  for (int k = 0; k < p.num_shards; ++k) {
    for (NodeId v : p.boundary_nodes[k]) {
      ASSERT_GE(__builtin_popcountll(p.node_shard_mask[v]), 2);
      ASSERT_TRUE((p.node_shard_mask[v] >> k) & 1);
    }
  }
}

TEST(PartitionTest, DeterministicForFixedSeed) {
  const UncertainGraph g = RandomGraph(17, 40, 0.15, false);
  for (int shards : {2, 4, 7}) {
    const PartitionOptions options{.num_shards = shards, .seed = 99};
    const Partition a = PartitionGraph(g, options);
    const Partition b = PartitionGraph(g, options);
    EXPECT_EQ(a.node_shard, b.node_shard);
    EXPECT_EQ(a.edge_shard, b.edge_shard);
    EXPECT_EQ(a.node_shard_mask, b.node_shard_mask);
    EXPECT_EQ(a.cut_edges, b.cut_edges);
    EXPECT_EQ(a.boundary_nodes, b.boundary_nodes);
    CheckInvariants(g, a);
  }
}

TEST(PartitionTest, InvariantsHoldAcrossShapes) {
  for (bool directed : {false, true}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      const UncertainGraph g = RandomGraph(seed, 25, 0.2, directed);
      for (int shards : {1, 2, 3, 5, 8}) {
        const Partition p =
            PartitionGraph(g, {.num_shards = shards, .seed = 7});
        EXPECT_EQ(p.num_shards, shards);
        CheckInvariants(g, p);
      }
    }
  }
}

TEST(PartitionTest, SingleShardOwnsEverything) {
  const UncertainGraph g = RandomGraph(5, 12, 0.3, false);
  const Partition p = PartitionGraph(g, {.num_shards = 1, .seed = 42});
  EXPECT_EQ(p.num_shards, 1);
  EXPECT_EQ(p.cut_edges, 0u);
  EXPECT_EQ(p.shard_edges[0].size(), g.num_edges());
  for (int k = 0; k < p.num_shards; ++k) {
    EXPECT_TRUE(p.boundary_nodes[k].empty());
  }
  CheckInvariants(g, p);
}

TEST(PartitionTest, ShardCountClampsToNodesAndMask) {
  const UncertainGraph g = RandomGraph(3, 5, 0.5, false);
  // More shards than nodes: clamps to n.
  const Partition p = PartitionGraph(g, {.num_shards = 50, .seed = 1});
  EXPECT_EQ(p.num_shards, 5);
  CheckInvariants(g, p);
  // More shards than the 64-shard mask limit: clamps to 64.
  const UncertainGraph big = RandomGraph(8, 100, 0.05, false);
  const Partition q = PartitionGraph(big, {.num_shards = 200, .seed = 1});
  EXPECT_EQ(q.num_shards, kMaxPartitionShards);
  CheckInvariants(big, q);
}

TEST(PartitionTest, FlagsEmptyEdgeShards) {
  // A 2-node, 1-edge graph split into 2 shards: the single edge has one
  // owner, so the other shard owns nothing and the partition says so.
  UncertainGraph g = UncertainGraph::Undirected(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  const Partition p = PartitionGraph(g, {.num_shards = 2, .seed = 3});
  EXPECT_TRUE(p.has_empty_shard);
  CheckInvariants(g, p);

  // A denser graph at 2 shards keeps every shard populated.
  const UncertainGraph dense = RandomGraph(21, 30, 0.3, false);
  const Partition q = PartitionGraph(dense, {.num_shards = 2, .seed = 3});
  EXPECT_FALSE(q.has_empty_shard);
}

TEST(PartitionTest, RoughBalanceOnRandomGraphs) {
  // The refinement pass enforces a 1.25x balance cap on node counts; verify
  // no shard exceeds it (the guard is part of the determinism contract, so
  // regressions here change partitions everywhere).
  const UncertainGraph g = RandomGraph(11, 60, 0.1, false);
  for (int shards : {2, 4}) {
    const Partition p = PartitionGraph(g, {.num_shards = shards, .seed = 9});
    std::vector<size_t> sizes(shards, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) ++sizes[p.node_shard[v]];
    const size_t cap =
        (static_cast<size_t>(g.num_nodes()) * 5 + 4 * shards - 1) /
        (4 * shards);
    for (int k = 0; k < shards; ++k) EXPECT_LE(sizes[k], cap);
  }
}

}  // namespace
}  // namespace relmax
