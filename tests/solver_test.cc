#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/solver.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

// Small two-cluster graph: a dense cluster around s and one around t, joined
// by a single weak bridge — plenty of room for useful shortcut edges.
UncertainGraph TwoClusters(uint64_t seed = 3) {
  Rng rng(seed);
  UncertainGraph g = UncertainGraph::Undirected(12);
  auto connect_cluster = [&](NodeId lo, NodeId hi) {
    for (NodeId u = lo; u < hi; ++u) {
      for (NodeId v = u + 1; v <= hi; ++v) {
        if (rng.NextBernoulli(0.8)) {
          (void)g.AddEdge(u, v, rng.NextDouble(0.4, 0.8));
        }
      }
    }
  };
  connect_cluster(0, 5);
  connect_cluster(6, 11);
  EXPECT_TRUE(g.AddEdge(5, 6, 0.15).ok());  // weak bridge
  return g;
}

SolverOptions FastOptions(int k = 3) {
  SolverOptions options;
  options.budget_k = k;
  options.zeta = 0.5;
  options.top_r = 12;
  options.top_l = 15;
  options.hop_h = -1;
  options.elimination_samples = 400;
  options.num_samples = 400;
  options.seed = 21;
  return options;
}

TEST(SolverTest, ImprovesReliabilityWithinBudget) {
  const UncertainGraph g = TwoClusters();
  for (CoreMethod method :
       {CoreMethod::kBatchEdges, CoreMethod::kIndividualPaths,
        CoreMethod::kMostReliablePath}) {
    auto solution = MaximizeReliability(g, 0, 11, FastOptions(), method);
    ASSERT_TRUE(solution.ok()) << CoreMethodName(method);
    EXPECT_LE(solution->added_edges.size(), 3u) << CoreMethodName(method);
    EXPECT_FALSE(solution->added_edges.empty()) << CoreMethodName(method);
    EXPECT_GT(solution->gain(), 0.05) << CoreMethodName(method);
    for (const Edge& e : solution->added_edges) {
      EXPECT_FALSE(g.HasEdge(e.src, e.dst));
      EXPECT_DOUBLE_EQ(e.prob, 0.5);
    }
  }
}

TEST(SolverTest, DeterministicForFixedSeed) {
  const UncertainGraph g = TwoClusters();
  auto a = MaximizeReliability(g, 0, 11, FastOptions());
  auto b = MaximizeReliability(g, 0, 11, FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->added_edges.size(), b->added_edges.size());
  for (size_t i = 0; i < a->added_edges.size(); ++i) {
    EXPECT_EQ(a->added_edges[i].src, b->added_edges[i].src);
    EXPECT_EQ(a->added_edges[i].dst, b->added_edges[i].dst);
  }
  EXPECT_DOUBLE_EQ(a->reliability_after, b->reliability_after);
}

TEST(SolverTest, DistinctEdgesNoDuplicates) {
  const UncertainGraph g = TwoClusters();
  auto solution = MaximizeReliability(g, 0, 11, FastOptions(5));
  ASSERT_TRUE(solution.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : solution->added_edges) {
    const auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

// Observation 4: when the direct st edge is allowed, the top-k solution
// includes it (it dominates any alternative use of one budget slot here).
TEST(SolverTest, Observation4DirectEdgeChosen) {
  UncertainGraph g = UncertainGraph::Undirected(6);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, 0.4).ok());
  SolverOptions options = FastOptions(1);
  options.top_r = 6;
  auto solution = MaximizeReliability(g, 0, 5, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->added_edges.size(), 1u);
  const Edge& e = solution->added_edges[0];
  EXPECT_TRUE((e.src == 0 && e.dst == 5) || (e.src == 5 && e.dst == 0));
}

TEST(SolverTest, StatsArePopulated) {
  const UncertainGraph g = TwoClusters();
  auto solution = MaximizeReliability(g, 0, 11, FastOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_GT(solution->stats.candidate_edges, 0u);
  EXPECT_GT(solution->stats.paths_considered, 0u);
  EXPECT_GE(solution->stats.total_seconds,
            solution->stats.selection_seconds);
  EXPECT_GT(solution->stats.peak_rss_bytes, 0u);
}

TEST(SolverTest, HonorsRssEstimator) {
  const UncertainGraph g = TwoClusters();
  SolverOptions options = FastOptions();
  options.estimator = Estimator::kRss;
  options.num_samples = 200;
  options.elimination_samples = 200;
  auto solution = MaximizeReliability(g, 0, 11, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_GT(solution->gain(), 0.0);
}

TEST(SolverTest, DegenerateAndInvalidQueries) {
  const UncertainGraph g = TwoClusters();
  auto self = MaximizeReliability(g, 4, 4, FastOptions());
  ASSERT_TRUE(self.ok());
  EXPECT_DOUBLE_EQ(self->reliability_before, 1.0);
  EXPECT_TRUE(self->added_edges.empty());

  EXPECT_EQ(MaximizeReliability(g, 0, 99, FastOptions()).status().code(),
            StatusCode::kOutOfRange);
  SolverOptions bad = FastOptions();
  bad.budget_k = 0;
  EXPECT_EQ(MaximizeReliability(g, 0, 11, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverTest, DegenerateQueryPopulatesStatsAndSkipsElimination) {
  // Regression: the s == t early return used to come back with empty stats
  // (no peak_rss_bytes), and MaximizeReliability still paid the full
  // candidate-elimination pass for a query whose answer is fixed.
  const UncertainGraph g = TwoClusters();
  auto self = MaximizeReliability(g, 4, 4, FastOptions());
  ASSERT_TRUE(self.ok());
  EXPECT_DOUBLE_EQ(self->reliability_before, 1.0);
  EXPECT_DOUBLE_EQ(self->reliability_after, 1.0);
  EXPECT_GT(self->stats.peak_rss_bytes, 0u);
  // Elimination is skipped entirely, not just timed at ~0.
  EXPECT_DOUBLE_EQ(self->stats.elimination_seconds, 0.0);
  EXPECT_EQ(self->stats.candidate_edges, 0u);

  // The WithCandidates variant reports the caller's candidate count.
  CandidateSet candidates;
  candidates.edges = {{0, 11, 0.5}, {1, 10, 0.5}};
  auto with = MaximizeReliabilityWithCandidates(g, 4, 4, candidates,
                                                FastOptions());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with->stats.candidate_edges, 2u);
  EXPECT_GT(with->stats.peak_rss_bytes, 0u);
}

TEST(SolverTest, ReuseWorldsOnAndOffPickSameEdgesWhenGainsAreDistinct) {
  // reuse_worlds parity pin at solver level: on the two-cluster fixture the
  // useful shortcuts have clearly distinct marginal gains, so the shared
  // world bank and per-evaluation re-sampling must select identical edges at
  // an equal sample budget. (On workloads with exactly symmetric candidates
  // the two modes may break such ties differently — that tolerance is
  // documented in README and BENCH_selection.json.)
  const UncertainGraph g = TwoClusters();
  for (CoreMethod method :
       {CoreMethod::kBatchEdges, CoreMethod::kIndividualPaths}) {
    SolverOptions on = FastOptions();
    on.num_samples = 4000;
    on.reuse_worlds = true;
    SolverOptions off = on;
    off.reuse_worlds = false;
    auto with = MaximizeReliability(g, 0, 11, on, method);
    auto without = MaximizeReliability(g, 0, 11, off, method);
    ASSERT_TRUE(with.ok() && without.ok());
    EXPECT_FALSE(with->added_edges.empty());
    EXPECT_EQ(with->added_edges, without->added_edges)
        << CoreMethodName(method);
  }
}

TEST(SolverTest, CustomCandidateSetWithPerEdgeProbabilities) {
  // Table 16 scenario: the caller supplies candidate edges with differing
  // probabilities instead of a fixed zeta.
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(1, 3, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.9).ok());
  CandidateSet candidates;
  candidates.edges = {{0, 1, 0.8}, {0, 2, 0.2}};
  SolverOptions options = FastOptions(1);
  auto solution =
      MaximizeReliabilityWithCandidates(g, 0, 3, candidates, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->added_edges.size(), 1u);
  // The stronger candidate (0 -> 1 at 0.8) must win.
  EXPECT_EQ(solution->added_edges[0].dst, 1u);
  EXPECT_DOUBLE_EQ(solution->added_edges[0].prob, 0.8);
}

// Budget sweep: gains are monotone (within sampling noise) in k, matching
// the paper's Tables 12-13 trend.
class SolverBudgetSweep : public testing::TestWithParam<int> {};

TEST_P(SolverBudgetSweep, GainGrowsWithBudget) {
  const UncertainGraph g = TwoClusters();
  const int k = GetParam();
  auto small = MaximizeReliability(g, 0, 11, FastOptions(k));
  auto large = MaximizeReliability(g, 0, 11, FastOptions(k + 2));
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GE(large->gain(), small->gain() - 0.08);  // sampling tolerance
}

INSTANTIATE_TEST_SUITE_P(Budgets, SolverBudgetSweep, testing::Values(1, 2, 4));

}  // namespace
}  // namespace relmax
