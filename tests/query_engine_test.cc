// Batch query engine: file-format parsing, validation, shared-world
// amortization, result caching, and the determinism contracts (thread and
// batch-composition invariance; per-query fallback exactly equal to the
// single-query public API).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/memory.h"
#include "common/rng.h"
#include "core/evaluate.h"
#include "graph/uncertain_graph.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"
#include "sampling/world_bank.h"

namespace relmax {
namespace {

UncertainGraph RandomGraph(uint64_t seed, NodeId n, double density,
                           bool directed) {
  Rng rng(seed);
  UncertainGraph g =
      directed ? UncertainGraph::Directed(n) : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(density)) {
        EXPECT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  return g;
}

// ------------------------------------------------------------ QuerySet

TEST(QuerySetTest, ParsesPairsCommentsAndBlankLines) {
  const auto set = QuerySet::Parse(
      "# header comment\n"
      "0 3\n"
      "\n"
      "  2 1   # trailing comment\n"
      "4 4\r\n");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->st_queries().size(), 3u);
  EXPECT_EQ(set->st_queries()[0], (StQuery{0, 3}));
  EXPECT_EQ(set->st_queries()[1], (StQuery{2, 1}));
  EXPECT_EQ(set->st_queries()[2], (StQuery{4, 4}));
}

TEST(QuerySetTest, RejectsMalformedLines) {
  EXPECT_FALSE(QuerySet::Parse("0\n").ok());
  EXPECT_FALSE(QuerySet::Parse("0 1 2\n").ok());
  EXPECT_FALSE(QuerySet::Parse("a b\n").ok());
  EXPECT_FALSE(QuerySet::Parse("# only comments\n\n").ok());
  EXPECT_FALSE(QuerySet::Parse(std::string("0 1\n\0 2\n", 8)).ok());
  // Ids that do not fit NodeId must fail loudly, not wrap to another node;
  // signs are rejected outright (sscanf would silently wrap "-1").
  EXPECT_FALSE(QuerySet::Parse("4294967296 1\n").ok());
  EXPECT_FALSE(QuerySet::Parse("-1 2\n").ok());
  EXPECT_FALSE(QuerySet::Parse("+1 2\n").ok());
  EXPECT_TRUE(QuerySet::Parse("4294967295 1\n").ok());  // == NodeId max
}

TEST(QuerySetTest, ValidateCatchesBadQueries) {
  const UncertainGraph g = RandomGraph(1, 5, 0.5, true);
  QuerySet out_of_range;
  out_of_range.AddSt(0, 5);
  EXPECT_FALSE(out_of_range.Validate(g).ok());

  QuerySet empty_aggregate;
  empty_aggregate.AddAggregate({{}, {1}, Aggregate::kAverage});
  EXPECT_FALSE(empty_aggregate.Validate(g).ok());

  QuerySet bad_k;
  bad_k.AddTopK({{{0, 1}}, 0});
  EXPECT_FALSE(bad_k.Validate(g).ok());

  QuerySet ok;
  ok.AddSt(0, 4);
  ok.AddAggregate({{0, 1}, {3, 4}, Aggregate::kMinimum});
  ok.AddTopK({{{0, 1}, {0, 2}}, 1});
  EXPECT_TRUE(ok.Validate(g).ok());
}

// --------------------------------------------------------- QueryEngine

QueryEngineOptions EngineOptions(int num_samples = 2000, uint64_t seed = 7) {
  QueryEngineOptions options;
  options.num_samples = num_samples;
  options.seed = seed;
  return options;
}

TEST(QueryEngineTest, PerQueryFallbackEqualsEstimateReliabilityExactly) {
  for (const bool directed : {false, true}) {
    const UncertainGraph g = RandomGraph(11, 12, 0.25, directed);
    QueryEngineOptions options = EngineOptions();
    options.reuse_worlds = false;
    QueryEngine engine(g, options);
    QuerySet set;
    for (NodeId t = 1; t < 8; ++t) set.AddSt(0, t);
    const auto result = engine.Answer(set);
    ASSERT_TRUE(result.ok());
    for (NodeId t = 1; t < 8; ++t) {
      const double expected = EstimateReliability(
          g, 0, t,
          {.num_samples = options.num_samples, .seed = options.seed});
      // Bitwise equality: the fallback IS the single-query public API.
      EXPECT_EQ(result->st_values[t - 1], expected) << "t = " << t;
    }
  }
}

TEST(QueryEngineTest, RssEstimatorEqualsEstimateReliabilityRssExactly) {
  const UncertainGraph g = RandomGraph(13, 10, 0.3, true);
  QueryEngineOptions options = EngineOptions(1000);
  options.estimator = Estimator::kRss;
  QueryEngine engine(g, options);
  QuerySet set;
  set.AddSt(0, 9);
  set.AddSt(1, 8);
  const auto result = engine.Answer(set);
  ASSERT_TRUE(result.ok());
  RssOptions rss = options.rss;
  rss.num_samples = options.num_samples;
  rss.seed = options.seed;
  rss.num_threads = options.num_threads;
  EXPECT_EQ(result->st_values[0], EstimateReliabilityRss(g, 0, 9, rss));
  EXPECT_EQ(result->st_values[1], EstimateReliabilityRss(g, 1, 8, rss));
}

TEST(QueryEngineTest, SharedWorldAnswersAreThreadInvariant) {
  const UncertainGraph g = RandomGraph(17, 20, 0.15, false);
  QuerySet set;
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId t = 10; t < 20; ++t) set.AddSt(s, t);
  }
  std::vector<double> reference;
  for (const int threads : {1, 2, 4}) {
    QueryEngineOptions options = EngineOptions();
    options.num_threads = threads;
    QueryEngine engine(g, options);
    const auto result = engine.Answer(set);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = result->st_values;
    } else {
      EXPECT_EQ(result->st_values, reference) << "threads = " << threads;
    }
  }
}

TEST(QueryEngineTest, AnswersAreIndependentOfBatchComposition) {
  const UncertainGraph g = RandomGraph(19, 15, 0.2, true);
  QuerySet batch;
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId t = 5; t < 15; ++t) batch.AddSt(s, t);
  }
  QueryEngine batched(g, EngineOptions());
  const auto result = batched.Answer(batch);
  ASSERT_TRUE(result.ok());
  size_t i = 0;
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId t = 5; t < 15; ++t, ++i) {
      // A fresh engine answering only this pair must agree bit-for-bit:
      // every answer is a pure function of (graph, estimator, seed, Z,
      // query), not of what else was in the batch.
      QueryEngine solo(g, EngineOptions());
      EXPECT_EQ(solo.EstimateSt(s, t).value(), result->st_values[i])
          << "(" << s << ", " << t << ")";
    }
  }
}

TEST(QueryEngineTest, SharedWorldAnswersMatchWorldBankFraction) {
  // The shared path is definitionally the WorldBank connected fraction.
  const UncertainGraph g = RandomGraph(23, 10, 0.3, false);
  QueryEngine engine(g, EngineOptions(1280, 3));
  const WorldBank bank(g, {.num_samples = 1280, .seed = 3});
  for (NodeId t = 1; t < 10; ++t) {
    EXPECT_EQ(engine.EstimateSt(0, t).value(),
              bank.ConnectedFraction(0, t, bank.AllEdges(), {}))
        << "t = " << t;
  }
}

TEST(QueryEngineTest, SourceEqualsTargetIsCertain) {
  const UncertainGraph g = RandomGraph(29, 6, 0.3, true);
  for (const bool reuse : {true, false}) {
    QueryEngineOptions options = EngineOptions(128);
    options.reuse_worlds = reuse;
    QueryEngine engine(g, options);
    EXPECT_DOUBLE_EQ(engine.EstimateSt(3, 3).value(), 1.0);
  }
}

TEST(QueryEngineTest, CachesAcrossAnswerCallsUntilGraphMutates) {
  UncertainGraph g = RandomGraph(31, 10, 0.3, false);
  QueryEngine engine(g, EngineOptions(512));
  QuerySet set;
  set.AddSt(0, 9);
  set.AddSt(1, 9);
  set.AddSt(0, 9);  // duplicate inside one batch

  const auto first = engine.Answer(set);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.num_queries, 3u);
  EXPECT_EQ(first->stats.distinct_pairs, 2u);
  EXPECT_EQ(first->stats.cache_hits, 0u);
  EXPECT_EQ(first->stats.floods, 2u);  // two distinct sources
  EXPECT_EQ(engine.cache_size(), 2u);
  EXPECT_EQ(first->st_values[0], first->st_values[2]);

  const auto second = engine.Answer(set);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.cache_hits, 2u);
  EXPECT_EQ(second->stats.floods, 0u);  // fully served from the cache
  EXPECT_EQ(second->st_values, first->st_values);

  // Any graph mutation invalidates the memoized answers wholesale.
  const Edge edge = g.EdgesById()[0];
  ASSERT_TRUE(g.UpdateEdgeProb(edge.src, edge.dst, 1.0).ok());
  const auto third = engine.Answer(set);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->stats.cache_hits, 0u);
  EXPECT_EQ(third->stats.floods, 2u);
  EXPECT_EQ(engine.cache_size(), 2u);
}

TEST(QueryEngineTest, CacheCanBeDisabled) {
  const UncertainGraph g = RandomGraph(37, 8, 0.3, true);
  QueryEngineOptions options = EngineOptions(256);
  options.cache_results = false;
  QueryEngine engine(g, options);
  QuerySet set;
  set.AddSt(0, 7);
  ASSERT_TRUE(engine.Answer(set).ok());
  EXPECT_EQ(engine.cache_size(), 0u);
  const auto again = engine.Answer(set);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache_hits, 0u);
}

TEST(QueryEngineTest, AggregateEqualsAggregateOfPairAnswers) {
  const UncertainGraph g = RandomGraph(41, 12, 0.25, false);
  QueryEngine engine(g, EngineOptions());
  const std::vector<NodeId> sources = {0, 1, 2};
  const std::vector<NodeId> targets = {9, 10, 11};
  QuerySet set;
  for (const Aggregate agg :
       {Aggregate::kAverage, Aggregate::kMinimum, Aggregate::kMaximum}) {
    set.AddAggregate({sources, targets, agg});
  }
  const auto result = engine.Answer(set);
  ASSERT_TRUE(result.ok());
  std::vector<std::vector<double>> matrix(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    for (const NodeId t : targets) {
      matrix[i].push_back(engine.EstimateSt(sources[i], t).value());
    }
  }
  EXPECT_EQ(result->aggregate_values[0],
            AggregateMatrix(matrix, Aggregate::kAverage));
  EXPECT_EQ(result->aggregate_values[1],
            AggregateMatrix(matrix, Aggregate::kMinimum));
  EXPECT_EQ(result->aggregate_values[2],
            AggregateMatrix(matrix, Aggregate::kMaximum));
}

TEST(QueryEngineTest, TopKRanksByReliabilityWithStableTies) {
  // Deterministic graph (p ∈ {0, 1}) so the ranking is exact: candidates
  // with equal reliability must keep their list order.
  UncertainGraph g = UncertainGraph::Directed(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 3, 0.0).ok());
  QueryEngine engine(g, EngineOptions(64));
  QuerySet set;
  set.AddTopK({{{0, 3}, {0, 1}, {0, 2}, {0, 4}}, 3});
  const auto result = engine.Answer(set);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->top_k.size(), 1u);
  const auto& ranked = result->top_k[0];
  ASSERT_EQ(ranked.size(), 3u);
  // (0,1) and (0,2) tie at 1.0 and keep candidate order; (0,3) ties (0,4)
  // at 0.0 and precedes it, so rank 3 is candidate index 0.
  EXPECT_EQ(ranked[0].first, 1u);
  EXPECT_DOUBLE_EQ(ranked[0].second, 1.0);
  EXPECT_EQ(ranked[1].first, 2u);
  EXPECT_DOUBLE_EQ(ranked[1].second, 1.0);
  EXPECT_EQ(ranked[2].first, 0u);
  EXPECT_DOUBLE_EQ(ranked[2].second, 0.0);

  // k larger than the candidate list clamps.
  QuerySet big_k;
  big_k.AddTopK({{{0, 1}, {0, 2}}, 10});
  const auto clamped = engine.Answer(big_k);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->top_k[0].size(), 2u);
}

TEST(QueryEngineTest, MixedBatchSharesFloodsAcrossQueryKinds) {
  const UncertainGraph g = RandomGraph(43, 10, 0.3, false);
  QueryEngine engine(g, EngineOptions(512));
  QuerySet set;
  set.AddSt(0, 9);
  set.AddAggregate({{0, 1}, {8, 9}, Aggregate::kAverage});
  set.AddTopK({{{0, 8}, {1, 9}}, 1});
  const auto result = engine.Answer(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_queries, 3u);
  // Pairs: (0,9), (0,8), (1,8), (1,9) — 4 distinct over 2 sources.
  EXPECT_EQ(result->stats.distinct_pairs, 4u);
  EXPECT_EQ(result->stats.floods, 2u);
  // The aggregate cells, st answer, and top-k scores reuse the same pair
  // values: the top-1 candidate's score must equal the matching st answer.
  const StQuery& best =
      set.top_k_queries()[0].candidates[result->top_k[0][0].first];
  EXPECT_EQ(result->top_k[0][0].second,
            engine.EstimateSt(best.s, best.t).value());
}

TEST(QueryEngineTest, AnswerRejectsInvalidQueriesWithoutComputing) {
  const UncertainGraph g = RandomGraph(47, 5, 0.4, true);
  QueryEngine engine(g, EngineOptions(64));
  QuerySet set;
  set.AddSt(0, 99);
  EXPECT_FALSE(engine.Answer(set).ok());
  EXPECT_EQ(engine.cache_size(), 0u);
}

TEST(QueryEngineTest, EstimateStPropagatesValidationErrors) {
  // Out-of-range nodes must surface as a Status, not abort the process
  // (EstimateSt used to RELMAX_CHECK the batch result).
  const UncertainGraph g = RandomGraph(53, 5, 0.4, false);
  QueryEngine engine(g, EngineOptions(64));
  const auto bad_target = engine.EstimateSt(0, 99);
  EXPECT_FALSE(bad_target.ok());
  EXPECT_EQ(bad_target.status().code(), StatusCode::kInvalidArgument);
  const auto bad_source = engine.EstimateSt(99, 0);
  EXPECT_FALSE(bad_source.ok());
  // The engine stays usable after a rejected query.
  EXPECT_DOUBLE_EQ(engine.EstimateSt(0, 0).value(), 1.0);
}

TEST(QueryEngineTest, CacheEvictionKeepsEntryCapAndCountsEvictions) {
  const UncertainGraph g = RandomGraph(59, 12, 0.3, false);
  QueryEngineOptions options = EngineOptions(128);
  options.max_cache_entries = 4;
  QueryEngine engine(g, options);
  QuerySet set;
  for (NodeId t = 1; t < 10; ++t) set.AddSt(0, t);  // 9 distinct pairs
  const auto result = engine.Answer(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.cache_evictions, 5u);  // 9 inserted, 4 kept
  EXPECT_EQ(engine.cache_size(), 4u);
  // The survivors are the 5 most recently inserted minus the first one —
  // i.e. pairs (0,6)..(0,9); asking those again is pure cache hits while
  // the evicted ones recompute, and values stay bit-identical either way.
  const auto again = engine.Answer(set);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache_hits, 4u);
  EXPECT_EQ(again->st_values, result->st_values);
  EXPECT_EQ(engine.cache_size(), 4u);
}

TEST(QueryEngineTest, FallbackPathCountsEstimatesNotFloods) {
  const UncertainGraph g = RandomGraph(61, 8, 0.3, true);
  QueryEngineOptions options = EngineOptions(128);
  options.reuse_worlds = false;
  QueryEngine engine(g, options);
  QuerySet set;
  set.AddSt(0, 7);
  set.AddSt(1, 7);
  const auto result = engine.Answer(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.fallback_estimates, 2u);
  EXPECT_EQ(result->stats.floods, 0u);  // no shared-world flood ran
  EXPECT_EQ(result->stats.index_answers, 0u);
}

TEST(QueryEngineTest, TinyBankCapFallsBackAndCountsIt) {
  const UncertainGraph g = RandomGraph(63, 10, 0.3, false);
  QuerySet set;
  for (NodeId t = 1; t < 6; ++t) set.AddSt(0, t);

  QueryEngine shared(g, EngineOptions(256));
  const auto want_shared = shared.Answer(set);
  ASSERT_TRUE(want_shared.ok());
  EXPECT_EQ(want_shared->stats.bank_fallbacks, 0u);
  EXPECT_GT(want_shared->stats.floods, 0u);

  // A cap smaller than one edge row cannot host the bank: the batch must
  // fall off to per-query estimation, say so in the stats (and bump the
  // process-wide counter the stderr warning reports), and still produce
  // exactly the reuse_worlds=false answers.
  QueryEngineOptions capped = EngineOptions(256);
  capped.max_bank_bytes = 1;
  const int64_t before = BankFallbackCount();
  QueryEngine engine(g, capped);
  const auto result = engine.Answer(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.bank_fallbacks, 1u);
  EXPECT_EQ(result->stats.floods, 0u);
  EXPECT_EQ(result->stats.fallback_estimates, result->stats.distinct_pairs);
  EXPECT_GT(BankFallbackCount(), before);

  QueryEngineOptions per_query = EngineOptions(256);
  per_query.reuse_worlds = false;
  QueryEngine fallback(g, per_query);
  const auto expected = fallback.Answer(set);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->st_values, expected->st_values);
  // Asking for the slow path is not a fallback — the counter stays clean.
  EXPECT_EQ(expected->stats.bank_fallbacks, 0u);
}

TEST(QueryEngineTest, PartitionsLiftThePerShardBankCap) {
  // The ISSUE acceptance shape in miniature: a cap the flat bank exceeds but
  // one balanced shard of a 4-way partition fits. The partitioned engine
  // must keep the shared-world fast path (no fallback, no counter bump) and
  // answer bit-identically to the uncapped flat engine — the canonical
  // draw-stream layout makes shard count invisible in the results.
  const UncertainGraph g = RandomGraph(29, 12, 0.4, false);
  QuerySet set;
  for (NodeId t = 1; t < 9; ++t) set.AddSt(0, t);
  const int kZ = 2048;

  QueryEngine reference(g, EngineOptions(kZ));
  const auto want = reference.Answer(set);
  ASSERT_TRUE(want.ok());
  EXPECT_GT(want->stats.floods, 0u);

  const size_t flat_bytes = BankBytes(g.num_edges(), kZ);
  QueryEngineOptions capped = EngineOptions(kZ);
  capped.max_bank_bytes = flat_bytes / 2;  // too small for the flat bank
  capped.num_partitions = 4;               // ...but 4 shards fit under it
  ASSERT_LE(BankBytes(BalancedShardRows(g.num_edges(), 4), kZ),
            capped.max_bank_bytes);
  const int64_t before = BankFallbackCount();
  QueryEngine sharded(g, capped);
  const auto got = sharded.Answer(set);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.bank_fallbacks, 0u);
  EXPECT_EQ(BankFallbackCount(), before);
  EXPECT_GT(got->stats.floods, 0u);
  EXPECT_EQ(got->st_values, want->st_values);
  // The shard byte vector partitions the flat footprint exactly. Individual
  // shards may sit above the balanced estimate the cap meters (edge
  // ownership follows the min-endpoint rule, not a strict row split) — the
  // admission contract is on ceil(E / P) rows, asserted above.
  ASSERT_EQ(got->stats.shard_bank_bytes.size(), 4u);
  size_t total = 0;
  for (const size_t bytes : got->stats.shard_bank_bytes) total += bytes;
  EXPECT_EQ(total, flat_bytes);

  // The same cap without partitions trips the fallback — the cliff the
  // per-shard budget exists to remove.
  QueryEngineOptions flat_capped = EngineOptions(kZ);
  flat_capped.max_bank_bytes = capped.max_bank_bytes;
  QueryEngine tripped(g, flat_capped);
  const auto fb = tripped.Answer(set);
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(fb->stats.bank_fallbacks, 1u);
  EXPECT_EQ(fb->stats.floods, 0u);
}

TEST(QueryEngineTest, IndexAnswersMatchFloodPathBitwise) {
  for (const bool directed : {false, true}) {
    const UncertainGraph g = RandomGraph(67, 14, 0.2, directed);
    QuerySet set;
    for (NodeId s = 0; s < 5; ++s) {
      for (NodeId t = 7; t < 14; ++t) set.AddSt(s, t);
    }
    QueryEngine flood(g, EngineOptions(512));
    QueryEngineOptions indexed_options = EngineOptions(512);
    indexed_options.use_index = true;
    QueryEngine indexed(g, indexed_options);
    const auto flood_result = flood.Answer(set);
    const auto index_result = indexed.Answer(set);
    ASSERT_TRUE(flood_result.ok());
    ASSERT_TRUE(index_result.ok());
    // Bit-identical, not statistically close: both paths read the same
    // sampled worlds exactly.
    EXPECT_EQ(index_result->st_values, flood_result->st_values)
        << "directed = " << directed;
    EXPECT_EQ(index_result->stats.floods, 0u);
    EXPECT_EQ(index_result->stats.index_answers,
              index_result->stats.distinct_pairs);
    ASSERT_NE(indexed.index(), nullptr);
  }
}

TEST(QueryEngineTest, IndexSyncRelabelsOnlyAffectedWorlds) {
  UncertainGraph g = RandomGraph(71, 12, 0.3, false);
  QueryEngineOptions options = EngineOptions(512);
  options.use_index = true;
  QueryEngine engine(g, options);
  QuerySet set;
  for (NodeId t = 1; t < 12; ++t) set.AddSt(0, t);
  ASSERT_TRUE(engine.Answer(set).ok());
  ASSERT_NE(engine.index(), nullptr);
  EXPECT_EQ(engine.index()->stats().builds, 1u);

  // Nudge one interior probability: only the worlds whose sampled presence
  // of that edge flips get relabeled — a small fraction of Z, not all of it.
  const Edge edge = g.EdgesById()[0];
  ASSERT_TRUE(g.UpdateEdgeProb(edge.src, edge.dst, edge.prob * 0.5).ok());
  const auto after = engine.Answer(set);
  ASSERT_TRUE(after.ok());
  ASSERT_NE(engine.index(), nullptr);
  const ReliabilityIndex::Stats& stats = engine.index()->stats();
  EXPECT_EQ(stats.builds, 1u);  // incremental, not a rebuild
  EXPECT_EQ(stats.incremental_updates, 1u);
  EXPECT_LT(stats.last_update_worlds, 512u);

  // The incrementally maintained answers equal a from-scratch engine's.
  QueryEngine fresh(g, options);
  const auto expected = fresh.Answer(set);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after->st_values, expected->st_values);

  // AddEdge extends the shape: still incremental, still bit-pure.
  ASSERT_TRUE(g.AddEdge(0, 11, 0.5).ok() || g.UpdateEdgeProb(0, 11, 0.5).ok());
  const auto extended = engine.Answer(set);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(engine.index()->stats().builds, 1u);
  QueryEngine fresh2(g, options);
  const auto expected2 = fresh2.Answer(set);
  ASSERT_TRUE(expected2.ok());
  EXPECT_EQ(extended->st_values, expected2->st_values);
}

}  // namespace
}  // namespace relmax
