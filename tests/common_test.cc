#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/flags.h"
#include "common/memory.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "common/timer.h"

namespace relmax {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "k must be positive");
  EXPECT_EQ(st.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  std::vector<int> v = std::move(result).value();
  EXPECT_EQ(v.size(), 3u);
}

Status HelperThatPropagates(bool fail) {
  RELMAX_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(HelperThatPropagates(false).ok());
  EXPECT_EQ(HelperThatPropagates(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleIsRoughlyUniform) {
  Rng rng(99);
  const int kBuckets = 10;
  const int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(rng.NextDouble() * kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.NextUint64(17);
    EXPECT_LT(x, 17u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateEndpoints) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, GaussianMomentsReasonable) {
  Rng rng(321);
  const int kDraws = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.Next() == child.Next();
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------- Table

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter t({"Method", "Gain"});
  t.AddRow({"BE", "0.33"});
  t.AddRow({"HillClimbing", "0.31"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Method       | Gain |"), std::string::npos);
  EXPECT_NE(s.find("| BE           | 0.33 |"), std::string::npos);
  EXPECT_NE(s.find("| HillClimbing | 0.31 |"), std::string::npos);
}

TEST(TableTest, FmtDouble) {
  EXPECT_EQ(Fmt(0.3333333, 2), "0.33");
  EXPECT_EQ(Fmt(1.0, 3), "1.000");
  EXPECT_EQ(Fmt(static_cast<int64_t>(12345)), "12345");
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=0.5", "--count", "7", "--verbose"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 13), 13);
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  EXPECT_TRUE(flags.Has("alpha"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, EnvironmentFallback) {
  setenv("RELMAX_FROM_ENV", "21", 1);
  const char* argv[] = {"prog"};
  Flags flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("from-env", 0), 21);
  unsetenv("RELMAX_FROM_ENV");
}

// ---------------------------------------------------------------- Timer/mem

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

TEST(MemoryTest, RssIsPositiveOnLinux) {
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
  EXPECT_NEAR(BytesToGiB(1ull << 30), 1.0, 1e-12);
}

}  // namespace
}  // namespace relmax
