// Executable checks of the paper's theory results (§2): the MAX-k-COVER
// reduction gadget behind Theorem 1, the Lemma 1 counterexample, the
// characterization observations, and Observation 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "baselines/exact.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

// ---------------------------------------------------------------- Theorem 1

// The Figure 1 gadget: s -> S_i (candidate edges, prob 1) -> u_j (prob 1 iff
// u_j in S_i) -> t (prob p). After adding k set-edges covering q elements,
// R(s, t) = 1 - (1 - p)^q — so maximizing reliability IS MAX-k-COVER.
struct ReductionGadget {
  UncertainGraph graph = UncertainGraph::Directed(0);
  NodeId s = 0;
  NodeId t = 0;
  std::vector<NodeId> set_nodes;
  std::vector<Edge> candidates;  // the s -> S_i edges

  ReductionGadget(const std::vector<std::set<int>>& sets, int num_elements,
                  double p) {
    const NodeId n = static_cast<NodeId>(2 + sets.size() + num_elements);
    graph = UncertainGraph::Directed(n);
    s = 0;
    t = n - 1;
    for (size_t i = 0; i < sets.size(); ++i) {
      set_nodes.push_back(static_cast<NodeId>(1 + i));
    }
    const NodeId element_base = static_cast<NodeId>(1 + sets.size());
    for (int u = 0; u < num_elements; ++u) {
      EXPECT_TRUE(graph.AddEdge(element_base + u, t, p).ok());
    }
    for (size_t i = 0; i < sets.size(); ++i) {
      for (int u : sets[i]) {
        EXPECT_TRUE(graph.AddEdge(set_nodes[i], element_base + u, 1.0).ok());
      }
      candidates.push_back({s, set_nodes[i], 1.0});
    }
  }
};

TEST(Theorem1Test, GadgetReliabilityCountsCoveredElements) {
  // S1 = {0,1}, S2 = {1,2}, S3 = {3}; p = 0.4.
  const ReductionGadget gadget({{0, 1}, {1, 2}, {3}}, 4, 0.4);
  // Adding S1 and S2 covers q = 3 elements: R = 1 - 0.6^3.
  UncertainGraph g = gadget.graph;
  ASSERT_TRUE(g.AddEdge(gadget.candidates[0].src, gadget.candidates[0].dst,
                        1.0)
                  .ok());
  ASSERT_TRUE(g.AddEdge(gadget.candidates[1].src, gadget.candidates[1].dst,
                        1.0)
                  .ok());
  EXPECT_NEAR(ExactReliabilityFactoring(g, gadget.s, gadget.t).value(),
              1.0 - 0.6 * 0.6 * 0.6, 1e-12);
}

TEST(Theorem1Test, OptimalEdgesSolveMaxCover) {
  // Ground set {0..4}; optimal 2-cover is {S1, S3} covering all 5.
  const std::vector<std::set<int>> sets = {{0, 1, 2}, {1, 2}, {3, 4}, {4}};
  const ReductionGadget gadget(sets, 5, 0.3);
  SolverOptions options;
  options.budget_k = 2;
  options.num_samples = 2000;
  options.seed = 3;
  auto chosen = SelectExact(gadget.graph, gadget.s, gadget.t,
                            gadget.candidates, options);
  ASSERT_TRUE(chosen.ok());
  std::set<NodeId> picked;
  for (const Edge& e : *chosen) picked.insert(e.dst);
  EXPECT_EQ(picked,
            (std::set<NodeId>{gadget.set_nodes[0], gadget.set_nodes[2]}));
}

// ----------------------------------------------------------------- Lemma 1

// Figure 2: V = {s, A, t}, all probabilities 0.5. f(E') := R(s, t) with
// edge set E'.
double Fig2Reliability(bool st, bool sa, bool at) {
  UncertainGraph g = UncertainGraph::Directed(3);
  if (st) EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  if (sa) EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  if (at) EXPECT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  return ExactReliabilityFactoring(g, 0, 2).value();
}

TEST(Lemma1Test, NotSubmodular) {
  // X = {st} ⊆ Y = {st, sA}, x = At:
  // f(X ∪ x) - f(X) = 0; f(Y ∪ x) - f(Y) = 0.125 > 0.
  const double fx = Fig2Reliability(true, false, false);
  const double fxx = Fig2Reliability(true, false, true);
  const double fy = Fig2Reliability(true, true, false);
  const double fyx = Fig2Reliability(true, true, true);
  EXPECT_NEAR(fx, 0.5, 1e-12);
  EXPECT_NEAR(fxx, 0.5, 1e-12);
  EXPECT_NEAR(fy, 0.5, 1e-12);
  EXPECT_NEAR(fyx, 0.625, 1e-12);
  EXPECT_LT(fxx - fx, fyx - fy);  // submodularity would require >=
}

TEST(Lemma1Test, NotSupermodular) {
  // X' = {sA} ⊆ Y' = {sA, st}, x = At:
  // f(X' ∪ x) - f(X') = 0.25; f(Y' ∪ x) - f(Y') = 0.125.
  const double fx = Fig2Reliability(false, true, false);
  const double fxx = Fig2Reliability(false, true, true);
  const double fy = Fig2Reliability(true, true, false);
  const double fyx = Fig2Reliability(true, true, true);
  EXPECT_NEAR(fxx - fx, 0.25, 1e-12);
  EXPECT_NEAR(fyx - fy, 0.125, 1e-12);
  EXPECT_GT(fxx - fx, fyx - fy);  // supermodularity would require <=
}

// ----------------------------------------------------------- Observations

// Figure 3 (undirected): edges AB, At at prob alpha; candidates sA, sB, Bt
// at prob zeta. Enumerate optimal subsets exactly.
std::set<std::string> OptimalFig3Solution(double alpha, double zeta, int k) {
  UncertainGraph base = UncertainGraph::Undirected(4);
  const NodeId s = 0, a = 1, b = 2, t = 3;
  EXPECT_TRUE(base.AddEdge(a, b, alpha).ok());
  EXPECT_TRUE(base.AddEdge(a, t, alpha).ok());
  const std::vector<std::pair<std::string, Edge>> candidates = {
      {"sA", {s, a, zeta}}, {"sB", {s, b, zeta}}, {"Bt", {b, t, zeta}}};

  std::set<std::string> best;
  double best_reliability = -1.0;
  for (uint32_t mask = 0; mask < 8; ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    UncertainGraph g = base;
    std::set<std::string> names;
    for (int i = 0; i < 3; ++i) {
      if ((mask >> i) & 1) {
        EXPECT_TRUE(
            g.AddEdge(candidates[i].second.src, candidates[i].second.dst,
                      candidates[i].second.prob)
                .ok());
        names.insert(candidates[i].first);
      }
    }
    const double reliability = ExactReliabilityFactoring(g, s, t).value();
    if (reliability > best_reliability) {
      best_reliability = reliability;
      best = names;
    }
  }
  return best;
}

TEST(ObservationsTest, Obs1OptimumDependsOnZeta) {
  // Same alpha, different zeta -> different optimal set.
  EXPECT_EQ(OptimalFig3Solution(0.5, 0.7, 2),
            (std::set<std::string>{"sB", "Bt"}));
  EXPECT_EQ(OptimalFig3Solution(0.5, 0.3, 2),
            (std::set<std::string>{"sA", "sB"}));
}

TEST(ObservationsTest, Obs2OptimumDependsOnExistingProbabilities) {
  // Same zeta, different alpha -> different optimal set.
  EXPECT_EQ(OptimalFig3Solution(0.5, 0.7, 2),
            (std::set<std::string>{"sB", "Bt"}));
  EXPECT_EQ(OptimalFig3Solution(0.9, 0.7, 2),
            (std::set<std::string>{"sA", "sB"}));
}

TEST(ObservationsTest, Obs3SmallerBudgetNotNested) {
  // k = 1 optimum {sA} is NOT a subset of the k = 2 optimum {sB, Bt}.
  const auto k1 = OptimalFig3Solution(0.5, 0.7, 1);
  const auto k2 = OptimalFig3Solution(0.5, 0.7, 2);
  EXPECT_EQ(k1, (std::set<std::string>{"sA"}));
  EXPECT_EQ(k2, (std::set<std::string>{"sB", "Bt"}));
  EXPECT_FALSE(std::includes(k2.begin(), k2.end(), k1.begin(), k1.end()));
}

// Observation 4, property-tested: on random graphs where the direct st edge
// is addable, no single alternative edge beats it.
class Observation4Sweep : public testing::TestWithParam<int> {};

TEST_P(Observation4Sweep, DirectEdgeDominatesAnySingleAddition) {
  Rng rng(7000 + GetParam());
  const NodeId n = static_cast<NodeId>(rng.NextInt(4, 7));
  UncertainGraph g = GetParam() % 2 == 0 ? UncertainGraph::Directed(n)
                                         : UncertainGraph::Undirected(n);
  const NodeId s = 0;
  const NodeId t = n - 1;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if ((u == s && v == t) || (!g.directed() && u == t && v == s)) continue;
      if (rng.NextBernoulli(0.4)) {
        ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.1, 0.9)).ok());
      }
    }
  }
  const double zeta = rng.NextDouble(0.2, 0.9);
  const UncertainGraph with_st = [&] {
    UncertainGraph copy = g;
    EXPECT_TRUE(copy.AddEdge(s, t, zeta).ok());
    return copy;
  }();
  const double st_reliability =
      ExactReliabilityFactoring(with_st, s, t).value();

  for (const Edge& e : AllMissingEdges(g, zeta, -1)) {
    UncertainGraph copy = g;
    ASSERT_TRUE(copy.AddEdge(e.src, e.dst, zeta).ok());
    const double alt = ExactReliabilityFactoring(copy, s, t).value();
    EXPECT_LE(alt, st_reliability + 1e-12)
        << "edge (" << e.src << ", " << e.dst << ") beats direct st";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Observation4Sweep, testing::Range(0, 10));

}  // namespace
}  // namespace relmax
