#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "graph/graph_stats.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  const GraphStats stats = ComputeGraphStats(UncertainGraph::Directed(0));
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.prob_mean, 0.0);
}

TEST(GraphStatsTest, ProbabilityMomentsAndQuartiles) {
  UncertainGraph g = UncertainGraph::Undirected(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(4, 0, 0.5).ok());
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_NEAR(stats.prob_mean, 0.3, 1e-12);
  EXPECT_NEAR(stats.prob_q2, 0.3, 1e-12);
  EXPECT_NEAR(stats.prob_q1, 0.2, 1e-12);
  EXPECT_NEAR(stats.prob_q3, 0.4, 1e-12);
  EXPECT_NEAR(stats.prob_sd, 0.15811, 1e-4);
}

TEST(GraphStatsTest, PathGraphSplAndDiameter) {
  // Path of 6 nodes: diameter 5; exact avg SPL over ordered reachable pairs.
  UncertainGraph g = UncertainGraph::Undirected(6);
  for (NodeId i = 0; i + 1 < 6; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1, 0.5).ok());
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.longest_spl, 5);
  // Sum over ordered pairs of |i - j| = 2 * 35 = 70; pairs = 30.
  EXPECT_NEAR(stats.avg_spl, 70.0 / 30.0, 1e-9);
}

TEST(GraphStatsTest, TriangleClusteringIsOne) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_DOUBLE_EQ(ComputeGraphStats(g).clustering_coefficient, 1.0);
}

TEST(GraphStatsTest, StarClusteringIsZero) {
  UncertainGraph g = UncertainGraph::Undirected(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf, 0.5).ok());
  }
  EXPECT_DOUBLE_EQ(ComputeGraphStats(g).clustering_coefficient, 0.0);
}

TEST(GraphStatsTest, SampledStatsStaySane) {
  Rng rng(12);
  auto g = GenerateScaleFree(5000, 3, &rng);
  ASSERT_TRUE(g.ok());
  const GraphStats stats = ComputeGraphStats(*g, {.num_bfs_sources = 16});
  EXPECT_GT(stats.avg_spl, 1.0);
  EXPECT_LT(stats.avg_spl, 10.0);  // scale-free graphs are small-world
  EXPECT_GE(stats.longest_spl, static_cast<int>(stats.avg_spl));
  EXPECT_GE(stats.clustering_coefficient, 0.0);
  EXPECT_LE(stats.clustering_coefficient, 1.0);
}

}  // namespace
}  // namespace relmax
