#include <gtest/gtest.h>

#include <algorithm>

#include "apps/influence.h"
#include "apps/sensor.h"
#include "core/evaluate.h"
#include "gen/datasets.h"

namespace relmax {
namespace {

SolverOptions FastOptions(int k) {
  SolverOptions options;
  options.budget_k = k;
  options.top_r = 54;
  options.top_l = 15;
  options.elimination_samples = 300;
  options.num_samples = 300;
  options.seed = 4;
  return options;
}

// ------------------------------------------------------------------ sensor

TEST(SensorTest, CandidateLinksRespectDistanceAndMissingness) {
  auto lab = MakeDataset("intel_lab");
  ASSERT_TRUE(lab.ok());
  const std::vector<Edge> links = SensorCandidateLinks(*lab, 15.0, 0.33);
  EXPECT_FALSE(links.empty());
  for (const Edge& e : links) {
    EXPECT_LE(DistanceMeters(*lab, e.src, e.dst), 15.0);
    EXPECT_FALSE(lab->graph.HasEdge(e.src, e.dst));
    EXPECT_DOUBLE_EQ(e.prob, 0.33);
  }
}

TEST(SensorTest, CaseStudyImprovesCrossLabReliability) {
  auto lab = MakeDataset("intel_lab");
  ASSERT_TRUE(lab.ok());
  // A right-side to left-side pair, as in Figure 6 (ids differ from the
  // paper's sensor numbering; pick a far pair by coordinates).
  NodeId right = 0;
  NodeId left = 0;
  for (NodeId v = 0; v < lab->graph.num_nodes(); ++v) {
    if (lab->positions[v].first > lab->positions[right].first) right = v;
    if (lab->positions[v].first < lab->positions[left].first) left = v;
  }
  auto result = ImproveSensorPair(*lab, right, left, /*budget=*/3,
                                  /*link_prob=*/0.33,
                                  /*max_distance_m=*/15.0, FastOptions(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->new_links.size(), 3u);
  EXPECT_FALSE(result->new_links.empty());
  EXPECT_GT(result->reliability_after, result->reliability_before);
  for (const Edge& e : result->new_links) {
    EXPECT_LE(DistanceMeters(*lab, e.src, e.dst), 15.0);
  }
}

TEST(SensorTest, ValidatesInput) {
  auto lab = MakeDataset("intel_lab");
  ASSERT_TRUE(lab.ok());
  EXPECT_EQ(ImproveSensorPair(*lab, 0, 999, 3, 0.33, 15.0, FastOptions(3))
                .status()
                .code(),
            StatusCode::kOutOfRange);
  auto no_positions = MakeDataset("lastfm", 0.05, 2);
  ASSERT_TRUE(no_positions.ok());
  EXPECT_EQ(ImproveSensorPair(*no_positions, 0, 1, 3, 0.33, 15.0,
                              FastOptions(3))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------- influence

TEST(InfluenceTest, ScenarioPicksDisjointDegreeBands) {
  auto dblp = MakeDataset("dblp", 0.05, 2);
  ASSERT_TRUE(dblp.ok());
  auto scenario = MakeCollaborationScenario(dblp->graph, 5, 40, 3);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ(scenario->seniors.size(), 5u);
  EXPECT_EQ(scenario->juniors.size(), 40u);
  // Disjoint.
  for (NodeId s : scenario->seniors) {
    EXPECT_EQ(std::count(scenario->juniors.begin(), scenario->juniors.end(),
                         s),
              0);
  }
  // Degree bands: every senior out-ranks every junior (seniors come from
  // the top-5% pool, juniors from the bottom quartile).
  size_t min_senior_degree = SIZE_MAX;
  size_t max_junior_degree = 0;
  for (NodeId s : scenario->seniors) {
    min_senior_degree =
        std::min(min_senior_degree, dblp->graph.OutArcs(s).size());
  }
  for (NodeId j : scenario->juniors) {
    max_junior_degree =
        std::max(max_junior_degree, dblp->graph.OutArcs(j).size());
  }
  EXPECT_GT(min_senior_degree, max_junior_degree);
}

TEST(InfluenceTest, EdgeAdditionRaisesSpread) {
  auto dblp = MakeDataset("dblp", 0.03, 2);
  ASSERT_TRUE(dblp.ok());
  auto scenario = MakeCollaborationScenario(dblp->graph, 4, 30, 3);
  ASSERT_TRUE(scenario.ok());
  SolverOptions options = FastOptions(5);
  options.top_r = 40;
  auto result = MaximizeInfluenceSpread(dblp->graph, scenario->seniors,
                                        scenario->juniors, options,
                                        /*pair_cap=*/24);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->recommended_edges.size(), 5u);
  EXPECT_GE(result->spread_after, result->spread_before);
  EXPECT_GT(result->spread_after, 0.0);
}

TEST(InfluenceTest, SpreadIsMonotoneInEdges) {
  // Adding any edge cannot reduce the spread.
  auto dblp = MakeDataset("dblp", 0.03, 2);
  ASSERT_TRUE(dblp.ok());
  auto scenario = MakeCollaborationScenario(dblp->graph, 3, 20, 5);
  ASSERT_TRUE(scenario.ok());
  const double before = InfluenceSpread(dblp->graph, scenario->seniors,
                                        scenario->juniors, 800, 11);
  UncertainGraph augmented = dblp->graph;
  ASSERT_TRUE(augmented
                  .AddEdge(scenario->seniors[0], scenario->juniors[0], 0.9)
                  .ok());
  const double after = InfluenceSpread(augmented, scenario->seniors,
                                       scenario->juniors, 800, 11);
  EXPECT_GE(after + 0.05, before);  // sampling tolerance
  EXPECT_GT(after, before - 0.05);
}

TEST(InfluenceTest, ValidatesArguments) {
  auto dblp = MakeDataset("dblp", 0.03, 2);
  ASSERT_TRUE(dblp.ok());
  EXPECT_EQ(MaximizeInfluenceSpread(dblp->graph, {}, {1}, FastOptions(2))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeCollaborationScenario(dblp->graph, 0, 5, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace relmax
