#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/centrality.h"
#include "baselines/eigen.h"
#include "baselines/esssp.h"
#include "baselines/exact.h"
#include "baselines/fast_gain.h"
#include "baselines/greedy.h"
#include "baselines/ima.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "core/evaluate.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "sampling/bitlane.h"
#include "sampling/world_bank.h"

namespace relmax {
namespace {

SolverOptions FastOptions(int k = 2) {
  SolverOptions options;
  options.budget_k = k;
  options.zeta = 0.5;
  options.num_samples = 2500;
  options.seed = 17;
  return options;
}

// ----------------------------------------------------------- betweenness

TEST(BetweennessTest, PathGraphCentersDominate) {
  // Undirected path 0-1-2-3-4: betweenness 0, 3, 4, 3, 0.
  UncertainGraph g = UncertainGraph::Undirected(5);
  for (NodeId i = 0; i + 1 < 5; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1, 0.5).ok());
  const std::vector<double> c = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
  EXPECT_DOUBLE_EQ(c[2], 4.0);
  EXPECT_DOUBLE_EQ(c[3], 3.0);
  EXPECT_DOUBLE_EQ(c[4], 0.0);
}

TEST(BetweennessTest, StarCenterTakesAll) {
  // Undirected star with center 0 and 4 leaves: center betweenness =
  // C(4,2) = 6 leaf pairs, leaves 0.
  UncertainGraph g = UncertainGraph::Undirected(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf, 0.5).ok());
  }
  const std::vector<double> c = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(c[0], 6.0);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_DOUBLE_EQ(c[leaf], 0.0);
}

TEST(BetweennessTest, DirectedChainCounts) {
  // Directed chain 0->1->2: node 1 lies on the single 0->2 path.
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  const std::vector<double> c = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(CentralityTest, DegreeSelectionPicksHubPairs) {
  // Node 0 and 1 are hubs; candidate (0, 1) must rank first.
  UncertainGraph g = UncertainGraph::Undirected(6);
  for (NodeId v = 2; v < 6; ++v) {
    ASSERT_TRUE(g.AddEdge(0, v, 0.9).ok());
    ASSERT_TRUE(g.AddEdge(1, v, 0.9).ok());
  }
  const std::vector<Edge> candidates = {{0, 1, 0.5}, {2, 3, 0.5}, {4, 5, 0.5}};
  const std::vector<Edge> chosen = SelectByDegreeCentrality(g, candidates, 1);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].src, 0u);
  EXPECT_EQ(chosen[0].dst, 1u);
}

TEST(CentralityTest, BetweennessSelectionPrefersBridgeEndpoints) {
  // Barbell: two triangles joined by a bridge 2-3; bridge endpoints have the
  // highest betweenness.
  UncertainGraph g = UncertainGraph::Undirected(6);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(3, 5, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(4, 5, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  const std::vector<Edge> candidates = {{0, 5, 0.5}, {2, 4, 0.5}};
  const std::vector<Edge> chosen =
      SelectByBetweennessCentrality(g, candidates, 1);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].src, 2u);  // (2, 4) touches bridge endpoint 2
}

// ------------------------------------------------------------------ eigen

TEST(EigenTest, CompleteGraphEigenvalue) {
  // K4 with all probabilities 1: adjacency eigenvalue n-1 = 3.
  UncertainGraph g = UncertainGraph::Undirected(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) ASSERT_TRUE(g.AddEdge(u, v, 1.0).ok());
  }
  const EigenDecomposition eigen = LeadingEigen(g);
  EXPECT_NEAR(eigen.eigenvalue, 3.0, 1e-6);
  // Symmetric graph: uniform eigenvector.
  for (NodeId v = 1; v < 4; ++v) {
    EXPECT_NEAR(eigen.right[v], eigen.right[0], 1e-6);
  }
}

TEST(EigenTest, WeightedCycleEigenvalue) {
  // Directed 3-cycle with probability p: spectral radius p.
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 0.6).ok());
  EXPECT_NEAR(LeadingEigen(g).eigenvalue, 0.6, 1e-6);
}

TEST(EigenTest, DagHasZeroEigenvalue) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  EXPECT_NEAR(LeadingEigen(g).eigenvalue, 0.0, 1e-9);
}

TEST(EigenTest, SelectionPrefersHighScorePairs) {
  // Dense core {0,1,2} + pendant nodes; eigen scores concentrate on the
  // core, so the core-to-core candidate wins.
  UncertainGraph g = UncertainGraph::Undirected(6);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 0.1).ok());
  const std::vector<Edge> candidates = {{0, 2, 0.5}, {4, 5, 0.5}};
  const std::vector<Edge> chosen = SelectByEigenScore(g, candidates, 1, 0.5);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].src, 0u);
  EXPECT_EQ(chosen[0].dst, 2u);
}

TEST(EigenTest, EmptyCandidatesFollowsAlgorithm2) {
  UncertainGraph g = UncertainGraph::Undirected(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 0.9).ok());
  const std::vector<Edge> chosen = SelectByEigenScore(g, {}, 2, 0.5);
  EXPECT_EQ(chosen.size(), 2u);
  for (const Edge& e : chosen) {
    EXPECT_FALSE(g.HasEdge(e.src, e.dst));
    EXPECT_DOUBLE_EQ(e.prob, 0.5);
  }
}

// ----------------------------------------------------------------- greedy

// Diamond where one candidate is clearly dominant: the direct s-t edge.
struct GreedyFixture {
  UncertainGraph g = UncertainGraph::Directed(4);
  std::vector<Edge> candidates;
  GreedyFixture() {
    EXPECT_TRUE(g.AddEdge(0, 1, 0.4).ok());
    EXPECT_TRUE(g.AddEdge(1, 3, 0.4).ok());
    EXPECT_TRUE(g.AddEdge(0, 2, 0.2).ok());
    candidates = {{0, 3, 0.5}, {2, 3, 0.5}, {2, 1, 0.5}};
  }
};

TEST(GreedyTest, IndividualTopKRanksDirectEdgeFirst) {
  GreedyFixture fx;
  auto chosen = SelectIndividualTopK(fx.g, 0, 3, fx.candidates,
                                     FastOptions(1));
  ASSERT_TRUE(chosen.ok());
  ASSERT_EQ(chosen->size(), 1u);
  EXPECT_EQ((*chosen)[0].src, 0u);
  EXPECT_EQ((*chosen)[0].dst, 3u);
}

TEST(GreedyTest, HillClimbingMatchesExactGreedyOnSmallGraph) {
  GreedyFixture fx;
  auto chosen = SelectHillClimbing(fx.g, 0, 3, fx.candidates, FastOptions(2));
  ASSERT_TRUE(chosen.ok());
  ASSERT_EQ(chosen->size(), 2u);
  // Round 1 must take the direct edge; round 2 the best complement.
  EXPECT_EQ((*chosen)[0].dst, 3u);
  EXPECT_EQ((*chosen)[0].src, 0u);
  // Verify round-2 choice against exact reliabilities.
  double best_exact = -1.0;
  Edge best_edge{0, 0, 0};
  for (size_t i = 1; i < fx.candidates.size(); ++i) {
    const UncertainGraph aug =
        AugmentGraph(fx.g, {fx.candidates[0], fx.candidates[i]});
    const double r = ExactReliabilityFactoring(aug, 0, 3).value();
    if (r > best_exact) {
      best_exact = r;
      best_edge = fx.candidates[i];
    }
  }
  EXPECT_EQ((*chosen)[1].src, best_edge.src);
  EXPECT_EQ((*chosen)[1].dst, best_edge.dst);
}

TEST(GreedyTest, BudgetLargerThanPoolTakesEverything) {
  GreedyFixture fx;
  auto chosen = SelectHillClimbing(fx.g, 0, 3, fx.candidates, FastOptions(10));
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen->size(), fx.candidates.size());
}

TEST(GreedyTest, SharedWorldCapFallsBackToResampling) {
  GreedyFixture fx;
  SolverOptions capped = FastOptions(2);
  capped.max_shared_world_bytes = 1;  // nothing fits: forced slow path
  const int64_t before = BankFallbackCount();
  auto capped_pick = SelectHillClimbing(fx.g, 0, 3, fx.candidates, capped);
  ASSERT_TRUE(capped_pick.ok());
  EXPECT_GT(BankFallbackCount(), before);

  // The cap must route through exactly the reuse_worlds=false code, so the
  // selections match it edge for edge.
  SolverOptions slow = FastOptions(2);
  slow.reuse_worlds = false;
  auto slow_pick = SelectHillClimbing(fx.g, 0, 3, fx.candidates, slow);
  ASSERT_TRUE(slow_pick.ok());
  ASSERT_EQ(capped_pick->size(), slow_pick->size());
  for (size_t i = 0; i < slow_pick->size(); ++i) {
    EXPECT_EQ((*capped_pick)[i].src, (*slow_pick)[i].src);
    EXPECT_EQ((*capped_pick)[i].dst, (*slow_pick)[i].dst);
  }
  // Asking for the slow path explicitly is a choice, not a fallback.
  const int64_t after = BankFallbackCount();
  ASSERT_TRUE(SelectHillClimbing(fx.g, 0, 3, fx.candidates, slow).ok());
  EXPECT_EQ(BankFallbackCount(), after);
}

TEST(GreedyTest, SharedWorldSelectionIsLaneAndThreadInvariant) {
  GreedyFixture fx;
  std::vector<Edge> reference;
  for (const bitlane::LaneMode mode :
       {bitlane::LaneMode::kBlocked, bitlane::LaneMode::kScalar}) {
    const bitlane::ScopedLaneMode scoped(mode);
    for (const int threads : {1, 4}) {
      SolverOptions options = FastOptions(2);
      options.num_threads = threads;
      auto chosen = SelectHillClimbing(fx.g, 0, 3, fx.candidates, options);
      ASSERT_TRUE(chosen.ok());
      if (reference.empty()) {
        reference = *chosen;
        continue;
      }
      ASSERT_EQ(chosen->size(), reference.size())
          << bitlane::ModeName(mode) << ", threads = " << threads;
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ((*chosen)[i].src, reference[i].src);
        EXPECT_EQ((*chosen)[i].dst, reference[i].dst);
      }
    }
  }
}

TEST(GreedyTest, ValidatesArguments) {
  GreedyFixture fx;
  EXPECT_EQ(SelectIndividualTopK(fx.g, 0, 9, fx.candidates, FastOptions())
                .status()
                .code(),
            StatusCode::kOutOfRange);
  SolverOptions bad = FastOptions();
  bad.budget_k = 0;
  EXPECT_EQ(
      SelectHillClimbing(fx.g, 0, 3, fx.candidates, bad).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(GreedyTest, InvalidCandidatesAreRejectedLoudly) {
  // Regression: a candidate AugmentGraph rejects (self-loop, out-of-range
  // endpoint, bad probability) used to be silently scored as gain 0 in
  // release builds — and, with reuse_worlds on, looked up with an unchecked
  // EdgeIndexOf dereference. Both baselines must refuse such input instead.
  GreedyFixture fx;
  for (const bool reuse : {true, false}) {
    SolverOptions options = FastOptions(2);
    options.reuse_worlds = reuse;
    auto with_bad = [&](Edge bad) {
      std::vector<Edge> candidates = fx.candidates;
      candidates.push_back(bad);
      return candidates;
    };
    EXPECT_EQ(SelectHillClimbing(fx.g, 0, 3, with_bad({2, 2, 0.5}), options)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << "reuse_worlds = " << reuse;
    EXPECT_EQ(SelectIndividualTopK(fx.g, 0, 3, with_bad({2, 9, 0.5}), options)
                  .status()
                  .code(),
              StatusCode::kOutOfRange)
        << "reuse_worlds = " << reuse;
    EXPECT_EQ(SelectHillClimbing(fx.g, 0, 3, with_bad({2, 3, 1.5}), options)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << "reuse_worlds = " << reuse;
    // Valid candidates still solve identically.
    auto hill = SelectHillClimbing(fx.g, 0, 3, fx.candidates, options);
    ASSERT_TRUE(hill.ok()) << "reuse_worlds = " << reuse;
    ASSERT_EQ(hill->size(), 2u);
    EXPECT_EQ((*hill)[0].src, 0u);  // the dominant direct edge still wins
    EXPECT_EQ((*hill)[0].dst, 3u);
  }
}

TEST(GreedyTest, MultiAggregateObjective) {
  GreedyFixture fx;
  auto chosen = SelectHillClimbingMulti(fx.g, {0}, {3}, Aggregate::kAverage,
                                        fx.candidates, FastOptions(1));
  ASSERT_TRUE(chosen.ok());
  ASSERT_EQ(chosen->size(), 1u);
  EXPECT_EQ((*chosen)[0].dst, 3u);  // same as single-pair behavior
}

// ------------------------------------------------------------------ exact

TEST(ExactBaselineTest, FindsOptimalPair) {
  // Figure 3 / Table 2 row 2 (alpha 0.5, zeta 0.3): optimal is {sA, sB}.
  UncertainGraph g = UncertainGraph::Undirected(4);
  const NodeId s = 0, a = 1, b = 2, t = 3;
  ASSERT_TRUE(g.AddEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(a, t, 0.5).ok());
  const std::vector<Edge> candidates = {{s, a, 0.3}, {s, b, 0.3}, {b, t, 0.3}};
  SolverOptions options = FastOptions(2);
  auto chosen = SelectExact(g, s, t, candidates, options);
  ASSERT_TRUE(chosen.ok());
  ASSERT_EQ(chosen->size(), 2u);
  // {sA, sB} in some order.
  std::vector<NodeId> dsts = {(*chosen)[0].dst, (*chosen)[1].dst};
  std::sort(dsts.begin(), dsts.end());
  EXPECT_EQ(dsts, (std::vector<NodeId>{a, b}));
}

TEST(ExactBaselineTest, RefusesExplosiveEnumerations) {
  UncertainGraph g = UncertainGraph::Directed(100);
  std::vector<Edge> candidates;
  for (NodeId i = 0; i < 60; ++i) candidates.push_back({i, i + 1, 0.5});
  SolverOptions options = FastOptions(10);
  EXPECT_EQ(SelectExact(g, 0, 99, candidates, options, /*max_combinations=*/
                        10000)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ esssp / ima

TEST(EssspTest, ObjectiveAndSelection) {
  // Chain 0 -> 1 -> 2 with certain edges: E[SPL] = 2 for pair (0, 2).
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  EXPECT_NEAR(ExpectedSplSum(g, {0}, {2}, 200, 1), 2.0, 1e-9);
  // Candidate (0, 2) shortens it to 1 when present.
  auto chosen = SelectEsssp(g, {0}, {2}, {{0, 2, 1.0}, {2, 0, 1.0}},
                            FastOptions(1));
  ASSERT_TRUE(chosen.ok());
  ASSERT_EQ(chosen->size(), 1u);
  EXPECT_EQ((*chosen)[0].src, 0u);
  EXPECT_EQ((*chosen)[0].dst, 2u);
}

TEST(EssspTest, UnreachablePenalty) {
  UncertainGraph g = UncertainGraph::Directed(4);  // no edges
  EXPECT_NEAR(ExpectedSplSum(g, {0}, {3}, 50, 1), 4.0, 1e-9);  // penalty = n
}

TEST(ImaTest, PicksSpreadMaximizingEdge) {
  // Source 0; targets {2, 3} sit behind node 1. Candidate (0, 1) unlocks
  // both targets; candidate (3, 2) helps nothing.
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.9).ok());
  auto chosen = SelectIma(g, {0}, {2, 3}, {{0, 1, 0.9}, {3, 2, 0.9}},
                          FastOptions(1));
  ASSERT_TRUE(chosen.ok());
  ASSERT_EQ(chosen->size(), 1u);
  EXPECT_EQ((*chosen)[0].src, 0u);
  EXPECT_EQ((*chosen)[0].dst, 1u);
}

TEST(InfluenceSpreadTest, MatchesClosedForm) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  // E[#targets reached] = 0.5 + 0.5 = 1.
  EXPECT_NEAR(InfluenceSpread(g, {0}, {1, 2}, 40000, 3), 1.0, 0.02);
}

// -------------------------------------------------------------- fast gain

TEST(FastGainTest, DeltaGainMatchesExactDifference) {
  GreedyFixture fx;
  const WorldEnsemble ensemble(fx.g, 0, 3, 60000, 5);
  const double base = ExactReliabilityFactoring(fx.g, 0, 3).value();
  EXPECT_NEAR(ensemble.BaseReliability(), base, 0.01);
  for (const Edge& e : fx.candidates) {
    const UncertainGraph aug = AugmentGraph(fx.g, {e});
    const double exact_gain =
        ExactReliabilityFactoring(aug, 0, 3).value() - base;
    EXPECT_NEAR(ensemble.DeltaGain(e.src, e.dst, e.prob), exact_gain, 0.012)
        << e.src << "->" << e.dst;
  }
}

TEST(FastGainTest, UndirectedDeltaGainIsUnionOfOrientations) {
  // Undirected chain 0-1, candidate {1, 2} (t = 2): only orientation 1->2
  // matters, but the union formula must match the exact gain.
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  const WorldEnsemble ensemble(g, 0, 2, 60000, 5);
  const double exact_gain =
      ExactReliabilityFactoring(AugmentGraph(g, {{1, 2, 0.5}}), 0, 2).value();
  EXPECT_NEAR(ensemble.DeltaGainUndirected(1, 2, 0.5), exact_gain, 0.01);
}

TEST(FastGainTest, FastTopKAgreesWithFaithfulTopK) {
  GreedyFixture fx;
  SolverOptions options = FastOptions(2);
  options.num_samples = 20000;
  auto fast = SelectIndividualTopKFast(fx.g, 0, 3, fx.candidates, options);
  auto slow = SelectIndividualTopK(fx.g, 0, 3, fx.candidates, options);
  ASSERT_TRUE(fast.ok() && slow.ok());
  ASSERT_EQ(fast->size(), slow->size());
  for (size_t i = 0; i < fast->size(); ++i) {
    EXPECT_EQ((*fast)[i].src, (*slow)[i].src);
    EXPECT_EQ((*fast)[i].dst, (*slow)[i].dst);
  }
}

TEST(FastGainTest, FastHillClimbingStaysWithinBudget) {
  GreedyFixture fx;
  auto chosen = SelectHillClimbingFast(fx.g, 0, 3, fx.candidates,
                                       FastOptions(2));
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen->size(), 2u);
  EXPECT_EQ((*chosen)[0].dst, 3u);  // direct edge first, as with faithful HC
}

}  // namespace
}  // namespace relmax
