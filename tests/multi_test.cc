#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/evaluate.h"
#include "core/multi.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

// Three loose communities; sources live in the first, targets in the last.
UncertainGraph Communities(uint64_t seed = 5) {
  Rng rng(seed);
  UncertainGraph g = UncertainGraph::Undirected(15);
  auto wire = [&](NodeId lo, NodeId hi) {
    for (NodeId u = lo; u < hi; ++u) {
      for (NodeId v = u + 1; v <= hi; ++v) {
        if (rng.NextBernoulli(0.7)) {
          (void)g.AddEdge(u, v, rng.NextDouble(0.4, 0.8));
        }
      }
    }
  };
  wire(0, 4);
  wire(5, 9);
  wire(10, 14);
  EXPECT_TRUE(g.AddEdge(4, 5, 0.2).ok());
  EXPECT_TRUE(g.AddEdge(9, 10, 0.2).ok());
  return g;
}

SolverOptions FastOptions(int k = 4) {
  SolverOptions options;
  options.budget_k = k;
  options.zeta = 0.5;
  options.top_r = 15;
  options.top_l = 10;
  options.hop_h = -1;
  options.elimination_samples = 300;
  options.num_samples = 300;
  options.seed = 33;
  return options;
}

const std::vector<NodeId> kSources = {0, 1, 2};
const std::vector<NodeId> kTargets = {12, 13, 14};

class MultiAggregateSweep : public testing::TestWithParam<Aggregate> {};

TEST_P(MultiAggregateSweep, ImprovesAggregateWithinBudget) {
  const UncertainGraph g = Communities();
  const Aggregate agg = GetParam();
  auto solution =
      MaximizeMultiReliability(g, kSources, kTargets, agg, FastOptions());
  ASSERT_TRUE(solution.ok()) << AggregateName(agg);
  EXPECT_LE(solution->added_edges.size(), 4u);
  EXPECT_FALSE(solution->added_edges.empty()) << AggregateName(agg);
  EXPECT_GT(solution->gain(), 0.02) << AggregateName(agg);
  for (const Edge& e : solution->added_edges) {
    EXPECT_FALSE(g.HasEdge(e.src, e.dst));
  }
  // Reported aggregates are consistent with an independent re-estimate.
  const auto after_matrix = PairwiseReliability(
      AugmentGraph(g, solution->added_edges), kSources, kTargets, 2000, 99);
  EXPECT_NEAR(solution->aggregate_after, AggregateMatrix(after_matrix, agg),
              0.08)
      << AggregateName(agg);
}

INSTANTIATE_TEST_SUITE_P(Aggregates, MultiAggregateSweep,
                         testing::Values(Aggregate::kAverage,
                                         Aggregate::kMinimum,
                                         Aggregate::kMaximum),
                         [](const auto& info) {
                           return AggregateName(info.param);
                         });

TEST(MultiTest, MinimumRaisesTheWorstPair) {
  const UncertainGraph g = Communities();
  auto solution = MaximizeMultiReliability(g, kSources, kTargets,
                                           Aggregate::kMinimum, FastOptions());
  ASSERT_TRUE(solution.ok());
  const auto before = PairwiseReliability(g, kSources, kTargets, 2000, 7);
  const auto after = PairwiseReliability(
      AugmentGraph(g, solution->added_edges), kSources, kTargets, 2000, 7);
  EXPECT_GT(AggregateMatrix(after, Aggregate::kMinimum),
            AggregateMatrix(before, Aggregate::kMinimum));
}

TEST(MultiTest, BatchBudgetK1IsRespected) {
  const UncertainGraph g = Communities();
  // k1 = 1 forces one edge per refinement round; total budget still k.
  auto solution =
      MaximizeMultiReliability(g, kSources, kTargets, Aggregate::kMinimum,
                               FastOptions(3), /*batch_k1=*/1);
  ASSERT_TRUE(solution.ok());
  EXPECT_LE(solution->added_edges.size(), 3u);
  EXPECT_GT(solution->gain(), 0.0);
}

TEST(MultiTest, SingletonSetsMatchSinglePairBehavior) {
  const UncertainGraph g = Communities();
  auto solution = MaximizeMultiReliability(g, {0}, {14}, Aggregate::kAverage,
                                           FastOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_GT(solution->gain(), 0.05);
}

TEST(MultiTest, ValidatesArguments) {
  const UncertainGraph g = Communities();
  EXPECT_EQ(MaximizeMultiReliability(g, {}, kTargets, Aggregate::kAverage,
                                     FastOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MaximizeMultiReliability(g, {0}, {0, 14}, Aggregate::kMaximum,
                                     FastOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // overlap
  EXPECT_EQ(MaximizeMultiReliability(g, {0}, {99}, Aggregate::kAverage,
                                     FastOptions())
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(MultiTest, PairwiseReliabilityMatrixShape) {
  const UncertainGraph g = Communities();
  const auto matrix = PairwiseReliability(g, kSources, kTargets, 500, 13);
  ASSERT_EQ(matrix.size(), kSources.size());
  for (const auto& row : matrix) {
    ASSERT_EQ(row.size(), kTargets.size());
    for (double r : row) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
  // Within-community pairs are far more reliable than cross-community ones.
  const auto same = PairwiseReliability(g, {0}, {3}, 500, 13);
  EXPECT_GT(same[0][0], matrix[0][0]);
}

TEST(MultiTest, AggregateMatrixFunctions) {
  const std::vector<std::vector<double>> m = {{0.2, 0.8}, {0.4, 0.6}};
  EXPECT_DOUBLE_EQ(AggregateMatrix(m, Aggregate::kAverage), 0.5);
  EXPECT_DOUBLE_EQ(AggregateMatrix(m, Aggregate::kMinimum), 0.2);
  EXPECT_DOUBLE_EQ(AggregateMatrix(m, Aggregate::kMaximum), 0.8);
}

}  // namespace
}  // namespace relmax
