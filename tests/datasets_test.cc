#include <gtest/gtest.h>

#include <algorithm>

#include "gen/datasets.h"
#include "gen/queries.h"
#include "graph/bfs.h"
#include "graph/graph_stats.h"

namespace relmax {
namespace {

TEST(DatasetsTest, RegistryBuildsEveryName) {
  for (const std::string& name : DatasetNames()) {
    auto dataset = MakeDataset(name, /*scale=*/0.02, /*seed=*/1);
    ASSERT_TRUE(dataset.ok()) << name << ": " << dataset.status().ToString();
    EXPECT_EQ(dataset->name, name);
    EXPECT_GT(dataset->graph.num_nodes(), 0u) << name;
    EXPECT_GT(dataset->graph.num_edges(), 0u) << name;
  }
}

TEST(DatasetsTest, UnknownNameRejected) {
  EXPECT_EQ(MakeDataset("facebook").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(MakeDataset("dblp", -1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetsTest, DeterministicForSeed) {
  auto a = MakeDataset("twitter", 0.02, 7);
  auto b = MakeDataset("twitter", 0.02, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
  EXPECT_EQ(a->graph.Edges(), b->graph.Edges());
}

TEST(DatasetsTest, IntelLabShape) {
  auto lab = MakeDataset("intel_lab");
  ASSERT_TRUE(lab.ok());
  EXPECT_EQ(lab->graph.num_nodes(), 54u);
  EXPECT_EQ(lab->positions.size(), 54u);
  EXPECT_TRUE(lab->graph.directed());
  // Paper: 969 directed links, mean probability ~0.33; allow generous bands.
  EXPECT_GT(lab->graph.num_edges(), 250u);
  EXPECT_LT(lab->graph.num_edges(), 1600u);
  const GraphStats stats = ComputeGraphStats(lab->graph);
  EXPECT_GT(stats.prob_mean, 0.2);
  EXPECT_LT(stats.prob_mean, 0.45);
  // No link longer than the 20 m radio range.
  for (const Edge& e : lab->graph.Edges()) {
    EXPECT_LE(DistanceMeters(*lab, e.src, e.dst), 20.0 + 1e-9);
  }
}

TEST(DatasetsTest, RegularDatasetsAreRegular) {
  auto reg = MakeDataset("regular1", 0.02, 3);
  ASSERT_TRUE(reg.ok());
  for (NodeId v = 0; v < reg->graph.num_nodes(); ++v) {
    EXPECT_EQ(reg->graph.OutArcs(v).size(), 5u);
  }
}

TEST(DatasetsTest, EdgeDensitiesScaleAsInTable8) {
  // The "2" variants double the "1" variants' edge counts.
  auto r1 = MakeDataset("random1", 0.02, 3);
  auto r2 = MakeDataset("random2", 0.02, 3);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NEAR(static_cast<double>(r2->graph.num_edges()),
              2.0 * r1->graph.num_edges(), r1->graph.num_edges() * 0.1);
}

TEST(DatasetsTest, SmallWorldBeatsRegularOnPathLength) {
  // Table 8 shape: regular graphs have much longer average shortest paths
  // than small-world graphs of the same size/density.
  auto reg = MakeDataset("regular1", 0.02, 3);
  auto sw = MakeDataset("smallworld1", 0.02, 3);
  ASSERT_TRUE(reg.ok() && sw.ok());
  const double spl_reg = ComputeGraphStats(reg->graph).avg_spl;
  const double spl_sw = ComputeGraphStats(sw->graph).avg_spl;
  EXPECT_GT(spl_reg, 1.5 * spl_sw);
}

TEST(DatasetsTest, DblpHasHighClustering) {
  auto dblp = MakeDataset("dblp", 0.02, 3);
  auto twitter = MakeDataset("twitter", 0.02, 3);
  ASSERT_TRUE(dblp.ok() && twitter.ok());
  EXPECT_GT(ComputeGraphStats(dblp->graph).clustering_coefficient, 0.2);
}

TEST(DatasetsTest, AsTopologyIsDirected) {
  auto as = MakeDataset("as_topology", 0.02, 3);
  ASSERT_TRUE(as.ok());
  EXPECT_TRUE(as->graph.directed());
  const GraphStats stats = ComputeGraphStats(as->graph);
  EXPECT_GT(stats.prob_mean, 0.15);
  EXPECT_LT(stats.prob_mean, 0.35);
}

// --------------------------------------------------------------- queries

TEST(QueriesTest, PairsRespectDistanceBand) {
  auto dataset = MakeDataset("lastfm", 0.1, 5);
  ASSERT_TRUE(dataset.ok());
  auto queries = GenerateQueries(dataset->graph, 20,
                                 {.min_hops = 3, .max_hops = 5, .seed = 2});
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries->size(), 20u);
  for (const auto& [s, t] : *queries) {
    // Verify the hop distance truly lies in [3, 5].
    const std::vector<int> dist = HopDistances(dataset->graph, s, 5);
    ASSERT_NE(dist[t], kUnreachable);
    EXPECT_GE(dist[t], 3);
    EXPECT_LE(dist[t], 5);
  }
}

TEST(QueriesTest, DeterministicForSeed) {
  auto dataset = MakeDataset("lastfm", 0.1, 5);
  ASSERT_TRUE(dataset.ok());
  auto a = GenerateQueries(dataset->graph, 5, {.seed = 11});
  auto b = GenerateQueries(dataset->graph, 5, {.seed = 11});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(QueriesTest, MultiQueryDisjointSets) {
  auto dataset = MakeDataset("lastfm", 0.1, 5);
  ASSERT_TRUE(dataset.ok());
  auto query = GenerateMultiQuery(dataset->graph, 5, {.seed = 3});
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->sources.size(), 5u);
  EXPECT_EQ(query->targets.size(), 5u);
  for (NodeId s : query->sources) {
    EXPECT_EQ(std::count(query->targets.begin(), query->targets.end(), s), 0);
  }
}

TEST(QueriesTest, ValidatesArguments) {
  auto dataset = MakeDataset("lastfm", 0.1, 5);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(GenerateQueries(dataset->graph, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateQueries(dataset->graph, 1,
                            {.min_hops = 5, .max_hops = 3})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  UncertainGraph tiny = UncertainGraph::Directed(1);
  EXPECT_EQ(GenerateQueries(tiny, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace relmax
