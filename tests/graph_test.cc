#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/bfs.h"
#include "graph/graph_io.h"
#include "graph/uncertain_graph.h"
#include "graph/visit_marker.h"

namespace relmax {
namespace {

// ------------------------------------------------------------ construction

TEST(UncertainGraphTest, EmptyGraph) {
  UncertainGraph g = UncertainGraph::Directed(0);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.directed());
}

TEST(UncertainGraphTest, AddNodeGrowsGraph) {
  UncertainGraph g = UncertainGraph::Undirected(2);
  EXPECT_EQ(g.AddNode(), 2u);
  EXPECT_EQ(g.AddNode(), 3u);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_TRUE(g.AddEdge(2, 3, 0.5).ok());
}

TEST(UncertainGraphTest, DirectedAddEdge) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));  // direction matters
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_EQ(g.OutArcs(0).size(), 1u);
  EXPECT_EQ(g.OutArcs(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.OutArcs(0)[0].prob, 0.5);
  ASSERT_EQ(g.InArcs(1).size(), 1u);
  EXPECT_EQ(g.InArcs(1)[0].to, 0u);
  EXPECT_TRUE(g.OutArcs(1).empty());
}

TEST(UncertainGraphTest, UndirectedAddEdgeSymmetric) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(2, 0, 0.7).ok());
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.num_edges(), 1u);  // one logical edge
  EXPECT_EQ(g.OutArcs(0).size(), 1u);
  EXPECT_EQ(g.OutArcs(2).size(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeProb(0, 2).value(), 0.7);
  EXPECT_DOUBLE_EQ(g.EdgeProb(2, 0).value(), 0.7);
}

TEST(UncertainGraphTest, RejectsInvalidEdges) {
  UncertainGraph g = UncertainGraph::Directed(3);
  EXPECT_EQ(g.AddEdge(0, 3, 0.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(5, 0, 0.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(1, 1, 0.5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(0, 1, -0.1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(0, 1, 1.5).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_EQ(g.AddEdge(0, 1, 0.6).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(UncertainGraphTest, UndirectedDuplicateDetectedEitherOrientation) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_EQ(g.AddEdge(1, 0, 0.6).code(), StatusCode::kAlreadyExists);
}

TEST(UncertainGraphTest, EdgeProbAbsent) {
  UncertainGraph g = UncertainGraph::Directed(2);
  EXPECT_FALSE(g.EdgeProb(0, 1).has_value());
}

TEST(UncertainGraphTest, UpdateEdgeProb) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.UpdateEdgeProb(1, 0, 0.9).ok());
  EXPECT_DOUBLE_EQ(g.EdgeProb(0, 1).value(), 0.9);
  // Both stored arcs see the update.
  EXPECT_DOUBLE_EQ(g.OutArcs(0)[0].prob, 0.9);
  EXPECT_DOUBLE_EQ(g.OutArcs(1)[0].prob, 0.9);
  EXPECT_EQ(g.UpdateEdgeProb(0, 2, 0.4).code(), StatusCode::kNotFound);
  EXPECT_EQ(g.UpdateEdgeProb(0, 1, 2.0).code(), StatusCode::kInvalidArgument);
}

TEST(UncertainGraphTest, EdgesCanonicalOrder) {
  UncertainGraph g = UncertainGraph::Undirected(4);
  ASSERT_TRUE(g.AddEdge(3, 1, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].src, 0u);
  EXPECT_EQ(edges[0].dst, 2u);
  EXPECT_EQ(edges[1].src, 1u);  // stored canonically with src < dst
  EXPECT_EQ(edges[1].dst, 3u);
}

TEST(UncertainGraphTest, WeightedDegree) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 0.25).ok());
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 0.75);  // out 0.5 + in 0.25
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 0.5);

  UncertainGraph u = UncertainGraph::Undirected(3);
  ASSERT_TRUE(u.AddEdge(0, 1, 0.5).ok());
  EXPECT_DOUBLE_EQ(u.WeightedDegree(0), 0.5);
  EXPECT_DOUBLE_EQ(u.WeightedDegree(1), 0.5);
}

TEST(UncertainGraphTest, Transposed) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.25).ok());
  UncertainGraph t = g.Transposed();
  EXPECT_TRUE(t.HasEdge(1, 0));
  EXPECT_TRUE(t.HasEdge(2, 1));
  EXPECT_FALSE(t.HasEdge(0, 1));
  EXPECT_DOUBLE_EQ(t.EdgeProb(1, 0).value(), 0.5);
}

TEST(UncertainGraphTest, InducedSubgraph) {
  UncertainGraph g = UncertainGraph::Directed(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.7).ok());
  auto sub = g.InducedSubgraph({0, 1, 2});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), 3u);
  EXPECT_EQ(sub->num_edges(), 2u);  // (2,3) dropped
  EXPECT_TRUE(sub->HasEdge(0, 1));
  EXPECT_TRUE(sub->HasEdge(1, 2));
}

TEST(UncertainGraphTest, InducedSubgraphRemapsIds) {
  UncertainGraph g = UncertainGraph::Undirected(5);
  ASSERT_TRUE(g.AddEdge(2, 4, 0.5).ok());
  auto sub = g.InducedSubgraph({4, 2});
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->HasEdge(0, 1));  // 4 -> 0, 2 -> 1
  EXPECT_EQ(sub->num_edges(), 1u);
}

TEST(UncertainGraphTest, InducedSubgraphRejectsBadSpecs) {
  UncertainGraph g = UncertainGraph::Directed(3);
  EXPECT_EQ(g.InducedSubgraph({0, 7}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(g.InducedSubgraph({0, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ BFS helpers

UncertainGraph PathGraph(int n, bool directed = true) {
  UncertainGraph g =
      directed ? UncertainGraph::Directed(n) : UncertainGraph::Undirected(n);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, i + 1, 0.5).ok());
  }
  return g;
}

TEST(BfsTest, HopDistancesOnPath) {
  UncertainGraph g = PathGraph(5);
  const std::vector<int> dist = HopDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
  // Directed: nothing reaches node 0 except itself.
  const std::vector<int> back = HopDistances(g, 4);
  EXPECT_EQ(back[4], 0);
  EXPECT_EQ(back[0], kUnreachable);
}

TEST(BfsTest, MaxHopsTruncates) {
  UncertainGraph g = PathGraph(6);
  const std::vector<int> dist = HopDistances(g, 0, 2);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsTest, UndirectedHopDistancesIgnoreDirection) {
  UncertainGraph g = PathGraph(5);  // directed chain
  const std::vector<int> dist = UndirectedHopDistances(g, 4);
  EXPECT_EQ(dist, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(VisitMarkerTest, EpochsResetInConstantTime) {
  VisitMarker marker(4);
  marker.NewEpoch();
  EXPECT_TRUE(marker.Visit(2));
  EXPECT_FALSE(marker.Visit(2));
  EXPECT_TRUE(marker.Visited(2));
  EXPECT_FALSE(marker.Visited(1));
  marker.NewEpoch();
  EXPECT_FALSE(marker.Visited(2));
  EXPECT_TRUE(marker.Visit(2));
}

// ------------------------------------------------------------ IO round trip

TEST(GraphIoTest, RoundTrip) {
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.125).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.875).ok());
  const std::string path = testing::TempDir() + "/relmax_io_test.graph";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->directed());
  EXPECT_EQ(loaded->num_nodes(), 4u);
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(loaded->EdgeProb(0, 1).value(), 0.125);
  EXPECT_DOUBLE_EQ(loaded->EdgeProb(2, 3).value(), 0.875);
  std::remove(path.c_str());
}

TEST(GraphIoTest, RoundTripUndirected) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  const std::string path = testing::TempDir() + "/relmax_io_undirected.graph";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->directed());
  EXPECT_TRUE(loaded->HasEdge(2, 1));
  std::remove(path.c_str());
}

TEST(GraphIoTest, ReadsCrlfFiles) {
  // Regression: CRLF line endings (Windows-written edge lists) used to fail
  // — a "\r\n" blank line was not skipped and edge lines kept a trailing
  // '\r'. Both must parse identically to LF files.
  const std::string path = testing::TempDir() + "/relmax_io_crlf.graph";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("# comment\r\n", f);
  fputs("directed 4\r\n", f);
  fputs("\r\n", f);  // blank line (just CRLF) must be skipped
  fputs("0 1 0.25\r\n", f);
  fputs("2 3 0.75\r\n", f);
  fclose(f);
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->directed());
  EXPECT_EQ(loaded->num_nodes(), 4u);
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(loaded->EdgeProb(0, 1).value(), 0.25);
  EXPECT_DOUBLE_EQ(loaded->EdgeProb(2, 3).value(), 0.75);
  std::remove(path.c_str());
}

TEST(GraphIoTest, ReadsLinesLongerThanLegacyBuffer) {
  // Regression: lines over 255 chars used to be split into two bogus
  // records by the fixed fgets buffer. Pad an edge record and a comment far
  // past that length; both must parse as single lines.
  const std::string path = testing::TempDir() + "/relmax_io_long.graph";
  FILE* f = fopen(path.c_str(), "w");
  fputs("# ", f);
  for (int i = 0; i < 600; ++i) fputc('x', f);
  fputs("\ndirected 3\n", f);
  fputs("0 1 0.5", f);
  for (int i = 0; i < 600; ++i) fputc(' ', f);
  fputs("\n1 2 0.5\n", f);
  fclose(f);
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(loaded->EdgeProb(0, 1).value(), 0.5);
  EXPECT_DOUBLE_EQ(loaded->EdgeProb(1, 2).value(), 0.5);
  std::remove(path.c_str());
}

TEST(GraphIoTest, RejectsAbsurdlyLongLines) {
  // The reader grows its buffer for legitimate long lines but refuses
  // multi-megabyte ones (e.g. a binary file fed by mistake).
  const std::string path = testing::TempDir() + "/relmax_io_huge.graph";
  FILE* f = fopen(path.c_str(), "w");
  fputs("directed 2\n# ", f);
  for (int i = 0; i < (2 << 20); ++i) fputc('y', f);
  fputs("\n", f);
  fclose(f);
  EXPECT_EQ(ReadEdgeList(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphIoTest, RejectsNulBytes) {
  // A binary file fed by mistake must error, not be silently merged into
  // truncated records (fgets reports NUL-containing data strlen can't see
  // past). Cover a leading NUL and a mid-line NUL.
  const std::string path = testing::TempDir() + "/relmax_io_nul.graph";
  for (const bool leading : {true, false}) {
    FILE* f = fopen(path.c_str(), "wb");
    fputs("directed 2\n", f);
    if (leading) {
      fputc('\0', f);
      fputs("0 1 0.5\n", f);
    } else {
      fputs("0 1", f);
      fputc('\0', f);
      fputs(" 0.5\n", f);
    }
    fclose(f);
    EXPECT_EQ(ReadEdgeList(path).status().code(),
              StatusCode::kInvalidArgument)
        << "leading = " << leading;
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFile) {
  EXPECT_EQ(ReadEdgeList("/nonexistent/graph.txt").status().code(),
            StatusCode::kIoError);
}

TEST(GraphIoTest, MalformedHeader) {
  const std::string path = testing::TempDir() + "/relmax_io_bad.graph";
  FILE* f = fopen(path.c_str(), "w");
  fputs("sideways 4\n", f);
  fclose(f);
  EXPECT_EQ(ReadEdgeList(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace relmax
