#ifndef RELMAX_TESTS_ORACLE_UTIL_H_
#define RELMAX_TESTS_ORACLE_UTIL_H_

// Shared fixtures for the exact-oracle conformance sweeps: small random
// uncertain graphs (≤ 10 edges) plus a brute-force possible-world
// enumeration oracle that every estimator — Monte Carlo, RSS, lazy
// propagation, the WorldBank fixpoint — must agree with to within sampling
// error. With m ≤ 10 edges the oracle enumerates all 2^m worlds exactly, so
// it is independent of every traversal, stratification, and bit-matrix code
// path under test.

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace oracle {

/// Random graph with up to `max_edges` edges (≤ 10 keeps the oracle cheap).
/// Probabilities are mostly mid-range; with small probability an edge gets
/// p = 0 or p = 1 to exercise the no-draw fast paths of the samplers.
inline UncertainGraph SmallRandomGraph(uint64_t seed, NodeId n, int max_edges,
                                       bool directed) {
  Rng rng(seed);
  UncertainGraph g =
      directed ? UncertainGraph::Directed(n) : UncertainGraph::Undirected(n);
  int edges = 0;
  for (int attempt = 0; edges < max_edges && attempt < 20 * max_edges;
       ++attempt) {
    const NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    const NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u == v || g.HasEdge(u, v)) continue;
    double p = rng.NextDouble(0.1, 0.9);
    if (rng.NextBernoulli(0.1)) p = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
    if (g.AddEdge(u, v, p).ok()) ++edges;
  }
  return g;
}

/// Exact R(s, t, G) by enumerating every possible world: Σ_W P(W) · [s ⇝ t
/// in W]. Reachability per world is a tiny edge-list fixpoint, deliberately
/// sharing no code with the estimators under test.
inline double BruteForceReliability(const UncertainGraph& g, NodeId s,
                                    NodeId t) {
  if (s == t) return 1.0;
  const std::vector<Edge>& edges = g.EdgesById();
  const size_t m = edges.size();
  const bool directed = g.directed();
  double total = 0.0;
  std::vector<char> reach(g.num_nodes());
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    double pw = 1.0;
    for (size_t e = 0; e < m; ++e) {
      pw *= (mask >> e) & 1 ? edges[e].prob : 1.0 - edges[e].prob;
    }
    if (pw == 0.0) continue;
    std::fill(reach.begin(), reach.end(), 0);
    reach[s] = 1;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t e = 0; e < m; ++e) {
        if (((mask >> e) & 1) == 0) continue;
        if (reach[edges[e].src] && !reach[edges[e].dst]) {
          reach[edges[e].dst] = 1;
          changed = true;
        }
        if (!directed && reach[edges[e].dst] && !reach[edges[e].src]) {
          reach[edges[e].src] = 1;
          changed = true;
        }
      }
    }
    if (reach[t]) total += pw;
  }
  return total;
}

/// 3σ band for an unbiased Z-sample estimator of `exact`: one MC sample is
/// Bernoulli(R), σ = sqrt(R(1−R)/Z). RSS and the WorldBank share the bound —
/// RSS strictly reduces variance, and the bank's connected-world fraction is
/// the same Bernoulli mean over Z sampled worlds. The variance floor keeps
/// the band non-degenerate at R ∈ {0, 1}, where the estimators are exact.
inline double ThreeSigma(double exact, int num_samples) {
  return 3.0 *
         std::sqrt(std::max(exact * (1.0 - exact), 1e-6) / num_samples);
}

}  // namespace oracle
}  // namespace relmax

#endif  // RELMAX_TESTS_ORACLE_UTIL_H_
