#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "gen/generators.h"
#include "gen/prob_models.h"
#include "graph/graph_stats.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

TEST(GeneratorsTest, GnmExactEdgeCount) {
  Rng rng(1);
  auto g = GenerateRandomGnm(500, 1200, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 500u);
  EXPECT_EQ(g->num_edges(), 1200u);
  EXPECT_FALSE(g->directed());
}

TEST(GeneratorsTest, GnmRejectsImpossibleDensity) {
  Rng rng(1);
  EXPECT_EQ(GenerateRandomGnm(4, 100, &rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateRandomGnm(1, 0, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GeneratorsTest, GnmDeterministicForSeed) {
  Rng a(9);
  Rng b(9);
  auto g1 = GenerateRandomGnm(200, 500, &a);
  auto g2 = GenerateRandomGnm(200, 500, &b);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->Edges().size(), g2->Edges().size());
  const auto e1 = g1->Edges();
  const auto e2 = g2->Edges();
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].src, e2[i].src);
    EXPECT_EQ(e1[i].dst, e2[i].dst);
  }
}

TEST(GeneratorsTest, KRegularAllDegreesEqual) {
  Rng rng(2);
  auto g = GenerateKRegular(300, 6, &rng);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    EXPECT_EQ(g->OutArcs(v).size(), 6u) << "node " << v;
  }
  EXPECT_EQ(g->num_edges(), 300u * 6 / 2);
}

TEST(GeneratorsTest, KRegularValidation) {
  Rng rng(2);
  EXPECT_EQ(GenerateKRegular(5, 3, &rng).status().code(),
            StatusCode::kInvalidArgument);  // n*k odd
  EXPECT_EQ(GenerateKRegular(5, 5, &rng).status().code(),
            StatusCode::kInvalidArgument);  // k >= n
}

TEST(GeneratorsTest, SmallWorldHasLatticeDensityAndShortcuts) {
  Rng rng(3);
  auto g = GenerateSmallWorld(1000, 6, 0.3, &rng);
  ASSERT_TRUE(g.ok());
  // Each node contributes ~k/2 = 3 edges (some rewires collide).
  EXPECT_NEAR(static_cast<double>(g->num_edges()), 3000.0, 150.0);
  // Rewiring must create at least one long-range shortcut.
  bool has_shortcut = false;
  for (const Edge& e : g->Edges()) {
    const int ring_gap = std::min<int>(
        std::abs(static_cast<int>(e.src) - static_cast<int>(e.dst)),
        1000 - std::abs(static_cast<int>(e.src) - static_cast<int>(e.dst)));
    if (ring_gap > 10) {
      has_shortcut = true;
      break;
    }
  }
  EXPECT_TRUE(has_shortcut);
}

TEST(GeneratorsTest, SmallWorldClusteringExceedsRandom) {
  Rng rng(4);
  auto ws = GenerateSmallWorld(2000, 8, 0.1, &rng);
  auto er = GenerateRandomGnm(2000, 8000, &rng);
  ASSERT_TRUE(ws.ok() && er.ok());
  const double c_ws = ComputeGraphStats(*ws).clustering_coefficient;
  const double c_er = ComputeGraphStats(*er).clustering_coefficient;
  EXPECT_GT(c_ws, 3.0 * c_er);
}

TEST(GeneratorsTest, ScaleFreeHasHubs) {
  Rng rng(5);
  auto g = GenerateScaleFree(3000, 2, &rng);
  ASSERT_TRUE(g.ok());
  // m edges per node after the seed clique.
  EXPECT_NEAR(static_cast<double>(g->num_edges()), 2.0 * 3000, 120.0);
  size_t max_degree = 0;
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    max_degree = std::max(max_degree, g->OutArcs(v).size());
  }
  // Preferential attachment produces hubs far above the mean degree (4).
  EXPECT_GT(max_degree, 40u);
}

TEST(GeneratorsTest, ScaleFreeAlternatingM) {
  Rng rng(6);
  auto g = GenerateScaleFree(2000, 2, &rng, /*alternate_m=*/3);
  ASSERT_TRUE(g.ok());
  // Mean edges per node ~2.5.
  EXPECT_NEAR(static_cast<double>(g->num_edges()), 2.5 * 2000, 150.0);
}

TEST(GeneratorsTest, PowerlawClusterBoostsClustering) {
  Rng rng(7);
  auto plain = GenerateScaleFree(2000, 4, &rng);
  auto clustered = GeneratePowerlawCluster(2000, 4, 0.8, &rng);
  ASSERT_TRUE(plain.ok() && clustered.ok());
  EXPECT_GT(ComputeGraphStats(*clustered).clustering_coefficient,
            2.0 * ComputeGraphStats(*plain).clustering_coefficient);
}

// ----------------------------------------------------------- prob models

UncertainGraph ProbTestGraph(Rng* rng) {
  auto g = GenerateRandomGnm(400, 1200, rng);
  EXPECT_TRUE(g.ok());
  return *std::move(g);
}

TEST(ProbModelsTest, UniformRange) {
  Rng rng(8);
  UncertainGraph g = ProbTestGraph(&rng);
  AssignUniformProbabilities(&g, 0.0, 0.6, &rng);
  double sum = 0.0;
  for (const Edge& e : g.Edges()) {
    EXPECT_GE(e.prob, 0.0);
    EXPECT_LE(e.prob, 0.6);
    sum += e.prob;
  }
  EXPECT_NEAR(sum / g.num_edges(), 0.3, 0.02);
}

TEST(ProbModelsTest, NormalClipped) {
  Rng rng(9);
  UncertainGraph g = ProbTestGraph(&rng);
  AssignNormalProbabilities(&g, 0.5, 0.038, &rng);
  double sum = 0.0;
  for (const Edge& e : g.Edges()) {
    EXPECT_GT(e.prob, 0.0);
    EXPECT_LE(e.prob, 1.0);
    sum += e.prob;
  }
  EXPECT_NEAR(sum / g.num_edges(), 0.5, 0.01);
}

TEST(ProbModelsTest, InverseOutDegree) {
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 0, 0.0).ok());
  AssignInverseOutDegreeProbabilities(&g);
  EXPECT_DOUBLE_EQ(g.EdgeProb(0, 1).value(), 0.5);  // out-degree(0) = 2
  EXPECT_DOUBLE_EQ(g.EdgeProb(0, 2).value(), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeProb(3, 0).value(), 1.0);  // out-degree(3) = 1
}

TEST(ProbModelsTest, ExponentialCdfSmallProbabilities) {
  Rng rng(10);
  UncertainGraph g = ProbTestGraph(&rng);
  AssignExponentialCdfProbabilities(&g, 2.2, 20.0, &rng);
  double sum = 0.0;
  for (const Edge& e : g.Edges()) {
    EXPECT_GT(e.prob, 0.0);
    EXPECT_LT(e.prob, 1.0);
    sum += e.prob;
  }
  // Counts with mean 2.2 and mu = 20 give probabilities near 0.1 (DBLP).
  EXPECT_NEAR(sum / g.num_edges(), 0.10, 0.03);
}

}  // namespace
}  // namespace relmax
