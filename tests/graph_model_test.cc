// Reference-model test: drives UncertainGraph through randomized operation
// sequences and cross-checks every observable against a trivial
// std::map-based model. Catches representation bugs (adjacency vs index
// drift) that example-based tests miss.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/rng.h"
#include "graph/uncertain_graph.h"

namespace relmax {
namespace {

class ReferenceModel {
 public:
  explicit ReferenceModel(bool directed) : directed_(directed) {}

  bool AddEdge(NodeId u, NodeId v, double p) {
    if (u == v || p < 0.0 || p > 1.0 || u >= nodes_ || v >= nodes_) {
      return false;
    }
    return edges_.emplace(Key(u, v), p).second;
  }

  bool UpdateProb(NodeId u, NodeId v, double p) {
    if (p < 0.0 || p > 1.0) return false;
    auto it = edges_.find(Key(u, v));
    if (it == edges_.end()) return false;
    it->second = p;
    return true;
  }

  std::optional<double> Prob(NodeId u, NodeId v) const {
    auto it = edges_.find(Key(u, v));
    if (it == edges_.end()) return std::nullopt;
    return it->second;
  }

  // Neighbor multiset of u via outgoing arcs.
  std::multiset<NodeId> OutNeighbors(NodeId u) const {
    std::multiset<NodeId> out;
    for (const auto& [key, p] : edges_) {
      if (key.first == u) out.insert(key.second);
      if (!directed_ && key.second == u) out.insert(key.first);
    }
    return out;
  }

  void AddNode() { ++nodes_; }
  NodeId nodes() const { return nodes_; }
  size_t edges() const { return edges_.size(); }

 private:
  std::pair<NodeId, NodeId> Key(NodeId u, NodeId v) const {
    if (!directed_ && u > v) std::swap(u, v);
    return {u, v};
  }

  bool directed_;
  NodeId nodes_ = 0;
  std::map<std::pair<NodeId, NodeId>, double> edges_;
};

class GraphModelSweep : public testing::TestWithParam<int> {};

TEST_P(GraphModelSweep, RandomOperationSequencesAgree) {
  const bool directed = GetParam() % 2 == 0;
  Rng rng(8800 + GetParam());
  UncertainGraph graph =
      directed ? UncertainGraph::Directed(4) : UncertainGraph::Undirected(4);
  ReferenceModel model(directed);
  for (int i = 0; i < 4; ++i) model.AddNode();

  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng.NextUint64(10));
    if (op == 0 && model.nodes() < 24) {
      graph.AddNode();
      model.AddNode();
    } else if (op <= 6) {
      // AddEdge with occasionally invalid arguments.
      const NodeId u = static_cast<NodeId>(rng.NextUint64(model.nodes() + 1));
      const NodeId v = static_cast<NodeId>(rng.NextUint64(model.nodes() + 1));
      const double p = rng.NextDouble(-0.1, 1.1);
      const bool model_ok = model.AddEdge(u, v, p);
      EXPECT_EQ(graph.AddEdge(u, v, p).ok(), model_ok)
          << "step " << step << " add (" << u << "," << v << "," << p << ")";
    } else if (op == 7) {
      const NodeId u = static_cast<NodeId>(rng.NextUint64(model.nodes()));
      const NodeId v = static_cast<NodeId>(rng.NextUint64(model.nodes()));
      const double p = rng.NextDouble(-0.1, 1.1);
      EXPECT_EQ(graph.UpdateEdgeProb(u, v, p).ok(), model.UpdateProb(u, v, p));
    } else {
      // Read-only probes.
      const NodeId u = static_cast<NodeId>(rng.NextUint64(model.nodes()));
      const NodeId v = static_cast<NodeId>(rng.NextUint64(model.nodes()));
      const auto expected = model.Prob(u, v);
      const auto actual = graph.EdgeProb(u, v);
      EXPECT_EQ(actual.has_value(), expected.has_value());
      if (actual.has_value() && expected.has_value()) {
        EXPECT_DOUBLE_EQ(*actual, *expected);
      }
      EXPECT_EQ(graph.HasEdge(u, v), expected.has_value());
    }

    // Periodic full-state audit.
    if (step % 97 == 0) {
      ASSERT_EQ(graph.num_nodes(), model.nodes());
      ASSERT_EQ(graph.num_edges(), model.edges());
      for (NodeId u = 0; u < model.nodes(); ++u) {
        std::multiset<NodeId> actual;
        for (const Arc& arc : graph.OutArcs(u)) actual.insert(arc.to);
        ASSERT_EQ(actual, model.OutNeighbors(u)) << "node " << u;
      }
    }
  }

  // Final audit: edge list contents and arc probabilities.
  ASSERT_EQ(graph.num_edges(), model.edges());
  for (const Edge& e : graph.Edges()) {
    const auto expected = model.Prob(e.src, e.dst);
    ASSERT_TRUE(expected.has_value());
    EXPECT_DOUBLE_EQ(e.prob, *expected);
    // EdgeById round-trips through EdgeIndexOf.
    const auto id = graph.EdgeIndexOf(e.src, e.dst);
    ASSERT_TRUE(id.has_value());
    EXPECT_DOUBLE_EQ(graph.EdgeById(*id).prob, *expected);
  }
  // Transposed graph preserves edge count and probabilities.
  const UncertainGraph transposed = graph.Transposed();
  EXPECT_EQ(transposed.num_edges(), graph.num_edges());
  for (const Edge& e : graph.Edges()) {
    const auto p = directed ? transposed.EdgeProb(e.dst, e.src)
                            : transposed.EdgeProb(e.src, e.dst);
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(*p, e.prob);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphModelSweep, testing::Range(0, 8));

}  // namespace
}  // namespace relmax
