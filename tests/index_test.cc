// ReliabilityIndex: per-world component/SCC labels must reproduce the
// word-parallel flood bit-for-bit (undirected and directed), incremental
// maintenance must equal a full rebuild while touching only the affected
// worlds, and the directed reach-row cache must evict without changing
// answers.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "index/reliability_index.h"
#include "sampling/bitlane.h"
#include "sampling/world_bank.h"

namespace relmax {
namespace {

UncertainGraph RandomGraph(uint64_t seed, NodeId n, double density,
                           bool directed) {
  Rng rng(seed);
  UncertainGraph g =
      directed ? UncertainGraph::Directed(n) : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(density)) {
        EXPECT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  return g;
}

std::vector<uint64_t> FloodRow(const WorldBank& bank, NodeId s, NodeId t) {
  bitlane::BitMatrix reach;
  bank.ReachabilityFixpoint(s, /*backward=*/false, bank.AllEdges(), &reach);
  const std::span<const uint64_t> row = reach.row_span(t);
  return std::vector<uint64_t>(row.begin(), row.end());
}

TEST(ReliabilityIndexTest, ConnectedWorldsMatchFloodBitwise) {
  for (const bool directed : {false, true}) {
    // 200 worlds: 4 words with a partial tail, so tail masking is exercised.
    const UncertainGraph g = RandomGraph(101, 13, 0.2, directed);
    const WorldBank bank(g, {.num_samples = 200, .seed = 5});
    ReliabilityIndex index(bank, {});
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        EXPECT_EQ(index.ConnectedWorlds(s, t), FloodRow(bank, s, t))
            << "directed = " << directed << " (" << s << ", " << t << ")";
      }
    }
  }
}

TEST(ReliabilityIndexTest, QueryEqualsConnectedFraction) {
  const UncertainGraph g = RandomGraph(103, 10, 0.3, false);
  const WorldBank bank(g, {.num_samples = 128, .seed = 9});
  ReliabilityIndex index(bank, {});
  for (NodeId t = 1; t < g.num_nodes(); ++t) {
    EXPECT_EQ(index.Query(0, t),
              bank.ConnectedFraction(0, t, bank.AllEdges(), {}))
        << "t = " << t;
  }
}

TEST(ReliabilityIndexTest, LabelsAreThreadInvariant) {
  const UncertainGraph g = RandomGraph(107, 12, 0.25, true);
  const WorldBank bank(g, {.num_samples = 320, .seed = 11});
  ReliabilityIndex one(bank, {.num_threads = 1});
  ReliabilityIndex four(bank, {.num_threads = 4});
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_EQ(one.ConnectedWorlds(s, t), four.ConnectedWorlds(s, t));
    }
  }
}

TEST(ReliabilityIndexTest, StronglyConnectedWorldNeedsNoFlood) {
  // A certain 3-cycle is one SCC in every world: every pair answers from the
  // label planes alone, so the lazy flood never runs.
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 1.0).ok());
  const WorldBank bank(g, {.num_samples = 96, .seed = 3});
  ReliabilityIndex index(bank, {});
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId t = 0; t < 3; ++t) {
      EXPECT_DOUBLE_EQ(index.Query(s, t), 1.0);
    }
  }
  EXPECT_EQ(index.stats().reach_floods, 0u);
}

TEST(ReliabilityIndexTest, DiffWorldsFindsExactlyTheChangedWorlds) {
  UncertainGraph g = RandomGraph(109, 8, 0.4, false);
  const WorldBank before(g, {.num_samples = 200, .seed = 21});
  const Edge edge = g.EdgesById()[1];
  ASSERT_TRUE(g.UpdateEdgeProb(edge.src, edge.dst, edge.prob * 0.5).ok());
  const WorldBank after(g, {.num_samples = 200, .seed = 21});

  const std::vector<uint64_t> mask =
      ReliabilityIndex::DiffWorlds(before, after);
  for (int w = 0; w < 200; ++w) {
    bool differs = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (before.EdgePresent(w, e) != after.EdgePresent(w, e)) differs = true;
    }
    EXPECT_EQ(((mask[w >> 6] >> (w & 63)) & 1) != 0, differs) << "w = " << w;
  }
  // Interior probabilities consume one draw regardless of their value, so
  // only the updated edge's row can differ — some but not all worlds flip.
  const int64_t affected = WorldBank::CountBits(mask, 200);
  EXPECT_GT(affected, 0);
  EXPECT_LT(affected, 200);
}

TEST(ReliabilityIndexTest, ApplyBankUpdateEqualsFullRebuild) {
  for (const bool directed : {false, true}) {
    UncertainGraph g = RandomGraph(113, 10, 0.3, directed);
    const WorldBank before(g, {.num_samples = 256, .seed = 13});
    ReliabilityIndex incremental(before, {});

    const Edge edge = g.EdgesById()[0];
    ASSERT_TRUE(g.UpdateEdgeProb(edge.src, edge.dst, edge.prob * 0.6).ok());
    const WorldBank after(g, {.num_samples = 256, .seed = 13});
    const std::vector<uint64_t> mask =
        ReliabilityIndex::DiffWorlds(before, after);
    incremental.ApplyBankUpdate(after, mask);
    EXPECT_EQ(incremental.stats().incremental_updates, 1u);
    EXPECT_EQ(incremental.stats().last_update_worlds,
              static_cast<size_t>(WorldBank::CountBits(mask, 256)));
    EXPECT_LT(incremental.stats().last_update_worlds, 256u);

    ReliabilityIndex rebuilt(after, {});
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        EXPECT_EQ(incremental.ConnectedWorlds(s, t),
                  rebuilt.ConnectedWorlds(s, t))
            << "directed = " << directed << " (" << s << ", " << t << ")";
      }
    }
  }
}

TEST(ReliabilityIndexTest, ApplyBankUpdateHandlesAppendedEdges) {
  UncertainGraph g = RandomGraph(127, 9, 0.25, false);
  const WorldBank before(g, {.num_samples = 192, .seed = 17});
  ReliabilityIndex incremental(before, {});

  NodeId u = 0, v = 1;
  while (g.HasEdge(u, v)) {
    if (++v == g.num_nodes()) {
      ++u;
      v = u + 1;
    }
  }
  ASSERT_TRUE(g.AddEdge(u, v, 0.5).ok());
  const WorldBank after(g, {.num_samples = 192, .seed = 17});
  incremental.ApplyBankUpdate(after,
                              ReliabilityIndex::DiffWorlds(before, after));

  ReliabilityIndex rebuilt(after, {});
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_EQ(incremental.ConnectedWorlds(s, t),
                rebuilt.ConnectedWorlds(s, t));
    }
  }
}

// Regression: ApplyBankUpdate drops the directed reach cache (its rows mixed
// pre-update worlds), so the reach_* counters must reset with it. They used
// to carry over, making an incremental engine report floods that served the
// previous bank — over-counted relative to a fresh build.
TEST(ReliabilityIndexTest, ApplyBankUpdateResetsReachCacheStats) {
  UncertainGraph g = RandomGraph(139, 10, 0.3, true);
  const WorldBank before(g, {.num_samples = 256, .seed = 29});
  ReliabilityIndex incremental(before, {});
  // Populate the reach cache from several sources pre-update.
  for (NodeId s = 0; s < 5; ++s) incremental.Query(s, g.num_nodes() - 1);
  ASSERT_GT(incremental.stats().reach_floods, 0u);

  const Edge edge = g.EdgesById()[0];
  ASSERT_TRUE(g.UpdateEdgeProb(edge.src, edge.dst, edge.prob * 0.7).ok());
  const WorldBank after(g, {.num_samples = 256, .seed = 29});
  incremental.ApplyBankUpdate(after,
                              ReliabilityIndex::DiffWorlds(before, after));
  EXPECT_EQ(incremental.stats().reach_floods, 0u);
  EXPECT_EQ(incremental.stats().reach_rows_cached, 0u);
  EXPECT_EQ(incremental.stats().reach_row_evictions, 0u);
  EXPECT_EQ(incremental.reach_cache_bytes(), 0u);

  // After identical query traffic, the incremental index's reach counters
  // match a fresh build's exactly — stats describe the current bank only.
  ReliabilityIndex rebuilt(after, {});
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(incremental.Query(s, g.num_nodes() - 1),
              rebuilt.Query(s, g.num_nodes() - 1));
  }
  EXPECT_EQ(incremental.stats().reach_floods, rebuilt.stats().reach_floods);
  EXPECT_EQ(incremental.stats().reach_rows_cached,
            rebuilt.stats().reach_rows_cached);
}

TEST(ReliabilityIndexTest, ReachRowCacheEvictsWithoutChangingAnswers) {
  const UncertainGraph g = RandomGraph(131, 12, 0.25, true);
  const WorldBank bank(g, {.num_samples = 128, .seed = 19});
  // Cap the cache at roughly two reach rows (n rows × 2 words × 8 bytes
  // each), so sweeping all sources must evict.
  ReliabilityIndex::Options options;
  options.max_reach_bytes = static_cast<size_t>(g.num_nodes()) * 2 * 8 * 2;
  ReliabilityIndex index(bank, options);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_EQ(index.ConnectedWorlds(s, t), FloodRow(bank, s, t))
          << "(" << s << ", " << t << ")";
    }
  }
  EXPECT_GT(index.stats().reach_row_evictions, 0u);
  EXPECT_LE(index.reach_cache_bytes(), options.max_reach_bytes);
}

TEST(ReliabilityIndexTest, FitsAndFootprint) {
  const UncertainGraph g = RandomGraph(137, 100, 0.05, false);
  // 100 nodes -> 7 label bits; 128 worlds -> 2 words.
  EXPECT_EQ(ReliabilityIndex::LabelBytes(100, 128), 100u * 7u * 2u * 8u);
  ReliabilityIndex::Options roomy;
  EXPECT_TRUE(ReliabilityIndex::Fits(g, 128, roomy));
  ReliabilityIndex::Options tight;
  tight.max_label_bytes = 100;
  EXPECT_FALSE(ReliabilityIndex::Fits(g, 128, tight));

  const WorldBank bank(g, {.num_samples = 128, .seed = 23});
  ReliabilityIndex index(bank, roomy);
  EXPECT_EQ(index.label_bytes(), ReliabilityIndex::LabelBytes(100, 128));
  EXPECT_EQ(index.label_bits(), 7);
}

TEST(ReliabilityIndexTest, TrivialGraphs) {
  // Single node: zero label bits, every world trivially connects s to s.
  const UncertainGraph lonely = UncertainGraph::Directed(1);
  const WorldBank lonely_bank(lonely, {.num_samples = 70, .seed = 1});
  ReliabilityIndex lonely_index(lonely_bank, {});
  EXPECT_EQ(lonely_index.label_bits(), 0);
  EXPECT_DOUBLE_EQ(lonely_index.Query(0, 0), 1.0);

  // Edgeless graph: nothing connects, self-queries stay certain.
  const UncertainGraph empty = UncertainGraph::Undirected(5);
  const WorldBank empty_bank(empty, {.num_samples = 64, .seed = 2});
  ReliabilityIndex empty_index(empty_bank, {});
  EXPECT_DOUBLE_EQ(empty_index.Query(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(empty_index.Query(3, 3), 1.0);
}

}  // namespace
}  // namespace relmax
