// Online query daemon: protocol parsing, scripted-stream answers pinned
// bit-identical to the batch engine, response ordering, typed shed /
// rejection, epoch-snapshot semantics under a concurrent writer (readers on
// epoch N never see N+1), the eviction-stat reset across epoch swaps, and
// socket serving with a clean shutdown. Carries the `sanitize` CTest label:
// the snapshot/lane handoffs are exactly where instrumented builds earn
// their keep.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "serve/protocol.h"
#include "serve/serve_core.h"
#include "serve/server.h"
#include "serve/snapshot.h"

#ifndef _WIN32
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace relmax {
namespace {

using serve::ParseRequest;
using serve::Request;
using serve::RequestKind;
using serve::ServeCore;
using serve::ServeOptions;
using serve::ServeStats;
using serve::Server;

// The README's Example-3 graph: 2 -> 1 (0.9), 2 -> 3 (0.3), node 0 isolated.
UncertainGraph Example3() {
  UncertainGraph g = UncertainGraph::Directed(4);
  EXPECT_TRUE(g.AddEdge(2, 1, 0.9).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.3).ok());
  return g;
}

UncertainGraph RandomGraph(uint64_t seed, NodeId n, double density) {
  Rng rng(seed);
  UncertainGraph g = UncertainGraph::Directed(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(density)) {
        EXPECT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.05, 0.95)).ok());
      }
    }
  }
  return g;
}

// ------------------------------------------------------------ protocol

TEST(ServeProtocolTest, ParsesEveryCommand) {
  auto q = ParseRequest("query 2 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, RequestKind::kQuery);
  EXPECT_EQ(q->s, 2u);
  EXPECT_EQ(q->t, 3u);

  auto u = ParseRequest("  update 0 1 0.25  ");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->kind, RequestKind::kUpdate);
  EXPECT_DOUBLE_EQ(u->p, 0.25);

  auto a = ParseRequest("addedge 1 2 1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->kind, RequestKind::kAddEdge);

  EXPECT_EQ(ParseRequest("stats")->kind, RequestKind::kStats);
  EXPECT_EQ(ParseRequest("epoch")->kind, RequestKind::kEpoch);
  EXPECT_EQ(ParseRequest("quit")->kind, RequestKind::kQuit);
  EXPECT_EQ(ParseRequest("shutdown")->kind, RequestKind::kShutdown);
}

TEST(ServeProtocolTest, CommentsAndBlankLinesConsumeNoSlot) {
  EXPECT_EQ(ParseRequest("")->kind, RequestKind::kComment);
  EXPECT_EQ(ParseRequest("   ")->kind, RequestKind::kComment);
  EXPECT_EQ(ParseRequest("# query 2 3")->kind, RequestKind::kComment);
}

TEST(ServeProtocolTest, MalformedLinesAreTypedInvalidArgument) {
  for (const char* line :
       {"flood 2 3", "query", "query 2", "query 2 3 4", "query a b",
        "query -1 3", "update 2 3", "update 2 3 1.5", "update 2 3 -0.1",
        "update 2 3 nope", "stats now", "quit 1"}) {
    const auto parsed = ParseRequest(line);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << line;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(ServeProtocolTest, QueryResponseMatchesBatchRowFormat) {
  EXPECT_EQ(serve::QueryResponse(2, 3, 0.30035), "R(2, 3) = 0.3004");
  EXPECT_EQ(serve::QueryResponse(0, 3, 0.0), "R(0, 3) = 0.0000");
}

// ------------------------------------------------------------ scripted streams

// The tentpole contract end to end: a scripted stream's R( rows are
// bit-identical to one QueryEngine batch over the same pairs — micro-batch
// windowing must not be observable in the values.
TEST(ServeServerTest, ScriptedStreamMatchesBatchEngine) {
  const UncertainGraph g = RandomGraph(11, 24, 0.12);
  std::vector<StQuery> pairs;
  QuerySet set;
  Rng rng(99);
  std::istringstream in([&] {
    std::string script;
    for (int i = 0; i < 40; ++i) {
      const NodeId s = static_cast<NodeId>(rng.NextUint64(24));
      const NodeId t = static_cast<NodeId>(rng.NextUint64(24));
      pairs.push_back({s, t});
      set.AddSt(s, t);
      script += "query " + std::to_string(s) + " " + std::to_string(t) + "\n";
    }
    return script + "quit\n";
  }());

  ServeOptions options;
  options.engine.num_samples = 400;
  options.engine.seed = 5;
  Server server(g, options);
  std::ostringstream out;
  const ServeStats stats = server.Run(in, out);
  EXPECT_EQ(stats.answered, 40u);

  QueryEngine reference(g, options.engine);
  const auto batch = reference.Answer(set);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  std::string expected;
  for (size_t i = 0; i < pairs.size(); ++i) {
    expected +=
        serve::QueryResponse(pairs[i].s, pairs[i].t, batch->st_values[i]) +
        "\n";
  }
  expected += "OK bye\n";
  EXPECT_EQ(out.str(), expected);
}

// Responses come back in request order even when lanes answer windows
// concurrently and out of order.
TEST(ServeServerTest, ResponsesArriveInRequestOrder) {
  const UncertainGraph g = RandomGraph(13, 16, 0.15);
  std::string script;
  std::vector<StQuery> pairs;
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    const NodeId s = static_cast<NodeId>(rng.NextUint64(16));
    const NodeId t = static_cast<NodeId>(rng.NextUint64(16));
    pairs.push_back({s, t});
    script += "query " + std::to_string(s) + " " + std::to_string(t) + "\n";
  }
  script += "quit\n";

  ServeOptions options;
  options.engine.num_samples = 200;
  options.max_batch = 4;   // many small windows
  options.window_us = 0;   // drain eagerly
  options.lanes = 4;       // raced across lanes
  Server server(g, options);
  std::istringstream in(script);
  std::ostringstream out;
  server.Run(in, out);

  std::istringstream lines(out.str());
  std::string line;
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(std::getline(lines, line));
    const std::string prefix = "R(" + std::to_string(pairs[i].s) + ", " +
                               std::to_string(pairs[i].t) + ") = ";
    EXPECT_EQ(line.compare(0, prefix.size(), prefix), 0)
        << "line " << i << ": " << line;
  }
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK bye");
}

TEST(ServeServerTest, ShedIsTypedUnavailable) {
  ServeOptions options;
  options.max_queue = 0;  // shed everything
  Server server(Example3(), options);
  std::istringstream in("query 2 3\nquery 2 1\nquit\n");
  std::ostringstream out;
  const ServeStats stats = server.Run(in, out);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.answered, 0u);
  std::istringstream lines(out.str());
  std::string line;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line.compare(0, 16, "ERR Unavailable:"), 0) << line;
  }
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK bye");
}

TEST(ServeServerTest, InvalidQueryIsTypedErrorAndStreamContinues) {
  ServeOptions options;
  options.engine.num_samples = 200;
  options.engine.seed = 5;
  Server server(Example3(), options);
  std::istringstream in("query 9 0\nbogus 1 2\nquery 2 1\nquit\n");
  std::ostringstream out;
  const ServeStats stats = server.Run(in, out);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.answered, 1u);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.compare(0, 20, "ERR InvalidArgument:"), 0) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.compare(0, 20, "ERR InvalidArgument:"), 0) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.compare(0, 8, "R(2, 1) "), 0) << line;
}

// ------------------------------------------------------------ epochs

// A query submitted before a publish answers on the old epoch; one submitted
// after answers on the new epoch — and each reports the epoch it was pinned
// to.
TEST(ServeCoreTest, UpdatePublishesEpochAndPinsInFlightQueries) {
  ServeOptions options;
  options.engine.num_samples = 2000;
  options.engine.seed = 5;
  ServeCore core(Example3(), options);

  double before = -1.0, after = -1.0;
  uint64_t before_epoch = 99, after_epoch = 99;
  core.Submit(2, 3, [&](const StatusOr<double>& r, uint64_t epoch) {
    ASSERT_TRUE(r.ok());
    before = *r;
    before_epoch = epoch;
  });
  core.Drain();

  const auto epoch = core.UpdateEdgeProb(2, 3, 0.9);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(core.CurrentSnapshot()->epoch(), 1u);

  core.Submit(2, 3, [&](const StatusOr<double>& r, uint64_t epoch) {
    ASSERT_TRUE(r.ok());
    after = *r;
    after_epoch = epoch;
  });
  core.Drain();

  EXPECT_EQ(before_epoch, 0u);
  EXPECT_EQ(after_epoch, 1u);
  EXPECT_GT(after, before);  // 0.3 edge raised to 0.9

  // Mutating a missing edge is a typed failure, not a new epoch.
  const auto missing = core.UpdateEdgeProb(0, 1, 0.5);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(core.CurrentSnapshot()->epoch(), 1u);
}

// Satellite regression: the epoch-scoped result-cache stats reset on
// publish (fresh replicas start with empty caches) while the lifetime total
// keeps counting — and straggler stats from the old epoch are not charged
// to the new one.
TEST(ServeCoreTest, EvictionStatsResetAcrossEpochSwap) {
  ServeOptions options;
  options.engine.num_samples = 200;
  options.engine.max_cache_entries = 2;
  options.window_us = 0;
  ServeCore core(Example3(), options);

  // Four distinct pairs through a 2-entry FIFO cache: 2 evictions.
  for (const auto& [s, t] : std::vector<std::pair<NodeId, NodeId>>{
           {2, 3}, {2, 1}, {0, 3}, {1, 3}}) {
    core.Submit(s, t, [](const StatusOr<double>& r, uint64_t) {
      ASSERT_TRUE(r.ok());
    });
    core.Drain();  // one window per query: deterministic eviction count
  }
  ServeStats stats = core.Stats();
  EXPECT_EQ(stats.cache_evictions_total, 2u);
  EXPECT_EQ(stats.cache_evictions_epoch, 2u);
  EXPECT_EQ(stats.cache_entries, 2u);

  const auto epoch = core.UpdateEdgeProb(2, 3, 0.9);
  ASSERT_TRUE(epoch.ok());
  stats = core.Stats();
  EXPECT_EQ(stats.cache_evictions_total, 2u);  // lifetime count survives
  EXPECT_EQ(stats.cache_evictions_epoch, 0u);  // epoch-scoped count resets
  EXPECT_EQ(stats.cache_entries, 0u);

  core.Submit(2, 3, [](const StatusOr<double>& r, uint64_t) {
    ASSERT_TRUE(r.ok());
  });
  core.Drain();
  stats = core.Stats();
  EXPECT_EQ(stats.cache_evictions_epoch, 0u);  // new cache, no pressure yet
  EXPECT_EQ(stats.cache_entries, 1u);
}

// Satellite concurrency test: readers pinned on epoch N keep answering
// bit-identically to a pre-computed epoch-N reference while a writer
// publishes N+1, N+2, ... — snapshots are immutable, and through the core
// every answer matches the reference for the epoch it reports.
TEST(ServeCoreTest, SnapshotReadersAreImmuneToConcurrentWriter) {
  const UncertainGraph g = RandomGraph(7, 20, 0.15);
  QueryEngineOptions engine_options;
  engine_options.num_samples = 300;
  engine_options.seed = 5;

  // Reference answers per epoch, computed serially up front on private
  // copies that replay the same mutation sequence the writer will publish.
  const std::vector<StQuery> pairs = {{0, 5}, {3, 9}, {7, 2}, {14, 1}};
  const std::vector<Edge> mutations = {
      {0, 5, 0.99}, {3, 9, 0.99}, {7, 2, 0.99}, {14, 1, 0.99}};
  QuerySet set;
  for (const StQuery& q : pairs) set.AddSt(q.s, q.t);
  std::vector<std::vector<double>> reference;  // [epoch][pair]
  {
    UncertainGraph replica = g;
    for (size_t e = 0; e <= mutations.size(); ++e) {
      QueryEngine engine(replica, engine_options);
      const auto batch = engine.Answer(set);
      ASSERT_TRUE(batch.ok());
      reference.push_back(batch->st_values);
      if (e < mutations.size()) {
        const Edge& m = mutations[e];
        ASSERT_TRUE((replica.HasEdge(m.src, m.dst)
                         ? replica.UpdateEdgeProb(m.src, m.dst, m.prob)
                         : replica.AddEdge(m.src, m.dst, m.prob))
                        .ok());
      }
    }
  }

  ServeOptions options;
  options.engine = engine_options;
  options.window_us = 0;
  ServeCore core(g, options);

  // Readers pin the epoch-0 snapshot directly and hammer it with their own
  // engines while the writer publishes every mutation: every answer must
  // stay bit-identical to the epoch-0 reference.
  const std::shared_ptr<const serve::GraphSnapshot> pinned =
      core.CurrentSnapshot();
  ASSERT_EQ(pinned->epoch(), 0u);
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int iter = 0; iter < 3; ++iter) {
        QueryEngine engine(pinned->graph(), engine_options);
        const auto batch = engine.Answer(set);
        if (!batch.ok() || batch->st_values != reference[0]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  std::thread writer([&] {
    while (!go.load()) std::this_thread::yield();
    for (const Edge& m : mutations) {
      const auto epoch = core.CurrentSnapshot()->graph().HasEdge(m.src, m.dst)
                             ? core.UpdateEdgeProb(m.src, m.dst, m.prob)
                             : core.AddEdge(m.src, m.dst, m.prob);
      ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    }
  });

  // Meanwhile, queries submitted through the core must match the reference
  // for whichever epoch they report being pinned to.
  std::mutex check_mu;
  std::vector<std::pair<uint64_t, std::pair<size_t, double>>> answers;
  go.store(true);
  for (int round = 0; round < 20; ++round) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      core.Submit(pairs[i].s, pairs[i].t,
                  [&, i](const StatusOr<double>& r, uint64_t epoch) {
                    ASSERT_TRUE(r.ok());
                    std::lock_guard<std::mutex> lock(check_mu);
                    answers.push_back({epoch, {i, *r}});
                  });
    }
  }
  writer.join();
  core.Drain();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  EXPECT_EQ(core.CurrentSnapshot()->epoch(), mutations.size());
  EXPECT_EQ(pinned->epoch(), 0u);  // the pinned snapshot never moved
  for (const auto& [epoch, idx_value] : answers) {
    ASSERT_LT(epoch, reference.size());
    EXPECT_EQ(idx_value.second, reference[epoch][idx_value.first])
        << "epoch " << epoch << " pair " << idx_value.first;
  }
}

// Replayed replicas land on the same version counter as the published
// snapshot — the invariant that keys every lane's result cache correctly.
TEST(ServeCoreTest, SnapshotVersionTracksMutations) {
  ServeCore core(Example3(), ServeOptions{});
  const uint64_t v0 = core.CurrentSnapshot()->version();
  ASSERT_TRUE(core.UpdateEdgeProb(2, 3, 0.5).ok());
  EXPECT_EQ(core.CurrentSnapshot()->version(), v0 + 1);
  ASSERT_TRUE(core.AddEdge(0, 1, 0.4).ok());
  EXPECT_EQ(core.CurrentSnapshot()->version(), v0 + 2);
}

// ------------------------------------------------------------ socket mode

#ifndef _WIN32
TEST(ServeServerTest, SocketServesAndShutsDown) {
  ServeOptions options;
  options.engine.num_samples = 2000;
  options.engine.seed = 5;
  Server server(Example3(), options);

  std::promise<uint16_t> port_promise;
  std::future<uint16_t> port_future = port_promise.get_future();
  std::thread serving([&] {
    const Status status = server.ServePort(
        0, [&](uint16_t port) { port_promise.set_value(port); });
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  const uint16_t port = port_future.get();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string request = "query 2 3\nshutdown\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[256];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  serving.join();  // `shutdown` stopped the listener; a leak hangs here

  std::istringstream lines(response);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.compare(0, 8, "R(2, 3) "), 0) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK bye");
}
#endif  // _WIN32

}  // namespace
}  // namespace relmax
