#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "paths/layered_mrp.h"
#include "paths/most_reliable_path.h"

namespace relmax {
namespace {

// Oracle: best achievable MRP probability over all candidate subsets of size
// <= k (exponential; test graphs are tiny).
double BruteForceBestMrp(const UncertainGraph& g, NodeId s, NodeId t, int k,
                         const std::vector<Edge>& candidates) {
  const int m = static_cast<int>(candidates.size());
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    if (__builtin_popcount(mask) > k) continue;
    UncertainGraph aug = g;
    bool valid = true;
    for (int i = 0; i < m; ++i) {
      if ((mask >> i) & 1) {
        if (!aug.AddEdge(candidates[i].src, candidates[i].dst,
                         candidates[i].prob)
                 .ok()) {
          valid = false;
          break;
        }
      }
    }
    if (!valid) continue;
    const auto path = MostReliablePath(aug, s, t);
    if (path.has_value()) best = std::max(best, path->probability);
  }
  return best;
}

TEST(LayeredMrpTest, NoCandidatesReturnsBasePath) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.8).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  const auto result = ImproveMostReliablePathWithCandidates(g, 0, 2, 3, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->improved);
  EXPECT_TRUE(result->added_edges.empty());
  EXPECT_NEAR(result->base_probability, 0.4, 1e-12);
  EXPECT_NEAR(result->best_path.probability, 0.4, 1e-12);
  EXPECT_EQ(result->best_path.nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(LayeredMrpTest, DirectEdgeWinsWhenStrong) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  const std::vector<Edge> candidates = {{0, 2, 0.9}};
  const auto result =
      ImproveMostReliablePathWithCandidates(g, 0, 2, 1, candidates);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->improved);
  ASSERT_EQ(result->added_edges.size(), 1u);
  EXPECT_EQ(result->added_edges[0].src, 0u);
  EXPECT_EQ(result->added_edges[0].dst, 2u);
  EXPECT_NEAR(result->best_path.probability, 0.9, 1e-12);
  EXPECT_NEAR(result->base_probability, 0.25, 1e-12);
}

TEST(LayeredMrpTest, WeakCandidateDoesNotImprove) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.9).ok());
  const std::vector<Edge> candidates = {{0, 2, 0.2}};
  const auto result =
      ImproveMostReliablePathWithCandidates(g, 0, 2, 1, candidates);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->improved);
  EXPECT_TRUE(result->added_edges.empty());
  EXPECT_NEAR(result->best_path.probability, 0.81, 1e-12);
}

TEST(LayeredMrpTest, BudgetCapsRedEdges) {
  // Disconnected chain 0 .. 3 needing two red hops 0->1->2 plus blue 2->3.
  UncertainGraph g = UncertainGraph::Directed(4);
  ASSERT_TRUE(g.AddEdge(2, 3, 0.8).ok());
  const std::vector<Edge> candidates = {{0, 1, 0.9}, {1, 2, 0.9}};
  const auto k1 = ImproveMostReliablePathWithCandidates(g, 0, 3, 1, candidates);
  ASSERT_TRUE(k1.ok());
  EXPECT_FALSE(k1->improved);  // one red edge cannot connect 0 to 3
  EXPECT_DOUBLE_EQ(k1->best_path.probability, 0.0);

  const auto k2 = ImproveMostReliablePathWithCandidates(g, 0, 3, 2, candidates);
  ASSERT_TRUE(k2.ok());
  EXPECT_TRUE(k2->improved);
  EXPECT_EQ(k2->added_edges.size(), 2u);
  EXPECT_NEAR(k2->best_path.probability, 0.9 * 0.9 * 0.8, 1e-12);
  EXPECT_EQ(k2->best_path.nodes, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(LayeredMrpTest, PaperFigure3MrpSolutions) {
  // Figure 3 (undirected): edges AB, At with prob alpha = 0.5; candidates
  // sA, sB, Bt with zeta = 0.7.
  UncertainGraph g = UncertainGraph::Undirected(4);
  const NodeId s = 0, a = 1, b = 2, t = 3;
  ASSERT_TRUE(g.AddEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(a, t, 0.5).ok());
  const std::vector<Edge> candidates = {{s, a, 0.7}, {s, b, 0.7}, {b, t, 0.7}};

  // k = 1: only {sA} yields a path (s-A-t, prob 0.35).
  const auto k1 = ImproveMostReliablePathWithCandidates(g, s, t, 1, candidates);
  ASSERT_TRUE(k1.ok());
  ASSERT_EQ(k1->added_edges.size(), 1u);
  EXPECT_EQ(k1->added_edges[0].dst, a);
  EXPECT_NEAR(k1->best_path.probability, 0.35, 1e-12);

  // k = 2: {sB, Bt} gives path s-B-t with prob 0.49 > 0.35.
  const auto k2 = ImproveMostReliablePathWithCandidates(g, s, t, 2, candidates);
  ASSERT_TRUE(k2.ok());
  ASSERT_EQ(k2->added_edges.size(), 2u);
  EXPECT_NEAR(k2->best_path.probability, 0.49, 1e-12);
  EXPECT_EQ(k2->best_path.nodes, (std::vector<NodeId>{s, b, t}));
}

TEST(LayeredMrpTest, UndirectedCandidatesUsableBothWays) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  // Candidate written as (2, 1) but needed in direction 1 -> 2.
  const std::vector<Edge> candidates = {{2, 1, 0.5}};
  const auto result =
      ImproveMostReliablePathWithCandidates(g, 0, 2, 1, candidates);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->improved);
  EXPECT_NEAR(result->best_path.probability, 0.3, 1e-12);
}

TEST(LayeredMrpTest, DirectedCandidatesRespectDirection) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  const std::vector<Edge> wrong_way = {{2, 1, 0.5}};
  const auto result =
      ImproveMostReliablePathWithCandidates(g, 0, 2, 1, wrong_way);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->improved);
  EXPECT_DOUBLE_EQ(result->best_path.probability, 0.0);
}

TEST(LayeredMrpTest, ValidatesInput) {
  UncertainGraph g = UncertainGraph::Directed(3);
  EXPECT_EQ(ImproveMostReliablePathWithCandidates(g, 0, 9, 1, {})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ImproveMostReliablePathWithCandidates(g, 0, 1, -1, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ImproveMostReliablePathWithCandidates(g, 0, 1, 1, {{0, 9, 0.5}})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ImproveMostReliablePathWithCandidates(g, 0, 1, 1, {{1, 1, 0.5}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ImproveMostReliablePathWithCandidates(g, 0, 1, 1, {{0, 2, 1.5}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// Exactness against exhaustive subset enumeration (Theorem 3): the layered
// Dijkstra must find the optimal subset, not just a good one.
class LayeredMrpOracleSweep : public testing::TestWithParam<int> {};

TEST_P(LayeredMrpOracleSweep, MatchesSubsetEnumeration) {
  Rng rng(4000 + GetParam());
  const NodeId n = static_cast<NodeId>(rng.NextInt(4, 7));
  UncertainGraph g = GetParam() % 2 == 0 ? UncertainGraph::Directed(n)
                                         : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(0.3)) {
        ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.1, 0.9)).ok());
      }
    }
  }
  // Candidate pool: up to 6 random missing edges.
  std::vector<Edge> candidates;
  for (NodeId u = 0; u < n && candidates.size() < 6; ++u) {
    for (NodeId v = 0; v < n && candidates.size() < 6; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      bool duplicate = false;
      for (const Edge& e : candidates) {
        if ((e.src == u && e.dst == v) ||
            (!g.directed() && e.src == v && e.dst == u)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate && rng.NextBernoulli(0.5)) {
        candidates.push_back({u, v, rng.NextDouble(0.2, 0.9)});
      }
    }
  }
  const NodeId s = 0;
  const NodeId t = n - 1;
  for (int k = 0; k <= 3; ++k) {
    const double oracle = BruteForceBestMrp(g, s, t, k, candidates);
    const auto result =
        ImproveMostReliablePathWithCandidates(g, s, t, k, candidates);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->best_path.probability, oracle, 1e-10)
        << "k=" << k << " n=" << n << " cands=" << candidates.size();
    EXPECT_LE(result->added_edges.size(), static_cast<size_t>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayeredMrpOracleSweep, testing::Range(0, 10));

}  // namespace
}  // namespace relmax
