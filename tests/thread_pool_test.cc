#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "sampling/parallel.h"

namespace relmax {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, TryRunOneExecutesAQueuedTask) {
  // A single-worker pool blocked on a slow task: the caller can steal the
  // queued task instead of waiting for the worker.
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // Wait until the worker owns the blocking task — otherwise TryRunOne below
  // could claim it and spin on `release` forever.
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  while (!pool.TryRunOne()) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(pool.TryRunOne());  // queue is empty now
  release.store(true);
  pool.Wait();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

// ------------------------------------------------------ batched executor

TEST(RunWorkersTest, EveryLaneRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  RunWorkers(8, [&hits](int worker) { hits[worker].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunWorkersTest, SingleWorkerRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  RunWorkers(1, [&](int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ShardingTest, ShardsCoverBudgetExactly) {
  for (int total : {1, 63, 64, 65, 500, 60000}) {
    const auto shards = MakeSampleShards(total, 7);
    int sum = 0;
    for (const auto& shard : shards) {
      EXPECT_GT(shard.num_samples, 0);
      EXPECT_LE(shard.num_samples, kShardSamples);
      sum += shard.num_samples;
    }
    EXPECT_EQ(sum, total) << "total " << total;
  }
}

TEST(ShardingTest, LayoutIndependentOfThreadCount) {
  // The shard layout is a pure function of (total, seed) — there is no
  // thread-count input at all, which is what makes estimates bit-identical.
  const auto a = MakeSampleShards(1000, 42);
  const auto b = MakeSampleShards(1000, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].num_samples, b[i].num_samples);
  }
}

TEST(ShardingTest, ShardSeedsAreDistinctStreams) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) seeds.insert(ShardSeed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(ShardSeed(1, 0), ShardSeed(2, 0));
}

TEST(ForEachShardTest, VisitsEveryShardOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(100);
    ForEachShard(
        visits.size(), threads, [] { return 0; },
        [&](int&, size_t i) { visits[i].fetch_add(1); }, [](int&) {});
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ForEachShardTest, ReduceRunsOncePerLane) {
  std::atomic<int> lanes{0};
  ForEachShard(
      16, 4, [] { return 0; }, [](int& ctx, size_t) { ++ctx; },
      [&lanes](int&) { lanes.fetch_add(1); });
  EXPECT_GE(lanes.load(), 1);
  EXPECT_LE(lanes.load(), 4);
}

TEST(ResolveNumThreadsTest, ZeroMeansHardware) {
  EXPECT_EQ(ResolveNumThreads(3), 3);
  EXPECT_EQ(ResolveNumThreads(0), ThreadPool::HardwareConcurrency());
  EXPECT_EQ(ResolveNumThreads(-1), ThreadPool::HardwareConcurrency());
}

}  // namespace
}  // namespace relmax
