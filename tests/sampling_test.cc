#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "sampling/convergence.h"
#include "sampling/reliability.h"

namespace relmax {
namespace {

UncertainGraph DiamondGraph() {
  // s=0 -> {1, 2} -> t=3, all edges 0.5, plus a direct 0->3 edge at 0.2.
  UncertainGraph g = UncertainGraph::Directed(4);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 3, 0.2).ok());
  return g;
}

TEST(MonteCarloTest, MatchesExactOnDiamond) {
  const UncertainGraph g = DiamondGraph();
  const double exact = ExactReliabilityFactoring(g, 0, 3).value();
  const double estimate =
      EstimateReliability(g, 0, 3, {.num_samples = 60000, .seed = 1});
  EXPECT_NEAR(estimate, exact, 0.01);
}

TEST(MonteCarloTest, DeterministicForFixedSeed) {
  const UncertainGraph g = DiamondGraph();
  const double a =
      EstimateReliability(g, 0, 3, {.num_samples = 500, .seed = 9});
  const double b =
      EstimateReliability(g, 0, 3, {.num_samples = 500, .seed = 9});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(MonteCarloTest, SourceEqualsTargetIsOne) {
  const UncertainGraph g = DiamondGraph();
  EXPECT_DOUBLE_EQ(
      EstimateReliability(g, 2, 2, {.num_samples = 10, .seed = 1}), 1.0);
}

TEST(MonteCarloTest, DisconnectedIsZero) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.9).ok());
  EXPECT_DOUBLE_EQ(
      EstimateReliability(g, 0, 2, {.num_samples = 200, .seed = 1}), 0.0);
}

TEST(MonteCarloTest, CertainChainIsOne) {
  UncertainGraph g = UncertainGraph::Directed(4);
  for (NodeId i = 0; i < 3; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1, 1.0).ok());
  EXPECT_DOUBLE_EQ(
      EstimateReliability(g, 0, 3, {.num_samples = 50, .seed = 1}), 1.0);
}

// An undirected edge must flip one coin per world even though it is stored
// as two arcs. With incoherent flips, the 2-cycle below would report
// R > p for the single-edge graph.
TEST(MonteCarloTest, UndirectedEdgeFlipsOneCoinPerWorld) {
  UncertainGraph g = UncertainGraph::Undirected(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.3).ok());
  const double estimate =
      EstimateReliability(g, 0, 1, {.num_samples = 60000, .seed = 3});
  EXPECT_NEAR(estimate, 0.3, 0.01);
}

TEST(MonteCarloTest, UndirectedMatchesExactOnTriangle) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  const double exact = ExactReliabilityFactoring(g, 0, 2).value();
  const double estimate =
      EstimateReliability(g, 0, 2, {.num_samples = 60000, .seed = 5});
  EXPECT_NEAR(estimate, exact, 0.01);
}

TEST(MonteCarloTest, FromSourceMatchesPerNodeEstimates) {
  const UncertainGraph g = DiamondGraph();
  MonteCarloSampler sampler(g, 17);
  const std::vector<double> from_s = sampler.FromSource(0, 60000);
  EXPECT_DOUBLE_EQ(from_s[0], 1.0);  // source reaches itself always
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    const double exact = ExactReliabilityFactoring(g, 0, v).value();
    EXPECT_NEAR(from_s[v], exact, 0.015) << "node " << v;
  }
}

TEST(MonteCarloTest, ToTargetMatchesPerNodeEstimates) {
  const UncertainGraph g = DiamondGraph();
  MonteCarloSampler sampler(g, 23);
  const std::vector<double> to_t = sampler.ToTarget(3, 60000);
  EXPECT_DOUBLE_EQ(to_t[3], 1.0);
  for (NodeId v = 0; v < 3; ++v) {
    const double exact = ExactReliabilityFactoring(g, v, 3).value();
    EXPECT_NEAR(to_t[v], exact, 0.015) << "node " << v;
  }
}

TEST(MonteCarloTest, ToTargetRespectsDirection) {
  // 0 -> 1: node 1 cannot reach 0.
  UncertainGraph g = UncertainGraph::Directed(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.8).ok());
  MonteCarloSampler sampler(g, 3);
  const std::vector<double> to_zero = sampler.ToTarget(0, 1000);
  EXPECT_DOUBLE_EQ(to_zero[1], 0.0);
  const std::vector<double> to_one = sampler.ToTarget(1, 1000);
  EXPECT_NEAR(to_one[0], 0.8, 0.05);
}

TEST(MonteCarloTest, SetReliabilityUnionOfSources) {
  // Two independent 1-edge routes into t; either source suffices.
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  MonteCarloSampler sampler(g, 29);
  const double r = sampler.SetReliability({0, 1}, 2, 60000);
  EXPECT_NEAR(r, 1.0 - 0.25, 0.01);  // 1 - (1-0.5)^2
  EXPECT_DOUBLE_EQ(sampler.SetReliability({0, 2}, 2, 10), 1.0);
}

// Parameterized sweep: MC tracks the exact value across edge probabilities.
class McAccuracySweep : public testing::TestWithParam<double> {};

TEST_P(McAccuracySweep, TwoHopChain) {
  const double p = GetParam();
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, p).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, p).ok());
  const double estimate =
      EstimateReliability(g, 0, 2, {.num_samples = 40000, .seed = 11});
  EXPECT_NEAR(estimate, p * p, 0.012);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, McAccuracySweep,
                         testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

// ------------------------------------------------------------- convergence

TEST(ConvergenceTest, DispersionShrinksWithMoreSamples) {
  const UncertainGraph g = DiamondGraph();
  const std::vector<std::pair<NodeId, NodeId>> queries = {{0, 3}, {0, 1}};
  auto mc = [](const UncertainGraph& graph, NodeId s, NodeId t, int z,
               uint64_t seed) {
    return EstimateReliability(graph, s, t, {.num_samples = z, .seed = seed});
  };
  const DispersionResult small = MeasureDispersion(g, queries, 50, 30, mc);
  const DispersionResult large = MeasureDispersion(g, queries, 2000, 30, mc);
  EXPECT_GT(small.index_of_dispersion, large.index_of_dispersion);
  EXPECT_NEAR(small.mean, large.mean, 0.1);
}

// A held sampler must observe graph mutations between estimates: probability
// updates patch the CSR in place and edge additions rebuild it, and the
// sampler's cached per-arc thresholds / per-edge world state re-sync off the
// graph's version counter instead of silently going stale.
TEST(MonteCarloSamplerTest, PicksUpGraphMutationsBetweenEstimates) {
  for (const bool directed : {true, false}) {
    UncertainGraph g = directed ? UncertainGraph::Directed(3)
                                : UncertainGraph::Undirected(3);
    ASSERT_TRUE(g.AddEdge(0, 1, 0.0).ok());
    MonteCarloSampler sampler(g, 7);
    EXPECT_DOUBLE_EQ(sampler.Reliability(0, 1, 500), 0.0) << directed;

    ASSERT_TRUE(g.UpdateEdgeProb(0, 1, 1.0).ok());
    EXPECT_DOUBLE_EQ(sampler.Reliability(0, 1, 500), 1.0) << directed;

    // Edge addition grows the CSR and the logical edge set.
    ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
    EXPECT_DOUBLE_EQ(sampler.Reliability(0, 2, 500), 1.0) << directed;
  }
}

TEST(ConvergenceTest, FindConvergedSampleSizePicksSmallEnoughZ) {
  const UncertainGraph g = DiamondGraph();
  const std::vector<std::pair<NodeId, NodeId>> queries = {{0, 3}};
  auto mc = [](const UncertainGraph& graph, NodeId s, NodeId t, int z,
               uint64_t seed) {
    return EstimateReliability(graph, s, t, {.num_samples = z, .seed = seed});
  };
  const DispersionResult result = FindConvergedSampleSize(
      g, queries, {100, 500, 2000, 8000}, 20, 0.002, mc);
  EXPECT_LE(result.num_samples, 8000);
  EXPECT_GT(result.num_samples, 0);
  // The chosen Z either converged or is the largest candidate.
  if (result.index_of_dispersion >= 0.002) {
    EXPECT_EQ(result.num_samples, 8000);
  }
}

}  // namespace
}  // namespace relmax
