#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/exact_reliability.h"
#include "graph/uncertain_graph.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"

namespace relmax {
namespace {

UncertainGraph LadderGraph(int rungs, double p) {
  // Two parallel rails 0->2->4->... and 1->3->5->... with rung cross-links;
  // enough structure that stratification actually partitions the space.
  const NodeId n = static_cast<NodeId>(2 * rungs);
  UncertainGraph g = UncertainGraph::Directed(n);
  for (int i = 0; i + 1 < rungs; ++i) {
    EXPECT_TRUE(g.AddEdge(2 * i, 2 * (i + 1), p).ok());
    EXPECT_TRUE(g.AddEdge(2 * i + 1, 2 * (i + 1) + 1, p).ok());
  }
  for (int i = 0; i < rungs; ++i) {
    EXPECT_TRUE(g.AddEdge(2 * i, 2 * i + 1, p).ok());
  }
  return g;
}

TEST(RssTest, MatchesExactOnLadder) {
  const UncertainGraph g = LadderGraph(4, 0.6);
  const double exact = ExactReliabilityFactoring(g, 0, 7).value();
  double sum = 0.0;
  const int kRuns = 40;
  Rng seeds(123);
  for (int run = 0; run < kRuns; ++run) {
    sum += EstimateReliabilityRss(
        g, 0, 7, {.num_samples = 400, .seed = seeds.Next()});
  }
  EXPECT_NEAR(sum / kRuns, exact, 0.01);
}

TEST(RssTest, MatchesExactOnUndirectedTriangle) {
  UncertainGraph g = UncertainGraph::Undirected(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  const double exact = ExactReliabilityFactoring(g, 0, 2).value();
  double sum = 0.0;
  const int kRuns = 40;
  Rng seeds(77);
  for (int run = 0; run < kRuns; ++run) {
    sum += EstimateReliabilityRss(
        g, 0, 2, {.num_samples = 300, .seed = seeds.Next()});
  }
  EXPECT_NEAR(sum / kRuns, exact, 0.012);
}

TEST(RssTest, DegenerateCases) {
  UncertainGraph g = UncertainGraph::Directed(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_DOUBLE_EQ(EstimateReliabilityRss(g, 0, 0), 1.0);  // s == t
  EXPECT_DOUBLE_EQ(EstimateReliabilityRss(g, 0, 1), 1.0);  // certain edge
  EXPECT_DOUBLE_EQ(EstimateReliabilityRss(g, 0, 2), 0.0);  // disconnected
  EXPECT_DOUBLE_EQ(EstimateReliabilityRss(g, 1, 0), 0.0);  // wrong direction
}

TEST(RssTest, DeterministicForFixedSeed) {
  const UncertainGraph g = LadderGraph(4, 0.4);
  const RssOptions opts{.num_samples = 200, .seed = 5};
  EXPECT_DOUBLE_EQ(EstimateReliabilityRss(g, 0, 7, opts),
                   EstimateReliabilityRss(g, 0, 7, opts));
}

// The headline property from the paper's §5.3: at equal sample budget, RSS
// has lower estimator variance than plain MC.
TEST(RssTest, LowerVarianceThanMonteCarloAtEqualBudget) {
  const UncertainGraph g = LadderGraph(5, 0.5);
  const NodeId s = 0;
  const NodeId t = 9;
  const int kBudget = 150;
  // 120 runs is underpowered: the ~25% variance gap between the estimators
  // is within run-to-run noise at that size and the comparison can flip on
  // any RNG stream change. 400 runs separates them reliably.
  const int kRuns = 400;
  Rng seeds(2025);

  double mc_sum = 0.0;
  double mc_sq = 0.0;
  double rss_sum = 0.0;
  double rss_sq = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    const uint64_t seed = seeds.Next();
    const double mc =
        EstimateReliability(g, s, t, {.num_samples = kBudget, .seed = seed});
    const double rss = EstimateReliabilityRss(
        g, s, t, {.num_samples = kBudget, .seed = seed});
    mc_sum += mc;
    mc_sq += mc * mc;
    rss_sum += rss;
    rss_sq += rss * rss;
  }
  const double mc_var = mc_sq / kRuns - (mc_sum / kRuns) * (mc_sum / kRuns);
  const double rss_var =
      rss_sq / kRuns - (rss_sum / kRuns) * (rss_sum / kRuns);
  EXPECT_LT(rss_var, mc_var);
  // Both estimate the same quantity.
  EXPECT_NEAR(mc_sum / kRuns, rss_sum / kRuns, 0.03);
}

TEST(RssTest, FromSourceMatchesExactPerNode) {
  const UncertainGraph g = LadderGraph(3, 0.5);
  const int kRuns = 60;
  Rng seeds(31);
  std::vector<double> acc(g.num_nodes(), 0.0);
  for (int run = 0; run < kRuns; ++run) {
    RssSampler sampler(g, {.num_samples = 300, .seed = seeds.Next()});
    const std::vector<double> from_s = sampler.FromSource(0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) acc[v] += from_s[v];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double exact = ExactReliabilityFactoring(g, 0, v).value();
    EXPECT_NEAR(acc[v] / kRuns, exact, 0.015) << "node " << v;
  }
}

TEST(RssTest, ToTargetMatchesExactPerNode) {
  const UncertainGraph g = LadderGraph(3, 0.5);
  const NodeId t = 5;
  const int kRuns = 60;
  Rng seeds(37);
  std::vector<double> acc(g.num_nodes(), 0.0);
  for (int run = 0; run < kRuns; ++run) {
    RssSampler sampler(g, {.num_samples = 300, .seed = seeds.Next()});
    const std::vector<double> to_t = sampler.ToTarget(t);
    for (NodeId v = 0; v < g.num_nodes(); ++v) acc[v] += to_t[v];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double exact = ExactReliabilityFactoring(g, v, t).value();
    EXPECT_NEAR(acc[v] / kRuns, exact, 0.015) << "node " << v;
  }
}

// Unbiasedness sweep over random small graphs: averaged RSS estimates track
// the exact reliability within Monte Carlo error.
class RssUnbiasednessSweep : public testing::TestWithParam<int> {};

TEST_P(RssUnbiasednessSweep, RandomGraph) {
  Rng rng(1000 + GetParam());
  const NodeId n = 6;
  UncertainGraph g = GetParam() % 2 == 0 ? UncertainGraph::Directed(n)
                                         : UncertainGraph::Undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (rng.NextBernoulli(0.45)) {
        ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.1, 0.9)).ok());
      }
    }
  }
  const double exact = ExactReliabilityFactoring(g, 0, n - 1, 40).value();
  double sum = 0.0;
  const int kRuns = 50;
  for (int run = 0; run < kRuns; ++run) {
    sum += EstimateReliabilityRss(g, 0, n - 1,
                                  {.num_samples = 250, .seed = rng.Next()});
  }
  EXPECT_NEAR(sum / kRuns, exact, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RssUnbiasednessSweep, testing::Range(0, 8));

}  // namespace
}  // namespace relmax
