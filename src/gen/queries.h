#ifndef RELMAX_GEN_QUERIES_H_
#define RELMAX_GEN_QUERIES_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Query generation following the paper's protocol (§8.1): a source chosen
/// uniformly at random and a target among its `min_hops`..`max_hops`-hop
/// neighbors (close pairs are already reliable, remote ones hopeless).
struct QueryGenOptions {
  int min_hops = 3;
  int max_hops = 5;
  uint64_t seed = 42;
  /// Attempts before giving up on a badly-connected graph.
  int max_attempts = 10000;
};

/// Generates `count` single-source-target queries.
StatusOr<std::vector<std::pair<NodeId, NodeId>>> GenerateQueries(
    const UncertainGraph& g, int count, const QueryGenOptions& options = {});

/// A multiple-source-target query: q sources within 5 hops of a seed source
/// and q targets within 5 hops of a seed target, disjoint (§8.1).
struct MultiQuery {
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
};

/// Generates one multi query with |sources| = |targets| = set_size.
StatusOr<MultiQuery> GenerateMultiQuery(const UncertainGraph& g, int set_size,
                                        const QueryGenOptions& options = {});

}  // namespace relmax

#endif  // RELMAX_GEN_QUERIES_H_
