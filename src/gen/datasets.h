#ifndef RELMAX_GEN_DATASETS_H_
#define RELMAX_GEN_DATASETS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// A named benchmark dataset: the uncertain graph plus optional 2-D node
/// positions (sensor networks).
struct Dataset {
  std::string name;
  UncertainGraph graph = UncertainGraph::Undirected(0);
  /// Node coordinates in meters; empty unless the dataset is spatial.
  std::vector<std::pair<double, double>> positions;
};

/// Names understood by MakeDataset — the paper's 5 real datasets (structural
/// stand-ins, see DESIGN.md §1.3) and 8 synthetic ones (Table 8):
///   intel_lab, lastfm, as_topology, dblp, twitter,
///   random1, random2, regular1, regular2,
///   smallworld1, smallworld2, scalefree1, scalefree2
std::vector<std::string> DatasetNames();

/// Builds the named dataset. `scale` multiplies the laptop-default node
/// count (1.0 ≈ minutes-scale benches on one core; the paper-scale sizes are
/// 10-100x larger — see Table 8). intel_lab is fixed at 54 sensors and
/// ignores `scale`. Deterministic for a fixed seed.
StatusOr<Dataset> MakeDataset(const std::string& name, double scale = 1.0,
                              uint64_t seed = 42);

/// Euclidean distance in meters between two dataset positions.
double DistanceMeters(const Dataset& dataset, NodeId a, NodeId b);

}  // namespace relmax

#endif  // RELMAX_GEN_DATASETS_H_
