#include "gen/queries.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "graph/bfs.h"

namespace relmax {
namespace {

Status ValidateQueryGen(const UncertainGraph& g,
                        const QueryGenOptions& options) {
  if (g.num_nodes() < 2) {
    return Status::InvalidArgument("graph too small for queries");
  }
  if (options.min_hops < 1 || options.max_hops < options.min_hops) {
    return Status::InvalidArgument("need 1 <= min_hops <= max_hops");
  }
  return Status::Ok();
}

// Nodes whose hop distance from src lies in [lo, hi].
std::vector<NodeId> RingAround(const UncertainGraph& g, NodeId src, int lo,
                               int hi) {
  const std::vector<int> dist = HopDistances(g, src, hi);
  std::vector<NodeId> ring;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] >= lo && dist[v] <= hi) ring.push_back(v);
  }
  return ring;
}

}  // namespace

StatusOr<std::vector<std::pair<NodeId, NodeId>>> GenerateQueries(
    const UncertainGraph& g, int count, const QueryGenOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateQueryGen(g, options));
  if (count <= 0) return Status::InvalidArgument("count must be positive");

  Rng rng(options.seed);
  std::vector<std::pair<NodeId, NodeId>> queries;
  int attempts = 0;
  while (static_cast<int>(queries.size()) < count) {
    if (++attempts > options.max_attempts) {
      return Status::FailedPrecondition(
          "could not find enough query pairs at the requested distance");
    }
    const NodeId s = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    const std::vector<NodeId> ring =
        RingAround(g, s, options.min_hops, options.max_hops);
    if (ring.empty()) continue;
    const NodeId t = ring[rng.NextUint64(ring.size())];
    queries.push_back({s, t});
  }
  return queries;
}

StatusOr<MultiQuery> GenerateMultiQuery(const UncertainGraph& g, int set_size,
                                        const QueryGenOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateQueryGen(g, options));
  if (set_size <= 0) return Status::InvalidArgument("set_size positive");

  Rng rng(options.seed);
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    auto seed_pair = GenerateQueries(g, 1, {.min_hops = options.min_hops,
                                            .max_hops = options.max_hops,
                                            .seed = rng.Next()});
    if (!seed_pair.ok()) return seed_pair.status();
    const auto [s, t] = (*seed_pair)[0];

    std::vector<NodeId> near_s = RingAround(g, s, 0, 5);
    std::vector<NodeId> near_t = RingAround(g, t, 0, 5);
    if (static_cast<int>(near_s.size()) < set_size ||
        static_cast<int>(near_t.size()) < set_size) {
      continue;
    }
    std::shuffle(near_s.begin(), near_s.end(), rng);
    std::shuffle(near_t.begin(), near_t.end(), rng);

    MultiQuery query;
    std::unordered_set<NodeId> taken;
    for (NodeId v : near_s) {
      if (static_cast<int>(query.sources.size()) >= set_size) break;
      if (taken.insert(v).second) query.sources.push_back(v);
    }
    for (NodeId v : near_t) {
      if (static_cast<int>(query.targets.size()) >= set_size) break;
      if (taken.insert(v).second) query.targets.push_back(v);
    }
    if (static_cast<int>(query.sources.size()) == set_size &&
        static_cast<int>(query.targets.size()) == set_size) {
      return query;
    }
  }
  return Status::FailedPrecondition(
      "could not assemble disjoint source/target sets of the requested size");
}

}  // namespace relmax
