#include "gen/generators.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

namespace relmax {
namespace {

// Adds edge (u, v), ignoring duplicates/self-loops. Returns true on insert.
bool TryAdd(UncertainGraph* g, NodeId u, NodeId v) {
  if (u == v || g->HasEdge(u, v)) return false;
  return g->AddEdge(u, v, 0.0).ok();
}

}  // namespace

StatusOr<UncertainGraph> GenerateRandomGnm(NodeId num_nodes, size_t num_edges,
                                           Rng* rng) {
  if (num_nodes < 2) return Status::InvalidArgument("need at least 2 nodes");
  const double max_edges =
      static_cast<double>(num_nodes) * (num_nodes - 1) / 2.0;
  if (static_cast<double>(num_edges) > max_edges) {
    return Status::InvalidArgument("num_edges exceeds complete graph size");
  }
  UncertainGraph g = UncertainGraph::Undirected(num_nodes);
  while (g.num_edges() < num_edges) {
    const NodeId u = static_cast<NodeId>(rng->NextUint64(num_nodes));
    const NodeId v = static_cast<NodeId>(rng->NextUint64(num_nodes));
    TryAdd(&g, u, v);
  }
  return g;
}

StatusOr<UncertainGraph> GenerateKRegular(NodeId num_nodes, int degree,
                                          Rng* rng) {
  if (degree <= 0 || degree >= static_cast<int>(num_nodes)) {
    return Status::InvalidArgument("degree must be in [1, n)");
  }
  if ((static_cast<uint64_t>(num_nodes) * degree) % 2 != 0) {
    return Status::InvalidArgument("n * k must be even");
  }
  // Pairing model on a raw edge set (the graph type has no edge removal, so
  // repair happens before materialization). Collided stubs are re-shuffled;
  // a final double-edge-swap pass fixes stragglers.
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::unordered_set<uint64_t> present;
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<size_t>(num_nodes) * degree);
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (int i = 0; i < degree; ++i) stubs.push_back(v);
  }

  for (int round = 0; round < 100 && !stubs.empty(); ++round) {
    std::shuffle(stubs.begin(), stubs.end(), *rng);
    std::vector<NodeId> leftover;
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId u = stubs[i];
      const NodeId v = stubs[i + 1];
      if (u == v || present.count(key(u, v)) > 0) {
        leftover.push_back(u);
        leftover.push_back(v);
        continue;
      }
      present.insert(key(u, v));
      edges.push_back({u, v});
    }
    stubs.swap(leftover);
  }
  // Swap repair: for an unmatched stub pair (u, v), find an existing edge
  // (a, b) such that (u, a) and (v, b) are both new; replace it.
  while (stubs.size() >= 2) {
    const NodeId u = stubs[stubs.size() - 2];
    const NodeId v = stubs[stubs.size() - 1];
    bool fixed = false;
    for (int tries = 0; tries < 10000 && !fixed; ++tries) {
      const size_t idx = rng->NextUint64(edges.size());
      const auto [a, b] = edges[idx];
      if (u == a || v == b || present.count(key(u, a)) > 0 ||
          present.count(key(v, b)) > 0 || key(u, a) == key(v, b)) {
        continue;
      }
      present.erase(key(a, b));
      edges[idx] = {u, a};
      present.insert(key(u, a));
      edges.push_back({v, b});
      present.insert(key(v, b));
      fixed = true;
    }
    if (!fixed) {
      return Status::Internal("pairing model failed to converge");
    }
    stubs.pop_back();
    stubs.pop_back();
  }

  UncertainGraph g = UncertainGraph::Undirected(num_nodes);
  for (const auto& [u, v] : edges) {
    const Status st = g.AddEdge(u, v, 0.0);
    RELMAX_DCHECK(st.ok());
    (void)st;
  }
  return g;
}

StatusOr<UncertainGraph> GenerateRingLattice(NodeId num_nodes, int k) {
  if (k < 2 || k >= static_cast<int>(num_nodes)) {
    return Status::InvalidArgument("k must be in [2, n)");
  }
  if (k % 2 == 1 && num_nodes % 2 == 1) {
    return Status::InvalidArgument("odd k needs an even node count");
  }
  UncertainGraph g = UncertainGraph::Undirected(num_nodes);
  const int half = k / 2;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (int j = 1; j <= half; ++j) {
      TryAdd(&g, u, static_cast<NodeId>((u + j) % num_nodes));
    }
    if (k % 2 == 1) {  // antipodal chord completes an odd degree
      TryAdd(&g, u, static_cast<NodeId>((u + num_nodes / 2) % num_nodes));
    }
  }
  return g;
}

StatusOr<UncertainGraph> GenerateSmallWorld(NodeId num_nodes, int k,
                                            double rewire_prob, Rng* rng) {
  if (k < 2 || k >= static_cast<int>(num_nodes)) {
    return Status::InvalidArgument("k must be in [2, n)");
  }
  if (rewire_prob < 0.0 || rewire_prob > 1.0) {
    return Status::InvalidArgument("rewire_prob must be in [0, 1]");
  }
  // Walk the ring-lattice edges (u, u+j); each is kept or, with probability
  // rewire_prob, redirected from u to a uniform random head (Watts-Strogatz).
  // UncertainGraph deliberately has no edge removal (solvers only ever add),
  // so the decision is made while building.
  const int half = k / 2;
  UncertainGraph g = UncertainGraph::Undirected(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (int j = 1; j <= half; ++j) {
      const NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      if (rng->NextBernoulli(rewire_prob)) {
        NodeId w = static_cast<NodeId>(rng->NextUint64(num_nodes));
        int tries = 0;
        while ((w == u || g.HasEdge(u, w)) && tries++ < 64) {
          w = static_cast<NodeId>(rng->NextUint64(num_nodes));
        }
        if (w != u && !g.HasEdge(u, w)) {
          TryAdd(&g, u, w);
          continue;
        }
      }
      TryAdd(&g, u, v);
    }
  }
  return g;
}

StatusOr<UncertainGraph> GenerateScaleFree(NodeId num_nodes,
                                           int edges_per_node, Rng* rng,
                                           int alternate_m) {
  const int m_max = std::max(edges_per_node, alternate_m);
  if (edges_per_node < 1 || m_max >= static_cast<int>(num_nodes)) {
    return Status::InvalidArgument("edges_per_node must be in [1, n)");
  }
  UncertainGraph g = UncertainGraph::Undirected(num_nodes);
  // Repeated-endpoint list: sampling uniformly from it realizes preferential
  // attachment (each node appears once per incident edge).
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(num_nodes) * (m_max + 1) * 2);

  // Seed clique over the first m_max + 1 nodes.
  const NodeId seed_size = static_cast<NodeId>(m_max + 1);
  for (NodeId u = 0; u < seed_size && u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      if (TryAdd(&g, u, v)) {
        endpoints.push_back(u);
        endpoints.push_back(v);
      }
    }
  }
  for (NodeId u = seed_size; u < num_nodes; ++u) {
    const int m = (alternate_m > 0 && u % 2 == 0) ? alternate_m
                                                  : edges_per_node;
    int added = 0;
    int guard = 0;
    while (added < m && guard++ < 64 * m) {
      const NodeId v = endpoints[rng->NextUint64(endpoints.size())];
      if (TryAdd(&g, u, v)) {
        endpoints.push_back(u);
        endpoints.push_back(v);
        ++added;
      }
    }
  }
  return g;
}

StatusOr<UncertainGraph> GeneratePowerlawCluster(NodeId num_nodes,
                                                 int edges_per_node,
                                                 double triad_prob, Rng* rng) {
  if (edges_per_node < 1 ||
      edges_per_node >= static_cast<int>(num_nodes)) {
    return Status::InvalidArgument("edges_per_node must be in [1, n)");
  }
  if (triad_prob < 0.0 || triad_prob > 1.0) {
    return Status::InvalidArgument("triad_prob must be in [0, 1]");
  }
  UncertainGraph g = UncertainGraph::Undirected(num_nodes);
  std::vector<NodeId> endpoints;
  // Local neighbor mirror for the triad step: querying the graph's arcs
  // after every insertion would rebuild its CSR per step (quadratic). The
  // per-node push-back order below matches the CSR's edge-id arc order
  // exactly, so the sampled neighbors — and the generated graph — are
  // unchanged.
  std::vector<std::vector<NodeId>> neighbors(num_nodes);
  const auto try_add = [&](NodeId u, NodeId v) {
    if (!TryAdd(&g, u, v)) return false;
    neighbors[u].push_back(v);
    neighbors[v].push_back(u);
    endpoints.push_back(u);
    endpoints.push_back(v);
    return true;
  };
  const NodeId seed_size = static_cast<NodeId>(edges_per_node + 1);
  for (NodeId u = 0; u < seed_size && u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      (void)try_add(u, v);
    }
  }
  for (NodeId u = seed_size; u < num_nodes; ++u) {
    NodeId last_attached = kInvalidNode;
    int added = 0;
    int guard = 0;
    while (added < edges_per_node && guard++ < 64 * edges_per_node) {
      NodeId v = kInvalidNode;
      // Triad step: close a triangle through a neighbor of the previous
      // attachment (Holme-Kim).
      if (last_attached != kInvalidNode && rng->NextBernoulli(triad_prob) &&
          !neighbors[last_attached].empty()) {
        const std::vector<NodeId>& around = neighbors[last_attached];
        v = around[rng->NextUint64(around.size())];
      } else {
        v = endpoints[rng->NextUint64(endpoints.size())];
      }
      if (try_add(u, v)) {
        last_attached = v;
        ++added;
      }
    }
  }
  return g;
}

}  // namespace relmax
