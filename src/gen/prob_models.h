#ifndef RELMAX_GEN_PROB_MODELS_H_
#define RELMAX_GEN_PROB_MODELS_H_

#include "common/rng.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Edge-probability models used in the paper's evaluation (§8.1, "Edge
/// probability models"). Each rewrites the probability of every edge of `g`
/// in place.

/// Uniform at random from (lo, hi] — the synthetic datasets use (0, 0.6].
void AssignUniformProbabilities(UncertainGraph* g, double lo, double hi,
                                Rng* rng);

/// Normal N(mean, sd), clipped into (0.001, 1] — Table 16's N(0.5, 0.038).
void AssignNormalProbabilities(UncertainGraph* g, double mean, double sd,
                               Rng* rng);

/// LastFM model: p(u, v) = 1 / out-degree(u) (for undirected graphs the
/// degree of the canonical source endpoint).
void AssignInverseOutDegreeProbabilities(UncertainGraph* g);

/// DBLP/Twitter model: p(e) = 1 − e^{−t/μ}, the exponential CDF of an
/// interaction count t drawn per edge as 1 + Geometric(mean_count − 1).
/// The paper uses μ = 20.
void AssignExponentialCdfProbabilities(UncertainGraph* g, double mean_count,
                                       double mu, Rng* rng);

}  // namespace relmax

#endif  // RELMAX_GEN_PROB_MODELS_H_
