#include "gen/prob_models.h"

#include <algorithm>
#include <cmath>

namespace relmax {
namespace {

void ForEachEdge(UncertainGraph* g, auto&& prob_of) {
  // Snapshot the edge list; UpdateEdgeProb does not invalidate it.
  for (const Edge& e : g->EdgesById()) {
    const double p = std::clamp(prob_of(e), 0.0, 1.0);
    const Status st = g->UpdateEdgeProb(e.src, e.dst, p);
    RELMAX_DCHECK(st.ok());
    (void)st;
  }
}

}  // namespace

void AssignUniformProbabilities(UncertainGraph* g, double lo, double hi,
                                Rng* rng) {
  RELMAX_CHECK(lo < hi);
  ForEachEdge(g, [&](const Edge&) { return rng->NextDouble(lo, hi); });
}

void AssignNormalProbabilities(UncertainGraph* g, double mean, double sd,
                               Rng* rng) {
  RELMAX_CHECK(sd >= 0.0);
  ForEachEdge(g, [&](const Edge&) {
    return std::clamp(mean + sd * rng->NextGaussian(), 0.001, 1.0);
  });
}

void AssignInverseOutDegreeProbabilities(UncertainGraph* g) {
  ForEachEdge(g, [&](const Edge& e) {
    const size_t deg = g->OutArcs(e.src).size();
    return deg == 0 ? 0.0 : 1.0 / static_cast<double>(deg);
  });
}

void AssignExponentialCdfProbabilities(UncertainGraph* g, double mean_count,
                                       double mu, Rng* rng) {
  RELMAX_CHECK(mean_count >= 1.0);
  RELMAX_CHECK(mu > 0.0);
  // t = 1 + Geometric(success prob 1 / mean_count): mean = mean_count.
  const double q = 1.0 / mean_count;
  ForEachEdge(g, [&](const Edge&) {
    int t = 1;
    while (!rng->NextBernoulli(q) && t < 1000) ++t;
    return 1.0 - std::exp(-static_cast<double>(t) / mu);
  });
}

}  // namespace relmax
