#include "gen/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "gen/generators.h"
#include "gen/prob_models.h"

namespace relmax {
namespace {

NodeId Scaled(double base, double scale) {
  return static_cast<NodeId>(std::max(64.0, base * scale));
}

// 54 sensor positions on a 40 m x 30 m floor plan echoing the Intel
// Berkeley lab map: a perimeter ring plus two interior rows, denser toward
// the bottom (the map's conference/server area).
std::vector<std::pair<double, double>> IntelLabPositions() {
  std::vector<std::pair<double, double>> pos;
  // Bottom row (dense): 18 sensors.
  for (int i = 0; i < 18; ++i) pos.push_back({2.0 + i * 2.1, 2.0});
  // Top row: 14 sensors.
  for (int i = 0; i < 14; ++i) pos.push_back({3.0 + i * 2.7, 28.0});
  // Left column: 6 sensors.
  for (int i = 0; i < 6; ++i) pos.push_back({1.5, 6.0 + i * 3.6});
  // Right column: 6 sensors.
  for (int i = 0; i < 6; ++i) pos.push_back({38.5, 6.0 + i * 3.6});
  // Interior row: 10 sensors.
  for (int i = 0; i < 10; ++i) pos.push_back({5.0 + i * 3.3, 15.0});
  return pos;  // 18 + 14 + 6 + 6 + 10 = 54
}

Dataset MakeIntelLab(uint64_t seed) {
  Dataset dataset;
  dataset.name = "intel_lab";
  dataset.positions = IntelLabPositions();
  const NodeId n = static_cast<NodeId>(dataset.positions.size());
  dataset.graph = UncertainGraph::Directed(n);
  Rng rng(seed);
  // Message-delivery probability decays with distance; links past 20 m or
  // below 0.1 are dropped (the paper ignores probabilities under 0.1).
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const double dx = dataset.positions[u].first -
                        dataset.positions[v].first;
      const double dy = dataset.positions[u].second -
                        dataset.positions[v].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      if (d > 20.0) continue;
      // Sharper decay keeps the network sparse enough that cross-lab pairs
      // start at low reliability (the paper's case pairs sit at 0.28-0.40).
      const double p = std::clamp(
          0.85 * std::exp(-d / 5.0) + rng.NextDouble(-0.05, 0.05), 0.0, 0.95);
      if (p < 0.1) continue;
      (void)dataset.graph.AddEdge(u, v, p);
    }
  }
  return dataset;
}

// Directed AS-style graph: preferential-attachment skeleton, ~30% of links
// bidirectional, snapshot-ratio-like probabilities.
Dataset MakeAsTopology(double scale, uint64_t seed) {
  Dataset dataset;
  dataset.name = "as_topology";
  Rng rng(seed);
  const NodeId n = Scaled(9000, scale);
  auto skeleton = GenerateScaleFree(n, 3, &rng);
  RELMAX_CHECK(skeleton.ok());
  dataset.graph = UncertainGraph::Directed(n);
  for (const Edge& e : skeleton->EdgesById()) {
    const bool both = rng.NextBernoulli(0.3);
    const bool forward = both || rng.NextBernoulli(0.5);
    const double p1 = rng.NextDouble(0.02, 0.45);
    const double p2 = rng.NextDouble(0.02, 0.45);
    if (forward || both) (void)dataset.graph.AddEdge(e.src, e.dst, p1);
    if (!forward || both) (void)dataset.graph.AddEdge(e.dst, e.src, p2);
  }
  return dataset;
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"intel_lab",   "lastfm",      "as_topology", "dblp",
          "twitter",     "random1",     "random2",     "regular1",
          "regular2",    "smallworld1", "smallworld2", "scalefree1",
          "scalefree2"};
}

StatusOr<Dataset> MakeDataset(const std::string& name, double scale,
                              uint64_t seed) {
  if (scale <= 0.0) return Status::InvalidArgument("scale must be positive");
  Rng rng(seed ^ 0xda7a5e7);
  Dataset dataset;
  dataset.name = name;

  if (name == "intel_lab") return MakeIntelLab(seed);
  if (name == "as_topology") return MakeAsTopology(scale, seed);

  if (name == "lastfm") {
    // Paper-exact node count; musical social network with inverse-out-degree
    // probabilities.
    auto g = GenerateScaleFree(Scaled(6899, scale), 3, &rng);
    RELMAX_RETURN_IF_ERROR(g.status());
    dataset.graph = *std::move(g);
    AssignInverseOutDegreeProbabilities(&dataset.graph);
    return dataset;
  }
  if (name == "dblp") {
    // Collaboration network: scale-free with high clustering; probabilities
    // from the exponential CDF of collaboration counts (mu = 20).
    auto g = GeneratePowerlawCluster(Scaled(20000, scale), 5, 0.7, &rng);
    RELMAX_RETURN_IF_ERROR(g.status());
    dataset.graph = *std::move(g);
    AssignExponentialCdfProbabilities(&dataset.graph, 2.2, 20.0, &rng);
    return dataset;
  }
  if (name == "twitter") {
    // Sparse re-tweet network; exponential CDF of re-tweet counts.
    auto g = GenerateScaleFree(Scaled(25000, scale), 2, &rng);
    RELMAX_RETURN_IF_ERROR(g.status());
    dataset.graph = *std::move(g);
    AssignExponentialCdfProbabilities(&dataset.graph, 3.0, 20.0, &rng);
    return dataset;
  }

  // The 8 synthetic datasets (Table 8): probabilities uniform on (0, 0.6].
  const NodeId n = Scaled(20000, scale);
  StatusOr<UncertainGraph> g = Status::InvalidArgument("unknown dataset");
  if (name == "random1") {
    g = GenerateRandomGnm(n, static_cast<size_t>(2.5 * n), &rng);
  } else if (name == "random2") {
    g = GenerateRandomGnm(n, static_cast<size_t>(5.0 * n), &rng);
  } else if (name == "regular1") {
    // Ring lattice, not a *random* regular graph: Table 8's Regular datasets
    // pair uniform degree with long paths and high clustering.
    g = GenerateRingLattice(n % 2 == 0 ? n : n + 1, 5);
  } else if (name == "regular2") {
    g = GenerateRingLattice(n, 10);
  } else if (name == "smallworld1") {
    g = GenerateSmallWorld(n, 5, 0.3, &rng);
  } else if (name == "smallworld2") {
    g = GenerateSmallWorld(n, 10, 0.3, &rng);
  } else if (name == "scalefree1") {
    g = GenerateScaleFree(n, 2, &rng, /*alternate_m=*/3);
  } else if (name == "scalefree2") {
    g = GenerateScaleFree(n, 5, &rng);
  } else {
    return Status::NotFound("unknown dataset: " + name);
  }
  RELMAX_RETURN_IF_ERROR(g.status());
  dataset.graph = *std::move(g);
  AssignUniformProbabilities(&dataset.graph, 0.0, 0.6, &rng);
  return dataset;
}

double DistanceMeters(const Dataset& dataset, NodeId a, NodeId b) {
  RELMAX_CHECK(a < dataset.positions.size() && b < dataset.positions.size());
  const double dx = dataset.positions[a].first - dataset.positions[b].first;
  const double dy = dataset.positions[a].second - dataset.positions[b].second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace relmax
