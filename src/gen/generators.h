#ifndef RELMAX_GEN_GENERATORS_H_
#define RELMAX_GEN_GENERATORS_H_

#include "common/rng.h"
#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Native re-implementations of the four NetworkX generators the paper uses
/// for its synthetic datasets (§8.1). All emit undirected graphs with edge
/// probability 0 (assign probabilities with gen/prob_models.h) and are
/// deterministic for a fixed Rng state.

/// Erdős–Rényi G(n, m): exactly `num_edges` distinct uniform random edges
/// (the G(n, p) variant the paper uses has this expected density).
StatusOr<UncertainGraph> GenerateRandomGnm(NodeId num_nodes, size_t num_edges,
                                           Rng* rng);

/// Random k-regular graph via the pairing (configuration) model with
/// collision re-shuffling and double-edge-swap repair. n·k must be even;
/// k < n.
StatusOr<UncertainGraph> GenerateKRegular(NodeId num_nodes, int degree,
                                          Rng* rng);

/// Deterministic circulant ring lattice: every node links to k/2 neighbors
/// per side (odd k adds the antipodal chord, requiring even n). This is the
/// "Regular" dataset family of Table 8 — uniform degree, long average
/// shortest paths, and high clustering, unlike a *random* regular graph.
StatusOr<UncertainGraph> GenerateRingLattice(NodeId num_nodes, int k);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors
/// (k/2 per side), each edge rewired with probability `rewire_prob`.
StatusOr<UncertainGraph> GenerateSmallWorld(NodeId num_nodes, int k,
                                            double rewire_prob, Rng* rng);

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` edges. When `alternate_m` > 0, the per-node edge count
/// alternates between `edges_per_node` and `alternate_m` — the paper's
/// modification for ScaleFree 1 (m alternating 2 and 3).
StatusOr<UncertainGraph> GenerateScaleFree(NodeId num_nodes,
                                           int edges_per_node, Rng* rng,
                                           int alternate_m = 0);

/// Holme–Kim powerlaw-cluster graph: Barabási–Albert with probability
/// `triad_prob` of closing a triangle after each attachment — scale-free
/// degree with tunable clustering (used for the DBLP-like stand-in, whose
/// clustering coefficient is 0.63).
StatusOr<UncertainGraph> GeneratePowerlawCluster(NodeId num_nodes,
                                                 int edges_per_node,
                                                 double triad_prob, Rng* rng);

}  // namespace relmax

#endif  // RELMAX_GEN_GENERATORS_H_
