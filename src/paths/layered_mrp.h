#ifndef RELMAX_PATHS_LAYERED_MRP_H_
#define RELMAX_PATHS_LAYERED_MRP_H_

#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "paths/most_reliable_path.h"

namespace relmax {

/// Result of the most-reliable-path improvement (Problem 2).
struct MrpImprovement {
  /// Candidate ("red") edges on the winning path — at most k, possibly empty
  /// when no addition helps.
  std::vector<Edge> added_edges;
  /// The most reliable s-t path in the augmented graph G ∪ added_edges.
  PathResult best_path;
  /// Probability of MRP(s, t, G) without any new edge (0 when t is
  /// unreachable).
  double base_probability = 0.0;
  /// True iff best_path.probability > base_probability.
  bool improved = false;
};

/// Solves Problem 2 (single-source-target most reliable path improvement)
/// exactly in polynomial time — the constructive proof of Theorem 3
/// (Algorithm 3).
///
/// Existing edges are "blue"; `candidates` are the "red" edges that may be
/// added, each carrying its own probability (the paper's fixed ζ is the
/// special case where all candidate probabilities are equal). Instead of
/// materializing k+1 graph copies, the search runs one max-product Dijkstra
/// over the implicit layered graph whose state (v, j) means "at node v having
/// used j red edges": blue arcs stay within a layer, red arcs step j → j+1.
/// The best path to any (t, j), j ≤ k, is exactly the most reliable s-t path
/// using at most k red edges.
///
/// For undirected input graphs candidate edges are usable in both directions.
/// Fails on invalid candidates (self-loops, out-of-range endpoints, bad
/// probabilities) or out-of-range query nodes; k must be non-negative.
StatusOr<MrpImprovement> ImproveMostReliablePathWithCandidates(
    const UncertainGraph& g, NodeId s, NodeId t, int k,
    const std::vector<Edge>& candidates);

}  // namespace relmax

#endif  // RELMAX_PATHS_LAYERED_MRP_H_
