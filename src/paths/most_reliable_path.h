#ifndef RELMAX_PATHS_MOST_RELIABLE_PATH_H_
#define RELMAX_PATHS_MOST_RELIABLE_PATH_H_

#include <optional>
#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// A simple s-t path with its existence probability (the product of its edge
/// probabilities, Equation 5 of the paper).
struct PathResult {
  std::vector<NodeId> nodes;  ///< s = nodes.front(), t = nodes.back().
  double probability = 0.0;

  /// Number of edges on the path.
  size_t length() const { return nodes.empty() ? 0 : nodes.size() - 1; }
};

/// The most reliable path MRP(s, t, G): the s-t path maximizing the product
/// of edge probabilities. Dijkstra on w(e) = −log p(e) (implemented in
/// product space directly). Returns nullopt when t is unreachable through
/// positive-probability edges. s == t yields the trivial path with
/// probability 1.
std::optional<PathResult> MostReliablePath(const UncertainGraph& g, NodeId s,
                                           NodeId t);

/// Most reliable path probability from s to every node (Dijkstra tree);
/// 0 for unreachable nodes.
std::vector<double> MostReliablePathProbabilities(const UncertainGraph& g,
                                                  NodeId s);

}  // namespace relmax

#endif  // RELMAX_PATHS_MOST_RELIABLE_PATH_H_
