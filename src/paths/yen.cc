#include "paths/yen.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/logging.h"

namespace relmax {
namespace {

uint64_t ArcKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Dijkstra (max-product) from src to dst honoring banned nodes and banned
// directed arcs. For undirected graphs a banned arc masks both directions.
std::optional<PathResult> MaskedDijkstra(
    const UncertainGraph& g, NodeId src, NodeId dst,
    const std::vector<char>& banned_node,
    const std::unordered_set<uint64_t>& banned_arc) {
  struct HeapEntry {
    double prob;
    NodeId node;
    bool operator<(const HeapEntry& o) const { return prob < o.prob; }
  };
  std::vector<double> best(g.num_nodes(), 0.0);
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::priority_queue<HeapEntry> heap;
  best[src] = 1.0;
  heap.push({1.0, src});
  while (!heap.empty()) {
    const auto [prob, u] = heap.top();
    heap.pop();
    if (prob < best[u]) continue;
    if (u == dst) break;
    for (const Arc& arc : g.OutArcs(u)) {
      if (arc.prob <= 0.0 || banned_node[arc.to]) continue;
      if (banned_arc.count(ArcKey(u, arc.to)) > 0) continue;
      if (!g.directed() && banned_arc.count(ArcKey(arc.to, u)) > 0) continue;
      const double candidate = prob * arc.prob;
      if (candidate > best[arc.to]) {
        best[arc.to] = candidate;
        parent[arc.to] = u;
        heap.push({candidate, arc.to});
      }
    }
  }
  if (best[dst] <= 0.0) return std::nullopt;
  PathResult result;
  result.probability = best[dst];
  for (NodeId v = dst; v != kInvalidNode; v = parent[v]) {
    result.nodes.push_back(v);
    if (v == src) break;
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

uint64_t PathHash(const std::vector<NodeId>& nodes) {
  uint64_t h = 1469598103934665603ull;
  for (NodeId v : nodes) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

struct Candidate {
  PathResult path;
  bool operator<(const Candidate& o) const {
    // Max-heap by probability; deterministic tie-break on the node sequence.
    if (path.probability != o.path.probability) {
      return path.probability < o.path.probability;
    }
    return path.nodes > o.path.nodes;
  }
};

}  // namespace

std::vector<PathResult> TopLReliablePaths(const UncertainGraph& g, NodeId s,
                                          NodeId t, int l) {
  RELMAX_CHECK(s < g.num_nodes() && t < g.num_nodes());
  RELMAX_CHECK(l > 0);
  std::vector<PathResult> accepted;
  if (s == t) {
    accepted.push_back({{s}, 1.0});
    return accepted;
  }

  std::optional<PathResult> first = MostReliablePath(g, s, t);
  if (!first.has_value()) return accepted;
  accepted.push_back(std::move(*first));

  std::priority_queue<Candidate> candidates;
  std::unordered_set<uint64_t> seen;
  seen.insert(PathHash(accepted[0].nodes));

  std::vector<char> banned_node(g.num_nodes(), 0);
  while (static_cast<int>(accepted.size()) < l) {
    const PathResult& prev = accepted.back();

    // Deviate at every spur position of the last accepted path.
    for (size_t spur_idx = 0; spur_idx + 1 < prev.nodes.size(); ++spur_idx) {
      const NodeId spur = prev.nodes[spur_idx];

      // Root = prev[0..spur_idx]; its probability prefix.
      double root_prob = 1.0;
      bool root_ok = true;
      for (size_t i = 0; i < spur_idx; ++i) {
        const auto p = g.EdgeProb(prev.nodes[i], prev.nodes[i + 1]);
        if (!p.has_value() || *p <= 0.0) {
          root_ok = false;
          break;
        }
        root_prob *= *p;
      }
      if (!root_ok) continue;

      // Ban the next arc of every accepted path sharing this root, so the
      // spur path deviates.
      std::unordered_set<uint64_t> banned_arc;
      for (const PathResult& path : accepted) {
        if (path.nodes.size() <= spur_idx + 1) continue;
        if (!std::equal(path.nodes.begin(), path.nodes.begin() + spur_idx + 1,
                        prev.nodes.begin())) {
          continue;
        }
        banned_arc.insert(
            ArcKey(path.nodes[spur_idx], path.nodes[spur_idx + 1]));
      }
      // Ban root nodes (except the spur) to keep spur paths simple.
      for (size_t i = 0; i < spur_idx; ++i) banned_node[prev.nodes[i]] = 1;

      std::optional<PathResult> spur_path =
          MaskedDijkstra(g, spur, t, banned_node, banned_arc);

      for (size_t i = 0; i < spur_idx; ++i) banned_node[prev.nodes[i]] = 0;
      if (!spur_path.has_value()) continue;

      PathResult total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + spur_idx);
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(),
                         spur_path->nodes.end());
      total.probability = root_prob * spur_path->probability;
      if (seen.insert(PathHash(total.nodes)).second) {
        candidates.push({std::move(total)});
      }
    }

    if (candidates.empty()) break;
    accepted.push_back(candidates.top().path);
    candidates.pop();
  }
  return accepted;
}

}  // namespace relmax
