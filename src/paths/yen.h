#ifndef RELMAX_PATHS_YEN_H_
#define RELMAX_PATHS_YEN_H_

#include <vector>

#include "graph/uncertain_graph.h"
#include "paths/most_reliable_path.h"

namespace relmax {

/// Top-l most reliable *simple* paths from s to t, in non-increasing
/// probability order (ties broken deterministically).
///
/// The paper invokes Eppstein's k-shortest-paths algorithm [27] here; we use
/// Yen's deviation algorithm instead (see DESIGN.md §1.3): Eppstein
/// enumerates non-simple paths, which can never be most-reliable under
/// multiplicative probabilities, and the selection stage (§5.2) consumes
/// simple paths. Returns fewer than l paths when the graph does not contain
/// that many.
std::vector<PathResult> TopLReliablePaths(const UncertainGraph& g, NodeId s,
                                          NodeId t, int l);

}  // namespace relmax

#endif  // RELMAX_PATHS_YEN_H_
