#include "paths/layered_mrp.h"

#include <algorithm>
#include <queue>

namespace relmax {
namespace {

struct RedArc {
  NodeId to;
  double prob;
  int candidate_index;
};

struct HeapEntry {
  double prob;
  uint64_t state;  // layer * n + node
  bool operator<(const HeapEntry& o) const { return prob < o.prob; }
};

}  // namespace

StatusOr<MrpImprovement> ImproveMostReliablePathWithCandidates(
    const UncertainGraph& g, NodeId s, NodeId t, int k,
    const std::vector<Edge>& candidates) {
  const NodeId n = g.num_nodes();
  if (s >= n || t >= n) return Status::OutOfRange("query node out of range");
  if (k < 0) return Status::InvalidArgument("budget k must be non-negative");
  for (const Edge& e : candidates) {
    if (e.src >= n || e.dst >= n) {
      return Status::OutOfRange("candidate endpoint out of range");
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument("candidate self-loop");
    }
    if (e.prob < 0.0 || e.prob > 1.0) {
      return Status::InvalidArgument("candidate probability outside [0, 1]");
    }
  }

  // Red adjacency; undirected graphs can traverse a candidate either way.
  std::vector<std::vector<RedArc>> red(n);
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const Edge& e = candidates[i];
    red[e.src].push_back({e.dst, e.prob, i});
    if (!g.directed()) red[e.dst].push_back({e.src, e.prob, i});
  }

  const int layers = k + 1;
  const uint64_t num_states = static_cast<uint64_t>(layers) * n;
  std::vector<double> best(num_states, 0.0);
  // Predecessor state and the red candidate used to get here (-1 = blue arc).
  std::vector<uint64_t> parent(num_states, static_cast<uint64_t>(-1));
  std::vector<int> via_red(num_states, -1);

  auto state_of = [n](int layer, NodeId v) {
    return static_cast<uint64_t>(layer) * n + v;
  };

  std::priority_queue<HeapEntry> heap;
  best[state_of(0, s)] = 1.0;
  heap.push({1.0, state_of(0, s)});
  while (!heap.empty()) {
    const auto [prob, state] = heap.top();
    heap.pop();
    if (prob < best[state]) continue;  // stale
    const int layer = static_cast<int>(state / n);
    const NodeId u = static_cast<NodeId>(state % n);

    for (const Arc& arc : g.OutArcs(u)) {  // blue: stay in layer
      if (arc.prob <= 0.0) continue;
      const uint64_t next = state_of(layer, arc.to);
      const double candidate_prob = prob * arc.prob;
      if (candidate_prob > best[next]) {
        best[next] = candidate_prob;
        parent[next] = state;
        via_red[next] = -1;
        heap.push({candidate_prob, next});
      }
    }
    if (layer + 1 < layers) {
      for (const RedArc& arc : red[u]) {  // red: advance one layer
        if (arc.prob <= 0.0) continue;
        const uint64_t next = state_of(layer + 1, arc.to);
        const double candidate_prob = prob * arc.prob;
        if (candidate_prob > best[next]) {
          best[next] = candidate_prob;
          parent[next] = state;
          via_red[next] = arc.candidate_index;
          heap.push({candidate_prob, next});
        }
      }
    }
  }

  MrpImprovement result;
  result.base_probability = best[state_of(0, t)];

  // Best terminal state over all layers; ties prefer fewer red edges, which
  // also makes "no improvement possible" collapse onto layer 0.
  int best_layer = 0;
  double best_prob = best[state_of(0, t)];
  for (int j = 1; j < layers; ++j) {
    if (best[state_of(j, t)] > best_prob) {
      best_prob = best[state_of(j, t)];
      best_layer = j;
    }
  }
  if (best_prob <= 0.0) return result;  // t unreachable even with additions

  result.best_path.probability = best_prob;
  for (uint64_t state = state_of(best_layer, t);
       state != static_cast<uint64_t>(-1); state = parent[state]) {
    result.best_path.nodes.push_back(static_cast<NodeId>(state % n));
    if (via_red[state] >= 0) {
      result.added_edges.push_back(candidates[via_red[state]]);
    }
    if (state == state_of(0, s)) break;
  }
  std::reverse(result.best_path.nodes.begin(), result.best_path.nodes.end());
  std::reverse(result.added_edges.begin(), result.added_edges.end());
  result.improved = best_prob > result.base_probability;
  return result;
}

}  // namespace relmax
