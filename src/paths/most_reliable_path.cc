#include "paths/most_reliable_path.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace relmax {
namespace {

struct HeapEntry {
  double prob;
  NodeId node;
  bool operator<(const HeapEntry& o) const { return prob < o.prob; }
};

}  // namespace

std::optional<PathResult> MostReliablePath(const UncertainGraph& g, NodeId s,
                                           NodeId t) {
  RELMAX_CHECK(s < g.num_nodes() && t < g.num_nodes());
  if (s == t) return PathResult{{s}, 1.0};

  // Dijkstra maximizing the path probability. Edge factors are <= 1, so the
  // usual label-setting argument applies with max-product ordering.
  std::vector<double> best(g.num_nodes(), 0.0);
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::priority_queue<HeapEntry> heap;
  best[s] = 1.0;
  heap.push({1.0, s});
  while (!heap.empty()) {
    const auto [prob, u] = heap.top();
    heap.pop();
    if (prob < best[u]) continue;  // stale entry
    if (u == t) break;
    for (const Arc& arc : g.OutArcs(u)) {
      if (arc.prob <= 0.0) continue;
      const double candidate = prob * arc.prob;
      if (candidate > best[arc.to]) {
        best[arc.to] = candidate;
        parent[arc.to] = u;
        heap.push({candidate, arc.to});
      }
    }
  }
  if (best[t] <= 0.0) return std::nullopt;

  PathResult result;
  result.probability = best[t];
  for (NodeId v = t; v != kInvalidNode; v = parent[v]) {
    result.nodes.push_back(v);
    if (v == s) break;
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

std::vector<double> MostReliablePathProbabilities(const UncertainGraph& g,
                                                  NodeId s) {
  RELMAX_CHECK(s < g.num_nodes());
  std::vector<double> best(g.num_nodes(), 0.0);
  std::priority_queue<HeapEntry> heap;
  best[s] = 1.0;
  heap.push({1.0, s});
  while (!heap.empty()) {
    const auto [prob, u] = heap.top();
    heap.pop();
    if (prob < best[u]) continue;
    for (const Arc& arc : g.OutArcs(u)) {
      if (arc.prob <= 0.0) continue;
      const double candidate = prob * arc.prob;
      if (candidate > best[arc.to]) {
        best[arc.to] = candidate;
        heap.push({candidate, arc.to});
      }
    }
  }
  return best;
}

}  // namespace relmax
