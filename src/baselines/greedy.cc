#include "baselines/greedy.h"

#include <algorithm>

#include "core/evaluate.h"

namespace relmax {
namespace {

Status ValidateGreedyArgs(const UncertainGraph& g, NodeId s, NodeId t,
                          const SolverOptions& options) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<Edge>> SelectIndividualTopK(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateGreedyArgs(g, s, t, options));

  const double base = EstimateWithOptions(g, s, t, options, 0);
  std::vector<double> gains(candidates.size(), 0.0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const UncertainGraph augmented = AugmentGraph(g, {candidates[i]});
    gains[i] = EstimateWithOptions(augmented, s, t, options, 0) - base;
  }
  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (gains[a] != gains[b]) return gains[a] > gains[b];
    return a < b;
  });

  std::vector<Edge> chosen;
  for (int i = 0;
       i < static_cast<int>(order.size()) && i < options.budget_k; ++i) {
    chosen.push_back(candidates[order[i]]);
  }
  return chosen;
}

StatusOr<std::vector<Edge>> SelectHillClimbing(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateGreedyArgs(g, s, t, options));

  UncertainGraph working = g;
  std::vector<char> used(candidates.size(), 0);
  std::vector<Edge> chosen;
  for (int round = 0; round < options.budget_k; ++round) {
    // Common random numbers within the round: every candidate is scored
    // against the same seed salt so comparisons share sampling noise.
    const uint64_t salt = 0x5e1ec7 + round;
    const double base = EstimateWithOptions(working, s, t, options, salt);
    int best = -1;
    double best_gain = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const UncertainGraph augmented = AugmentGraph(working, {candidates[i]});
      const double gain =
          EstimateWithOptions(augmented, s, t, options, salt) - base;
      if (best < 0 || gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // candidate pool exhausted
    used[best] = 1;
    chosen.push_back(candidates[best]);
    const Status st = working.AddEdge(candidates[best].src,
                                      candidates[best].dst,
                                      candidates[best].prob);
    RELMAX_DCHECK(st.ok());
    (void)st;
  }
  return chosen;
}

StatusOr<std::vector<Edge>> SelectHillClimbingMulti(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, Aggregate aggregate,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  if (sources.empty() || targets.empty()) {
    return Status::InvalidArgument("sources and targets must be non-empty");
  }
  for (NodeId v : sources) {
    if (v >= g.num_nodes()) return Status::OutOfRange("source out of range");
  }
  for (NodeId v : targets) {
    if (v >= g.num_nodes()) return Status::OutOfRange("target out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }

  UncertainGraph working = g;
  std::vector<char> used(candidates.size(), 0);
  std::vector<Edge> chosen;
  for (int round = 0; round < options.budget_k; ++round) {
    const uint64_t seed = options.seed ^ (0x517ab1ULL + round);
    const double base = AggregateMatrix(
        PairwiseReliability(working, sources, targets, options.num_samples,
                            seed, options.num_threads),
        aggregate);
    int best = -1;
    double best_gain = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const UncertainGraph augmented = AugmentGraph(working, {candidates[i]});
      const double value = AggregateMatrix(
          PairwiseReliability(augmented, sources, targets,
                              options.num_samples, seed,
                              options.num_threads),
          aggregate);
      if (best < 0 || value - base > best_gain) {
        best_gain = value - base;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[best] = 1;
    chosen.push_back(candidates[best]);
    (void)working.AddEdge(candidates[best].src, candidates[best].dst,
                          candidates[best].prob);
  }
  return chosen;
}

}  // namespace relmax
