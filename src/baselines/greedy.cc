#include "baselines/greedy.h"

#include <algorithm>
#include <memory>
#include <span>

#include "common/memory.h"
#include "core/evaluate.h"
#include "sampling/world_bank.h"
#include "sampling/world_view.h"

namespace relmax {
namespace {

Status ValidateGreedyArgs(const UncertainGraph& g, NodeId s, NodeId t,
                          const std::vector<Edge>& candidates,
                          const SolverOptions& options) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }
  // Candidates AugmentGraph would reject must fail loudly here: silently
  // scoring them as gain 0 (release) or tripping a DCHECK (debug) hides the
  // caller's bug. Duplicates of existing edges remain allowed.
  for (const Edge& c : candidates) {
    if (c.src >= g.num_nodes() || c.dst >= g.num_nodes()) {
      return Status::OutOfRange("candidate endpoint out of range");
    }
    if (c.src == c.dst) {
      return Status::InvalidArgument("candidate edge is a self-loop");
    }
    if (!(c.prob >= 0.0 && c.prob <= 1.0)) {
      return Status::InvalidArgument("candidate probability outside [0, 1]");
    }
  }
  return Status::Ok();
}

// Seed tag for the greedy baselines' shared world set; distinct from the
// BE/IP selection bank so the baselines stay decorrelated from the solver.
constexpr uint64_t kGreedyBankSalt = 0x9eed1e55b45eba11ULL;

// Shared-possible-world scorer for the candidate-edge greedy baselines
// (options.reuse_worlds): one WorldBank over g ∪ candidates replaces the
// per-(round × candidate) re-estimation. Each round runs one forward and one
// backward word-parallel reachability sweep over the working edge set; a
// single added edge (u, v) then connects a world iff the edge is up, s
// reaches u, and v reaches t in that world, so every candidate score is a
// few bitwise ANDs — common random numbers across all candidates and rounds,
// bit-identical for any num_threads.
class CandidateWorldScorer {
 public:
  CandidateWorldScorer(const UncertainGraph& g, NodeId s, NodeId t,
                       const std::vector<Edge>& candidates,
                       const SolverOptions& options)
      : g_plus_(AugmentGraph(g, candidates)),
        bank_(MakeWorldView(
            g_plus_,
            WorldViewOptions{.num_samples = options.num_samples,
                             .seed = options.seed ^ kGreedyBankSalt,
                             .num_threads = options.num_threads,
                             .num_partitions = options.num_partitions})),
        s_(s),
        t_(t),
        candidates_(candidates) {
    // AugmentGraph copies g then appends, so g's own edges keep their ids
    // [0, g.num_edges()) in g_plus — they form the initial working set.
    active_.reserve(g.num_edges() + options.budget_k);
    for (size_t e = 0; e < g.num_edges(); ++e) {
      active_.push_back(static_cast<EdgeId>(e));
    }
    candidate_ids_.reserve(candidates.size());
    candidate_up_.reserve(candidates.size());
    for (const Edge& c : candidates) {
      // Candidates are pre-validated (ValidateGreedyArgs), so every one is
      // present in g_plus — possibly as a duplicate of an existing edge.
      candidate_ids_.push_back(*g_plus_.EdgeIndexOf(c.src, c.dst));
      // Views into the bank's rows — the bank is a member, so they stay
      // valid for the scorer's lifetime.
      candidate_up_.push_back(bank_->EdgeUpWorlds(candidate_ids_.back()));
    }
    BeginRound();
  }

  /// Recomputes the reachability sweeps for the current working edge set.
  /// Call once per greedy round (after any Commit). Reachability only grows
  /// as edges are committed, so the previous round's bits stay valid and
  /// seed the fixpoint.
  void BeginRound() {
    bank_->ReachabilityFixpoint(s_, /*backward=*/false, active_, &from_s_,
                                WorldView::SeedPolicy::kSeedsAreFacts);
    bank_->ReachabilityFixpoint(t_, /*backward=*/true, active_, &to_t_,
                                WorldView::SeedPolicy::kSeedsAreFacts);
    const uint64_t* const at_t = from_s_.row(t_);
    connected_.assign(at_t, at_t + bank_->world_words());
    base_hits_ = WorldView::CountBits(
        connected_, static_cast<size_t>(bank_->num_worlds()));
  }

  /// R(s, t) estimate for the current working edge set.
  double Base() const {
    return static_cast<double>(base_hits_) / bank_->num_worlds();
  }

  /// R(s, t) estimate with candidate `i` added to the working set. Exact
  /// over the bank's worlds: a path through the new edge must cross it once.
  /// The per-node world rows are hoisted to raw pointers so the sweep is a
  /// flat word-parallel AND chain.
  double With(size_t i) const {
    const NodeId u = candidates_[i].src;
    const NodeId v = candidates_[i].dst;
    const uint64_t* const up = candidate_up_[i].data();
    const uint64_t* const from_u = from_s_.row(u);
    const uint64_t* const from_v = from_s_.row(v);
    const uint64_t* const to_u = to_t_.row(u);
    const uint64_t* const to_v = to_t_.row(v);
    const bool undirected = !g_plus_.directed();
    int64_t hits = base_hits_;
    for (size_t word = 0; word < connected_.size(); ++word) {
      uint64_t fresh = up[word] & from_u[word] & to_v[word];
      if (undirected) {
        fresh |= up[word] & from_v[word] & to_u[word];
      }
      hits += __builtin_popcountll(fresh & ~connected_[word]);
    }
    return static_cast<double>(hits) / bank_->num_worlds();
  }

  /// Adds candidate `i` to the working edge set.
  void Commit(size_t i) { active_.push_back(candidate_ids_[i]); }

 private:
  const UncertainGraph g_plus_;
  std::unique_ptr<WorldView> bank_;
  NodeId s_;
  NodeId t_;
  const std::vector<Edge>& candidates_;
  std::vector<EdgeId> candidate_ids_;
  /// Per-candidate world bitset views: worlds where the candidate is up.
  std::vector<std::span<const uint64_t>> candidate_up_;
  std::vector<EdgeId> active_;  ///< working edge set
  /// Per-node world bitsets for the current round's working set.
  bitlane::BitMatrix from_s_;
  bitlane::BitMatrix to_t_;
  std::vector<uint64_t> connected_;  ///< worlds connected under active_
  int64_t base_hits_ = 0;
};

bool UseSharedWorlds(const UncertainGraph& g, const SolverOptions& options) {
  if (!options.reuse_worlds || options.estimator != Estimator::kMonteCarlo) {
    return false;
  }
  // One balanced bank shard plus the two per-node reach tables cost roughly
  // (ceil(E / P) + 2V) * Z / 8 bytes; the cap is a **per-shard** budget, so
  // raising --partitions admits graphs the flat bank could not. The
  // intended workload is the eliminated subgraph, where this never trips;
  // on a full-scale graph fall back to per-evaluation re-sampling instead
  // of silently ballooning memory — but say so: the slow path is orders of
  // magnitude more RNG work.
  const size_t cap = options.max_shared_world_bytes;
  const int shards = std::max(options.num_partitions, 1);
  const size_t rows = BalancedShardRows(g.num_edges(), shards) +
                      2 * static_cast<size_t>(g.num_nodes());
  const size_t wanted = BankBytes(rows, options.num_samples);
  if (wanted > cap) {
    NoteBankFallback("greedy baseline", wanted, cap, shards);
    return false;
  }
  return true;
}

}  // namespace

StatusOr<std::vector<Edge>> SelectIndividualTopK(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateGreedyArgs(g, s, t, candidates, options));

  std::vector<double> gains(candidates.size(), 0.0);
  if (UseSharedWorlds(g, options)) {
    CandidateWorldScorer scorer(g, s, t, candidates, options);
    const double base = scorer.Base();
    for (size_t i = 0; i < candidates.size(); ++i) {
      gains[i] = scorer.With(i) - base;
    }
  } else {
    const double base = EstimateWithOptions(g, s, t, options, 0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      const UncertainGraph augmented = AugmentGraph(g, {candidates[i]});
      gains[i] = EstimateWithOptions(augmented, s, t, options, 0) - base;
    }
  }
  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (gains[a] != gains[b]) return gains[a] > gains[b];
    return a < b;
  });

  std::vector<Edge> chosen;
  for (int i = 0;
       i < static_cast<int>(order.size()) && i < options.budget_k; ++i) {
    chosen.push_back(candidates[order[i]]);
  }
  return chosen;
}

StatusOr<std::vector<Edge>> SelectHillClimbing(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateGreedyArgs(g, s, t, candidates, options));

  if (UseSharedWorlds(g, options)) {
    // Common random numbers across every round *and* candidate: all scores
    // come from one world set, so the greedy comparisons are consistent and
    // sampling is paid once instead of per (round × candidate).
    CandidateWorldScorer scorer(g, s, t, candidates, options);
    std::vector<char> used(candidates.size(), 0);
    std::vector<Edge> chosen;
    for (int round = 0; round < options.budget_k; ++round) {
      if (round > 0) scorer.BeginRound();
      const double base = scorer.Base();
      int best = -1;
      double best_gain = 0.0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (used[i]) continue;
        const double gain = scorer.With(i) - base;
        if (best < 0 || gain > best_gain) {
          best_gain = gain;
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;  // candidate pool exhausted
      used[best] = 1;
      chosen.push_back(candidates[best]);
      scorer.Commit(static_cast<size_t>(best));
    }
    return chosen;
  }

  UncertainGraph working = g;
  std::vector<char> used(candidates.size(), 0);
  std::vector<Edge> chosen;
  for (int round = 0; round < options.budget_k; ++round) {
    // Common random numbers within the round: every candidate is scored
    // against the same seed salt so comparisons share sampling noise.
    const uint64_t salt = 0x5e1ec7 + round;
    const double base = EstimateWithOptions(working, s, t, options, salt);
    int best = -1;
    double best_gain = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const UncertainGraph augmented = AugmentGraph(working, {candidates[i]});
      const double gain =
          EstimateWithOptions(augmented, s, t, options, salt) - base;
      if (best < 0 || gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // candidate pool exhausted
    used[best] = 1;
    chosen.push_back(candidates[best]);
    const Status st = working.AddEdge(candidates[best].src,
                                      candidates[best].dst,
                                      candidates[best].prob);
    RELMAX_DCHECK(st.ok());
    (void)st;
  }
  return chosen;
}

StatusOr<std::vector<Edge>> SelectHillClimbingMulti(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, Aggregate aggregate,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  if (sources.empty() || targets.empty()) {
    return Status::InvalidArgument("sources and targets must be non-empty");
  }
  for (NodeId v : sources) {
    if (v >= g.num_nodes()) return Status::OutOfRange("source out of range");
  }
  for (NodeId v : targets) {
    if (v >= g.num_nodes()) return Status::OutOfRange("target out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }

  UncertainGraph working = g;
  std::vector<char> used(candidates.size(), 0);
  std::vector<Edge> chosen;
  for (int round = 0; round < options.budget_k; ++round) {
    const uint64_t seed = options.seed ^ (0x517ab1ULL + round);
    const double base = AggregateMatrix(
        PairwiseReliability(working, sources, targets, options.num_samples,
                            seed, options.num_threads),
        aggregate);
    int best = -1;
    double best_gain = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const UncertainGraph augmented = AugmentGraph(working, {candidates[i]});
      const double value = AggregateMatrix(
          PairwiseReliability(augmented, sources, targets,
                              options.num_samples, seed,
                              options.num_threads),
          aggregate);
      if (best < 0 || value - base > best_gain) {
        best_gain = value - base;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[best] = 1;
    chosen.push_back(candidates[best]);
    (void)working.AddEdge(candidates[best].src, candidates[best].dst,
                          candidates[best].prob);
  }
  return chosen;
}

}  // namespace relmax
