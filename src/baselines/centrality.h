#ifndef RELMAX_BASELINES_CENTRALITY_H_
#define RELMAX_BASELINES_CENTRALITY_H_

#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// Betweenness centrality of every node via Brandes' algorithm [25] on the
/// unweighted graph (edge probabilities ignored, directions respected).
/// O(nm) time, O(n + m) space.
std::vector<double> BetweennessCentrality(const UncertainGraph& g);

/// §3.3 baseline, degree flavor: ranks candidate edges by the sum of their
/// endpoints' weighted degrees (aggregated edge probabilities) and returns
/// the top-k. Not query-specific by design — that is the paper's point.
std::vector<Edge> SelectByDegreeCentrality(const UncertainGraph& g,
                                           const std::vector<Edge>& candidates,
                                           int k);

/// §3.3 baseline, betweenness flavor: ranks candidate edges by the sum of
/// their endpoints' betweenness centralities.
std::vector<Edge> SelectByBetweennessCentrality(
    const UncertainGraph& g, const std::vector<Edge>& candidates, int k);

}  // namespace relmax

#endif  // RELMAX_BASELINES_CENTRALITY_H_
