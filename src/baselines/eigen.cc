#include "baselines/eigen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace relmax {
namespace {

// One multiplication y = A x (or Aᵀ x), where A(i, j) = p(i -> j).
void Multiply(const UncertainGraph& g, bool transpose,
              const std::vector<double>& x, std::vector<double>* y) {
  std::fill(y->begin(), y->end(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Arc& arc : g.OutArcs(u)) {
      if (transpose) {
        (*y)[u] += arc.prob * x[arc.to];
      } else {
        (*y)[arc.to] += arc.prob * x[u];
      }
    }
  }
}

std::vector<double> PowerIterate(const UncertainGraph& g, bool transpose,
                                 int iterations, double tolerance,
                                 double* eigenvalue) {
  const NodeId n = g.num_nodes();
  std::vector<double> x(n, 1.0 / std::max<NodeId>(n, 1));
  std::vector<double> y(n, 0.0);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Multiply(g, transpose, x, &y);
    double norm = 0.0;
    for (double v : y) norm += std::abs(v);
    if (norm <= 0.0) {  // nilpotent adjacency (e.g. DAG): eigenvalue 0
      *eigenvalue = 0.0;
      return x;
    }
    for (NodeId v = 0; v < n; ++v) y[v] /= norm;
    const double new_lambda = norm;
    x.swap(y);
    if (std::abs(new_lambda - lambda) < tolerance) {
      lambda = new_lambda;
      break;
    }
    lambda = new_lambda;
  }
  *eigenvalue = lambda;
  return x;
}

}  // namespace

EigenDecomposition LeadingEigen(const UncertainGraph& g, int iterations,
                                double tolerance) {
  RELMAX_CHECK(iterations > 0);
  EigenDecomposition result;
  double lambda_right = 0.0;
  result.right = PowerIterate(g, false, iterations, tolerance, &lambda_right);
  if (g.directed()) {
    double lambda_left = 0.0;
    result.left = PowerIterate(g, true, iterations, tolerance, &lambda_left);
    result.eigenvalue = (lambda_left + lambda_right) / 2.0;
  } else {
    result.left = result.right;
    result.eigenvalue = lambda_right;
  }
  return result;
}

std::vector<Edge> SelectByEigenScore(const UncertainGraph& g,
                                     const std::vector<Edge>& candidates,
                                     int k, double zeta) {
  const EigenDecomposition eigen = LeadingEigen(g);
  const std::vector<double>& u = eigen.left;
  const std::vector<double>& v = eigen.right;

  std::vector<Edge> pool = candidates;
  if (pool.empty()) {
    // Algorithm 2 proper: I = top-(k + din) by left score, J = top-(k + dout)
    // by right score; connect missing pairs from I to J.
    int din = 0;
    int dout = 0;
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      dout = std::max(dout, static_cast<int>(g.OutArcs(x).size()));
      din = std::max(din, static_cast<int>(g.InArcs(x).size()));
    }
    auto top_nodes = [&](const std::vector<double>& score, int count) {
      std::vector<NodeId> order(g.num_nodes());
      for (NodeId x = 0; x < g.num_nodes(); ++x) order[x] = x;
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return score[a] != score[b] ? score[a] > score[b] : a < b;
      });
      if (static_cast<int>(order.size()) > count) order.resize(count);
      return order;
    };
    const std::vector<NodeId> from = top_nodes(u, k + din);
    const std::vector<NodeId> to = top_nodes(v, k + dout);
    for (NodeId i : from) {
      for (NodeId j : to) {
        if (i == j || g.HasEdge(i, j)) continue;
        pool.push_back({i, j, zeta});
      }
    }
  }

  std::vector<int> order(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = u[pool[a].src] * v[pool[a].dst];
    const double sb = u[pool[b].src] * v[pool[b].dst];
    if (sa != sb) return sa > sb;
    if (pool[a].src != pool[b].src) return pool[a].src < pool[b].src;
    return pool[a].dst < pool[b].dst;
  });
  std::vector<Edge> out;
  for (int i = 0; i < static_cast<int>(order.size()) && i < k; ++i) {
    out.push_back(pool[order[i]]);
  }
  return out;
}

}  // namespace relmax
