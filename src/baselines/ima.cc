#include "baselines/ima.h"

#include "core/evaluate.h"

namespace relmax {

StatusOr<std::vector<Edge>> SelectIma(const UncertainGraph& g,
                                      const std::vector<NodeId>& sources,
                                      const std::vector<NodeId>& targets,
                                      const std::vector<Edge>& candidates,
                                      const SolverOptions& options) {
  if (sources.empty() || targets.empty()) {
    return Status::InvalidArgument("sources and targets must be non-empty");
  }
  for (NodeId v : sources) {
    if (v >= g.num_nodes()) return Status::OutOfRange("source out of range");
  }
  for (NodeId v : targets) {
    if (v >= g.num_nodes()) return Status::OutOfRange("target out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }

  UncertainGraph working = g;
  std::vector<char> used(candidates.size(), 0);
  std::vector<Edge> chosen;
  for (int round = 0; round < options.budget_k; ++round) {
    const uint64_t seed = options.seed ^ (0x13a + round);
    const double base = InfluenceSpread(working, sources, targets,
                                        options.num_samples, seed,
                                        options.num_threads);
    int best = -1;
    double best_gain = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const UncertainGraph augmented = AugmentGraph(working, {candidates[i]});
      const double gain = InfluenceSpread(augmented, sources, targets,
                                          options.num_samples, seed,
                                          options.num_threads) -
                          base;
      if (best < 0 || gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[best] = 1;
    chosen.push_back(candidates[best]);
    (void)working.AddEdge(candidates[best].src, candidates[best].dst,
                          candidates[best].prob);
  }
  return chosen;
}

}  // namespace relmax
