#include "baselines/fast_gain.h"

#include <algorithm>

#include "common/rng.h"
#include "core/evaluate.h"

namespace relmax {
namespace {

Status ValidateArgs(const UncertainGraph& g, NodeId s, NodeId t,
                    const SolverOptions& options) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }
  if (options.num_samples <= 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  return Status::Ok();
}

}  // namespace

WorldEnsemble::WorldEnsemble(const UncertainGraph& g, NodeId s, NodeId t,
                             int num_samples, uint64_t seed)
    : num_nodes_(g.num_nodes()),
      num_samples_(num_samples),
      from_s_(static_cast<size_t>(num_samples) * num_nodes_, 0),
      to_t_(static_cast<size_t>(num_samples) * num_nodes_, 0),
      st_connected_(num_samples, 0) {
  Rng rng(seed);
  std::vector<char> present(g.num_edges());
  std::vector<NodeId> queue;
  queue.reserve(num_nodes_);

  for (int w = 0; w < num_samples; ++w) {
    for (size_t e = 0; e < g.num_edges(); ++e) {
      present[e] = rng.NextBernoulli(g.EdgeById(static_cast<EdgeId>(e)).prob)
                       ? 1
                       : 0;
    }
    char* from = &from_s_[static_cast<size_t>(w) * num_nodes_];
    char* to = &to_t_[static_cast<size_t>(w) * num_nodes_];

    queue.clear();
    from[s] = 1;
    queue.push_back(s);
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const Arc& arc : g.OutArcs(queue[head])) {
        if (!present[arc.edge_id] || from[arc.to]) continue;
        from[arc.to] = 1;
        queue.push_back(arc.to);
      }
    }
    queue.clear();
    to[t] = 1;
    queue.push_back(t);
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const Arc& arc : g.InArcs(queue[head])) {
        if (!present[arc.edge_id] || to[arc.to]) continue;
        to[arc.to] = 1;
        queue.push_back(arc.to);
      }
    }
    st_connected_[w] = from[t];
  }
}

double WorldEnsemble::DeltaGain(NodeId u, NodeId v, double zeta) const {
  int count = 0;
  for (int w = 0; w < num_samples_; ++w) {
    if (st_connected_[w]) continue;
    const size_t base = static_cast<size_t>(w) * num_nodes_;
    count += from_s_[base + u] && to_t_[base + v];
  }
  return zeta * static_cast<double>(count) / num_samples_;
}

double WorldEnsemble::DeltaGainUndirected(NodeId u, NodeId v,
                                          double zeta) const {
  int count = 0;
  for (int w = 0; w < num_samples_; ++w) {
    if (st_connected_[w]) continue;
    const size_t base = static_cast<size_t>(w) * num_nodes_;
    const bool forward = from_s_[base + u] && to_t_[base + v];
    const bool backward = from_s_[base + v] && to_t_[base + u];
    count += forward || backward;
  }
  return zeta * static_cast<double>(count) / num_samples_;
}

double WorldEnsemble::BaseReliability() const {
  int count = 0;
  for (char c : st_connected_) count += c;
  return static_cast<double>(count) / num_samples_;
}

StatusOr<std::vector<Edge>> SelectIndividualTopKFast(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateArgs(g, s, t, options));
  const WorldEnsemble ensemble(g, s, t, options.num_samples,
                               options.seed ^ 0xfa57);

  std::vector<double> gains(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    gains[i] = g.directed()
                   ? ensemble.DeltaGain(candidates[i].src, candidates[i].dst,
                                        candidates[i].prob)
                   : ensemble.DeltaGainUndirected(
                         candidates[i].src, candidates[i].dst,
                         candidates[i].prob);
  }
  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (gains[a] != gains[b]) return gains[a] > gains[b];
    return a < b;
  });
  std::vector<Edge> chosen;
  for (int i = 0;
       i < static_cast<int>(order.size()) && i < options.budget_k; ++i) {
    chosen.push_back(candidates[order[i]]);
  }
  return chosen;
}

StatusOr<std::vector<Edge>> SelectHillClimbingFast(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options) {
  RELMAX_RETURN_IF_ERROR(ValidateArgs(g, s, t, options));

  UncertainGraph working = g;
  std::vector<char> used(candidates.size(), 0);
  std::vector<Edge> chosen;
  for (int round = 0; round < options.budget_k; ++round) {
    const WorldEnsemble ensemble(working, s, t, options.num_samples,
                                 options.seed ^ (0xfa57c11 + round));
    int best = -1;
    double best_gain = -1.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const double gain =
          working.directed()
              ? ensemble.DeltaGain(candidates[i].src, candidates[i].dst,
                                   candidates[i].prob)
              : ensemble.DeltaGainUndirected(candidates[i].src,
                                             candidates[i].dst,
                                             candidates[i].prob);
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[best] = 1;
    chosen.push_back(candidates[best]);
    (void)working.AddEdge(candidates[best].src, candidates[best].dst,
                          candidates[best].prob);
  }
  return chosen;
}

}  // namespace relmax
