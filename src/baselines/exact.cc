#include "baselines/exact.h"

#include <algorithm>

#include "core/evaluate.h"
#include "graph/exact_reliability.h"

namespace relmax {
namespace {

// Number of k-combinations, saturating at cap.
uint64_t CombinationsCapped(uint64_t n, uint64_t k, uint64_t cap) {
  if (k > n) return 0;
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) {
    if (result > cap) return cap + 1;
    result = result * (n - i) / (i + 1);
  }
  return result;
}

}  // namespace

StatusOr<std::vector<Edge>> SelectExact(const UncertainGraph& g, NodeId s,
                                        NodeId t,
                                        const std::vector<Edge>& candidates,
                                        const SolverOptions& options,
                                        uint64_t max_combinations,
                                        int exact_edge_limit) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  const int k = std::min<int>(options.budget_k,
                              static_cast<int>(candidates.size()));
  if (k <= 0) return std::vector<Edge>{};
  if (CombinationsCapped(candidates.size(), k, max_combinations) >
      max_combinations) {
    return Status::InvalidArgument(
        "exact enumeration would exceed max_combinations; reduce the "
        "candidate set or budget");
  }

  const bool use_exact =
      static_cast<int>(g.num_edges()) + k <= exact_edge_limit;
  auto evaluate = [&](const UncertainGraph& augmented) {
    if (use_exact) {
      auto r = ExactReliabilityFactoring(augmented, s, t, exact_edge_limit);
      if (r.ok()) return r.value();
    }
    return EstimateWithOptions(augmented, s, t, options, 0xe5ac7);
  };

  // Iterate k-combinations with the classic index-vector walk.
  std::vector<int> combo(k);
  for (int i = 0; i < k; ++i) combo[i] = i;
  std::vector<Edge> best_edges;
  double best_reliability = -1.0;
  while (true) {
    std::vector<Edge> edges;
    edges.reserve(k);
    for (int i : combo) edges.push_back(candidates[i]);
    const double reliability = evaluate(AugmentGraph(g, edges));
    if (reliability > best_reliability) {
      best_reliability = reliability;
      best_edges = edges;
    }
    // Advance to the next combination.
    int pos = k - 1;
    while (pos >= 0 &&
           combo[pos] == static_cast<int>(candidates.size()) - k + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++combo[pos];
    for (int i = pos + 1; i < k; ++i) combo[i] = combo[i - 1] + 1;
  }
  return best_edges;
}

}  // namespace relmax
