#ifndef RELMAX_BASELINES_GREEDY_H_
#define RELMAX_BASELINES_GREEDY_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// §3.1 baseline: estimates the reliability gain of every candidate edge in
/// isolation (full Monte Carlo re-estimation per candidate, as the paper
/// measures it) and returns the k edges with the highest individual gains.
/// Ignores interactions between chosen edges — the paper's accuracy critique.
StatusOr<std::vector<Edge>> SelectIndividualTopK(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options);

/// §3.2 baseline (Algorithm 1): greedy hill climbing — k rounds, each adding
/// the candidate with the largest marginal reliability gain, re-estimated by
/// full sampling against the current augmented graph. No approximation
/// guarantee exists (Problem 1 is neither submodular nor supermodular).
StatusOr<std::vector<Edge>> SelectHillClimbing(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options);

/// Hill climbing against a multiple-source-target aggregate objective
/// (used as the "HC" competitor in the paper's Tables 23–25).
StatusOr<std::vector<Edge>> SelectHillClimbingMulti(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, Aggregate aggregate,
    const std::vector<Edge>& candidates, const SolverOptions& options);

}  // namespace relmax

#endif  // RELMAX_BASELINES_GREEDY_H_
