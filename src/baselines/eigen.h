#ifndef RELMAX_BASELINES_EIGEN_H_
#define RELMAX_BASELINES_EIGEN_H_

#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// Leading eigenvalue with left/right eigenvectors of the probability-
/// weighted adjacency matrix, computed by power iteration.
struct EigenDecomposition {
  double eigenvalue = 0.0;
  std::vector<double> left;   ///< u: leading left eigenvector (L1-normalized)
  std::vector<double> right;  ///< v: leading right eigenvector
};

/// Power iteration on A (right) and Aᵀ (left). For undirected graphs left
/// and right coincide. `iterations` bounds work; convergence is checked
/// against `tolerance` on the eigenvalue estimate.
EigenDecomposition LeadingEigen(const UncertainGraph& g, int iterations = 200,
                                double tolerance = 1e-10);

/// §3.4 baseline (Algorithm 2, after Chen et al. [16]): the eigenvalue gain
/// of adding edge (i, j) is approximated by u(i)·v(j); pick the top-k
/// candidate edges under that score. When `candidates` is empty the routine
/// follows Algorithm 2 literally: it forms I (top-(k+din) left scores) ×
/// J (top-(k+dout) right scores) restricted to missing edges.
std::vector<Edge> SelectByEigenScore(const UncertainGraph& g,
                                     const std::vector<Edge>& candidates,
                                     int k, double zeta);

}  // namespace relmax

#endif  // RELMAX_BASELINES_EIGEN_H_
