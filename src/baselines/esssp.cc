#include "baselines/esssp.h"

#include <queue>

#include "common/rng.h"
#include "core/evaluate.h"
#include "graph/visit_marker.h"

namespace relmax {

double ExpectedSplSum(const UncertainGraph& g,
                      const std::vector<NodeId>& sources,
                      const std::vector<NodeId>& targets, int num_samples,
                      uint64_t seed) {
  RELMAX_CHECK(num_samples > 0);
  const NodeId n = g.num_nodes();
  const double penalty = static_cast<double>(n);
  Rng rng(seed);
  std::vector<char> present(g.num_edges());
  std::vector<int> dist(n);
  double total = 0.0;

  for (int sample = 0; sample < num_samples; ++sample) {
    for (size_t e = 0; e < g.num_edges(); ++e) {
      present[e] = rng.NextBernoulli(g.EdgeById(static_cast<EdgeId>(e)).prob)
                       ? 1
                       : 0;
    }
    for (NodeId s : sources) {
      std::fill(dist.begin(), dist.end(), -1);
      std::queue<NodeId> queue;
      dist[s] = 0;
      queue.push(s);
      while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop();
        for (const Arc& arc : g.OutArcs(u)) {
          if (!present[arc.edge_id] || dist[arc.to] >= 0) continue;
          dist[arc.to] = dist[u] + 1;
          queue.push(arc.to);
        }
      }
      for (NodeId t : targets) {
        total += dist[t] >= 0 ? dist[t] : penalty;
      }
    }
  }
  return total / num_samples;
}

StatusOr<std::vector<Edge>> SelectEsssp(const UncertainGraph& g,
                                        const std::vector<NodeId>& sources,
                                        const std::vector<NodeId>& targets,
                                        const std::vector<Edge>& candidates,
                                        const SolverOptions& options) {
  if (sources.empty() || targets.empty()) {
    return Status::InvalidArgument("sources and targets must be non-empty");
  }
  for (NodeId v : sources) {
    if (v >= g.num_nodes()) return Status::OutOfRange("source out of range");
  }
  for (NodeId v : targets) {
    if (v >= g.num_nodes()) return Status::OutOfRange("target out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }

  UncertainGraph working = g;
  std::vector<char> used(candidates.size(), 0);
  std::vector<Edge> chosen;
  for (int round = 0; round < options.budget_k; ++round) {
    const uint64_t seed = options.seed ^ (0xe555 + round);
    const double base = ExpectedSplSum(working, sources, targets,
                                       options.num_samples, seed);
    int best = -1;
    double best_reduction = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const UncertainGraph augmented = AugmentGraph(working, {candidates[i]});
      const double reduction =
          base - ExpectedSplSum(augmented, sources, targets,
                                options.num_samples, seed);
      if (best < 0 || reduction > best_reduction) {
        best_reduction = reduction;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[best] = 1;
    chosen.push_back(candidates[best]);
    (void)working.AddEdge(candidates[best].src, candidates[best].dst,
                          candidates[best].prob);
  }
  return chosen;
}

}  // namespace relmax
