#ifndef RELMAX_BASELINES_FAST_GAIN_H_
#define RELMAX_BASELINES_FAST_GAIN_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Optimized single-edge marginal-gain machinery (ablation; see DESIGN.md
/// §1.4). For one added edge (u, v) with probability ζ the exact marginal
/// reliability gain is
///
///   ΔR = ζ · Pr[ s→u ∧ v→t ∧ ¬(s→t) ]
///
/// because the new edge completes an s-t connection exactly in the worlds
/// where u is reachable from s, t is reachable from v, and t was not already
/// reachable. One ensemble of Z sampled worlds therefore scores *every*
/// candidate at once (forward reach set + reverse reach set + s-t indicator
/// per world), replacing |E+| independent full estimations. The paper's
/// baselines deliberately do not use this — we provide it to quantify the
/// headroom.
class WorldEnsemble {
 public:
  /// Samples `num_samples` worlds of g and records per-world reachability
  /// from s and to t.
  WorldEnsemble(const UncertainGraph& g, NodeId s, NodeId t, int num_samples,
                uint64_t seed);

  /// Exact-in-expectation marginal gain of adding directed arc (u, v) with
  /// probability zeta, estimated over the ensemble.
  double DeltaGain(NodeId u, NodeId v, double zeta) const;

  /// Marginal gain of an *undirected* edge {u, v}: it completes the worlds
  /// where either orientation closes the s-t gap (union, not max).
  double DeltaGainUndirected(NodeId u, NodeId v, double zeta) const;

  /// Fraction of worlds where t is reachable from s (the base reliability).
  double BaseReliability() const;

  int num_samples() const { return num_samples_; }

 private:
  const NodeId num_nodes_;
  const int num_samples_;
  // Bit-packed per-world membership, world-major.
  std::vector<char> from_s_;  // [w * n + v]: v reachable from s in world w
  std::vector<char> to_t_;    // [w * n + v]: t reachable from v in world w
  std::vector<char> st_connected_;
};

/// Individual Top-k re-implemented on one world ensemble: identical ranking
/// semantics to SelectIndividualTopK at a fraction of the cost.
StatusOr<std::vector<Edge>> SelectIndividualTopKFast(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options);

/// Hill climbing where each round scores all remaining candidates on a fresh
/// ensemble of the current augmented graph.
StatusOr<std::vector<Edge>> SelectHillClimbingFast(
    const UncertainGraph& g, NodeId s, NodeId t,
    const std::vector<Edge>& candidates, const SolverOptions& options);

}  // namespace relmax

#endif  // RELMAX_BASELINES_FAST_GAIN_H_
