#ifndef RELMAX_BASELINES_ESSSP_H_
#define RELMAX_BASELINES_ESSSP_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Re-implementation of the §8.3 competitor "ESSSP" (after Parotsidis et
/// al. [36]): greedily adds the candidate edge that most reduces the sum of
/// expected shortest-path lengths over all source-target pairs.
///
/// The expected shortest-path length of a pair is estimated over sampled
/// possible worlds (hop-count distance; an unreachable pair contributes the
/// disconnection penalty `num_nodes`). This is the uncertain-graph analogue
/// of the original deterministic objective — see DESIGN.md §1.3.
StatusOr<std::vector<Edge>> SelectEsssp(const UncertainGraph& g,
                                        const std::vector<NodeId>& sources,
                                        const std::vector<NodeId>& targets,
                                        const std::vector<Edge>& candidates,
                                        const SolverOptions& options);

/// Expected shortest-path length sum over all pairs (the ESSSP objective);
/// exposed for tests and the bench harness.
double ExpectedSplSum(const UncertainGraph& g,
                      const std::vector<NodeId>& sources,
                      const std::vector<NodeId>& targets, int num_samples,
                      uint64_t seed);

}  // namespace relmax

#endif  // RELMAX_BASELINES_ESSSP_H_
