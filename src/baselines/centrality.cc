#include "baselines/centrality.h"

#include <algorithm>
#include <queue>
#include <stack>

namespace relmax {
namespace {

// Top-k candidates under a per-edge score, deterministic tie-break.
std::vector<Edge> TopKByScore(const std::vector<Edge>& candidates,
                              const std::vector<double>& scores, int k) {
  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (candidates[a].src != candidates[b].src) {
      return candidates[a].src < candidates[b].src;
    }
    return candidates[a].dst < candidates[b].dst;
  });
  std::vector<Edge> out;
  for (int i = 0; i < static_cast<int>(order.size()) && i < k; ++i) {
    out.push_back(candidates[order[i]]);
  }
  return out;
}

}  // namespace

std::vector<double> BetweennessCentrality(const UncertainGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  // Brandes: one BFS + dependency accumulation per source.
  std::vector<int> dist(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);
  std::vector<std::vector<NodeId>> preds(n);
  for (NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();

    std::vector<NodeId> order;  // nodes in non-decreasing distance
    std::queue<NodeId> queue;
    dist[s] = 0;
    sigma[s] = 1.0;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      order.push_back(u);
      for (const Arc& arc : g.OutArcs(u)) {
        const NodeId v = arc.to;
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push(v);
        }
        if (dist[v] == dist[u] + 1) {
          sigma[v] += sigma[u];
          preds[v].push_back(u);
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (NodeId u : preds[w]) {
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  // Undirected graphs count each path twice (once per endpoint as source).
  if (!g.directed()) {
    for (double& c : centrality) c /= 2.0;
  }
  return centrality;
}

std::vector<Edge> SelectByDegreeCentrality(const UncertainGraph& g,
                                           const std::vector<Edge>& candidates,
                                           int k) {
  std::vector<double> node_score(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    node_score[v] = g.WeightedDegree(v);
  }
  std::vector<double> scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = node_score[candidates[i].src] + node_score[candidates[i].dst];
  }
  return TopKByScore(candidates, scores, k);
}

std::vector<Edge> SelectByBetweennessCentrality(
    const UncertainGraph& g, const std::vector<Edge>& candidates, int k) {
  const std::vector<double> node_score = BetweennessCentrality(g);
  std::vector<double> scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = node_score[candidates[i].src] + node_score[candidates[i].dst];
  }
  return TopKByScore(candidates, scores, k);
}

}  // namespace relmax
