#ifndef RELMAX_BASELINES_EXACT_H_
#define RELMAX_BASELINES_EXACT_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// The paper's exact competitor "ES" (Table 11): enumerates every
/// combination of k candidate edges and returns the one with the highest
/// reliability after addition. Exponential in k — `max_combinations` guards
/// runaway instances (the paper applies ES only to the 54-node Intel Lab
/// network).
///
/// Reliability per combination uses exact factoring when the graph is small
/// enough (`exact_edge_limit`), Monte Carlo otherwise.
StatusOr<std::vector<Edge>> SelectExact(const UncertainGraph& g, NodeId s,
                                        NodeId t,
                                        const std::vector<Edge>& candidates,
                                        const SolverOptions& options,
                                        uint64_t max_combinations = 2000000,
                                        int exact_edge_limit = 40);

}  // namespace relmax

#endif  // RELMAX_BASELINES_EXACT_H_
