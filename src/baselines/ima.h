#ifndef RELMAX_BASELINES_IMA_H_
#define RELMAX_BASELINES_IMA_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Re-implementation of the §8.3 competitor "IMA" (after Coro et al. [38]):
/// greedily adds the candidate edge that most increases the independent-
/// cascade influence spread from the source set into the target set
/// (Equation 13). With |S| = |T| = 1 its objective coincides with s-t
/// reliability, matching the paper's observation in Table 25.
StatusOr<std::vector<Edge>> SelectIma(const UncertainGraph& g,
                                      const std::vector<NodeId>& sources,
                                      const std::vector<NodeId>& targets,
                                      const std::vector<Edge>& candidates,
                                      const SolverOptions& options);

}  // namespace relmax

#endif  // RELMAX_BASELINES_IMA_H_
