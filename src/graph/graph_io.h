#ifndef RELMAX_GRAPH_GRAPH_IO_H_
#define RELMAX_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Reads a whole text file as newline-stripped lines (CRLF tolerated)
/// through the shared guarded reader every text parser in the library uses:
/// IoError when the file cannot be opened, InvalidArgument on a NUL byte
/// (binary file) or a line past 1 MB — one implementation, so the guards
/// and their messages cannot drift between parsers. Line i of the result is
/// file line i + 1; blank lines are preserved.
StatusOr<std::vector<std::string>> ReadTextLines(const std::string& path);

/// Serializes `g` as a probabilistic edge list:
///
///   # relmax-graph v1
///   directed|undirected <num_nodes>
///   <u> <v> <p>
///   ...
///
/// Lines starting with '#' are comments.
Status WriteEdgeList(const UncertainGraph& g, const std::string& path);

/// Parses a graph written by WriteEdgeList (or hand-authored in the same
/// format). Fails with IoError / InvalidArgument on malformed input.
StatusOr<UncertainGraph> ReadEdgeList(const std::string& path);

}  // namespace relmax

#endif  // RELMAX_GRAPH_GRAPH_IO_H_
