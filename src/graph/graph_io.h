#ifndef RELMAX_GRAPH_GRAPH_IO_H_
#define RELMAX_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Serializes `g` as a probabilistic edge list:
///
///   # relmax-graph v1
///   directed|undirected <num_nodes>
///   <u> <v> <p>
///   ...
///
/// Lines starting with '#' are comments.
Status WriteEdgeList(const UncertainGraph& g, const std::string& path);

/// Parses a graph written by WriteEdgeList (or hand-authored in the same
/// format). Fails with IoError / InvalidArgument on malformed input.
StatusOr<UncertainGraph> ReadEdgeList(const std::string& path);

}  // namespace relmax

#endif  // RELMAX_GRAPH_GRAPH_IO_H_
