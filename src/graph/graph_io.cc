#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>

namespace relmax {

Status WriteEdgeList(const UncertainGraph& g, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  std::fprintf(f, "# relmax-graph v1\n%s %u\n",
               g.directed() ? "directed" : "undirected", g.num_nodes());
  for (const Edge& e : g.Edges()) {
    std::fprintf(f, "%u %u %.17g\n", e.src, e.dst, e.prob);
  }
  const bool write_failed = std::ferror(f) != 0;
  std::fclose(f);
  if (write_failed) return Status::IoError("short write: " + path);
  return Status::Ok();
}

StatusOr<UncertainGraph> ReadEdgeList(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);

  char line[256];
  bool have_header = false;
  bool directed = false;
  unsigned num_nodes = 0;
  UncertainGraph g = UncertainGraph::Directed(0);
  int line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    if (line[0] == '#' || line[0] == '\n') continue;
    if (!have_header) {
      char kind[32];
      if (std::sscanf(line, "%31s %u", kind, &num_nodes) != 2) {
        std::fclose(f);
        return Status::InvalidArgument("bad header at line " +
                                       std::to_string(line_no));
      }
      if (std::strcmp(kind, "directed") == 0) {
        directed = true;
      } else if (std::strcmp(kind, "undirected") == 0) {
        directed = false;
      } else {
        std::fclose(f);
        return Status::InvalidArgument("unknown graph kind: " +
                                       std::string(kind));
      }
      g = directed ? UncertainGraph::Directed(num_nodes)
                   : UncertainGraph::Undirected(num_nodes);
      have_header = true;
      continue;
    }
    unsigned u = 0;
    unsigned v = 0;
    double p = 0.0;
    if (std::sscanf(line, "%u %u %lf", &u, &v, &p) != 3) {
      std::fclose(f);
      return Status::InvalidArgument("bad edge at line " +
                                     std::to_string(line_no));
    }
    Status st = g.AddEdge(u, v, p);
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
  }
  std::fclose(f);
  if (!have_header) return Status::InvalidArgument("missing header: " + path);
  return g;
}

}  // namespace relmax
