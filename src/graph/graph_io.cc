#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace relmax {
namespace {

/// Longest accepted input line. Far beyond any legitimate edge record; the
/// cap keeps a stray binary file from ballooning memory before failing.
constexpr size_t kMaxLineBytes = 1 << 20;

enum class LineResult { kOk, kEof, kTooLong, kNulByte };

// Reads one line of arbitrary length (growing *line as needed) and strips
// the trailing "\n" or "\r\n" — files written on Windows parse identically.
// A line longer than kMaxLineBytes reports kTooLong instead of being
// silently split into bogus records; a NUL byte (fgets reports data strlen
// cannot see past — a binary file) reports kNulByte instead of merging
// records.
LineResult ReadLine(FILE* f, std::string* line) {
  line->clear();
  char chunk[256];
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
    const size_t len = std::strlen(chunk);
    if (len == 0) return LineResult::kNulByte;
    line->append(chunk, len);
    if (line->size() > kMaxLineBytes) return LineResult::kTooLong;
    if (line->back() == '\n') break;
    // fgets only stops early at a newline or EOF; a short chunk without
    // either means an embedded NUL truncated strlen mid-chunk.
    if (len < sizeof(chunk) - 1 && !std::feof(f)) return LineResult::kNulByte;
  }
  if (line->empty()) return LineResult::kEof;
  while (!line->empty() && (line->back() == '\n' || line->back() == '\r')) {
    line->pop_back();
  }
  return LineResult::kOk;
}

}  // namespace

StatusOr<std::vector<std::string>> ReadTextLines(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::vector<std::string> lines;
  std::string line;
  LineResult read;
  while ((read = ReadLine(f, &line)) != LineResult::kEof) {
    if (read == LineResult::kTooLong) {
      std::fclose(f);
      return Status::InvalidArgument("line too long at line " +
                                     std::to_string(lines.size() + 1));
    }
    if (read == LineResult::kNulByte) {
      std::fclose(f);
      return Status::InvalidArgument("NUL byte at line " +
                                     std::to_string(lines.size() + 1) +
                                     " (binary file?)");
    }
    lines.push_back(line);
  }
  std::fclose(f);
  return lines;
}

Status WriteEdgeList(const UncertainGraph& g, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  std::fprintf(f, "# relmax-graph v1\n%s %u\n",
               g.directed() ? "directed" : "undirected", g.num_nodes());
  for (const Edge& e : g.Edges()) {
    std::fprintf(f, "%u %u %.17g\n", e.src, e.dst, e.prob);
  }
  const bool write_failed = std::ferror(f) != 0;
  std::fclose(f);
  if (write_failed) return Status::IoError("short write: " + path);
  return Status::Ok();
}

StatusOr<UncertainGraph> ReadEdgeList(const std::string& path) {
  auto lines = ReadTextLines(path);
  RELMAX_RETURN_IF_ERROR(lines.status());

  bool have_header = false;
  bool directed = false;
  unsigned num_nodes = 0;
  UncertainGraph g = UncertainGraph::Directed(0);
  for (size_t i = 0; i < lines->size(); ++i) {
    const std::string& line = (*lines)[i];
    const int line_no = static_cast<int>(i) + 1;
    if (line.empty() || line[0] == '#') continue;
    if (!have_header) {
      char kind[32];
      if (std::sscanf(line.c_str(), "%31s %u", kind, &num_nodes) != 2) {
        return Status::InvalidArgument("bad header at line " +
                                       std::to_string(line_no));
      }
      if (std::strcmp(kind, "directed") == 0) {
        directed = true;
      } else if (std::strcmp(kind, "undirected") == 0) {
        directed = false;
      } else {
        return Status::InvalidArgument("unknown graph kind: " +
                                       std::string(kind));
      }
      g = directed ? UncertainGraph::Directed(num_nodes)
                   : UncertainGraph::Undirected(num_nodes);
      have_header = true;
      continue;
    }
    unsigned u = 0;
    unsigned v = 0;
    double p = 0.0;
    if (std::sscanf(line.c_str(), "%u %u %lf", &u, &v, &p) != 3) {
      return Status::InvalidArgument("bad edge at line " +
                                     std::to_string(line_no));
    }
    RELMAX_RETURN_IF_ERROR(g.AddEdge(u, v, p));
  }
  if (!have_header) return Status::InvalidArgument("missing header: " + path);
  return g;
}

}  // namespace relmax
