#include "graph/exact_reliability.h"

#include <queue>
#include <vector>

namespace relmax {
namespace {

Status ValidateQuery(const UncertainGraph& g, NodeId s, NodeId t) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node exceeds num_nodes");
  }
  return Status::Ok();
}

// Per-node incidence onto the logical edge list: (edge index, other endpoint).
// A directed edge appears only at its tail; an undirected edge at both ends.
std::vector<std::vector<std::pair<int, NodeId>>> BuildIncidence(
    const UncertainGraph& g, const std::vector<Edge>& edges) {
  std::vector<std::vector<std::pair<int, NodeId>>> inc(g.num_nodes());
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    inc[edges[i].src].push_back({i, edges[i].dst});
    if (!g.directed()) inc[edges[i].dst].push_back({i, edges[i].src});
  }
  return inc;
}

enum class EdgeState : uint8_t { kUndetermined, kPresent, kAbsent };

class FactoringSolver {
 public:
  FactoringSolver(const UncertainGraph& g, const std::vector<Edge>& edges,
                  NodeId s, NodeId t)
      : edges_(edges),
        inc_(BuildIncidence(g, edges)),
        s_(s),
        t_(t),
        state_(edges.size(), EdgeState::kUndetermined) {}

  double Solve() { return Recurse(); }

 private:
  // BFS over kPresent edges from s. Returns reached flags.
  std::vector<char> ReachedViaPresent() const {
    std::vector<char> reached(inc_.size(), 0);
    std::queue<NodeId> queue;
    reached[s_] = 1;
    queue.push(s_);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (const auto& [ei, v] : inc_[u]) {
        if (state_[ei] == EdgeState::kPresent && !reached[v]) {
          reached[v] = 1;
          queue.push(v);
        }
      }
    }
    return reached;
  }

  double Recurse() {
    const std::vector<char> reached = ReachedViaPresent();
    if (reached[t_]) return 1.0;

    // Pivot on an undetermined edge leaving the certainly-reached set: only
    // such edges can extend reachability, so if none exists t is cut off.
    int pivot = -1;
    for (NodeId u = 0; u < inc_.size() && pivot < 0; ++u) {
      if (!reached[u]) continue;
      for (const auto& [ei, v] : inc_[u]) {
        if (state_[ei] == EdgeState::kUndetermined && !reached[v]) {
          pivot = ei;
          break;
        }
      }
    }
    if (pivot < 0) return 0.0;

    const double p = edges_[pivot].prob;
    double result = 0.0;
    if (p > 0.0) {
      state_[pivot] = EdgeState::kPresent;
      result += p * Recurse();
    }
    if (p < 1.0) {
      state_[pivot] = EdgeState::kAbsent;
      result += (1.0 - p) * Recurse();
    }
    state_[pivot] = EdgeState::kUndetermined;
    return result;
  }

  const std::vector<Edge>& edges_;
  const std::vector<std::vector<std::pair<int, NodeId>>> inc_;
  const NodeId s_;
  const NodeId t_;
  std::vector<EdgeState> state_;
};

}  // namespace

StatusOr<double> ExactReliabilityBruteForce(const UncertainGraph& g, NodeId s,
                                            NodeId t, int max_edges) {
  RELMAX_RETURN_IF_ERROR(ValidateQuery(g, s, t));
  if (s == t) return 1.0;
  const std::vector<Edge> edges = g.Edges();
  const int m = static_cast<int>(edges.size());
  if (m > max_edges || m > 30) {
    return Status::InvalidArgument(
        "brute-force enumeration limited to " + std::to_string(max_edges) +
        " edges; graph has " + std::to_string(m));
  }
  const auto inc = BuildIncidence(g, edges);

  double reliability = 0.0;
  std::vector<char> reached(g.num_nodes());
  for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
    double prob = 1.0;
    for (int i = 0; i < m; ++i) {
      prob *= (mask >> i) & 1 ? edges[i].prob : 1.0 - edges[i].prob;
      if (prob == 0.0) break;
    }
    if (prob == 0.0) continue;

    std::fill(reached.begin(), reached.end(), 0);
    std::queue<NodeId> queue;
    reached[s] = 1;
    queue.push(s);
    bool hit = false;
    while (!queue.empty() && !hit) {
      const NodeId u = queue.front();
      queue.pop();
      for (const auto& [ei, v] : inc[u]) {
        if (((mask >> ei) & 1) && !reached[v]) {
          reached[v] = 1;
          if (v == t) {
            hit = true;
            break;
          }
          queue.push(v);
        }
      }
    }
    if (hit) reliability += prob;
  }
  return reliability;
}

StatusOr<double> ExactReliabilityFactoring(const UncertainGraph& g, NodeId s,
                                           NodeId t, int max_edges) {
  RELMAX_RETURN_IF_ERROR(ValidateQuery(g, s, t));
  if (s == t) return 1.0;
  const std::vector<Edge> edges = g.Edges();
  if (static_cast<int>(edges.size()) > max_edges) {
    return Status::InvalidArgument(
        "factoring limited to " + std::to_string(max_edges) +
        " edges; graph has " + std::to_string(edges.size()));
  }
  FactoringSolver solver(g, edges, s, t);
  return solver.Solve();
}

}  // namespace relmax
