#ifndef RELMAX_GRAPH_GRAPH_STATS_H_
#define RELMAX_GRAPH_GRAPH_STATS_H_

#include "common/rng.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Dataset summary statistics in the shape of the paper's Table 8.
struct GraphStats {
  NodeId num_nodes = 0;
  size_t num_edges = 0;
  /// Edge-probability moments and quartiles.
  double prob_mean = 0.0;
  double prob_sd = 0.0;
  double prob_q1 = 0.0;
  double prob_q2 = 0.0;
  double prob_q3 = 0.0;
  /// Average shortest-path length over sampled reachable pairs (hops,
  /// probabilities ignored).
  double avg_spl = 0.0;
  /// Longest observed shortest-path length (approximate diameter via
  /// multi-source sweeps).
  int longest_spl = 0;
  /// Average local clustering coefficient over sampled nodes (undirected
  /// view).
  double clustering_coefficient = 0.0;
};

/// Options controlling the sampling effort of ComputeGraphStats.
struct GraphStatsOptions {
  /// BFS sources used for path-length statistics.
  int num_bfs_sources = 32;
  /// Nodes sampled for the clustering coefficient.
  int num_clustering_nodes = 2000;
  uint64_t seed = 7;
};

/// Computes Table 8-style statistics. Path-length and clustering figures are
/// estimated by sampling (exact on graphs smaller than the sample budgets).
GraphStats ComputeGraphStats(const UncertainGraph& g,
                             const GraphStatsOptions& options = {});

}  // namespace relmax

#endif  // RELMAX_GRAPH_GRAPH_STATS_H_
