#ifndef RELMAX_GRAPH_BFS_H_
#define RELMAX_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// Unreachable marker for hop distances.
inline constexpr int kUnreachable = -1;

/// Hop distances from `src` following out-arcs (edge probabilities ignored),
/// truncated at `max_hops` (kUnreachable beyond). `max_hops < 0` means
/// unbounded.
std::vector<int> HopDistances(const UncertainGraph& g, NodeId src,
                              int max_hops = -1);

/// Hop distances from `src` ignoring arc direction — used for the paper's
/// h-hop constraint on candidate edges, which models physical proximity.
std::vector<int> UndirectedHopDistances(const UncertainGraph& g, NodeId src,
                                        int max_hops = -1);

}  // namespace relmax

#endif  // RELMAX_GRAPH_BFS_H_
