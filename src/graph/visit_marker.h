#ifndef RELMAX_GRAPH_VISIT_MARKER_H_
#define RELMAX_GRAPH_VISIT_MARKER_H_

#include <cstdint>
#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// Epoch-stamped visited set for repeated graph traversals.
///
/// Monte Carlo estimation runs thousands of BFS passes over the same node
/// set; clearing a boolean array each pass would dominate. NewEpoch() is O(1)
/// (a counter bump) and Visit() marks-and-tests in O(1).
class VisitMarker {
 public:
  explicit VisitMarker(size_t n) : stamp_(n, 0), epoch_(0) {}

  /// Starts a fresh traversal: all nodes become unvisited.
  void NewEpoch() {
    if (++epoch_ == 0) {  // wrapped: reset lazily once every 2^32 epochs
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Marks v visited. Returns true iff v was not yet visited this epoch.
  bool Visit(NodeId v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }

  /// True if v was visited this epoch.
  bool Visited(NodeId v) const { return stamp_[v] == epoch_; }

  size_t size() const { return stamp_.size(); }

  /// Raw scratch access for flattened hot loops: `stamp()[v] == epoch()`
  /// means visited this epoch, and writing `stamp()[v] = epoch()` marks v.
  /// Hoisting these into locals lets the compiler keep them in registers
  /// across stores the aliasing rules would otherwise force it to reload
  /// around. Valid until the next NewEpoch().
  uint32_t* stamp() { return stamp_.data(); }
  uint32_t epoch() const { return epoch_; }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_;
};

}  // namespace relmax

#endif  // RELMAX_GRAPH_VISIT_MARKER_H_
