#include "graph/bfs.h"

#include <queue>

namespace relmax {
namespace {

template <typename ArcsFn>
std::vector<int> BfsImpl(NodeId n, NodeId src, int max_hops, ArcsFn arcs_of) {
  std::vector<int> dist(n, kUnreachable);
  dist[src] = 0;
  std::queue<NodeId> queue;
  queue.push(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    if (max_hops >= 0 && dist[u] >= max_hops) continue;
    arcs_of(u, [&](NodeId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    });
  }
  return dist;
}

}  // namespace

std::vector<int> HopDistances(const UncertainGraph& g, NodeId src,
                              int max_hops) {
  return BfsImpl(g.num_nodes(), src, max_hops, [&](NodeId u, auto&& visit) {
    for (const Arc& a : g.OutArcs(u)) visit(a.to);
  });
}

std::vector<int> UndirectedHopDistances(const UncertainGraph& g, NodeId src,
                                        int max_hops) {
  return BfsImpl(g.num_nodes(), src, max_hops, [&](NodeId u, auto&& visit) {
    for (const Arc& a : g.OutArcs(u)) visit(a.to);
    if (g.directed()) {
      for (const Arc& a : g.InArcs(u)) visit(a.to);
    }
  });
}

}  // namespace relmax
