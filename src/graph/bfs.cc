#include "graph/bfs.h"

#include <queue>

namespace relmax {
namespace {

template <typename ArcsFn>
std::vector<int> BfsImpl(NodeId n, NodeId src, int max_hops, ArcsFn arcs_of) {
  std::vector<int> dist(n, kUnreachable);
  dist[src] = 0;
  std::queue<NodeId> queue;
  queue.push(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    if (max_hops >= 0 && dist[u] >= max_hops) continue;
    arcs_of(u, [&](NodeId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    });
  }
  return dist;
}

}  // namespace

std::vector<int> HopDistances(const UncertainGraph& g, NodeId src,
                              int max_hops) {
  const CsrView csr = g.OutCsr();
  return BfsImpl(g.num_nodes(), src, max_hops, [&](NodeId u, auto&& visit) {
    for (size_t i = csr.begin(u); i < csr.end(u); ++i) visit(csr.heads[i]);
  });
}

std::vector<int> UndirectedHopDistances(const UncertainGraph& g, NodeId src,
                                        int max_hops) {
  const CsrView out = g.OutCsr();
  const CsrView in = g.InCsr();
  const bool directed = g.directed();
  return BfsImpl(g.num_nodes(), src, max_hops, [&](NodeId u, auto&& visit) {
    for (size_t i = out.begin(u); i < out.end(u); ++i) visit(out.heads[i]);
    if (directed) {
      for (size_t i = in.begin(u); i < in.end(u); ++i) visit(in.heads[i]);
    }
  });
}

}  // namespace relmax
