#ifndef RELMAX_GRAPH_UNCERTAIN_GRAPH_H_
#define RELMAX_GRAPH_UNCERTAIN_GRAPH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace relmax {

/// Node identifier. Nodes are dense integers in [0, num_nodes()).
using NodeId = uint32_t;

/// Dense logical-edge identifier in insertion order, shared by both stored
/// arcs of an undirected edge. Samplers key per-world edge state off this.
using EdgeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An adjacency entry: head node, existence probability, and the logical
/// edge id it belongs to. With the CSR layout this is a *materialized value*
/// assembled from the flat arrays, not a stored struct.
struct Arc {
  NodeId to;
  double prob;
  EdgeId edge_id;
};

/// An edge in external form. For undirected graphs the canonical form has
/// src < dst.
struct Edge {
  NodeId src;
  NodeId dst;
  double prob;

  bool operator==(const Edge& o) const {
    return src == o.src && dst == o.dst && prob == o.prob;
  }
};

/// Lightweight non-owning view over one node's arcs in the CSR arrays.
///
/// Dereferencing materializes an Arc by value from the structure-of-arrays
/// storage, so `for (const Arc& a : g.OutArcs(u))` keeps working unchanged
/// (the const reference binds to the per-iteration temporary). The view is
/// invalidated by any graph mutation, exactly like the reference the old
/// adjacency-list API returned.
class ArcSpan {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Arc;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Arc;

    iterator(const NodeId* heads, const double* probs, const EdgeId* edge_ids,
             size_t i)
        : heads_(heads), probs_(probs), edge_ids_(edge_ids), i_(i) {}

    Arc operator*() const { return {heads_[i_], probs_[i_], edge_ids_[i_]}; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++i_;
      return copy;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const NodeId* heads_;
    const double* probs_;
    const EdgeId* edge_ids_;
    size_t i_;
  };

  ArcSpan(const NodeId* heads, const double* probs, const EdgeId* edge_ids,
          size_t size)
      : heads_(heads), probs_(probs), edge_ids_(edge_ids), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Arc operator[](size_t i) const {
    return {heads_[i], probs_[i], edge_ids_[i]};
  }
  iterator begin() const { return iterator(heads_, probs_, edge_ids_, 0); }
  iterator end() const { return iterator(heads_, probs_, edge_ids_, size_); }

 private:
  const NodeId* heads_;
  const double* probs_;
  const EdgeId* edge_ids_;
  size_t size_;
};

/// Borrowed pointers into one direction's CSR arrays — the idiom for hot
/// traversal loops, which fetch the view once and index the flat arrays
/// directly instead of calling OutArcs(u) per node:
///
///   const CsrView csr = g.OutCsr();
///   for (size_t i = csr.begin(u); i < csr.end(u); ++i) {
///     visit(csr.heads[i], csr.probs[i], csr.edge_ids[i]);
///   }
///
/// Arcs of node u occupy [offsets[u], offsets[u+1]) in increasing logical
/// edge-id order (identical to the old adjacency-list insertion order).
/// The view is invalidated by any graph mutation.
struct CsrView {
  const size_t* offsets = nullptr;  ///< n + 1 entries
  const NodeId* heads = nullptr;
  const double* probs = nullptr;
  const EdgeId* edge_ids = nullptr;

  size_t begin(NodeId u) const { return offsets[u]; }
  size_t end(NodeId u) const { return offsets[u + 1]; }
  ArcSpan arcs(NodeId u) const {
    const size_t b = offsets[u];
    return ArcSpan(heads + b, probs + b, edge_ids + b, offsets[u + 1] - b);
  }
};

/// An uncertain (probabilistic) graph G = (V, E, p): every edge e carries an
/// independent existence probability p(e) ∈ [0, 1] under possible-world
/// semantics (paper §2.1).
///
/// Storage is compressed-sparse-row (CSR): per direction, a flat offsets
/// array plus structure-of-arrays heads / probs / edge_ids, so traversal is
/// a linear scan with no per-node pointer chase. The in-direction CSR is
/// materialized only for directed graphs (undirected graphs serve InArcs
/// from the out arrays, which already hold both arc copies). Logical edges
/// additionally live in a flat by-EdgeId array (`EdgesById`, `EdgeProbs`)
/// with O(1) expected lookup through a hash index.
///
/// Dynamic insertion is still supported — the solvers repeatedly evaluate
/// augmented graphs G ∪ E1. Mutations append to the edge list and mark the
/// CSR stale; the next traversal rebuilds it in O(V + E). The rebuild is
/// internally synchronized (safe when several sampler threads first touch a
/// freshly augmented graph), but mutating concurrently with traversal is a
/// data race, as it always was. Undirected graphs store each edge as two
/// arcs but count it once in num_edges() and Edges().
class UncertainGraph {
 public:
  /// Creates a directed graph with n isolated nodes.
  static UncertainGraph Directed(NodeId n) { return UncertainGraph(n, true); }
  /// Creates an undirected graph with n isolated nodes.
  static UncertainGraph Undirected(NodeId n) {
    return UncertainGraph(n, false);
  }

  UncertainGraph(const UncertainGraph& other);
  UncertainGraph(UncertainGraph&& other) noexcept;
  UncertainGraph& operator=(const UncertainGraph& other);
  UncertainGraph& operator=(UncertainGraph&& other) noexcept;
  ~UncertainGraph() = default;

  bool directed() const { return directed_; }
  NodeId num_nodes() const { return num_nodes_; }
  /// Logical edge count (an undirected edge counts once).
  size_t num_edges() const { return edges_.size(); }

  /// Monotonic mutation counter: bumped by AddNode/AddEdge/UpdateEdgeProb
  /// (and by being assigned over). Samplers that precompute per-arc state
  /// compare this to detect that their caches went stale.
  uint64_t version() const { return version_; }

  /// Appends an isolated node and returns its id.
  NodeId AddNode();

  /// Adds edge (u, v) with probability p. Fails on self-loops, out-of-range
  /// endpoints, p outside [0, 1], or duplicate edges.
  Status AddEdge(NodeId u, NodeId v, double p);

  /// Replaces the probability of existing edge (u, v).
  Status UpdateEdgeProb(NodeId u, NodeId v, double p);

  /// True if edge (u, v) exists. For undirected graphs the orientation is
  /// ignored.
  bool HasEdge(NodeId u, NodeId v) const {
    return edge_index_.count(EdgeKey(u, v)) > 0;
  }

  /// Probability of edge (u, v), or nullopt if absent.
  std::optional<double> EdgeProb(NodeId u, NodeId v) const;

  /// Logical edge id of (u, v), or nullopt if absent.
  std::optional<EdgeId> EdgeIndexOf(NodeId u, NodeId v) const;

  /// Edge by logical id (canonical orientation).
  const Edge& EdgeById(EdgeId id) const { return edges_[id]; }

  /// All logical edges in insertion (id) order.
  const std::vector<Edge>& EdgesById() const { return edges_; }

  /// Structure-of-arrays probability vector indexed by EdgeId — the flat
  /// array world samplers iterate when flipping every logical edge once.
  const std::vector<double>& EdgeProbs() const { return edge_probs_; }

  /// Outgoing arcs of u (for undirected graphs: all incident arcs).
  ArcSpan OutArcs(NodeId u) const {
    EnsureCsr();
    const size_t b = out_offsets_[u];
    return ArcSpan(out_heads_.data() + b, out_probs_.data() + b,
                   out_edge_ids_.data() + b, out_offsets_[u + 1] - b);
  }

  /// Incoming arcs of u. For undirected graphs this equals OutArcs(u).
  ArcSpan InArcs(NodeId u) const {
    if (!directed_) return OutArcs(u);
    EnsureCsr();
    const size_t b = in_offsets_[u];
    return ArcSpan(in_heads_.data() + b, in_probs_.data() + b,
                   in_edge_ids_.data() + b, in_offsets_[u + 1] - b);
  }

  /// Flat out-direction CSR for hot loops (see CsrView). Rebuilds lazily if
  /// stale; the returned pointers are valid until the next mutation.
  CsrView OutCsr() const {
    EnsureCsr();
    return {out_offsets_.data(), out_heads_.data(), out_probs_.data(),
            out_edge_ids_.data()};
  }

  /// Flat in-direction CSR. For undirected graphs this is OutCsr().
  CsrView InCsr() const {
    if (!directed_) return OutCsr();
    EnsureCsr();
    return {in_offsets_.data(), in_heads_.data(), in_probs_.data(),
            in_edge_ids_.data()};
  }

  /// Canonical logical edge list sorted by (src, dst).
  std::vector<Edge> Edges() const;

  /// Sum of probabilities over arcs incident to u in both directions — the
  /// paper's "degree centrality" score (§3.3).
  double WeightedDegree(NodeId u) const;

  /// Graph with every arc reversed. Undirected graphs return a copy.
  UncertainGraph Transposed() const;

  /// Subgraph induced by `nodes` (ids are compacted in the given order).
  /// Duplicate ids are rejected.
  StatusOr<UncertainGraph> InducedSubgraph(
      const std::vector<NodeId>& nodes) const;

 private:
  UncertainGraph(NodeId n, bool directed)
      : directed_(directed), num_nodes_(n) {}

  // Canonical 64-bit key: directed keeps (u, v); undirected sorts endpoints.
  uint64_t EdgeKey(NodeId u, NodeId v) const {
    if (!directed_ && u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  // Double-checked lazy rebuild; cheap acquire load once the CSR is fresh.
  void EnsureCsr() const {
    if (!csr_stale_.load(std::memory_order_acquire)) return;
    RebuildCsr();
  }
  void RebuildCsr() const;
  void MarkStale() { csr_stale_.store(true, std::memory_order_release); }

  // One assignment list for all four special members: `other` is forwarded,
  // so member access moves from rvalues and copies from lvalues. Callers
  // hold the appropriate mutexes.
  template <typename Graph>
  void AssignFrom(Graph&& other);

  bool directed_ = false;
  NodeId num_nodes_ = 0;
  uint64_t version_ = 0;
  std::vector<Edge> edges_;        // canonical form, indexed by EdgeId
  std::vector<double> edge_probs_;  // SoA mirror of edges_[e].prob
  std::unordered_map<uint64_t, EdgeId> edge_index_;

  // CSR arrays, rebuilt lazily from edges_ under csr_mutex_. Arcs of node u
  // live in [offsets[u], offsets[u+1]) in increasing edge-id order — the
  // same per-node order the old adjacency lists had, so traversal-driven
  // RNG streams are bit-identical across the representation change.
  mutable std::vector<size_t> out_offsets_;
  mutable std::vector<NodeId> out_heads_;
  mutable std::vector<double> out_probs_;
  mutable std::vector<EdgeId> out_edge_ids_;
  mutable std::vector<size_t> in_offsets_;  // only populated when directed_
  mutable std::vector<NodeId> in_heads_;
  mutable std::vector<double> in_probs_;
  mutable std::vector<EdgeId> in_edge_ids_;
  mutable std::atomic<bool> csr_stale_{true};
  mutable std::mutex csr_mutex_;
};

}  // namespace relmax

#endif  // RELMAX_GRAPH_UNCERTAIN_GRAPH_H_
