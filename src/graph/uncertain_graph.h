#ifndef RELMAX_GRAPH_UNCERTAIN_GRAPH_H_
#define RELMAX_GRAPH_UNCERTAIN_GRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace relmax {

/// Node identifier. Nodes are dense integers in [0, num_nodes()).
using NodeId = uint32_t;

/// Dense logical-edge identifier in insertion order, shared by both stored
/// arcs of an undirected edge. Samplers key per-world edge state off this.
using EdgeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An adjacency entry: head node, existence probability, and the logical
/// edge id it belongs to.
struct Arc {
  NodeId to;
  double prob;
  EdgeId edge_id;
};

/// An edge in external form. For undirected graphs the canonical form has
/// src < dst.
struct Edge {
  NodeId src;
  NodeId dst;
  double prob;

  bool operator==(const Edge& o) const {
    return src == o.src && dst == o.dst && prob == o.prob;
  }
};

/// An uncertain (probabilistic) graph G = (V, E, p): every edge e carries an
/// independent existence probability p(e) ∈ [0, 1] under possible-world
/// semantics (paper §2.1).
///
/// The representation is adjacency-list based with O(1) expected edge lookup,
/// and supports dynamic edge insertion — the solvers repeatedly evaluate
/// augmented graphs G ∪ E1. Undirected graphs store each edge as two arcs but
/// count it once in num_edges() and Edges().
class UncertainGraph {
 public:
  /// Creates a directed graph with n isolated nodes.
  static UncertainGraph Directed(NodeId n) { return UncertainGraph(n, true); }
  /// Creates an undirected graph with n isolated nodes.
  static UncertainGraph Undirected(NodeId n) {
    return UncertainGraph(n, false);
  }

  bool directed() const { return directed_; }
  NodeId num_nodes() const { return static_cast<NodeId>(out_.size()); }
  /// Logical edge count (an undirected edge counts once).
  size_t num_edges() const { return edges_.size(); }

  /// Appends an isolated node and returns its id.
  NodeId AddNode();

  /// Adds edge (u, v) with probability p. Fails on self-loops, out-of-range
  /// endpoints, p outside [0, 1], or duplicate edges.
  Status AddEdge(NodeId u, NodeId v, double p);

  /// Replaces the probability of existing edge (u, v).
  Status UpdateEdgeProb(NodeId u, NodeId v, double p);

  /// True if edge (u, v) exists. For undirected graphs the orientation is
  /// ignored.
  bool HasEdge(NodeId u, NodeId v) const {
    return edge_index_.count(EdgeKey(u, v)) > 0;
  }

  /// Probability of edge (u, v), or nullopt if absent.
  std::optional<double> EdgeProb(NodeId u, NodeId v) const;

  /// Logical edge id of (u, v), or nullopt if absent.
  std::optional<EdgeId> EdgeIndexOf(NodeId u, NodeId v) const;

  /// Edge by logical id (canonical orientation).
  const Edge& EdgeById(EdgeId id) const { return edges_[id]; }

  /// All logical edges in insertion (id) order.
  const std::vector<Edge>& EdgesById() const { return edges_; }

  /// Outgoing arcs of u (for undirected graphs: all incident arcs).
  const std::vector<Arc>& OutArcs(NodeId u) const { return out_[u]; }

  /// Incoming arcs of u. For undirected graphs this equals OutArcs(u).
  const std::vector<Arc>& InArcs(NodeId u) const {
    return directed_ ? in_[u] : out_[u];
  }

  /// Canonical logical edge list sorted by (src, dst).
  std::vector<Edge> Edges() const;

  /// Sum of probabilities over arcs incident to u in both directions — the
  /// paper's "degree centrality" score (§3.3).
  double WeightedDegree(NodeId u) const;

  /// Graph with every arc reversed. Undirected graphs return a copy.
  UncertainGraph Transposed() const;

  /// Subgraph induced by `nodes` (ids are compacted in the given order).
  /// Duplicate ids are rejected.
  StatusOr<UncertainGraph> InducedSubgraph(
      const std::vector<NodeId>& nodes) const;

 private:
  UncertainGraph(NodeId n, bool directed)
      : directed_(directed), out_(n), in_(directed ? n : 0) {}

  // Canonical 64-bit key: directed keeps (u, v); undirected sorts endpoints.
  uint64_t EdgeKey(NodeId u, NodeId v) const {
    if (!directed_ && u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  bool directed_;
  std::vector<std::vector<Arc>> out_;
  std::vector<std::vector<Arc>> in_;  // only populated when directed_
  std::vector<Edge> edges_;           // canonical form, indexed by EdgeId
  std::unordered_map<uint64_t, EdgeId> edge_index_;
};

}  // namespace relmax

#endif  // RELMAX_GRAPH_UNCERTAIN_GRAPH_H_
