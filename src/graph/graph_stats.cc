#include "graph/graph_stats.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "graph/bfs.h"

namespace relmax {
namespace {

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

// Sampled average local clustering coefficient on the undirected view.
double SampledClustering(const UncertainGraph& g, int num_nodes, Rng* rng) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0.0;
  std::vector<NodeId> nodes;
  if (static_cast<int>(n) <= num_nodes) {
    nodes.resize(n);
    for (NodeId v = 0; v < n; ++v) nodes[v] = v;
  } else {
    nodes.reserve(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
      nodes.push_back(static_cast<NodeId>(rng->NextUint64(n)));
    }
  }

  auto neighbors_of = [&](NodeId u) {
    std::unordered_set<NodeId> nb;
    for (const Arc& a : g.OutArcs(u)) nb.insert(a.to);
    if (g.directed()) {
      for (const Arc& a : g.InArcs(u)) nb.insert(a.to);
    }
    nb.erase(u);
    return std::vector<NodeId>(nb.begin(), nb.end());
  };
  auto connected = [&](NodeId v, NodeId w) {
    return g.HasEdge(v, w) || (g.directed() && g.HasEdge(w, v));
  };

  double sum = 0.0;
  int counted = 0;
  constexpr size_t kMaxExactDegree = 128;
  constexpr int kPairSamples = 2048;
  for (NodeId u : nodes) {
    const std::vector<NodeId> nb = neighbors_of(u);
    const size_t deg = nb.size();
    ++counted;
    if (deg < 2) continue;  // convention: c(u) = 0 for degree < 2
    if (deg <= kMaxExactDegree) {
      size_t linked = 0;
      for (size_t i = 0; i < deg; ++i) {
        for (size_t j = i + 1; j < deg; ++j) {
          if (connected(nb[i], nb[j])) ++linked;
        }
      }
      sum += static_cast<double>(linked) /
             (static_cast<double>(deg) * static_cast<double>(deg - 1) / 2.0);
    } else {
      // Hub node: estimate the linked-pair fraction from random pairs.
      int linked = 0;
      for (int trial = 0; trial < kPairSamples; ++trial) {
        const NodeId v = nb[rng->NextUint64(deg)];
        NodeId w = nb[rng->NextUint64(deg)];
        while (w == v) w = nb[rng->NextUint64(deg)];
        if (connected(v, w)) ++linked;
      }
      sum += static_cast<double>(linked) / kPairSamples;
    }
  }
  return counted == 0 ? 0.0 : sum / counted;
}

}  // namespace

GraphStats ComputeGraphStats(const UncertainGraph& g,
                             const GraphStatsOptions& options) {
  GraphStats stats;
  stats.num_nodes = g.num_nodes();
  stats.num_edges = g.num_edges();

  std::vector<double> probs;
  probs.reserve(g.num_edges());
  double sum = 0.0;
  for (const Edge& e : g.Edges()) {
    probs.push_back(e.prob);
    sum += e.prob;
  }
  if (!probs.empty()) {
    stats.prob_mean = sum / static_cast<double>(probs.size());
    double var = 0.0;
    for (double p : probs) {
      var += (p - stats.prob_mean) * (p - stats.prob_mean);
    }
    stats.prob_sd =
        probs.size() > 1
            ? __builtin_sqrt(var / static_cast<double>(probs.size() - 1))
            : 0.0;
    std::sort(probs.begin(), probs.end());
    stats.prob_q1 = Quantile(probs, 0.25);
    stats.prob_q2 = Quantile(probs, 0.50);
    stats.prob_q3 = Quantile(probs, 0.75);
  }

  Rng rng(options.seed);
  const NodeId n = g.num_nodes();
  if (n > 0) {
    double spl_sum = 0.0;
    int64_t spl_count = 0;
    int longest = 0;
    NodeId farthest = kInvalidNode;
    const int sources = std::min<int>(options.num_bfs_sources, n);
    for (int i = 0; i < sources; ++i) {
      const NodeId src = static_cast<int>(n) <= options.num_bfs_sources
                             ? static_cast<NodeId>(i)
                             : static_cast<NodeId>(rng.NextUint64(n));
      const std::vector<int> dist = HopDistances(g, src);
      for (NodeId v = 0; v < n; ++v) {
        if (v == src || dist[v] == kUnreachable) continue;
        spl_sum += dist[v];
        ++spl_count;
        if (dist[v] > longest) {
          longest = dist[v];
          farthest = v;
        }
      }
    }
    // Double sweep: a BFS from the farthest node found usually tightens the
    // diameter estimate considerably.
    if (farthest != kInvalidNode) {
      for (int d : HopDistances(g, farthest)) longest = std::max(longest, d);
    }
    stats.avg_spl = spl_count == 0 ? 0.0 : spl_sum / spl_count;
    stats.longest_spl = longest;
    stats.clustering_coefficient =
        SampledClustering(g, options.num_clustering_nodes, &rng);
  }
  return stats;
}

}  // namespace relmax
