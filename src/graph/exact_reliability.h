#ifndef RELMAX_GRAPH_EXACT_RELIABILITY_H_
#define RELMAX_GRAPH_EXACT_RELIABILITY_H_

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Exact s-t reliability by enumerating all 2^m possible worlds (Equation 2).
/// Exponential — refuses graphs with more than `max_edges` edges. Intended as
/// a test oracle and for the paper's tiny closed-form examples.
StatusOr<double> ExactReliabilityBruteForce(const UncertainGraph& g, NodeId s,
                                            NodeId t, int max_edges = 24);

/// Exact s-t reliability by the factoring (conditioning) method:
///   R(G) = p(e) * R(G | e present) + (1 - p(e)) * R(G | e absent)
/// pivoting on edges incident to the certainly-reachable set. Much faster
/// than brute force in practice but still exponential in the worst case;
/// `max_edges` guards accidental use on large graphs.
StatusOr<double> ExactReliabilityFactoring(const UncertainGraph& g, NodeId s,
                                           NodeId t, int max_edges = 64);

}  // namespace relmax

#endif  // RELMAX_GRAPH_EXACT_RELIABILITY_H_
