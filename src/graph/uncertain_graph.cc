#include "graph/uncertain_graph.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <type_traits>
#include <utility>

namespace relmax {

// One forwarded assignment list serves all four special members, so a field
// added later cannot be copied in one of them and silently dropped in
// another: member access through the forwarded reference copies from lvalues
// and moves from rvalues.
template <typename Graph>
void UncertainGraph::AssignFrom(Graph&& other) {
  directed_ = other.directed_;
  num_nodes_ = other.num_nodes_;
  version_ = other.version_;
  edges_ = std::forward<Graph>(other).edges_;
  edge_probs_ = std::forward<Graph>(other).edge_probs_;
  edge_index_ = std::forward<Graph>(other).edge_index_;
  out_offsets_ = std::forward<Graph>(other).out_offsets_;
  out_heads_ = std::forward<Graph>(other).out_heads_;
  out_probs_ = std::forward<Graph>(other).out_probs_;
  out_edge_ids_ = std::forward<Graph>(other).out_edge_ids_;
  in_offsets_ = std::forward<Graph>(other).in_offsets_;
  in_heads_ = std::forward<Graph>(other).in_heads_;
  in_probs_ = std::forward<Graph>(other).in_probs_;
  in_edge_ids_ = std::forward<Graph>(other).in_edge_ids_;
  csr_stale_.store(other.csr_stale_.load(std::memory_order_acquire),
                   std::memory_order_release);
  if constexpr (!std::is_lvalue_reference_v<Graph>) {
    // Leave a moved-from source valid-but-empty: its vectors are moved out,
    // so a non-zero node count with a "fresh" flag would let a traversal
    // index the empty offsets array out of bounds.
    other.num_nodes_ = 0;
    other.csr_stale_.store(true, std::memory_order_release);
  }
}

// Copies take the source's CSR (when fresh) along with the logical edges, so
// the common copy-then-estimate pattern skips the rebuild. The source mutex
// is held because a concurrent first-traversal of `other` may be writing its
// mutable CSR arrays mid-copy.
UncertainGraph::UncertainGraph(const UncertainGraph& other) {
  std::lock_guard<std::mutex> lock(other.csr_mutex_);
  AssignFrom(other);
}

UncertainGraph::UncertainGraph(UncertainGraph&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.csr_mutex_);
  AssignFrom(std::move(other));
}

UncertainGraph& UncertainGraph::operator=(const UncertainGraph& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(csr_mutex_, other.csr_mutex_);
  AssignFrom(other);
  ++version_;  // the object a sampler may reference changed content
  return *this;
}

UncertainGraph& UncertainGraph::operator=(UncertainGraph&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(csr_mutex_, other.csr_mutex_);
  AssignFrom(std::move(other));
  ++version_;
  return *this;
}

NodeId UncertainGraph::AddNode() {
  MarkStale();
  ++version_;
  return num_nodes_++;
}

Status UncertainGraph::AddEdge(NodeId u, NodeId v, double p) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange("edge endpoint exceeds num_nodes");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not supported");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  const uint64_t key = EdgeKey(u, v);
  if (edge_index_.count(key) > 0) {
    return Status::AlreadyExists("edge (" + std::to_string(u) + ", " +
                                 std::to_string(v) + ") already present");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edge_index_.emplace(key, id);
  // Canonical storage: undirected edges keep src < dst.
  NodeId cu = u;
  NodeId cv = v;
  if (!directed_ && cu > cv) std::swap(cu, cv);
  edges_.push_back({cu, cv, p});
  edge_probs_.push_back(p);
  MarkStale();
  ++version_;
  return Status::Ok();
}

Status UncertainGraph::UpdateEdgeProb(NodeId u, NodeId v, double p) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  auto it = edge_index_.find(EdgeKey(u, v));
  if (it == edge_index_.end()) {
    return Status::NotFound("edge (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") does not exist");
  }
  const EdgeId id = it->second;
  edges_[id].prob = p;
  edge_probs_[id] = p;
  ++version_;
  // Topology is unchanged, so a fresh CSR is patched in place (O(degree),
  // like the old adjacency-list update) instead of invalidated — probability
  // re-assignment passes interleave updates with traversal per edge, and a
  // full rebuild per update would make them quadratic. A stale CSR stays
  // stale; the eventual rebuild reads the updated edge list.
  if (!csr_stale_.load(std::memory_order_acquire)) {
    const Edge& e = edges_[id];
    const auto patch = [id, p](const std::vector<size_t>& offsets,
                               const std::vector<EdgeId>& edge_ids,
                               std::vector<double>& probs, NodeId node) {
      for (size_t i = offsets[node]; i < offsets[node + 1]; ++i) {
        if (edge_ids[i] == id) {
          probs[i] = p;
          return;
        }
      }
    };
    patch(out_offsets_, out_edge_ids_, out_probs_, e.src);
    if (directed_) {
      patch(in_offsets_, in_edge_ids_, in_probs_, e.dst);
    } else {
      patch(out_offsets_, out_edge_ids_, out_probs_, e.dst);
    }
  }
  return Status::Ok();
}

std::optional<double> UncertainGraph::EdgeProb(NodeId u, NodeId v) const {
  auto it = edge_index_.find(EdgeKey(u, v));
  if (it == edge_index_.end()) return std::nullopt;
  return edge_probs_[it->second];
}

std::optional<EdgeId> UncertainGraph::EdgeIndexOf(NodeId u, NodeId v) const {
  auto it = edge_index_.find(EdgeKey(u, v));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

// Counting sort of the logical edges into per-node arc runs. Emitting edges
// in increasing id order reproduces the arc order the old push-back adjacency
// lists had (arcs were appended as edges were inserted), which keeps every
// traversal-driven RNG stream bit-identical to the pre-CSR representation.
void UncertainGraph::RebuildCsr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!csr_stale_.load(std::memory_order_relaxed)) return;  // lost the race

  const size_t n = num_nodes_;
  const size_t num_arcs = directed_ ? edges_.size() : 2 * edges_.size();
  out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offsets_[e.src + 1];
    if (!directed_) ++out_offsets_[e.dst + 1];
  }
  std::partial_sum(out_offsets_.begin(), out_offsets_.end(),
                   out_offsets_.begin());
  out_heads_.resize(num_arcs);
  out_probs_.resize(num_arcs);
  out_edge_ids_.resize(num_arcs);
  std::vector<size_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    size_t slot = cursor[e.src]++;
    out_heads_[slot] = e.dst;
    out_probs_[slot] = e.prob;
    out_edge_ids_[slot] = id;
    if (!directed_) {
      slot = cursor[e.dst]++;
      out_heads_[slot] = e.src;
      out_probs_[slot] = e.prob;
      out_edge_ids_[slot] = id;
    }
  }

  if (directed_) {
    in_offsets_.assign(n + 1, 0);
    for (const Edge& e : edges_) ++in_offsets_[e.dst + 1];
    std::partial_sum(in_offsets_.begin(), in_offsets_.end(),
                     in_offsets_.begin());
    in_heads_.resize(edges_.size());
    in_probs_.resize(edges_.size());
    in_edge_ids_.resize(edges_.size());
    cursor.assign(in_offsets_.begin(), in_offsets_.end() - 1);
    for (EdgeId id = 0; id < edges_.size(); ++id) {
      const Edge& e = edges_[id];
      const size_t slot = cursor[e.dst]++;
      in_heads_[slot] = e.src;
      in_probs_[slot] = e.prob;
      in_edge_ids_[slot] = id;
    }
  }

  csr_stale_.store(false, std::memory_order_release);
}

std::vector<Edge> UncertainGraph::Edges() const {
  std::vector<Edge> edges = edges_;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  return edges;
}

double UncertainGraph::WeightedDegree(NodeId u) const {
  EnsureCsr();
  double sum = 0.0;
  for (size_t i = out_offsets_[u]; i < out_offsets_[u + 1]; ++i) {
    sum += out_probs_[i];
  }
  if (directed_) {
    for (size_t i = in_offsets_[u]; i < in_offsets_[u + 1]; ++i) {
      sum += in_probs_[i];
    }
  }
  return sum;
}

UncertainGraph UncertainGraph::Transposed() const {
  UncertainGraph t(num_nodes_, directed_);
  for (const Edge& e : edges_) {
    Status st = directed_ ? t.AddEdge(e.dst, e.src, e.prob)
                          : t.AddEdge(e.src, e.dst, e.prob);
    RELMAX_DCHECK(st.ok());
    (void)st;
  }
  return t;
}

StatusOr<UncertainGraph> UncertainGraph::InducedSubgraph(
    const std::vector<NodeId>& nodes) const {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes_) {
      return Status::OutOfRange("subgraph node exceeds num_nodes");
    }
    if (!remap.emplace(nodes[i], static_cast<NodeId>(i)).second) {
      return Status::InvalidArgument("duplicate node in subgraph spec");
    }
  }
  UncertainGraph sub(static_cast<NodeId>(nodes.size()), directed_);
  const CsrView csr = OutCsr();
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t a = csr.begin(nodes[i]); a < csr.end(nodes[i]); ++a) {
      auto it = remap.find(csr.heads[a]);
      if (it == remap.end()) continue;
      const NodeId su = static_cast<NodeId>(i);
      const NodeId sv = it->second;
      if (!directed_ && sub.HasEdge(su, sv)) continue;  // second arc copy
      Status st = sub.AddEdge(su, sv, csr.probs[a]);
      RELMAX_DCHECK(st.ok());
      (void)st;
    }
  }
  return sub;
}

}  // namespace relmax
