#include "graph/uncertain_graph.h"

#include <algorithm>
#include <string>

namespace relmax {

NodeId UncertainGraph::AddNode() {
  out_.emplace_back();
  if (directed_) in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

Status UncertainGraph::AddEdge(NodeId u, NodeId v, double p) {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::OutOfRange("edge endpoint exceeds num_nodes");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not supported");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  const uint64_t key = EdgeKey(u, v);
  if (edge_index_.count(key) > 0) {
    return Status::AlreadyExists("edge (" + std::to_string(u) + ", " +
                                 std::to_string(v) + ") already present");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edge_index_.emplace(key, id);
  // Canonical storage: undirected edges keep src < dst.
  NodeId cu = u;
  NodeId cv = v;
  if (!directed_ && cu > cv) std::swap(cu, cv);
  edges_.push_back({cu, cv, p});
  out_[u].push_back({v, p, id});
  if (directed_) {
    in_[v].push_back({u, p, id});
  } else {
    out_[v].push_back({u, p, id});
  }
  return Status::Ok();
}

Status UncertainGraph::UpdateEdgeProb(NodeId u, NodeId v, double p) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  auto it = edge_index_.find(EdgeKey(u, v));
  if (it == edge_index_.end()) {
    return Status::NotFound("edge (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") does not exist");
  }
  const EdgeId id = it->second;
  edges_[id].prob = p;
  auto update_arc = [&](std::vector<Arc>& arcs) {
    for (Arc& arc : arcs) {
      if (arc.edge_id == id) {
        arc.prob = p;
        return;
      }
    }
  };
  update_arc(out_[u]);
  if (directed_) {
    update_arc(in_[v]);
  } else {
    update_arc(out_[v]);
  }
  return Status::Ok();
}

std::optional<double> UncertainGraph::EdgeProb(NodeId u, NodeId v) const {
  auto it = edge_index_.find(EdgeKey(u, v));
  if (it == edge_index_.end()) return std::nullopt;
  return edges_[it->second].prob;
}

std::optional<EdgeId> UncertainGraph::EdgeIndexOf(NodeId u, NodeId v) const {
  auto it = edge_index_.find(EdgeKey(u, v));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<Edge> UncertainGraph::Edges() const {
  std::vector<Edge> edges = edges_;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  return edges;
}

double UncertainGraph::WeightedDegree(NodeId u) const {
  double sum = 0.0;
  for (const Arc& a : out_[u]) sum += a.prob;
  if (directed_) {
    for (const Arc& a : in_[u]) sum += a.prob;
  }
  return sum;
}

UncertainGraph UncertainGraph::Transposed() const {
  UncertainGraph t(num_nodes(), directed_);
  for (const Edge& e : edges_) {
    Status st = directed_ ? t.AddEdge(e.dst, e.src, e.prob)
                          : t.AddEdge(e.src, e.dst, e.prob);
    RELMAX_DCHECK(st.ok());
    (void)st;
  }
  return t;
}

StatusOr<UncertainGraph> UncertainGraph::InducedSubgraph(
    const std::vector<NodeId>& nodes) const {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes()) {
      return Status::OutOfRange("subgraph node exceeds num_nodes");
    }
    if (!remap.emplace(nodes[i], static_cast<NodeId>(i)).second) {
      return Status::InvalidArgument("duplicate node in subgraph spec");
    }
  }
  UncertainGraph sub(static_cast<NodeId>(nodes.size()), directed_);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const Arc& a : out_[nodes[i]]) {
      auto it = remap.find(a.to);
      if (it == remap.end()) continue;
      const NodeId su = static_cast<NodeId>(i);
      const NodeId sv = it->second;
      if (!directed_ && sub.HasEdge(su, sv)) continue;  // second arc copy
      Status st = sub.AddEdge(su, sv, a.prob);
      RELMAX_DCHECK(st.ok());
      (void)st;
    }
  }
  return sub;
}

}  // namespace relmax
