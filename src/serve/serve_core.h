#ifndef RELMAX_SERVE_SERVE_CORE_H_
#define RELMAX_SERVE_SERVE_CORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "serve/snapshot.h"

namespace relmax {
namespace serve {

/// Knobs for the online query daemon (ServeCore / Server).
struct ServeOptions {
  /// The batch engine each lane replica answers through. Every served value
  /// is the engine's — a pure function of (graph version, estimator, seed,
  /// Z, query) — so serve answers are bit-identical to `relmax batch` for
  /// the same tuple, regardless of how arrivals were windowed.
  QueryEngineOptions engine;
  /// Micro-batch bounded-delay window: once a lane sees the first pending
  /// query it waits at most this long for more arrivals before answering the
  /// window through one shared flood. 0 disables the wait (every drain takes
  /// whatever is queued).
  int window_us = 2000;
  /// Maximum queries answered through one window (one engine batch).
  size_t max_batch = 256;
  /// Admission cap: a submission finding this many queries already pending
  /// is shed immediately with a typed Unavailable status — never a silent
  /// drop. 0 sheds everything (useful to test the shed path).
  size_t max_queue = 1024;
  /// Concurrent batch lanes. QueryEngine is not internally synchronized, so
  /// each lane owns a private graph replica + engine; answers are
  /// bit-identical across lanes by the engine's determinism contract.
  int lanes = 1;
};

/// Cumulative daemon accounting, reported on the `stats` protocol line.
/// Epoch-scoped fields reset when a mutation publishes a new epoch; totals
/// are process-lifetime.
struct ServeStats {
  uint64_t submitted = 0;  ///< queries accepted into the admission queue
  uint64_t answered = 0;   ///< queries answered with a value
  uint64_t shed = 0;       ///< queries shed by admission control (typed)
  uint64_t rejected = 0;   ///< queries rejected by validation (typed)
  uint64_t batches = 0;    ///< windows answered (shared floods paid)
  size_t max_window = 0;   ///< largest window answered so far
  uint64_t updates = 0;    ///< mutations applied (epochs published)
  uint64_t epoch = 0;          ///< current published epoch
  uint64_t graph_version = 0;  ///< current snapshot's UncertainGraph version
  // Engine accounting accumulated across windows (BatchStats fields).
  uint64_t floods = 0;
  uint64_t index_answers = 0;
  uint64_t fallback_estimates = 0;
  uint64_t cache_hits = 0;
  /// Result-cache FIFO evictions, process-lifetime.
  uint64_t cache_evictions_total = 0;
  /// Evictions charged to engines serving the *current* epoch; reset to 0
  /// when a new epoch is published (fresh replicas start with empty caches,
  /// so carrying the old epoch's count would misreport the live cache —
  /// the serve-side mirror of the PR 9 ApplyBankUpdate stale-stats fix).
  uint64_t cache_evictions_epoch = 0;
  /// Live memoized pairs in lane 0's engine, as of its last window. Reset
  /// to 0 on epoch publish until the new epoch's replica answers a window.
  size_t cache_entries = 0;
};

/// The daemon's engine room: admission control, epoch snapshots, and
/// micro-batched answering, independent of any wire format.
///
/// Readers: Submit() pins the query to the current epoch and enqueues it
/// (or sheds / rejects it synchronously, always through the typed
/// callback). Lane threads drain the queue in arrival order, wait up to
/// `window_us` for a fuller window, and answer each window through one
/// QueryEngine batch — one shared flood per distinct source in the window.
///
/// Writers: Update()/AddEdge() copy the current snapshot's graph, apply the
/// mutation, and publish the result as epoch N+1. In-flight queries pinned
/// to epoch N are untouched — their lanes answer on replicas still at N —
/// so a republish never blocks reads. Each lane replica then catches up by
/// replaying the mutation log the first time it sees an epoch-N+1 window;
/// its long-lived engine observes the version bump and runs the PR 6/9
/// incremental maintenance path (resample the bank, relabel only changed
/// worlds) instead of rebuilding from scratch.
///
/// Every callback fires exactly once, from the submitting thread (shed /
/// rejected) or from a lane thread (answered / engine error).
class ServeCore {
 public:
  /// Receives the answer (or typed failure) and the epoch it was pinned to.
  using QueryCallback =
      std::function<void(const StatusOr<double>&, uint64_t epoch)>;

  ServeCore(UncertainGraph initial, const ServeOptions& options);
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Thread-safe. Pins the query to the current epoch and enqueues it;
  /// invokes `done` synchronously with a typed Status when the query is
  /// invalid (InvalidArgument) or shed by admission control (Unavailable).
  void Submit(NodeId s, NodeId t, QueryCallback done);

  /// Writer path: publishes a new epoch with the edge's probability
  /// replaced / the edge added. Concurrent writers are serialized; readers
  /// are never blocked. Returns the new epoch.
  StatusOr<uint64_t> UpdateEdgeProb(NodeId u, NodeId v, double p);
  StatusOr<uint64_t> AddEdge(NodeId u, NodeId v, double p);

  /// The currently published snapshot (readers may pin it).
  std::shared_ptr<const GraphSnapshot> CurrentSnapshot() const {
    return store_.Current();
  }

  ServeStats Stats() const;

  /// Blocks until the admission queue is empty and every lane is idle.
  void Drain();

  /// Drains, then stops the lanes. Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct Pending {
    StQuery query;
    uint64_t epoch = 0;
    QueryCallback done;
  };

  /// One lane's private replica: a graph copy replayed to `epoch` plus the
  /// long-lived engine answering on it. Boxed so addresses stay stable (the
  /// engine holds a reference to the graph).
  struct Lane {
    explicit Lane(const UncertainGraph& initial,
                  const QueryEngineOptions& engine_options)
        : graph(initial), engine(graph, engine_options) {}
    UncertainGraph graph;
    uint64_t epoch = 0;
    QueryEngine engine;
  };

  // One published mutation: ops_[e] transforms epoch e into epoch e+1.
  struct Op {
    Edge edge;
    bool add = false;  // AddEdge vs UpdateEdgeProb
  };

  void LaneLoop(Lane* lane);
  StatusOr<uint64_t> Publish(const Op& op);

  ServeOptions options_;
  SnapshotStore store_;
  NodeId num_nodes_;  // fixed: the protocol cannot add nodes

  // Serializes the copy-mutate-publish writer path.
  std::mutex write_mu_;

  // Guards everything below (queue, stats, mutation log, lane bookkeeping).
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::deque<Pending> queue_;
  std::vector<Op> ops_;  // mutation log, indexed by source epoch
  size_t active_lanes_ = 0;
  bool stopping_ = false;
  bool joined_ = false;
  ServeStats stats_;

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
};

}  // namespace serve
}  // namespace relmax

#endif  // RELMAX_SERVE_SERVE_CORE_H_
