#ifndef RELMAX_SERVE_PROTOCOL_H_
#define RELMAX_SERVE_PROTOCOL_H_

#include <string>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "serve/serve_core.h"

namespace relmax {
namespace serve {

/// The `relmax serve` line protocol. One request per line, one response
/// line per request, in request order:
///
///   query S T        -> R(S, T) = 0.1234
///   update U V P     -> OK epoch=3 version=12
///   addedge U V P    -> OK epoch=4 version=13
///   epoch            -> epoch: 3 version=12 nodes=4 edges=2
///   stats            -> stats: ... (drains in-flight queries first)
///   quit             -> OK bye (ends this stream / connection)
///   shutdown         -> OK bye (also stops a socket listener)
///
/// Blank lines and `#` comments are skipped without consuming a response
/// slot. Every failure — unknown command, malformed number, out-of-range
/// node, shed by admission control — is a typed single-line error:
///
///   ERR InvalidArgument: unknown command: flood
///   ERR Unavailable: shed: admission queue full (1024 pending, cap 1024)
///
/// A query response is byte-identical to the `relmax batch` row for the
/// same pair, so scripted streams can be diffed against batch output.
enum class RequestKind {
  kQuery,
  kUpdate,
  kAddEdge,
  kStats,
  kEpoch,
  kQuit,
  kShutdown,
  kComment,  // blank line or '#' comment: no response slot
};

struct Request {
  RequestKind kind = RequestKind::kComment;
  NodeId s = 0;
  NodeId t = 0;
  double p = 0.0;
};

/// Parses one protocol line. Malformed input is a typed InvalidArgument
/// (never an abort): the daemon answers it and keeps serving.
StatusOr<Request> ParseRequest(const std::string& line);

/// "R(S, T) = 0.1234" — byte-identical to the `relmax batch` answer row.
std::string QueryResponse(NodeId s, NodeId t, double value);

/// "ERR <Code>: <message>". `status` must not be OK.
std::string ErrorResponse(const Status& status);

/// "OK epoch=E version=V" after a successful mutation publish.
std::string PublishResponse(uint64_t epoch, uint64_t version);

/// The single deterministic-after-drain `stats:` line.
std::string StatsResponse(const ServeStats& stats);

/// "epoch: E version=V nodes=N edges=M" for the current snapshot.
std::string EpochResponse(const GraphSnapshot& snapshot);

}  // namespace serve
}  // namespace relmax

#endif  // RELMAX_SERVE_PROTOCOL_H_
