#ifndef RELMAX_SERVE_SERVER_H_
#define RELMAX_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/serve_core.h"

namespace relmax {
namespace serve {

/// Reorder buffer that writes response lines to a stream in request order.
/// Each request claims the next sequence number; lane callbacks complete out
/// of order, and whichever Post() fills the head-of-line gap flushes the
/// whole ready run — no dedicated writer thread.
class ResponseSequencer {
 public:
  explicit ResponseSequencer(std::ostream& out) : out_(out) {}

  /// Claims the next response slot (call from the input thread, in order).
  uint64_t NextSeq() { return next_claim_++; }

  /// Delivers the response for `seq`; writes every consecutive ready line.
  void Post(uint64_t seq, const std::string& line);

  /// Blocks until every claimed response has been written. Call only from
  /// the input thread (the single caller of NextSeq).
  void WaitForAll();

 private:
  std::ostream& out_;
  uint64_t next_claim_ = 0;  // touched only by the input thread
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_write_ = 0;              // guarded by mu_
  std::map<uint64_t, std::string> pending_;  // guarded by mu_
};

/// The wire front-end: reads protocol lines from a stream (stdin or a
/// socket), dispatches them to a ServeCore, and writes one response line per
/// request in request order. Mutations and queries interleave exactly as
/// submitted: a query before an `update` line answers on the old epoch, a
/// query after it on the new one.
class Server {
 public:
  Server(UncertainGraph graph, const ServeOptions& options)
      : core_(std::move(graph), options) {}

  /// Serves one request stream until `quit`/`shutdown`/EOF; drains in-flight
  /// queries before returning. Returns the final stats (also printed by the
  /// `stats` command).
  ServeStats Run(std::istream& in, std::ostream& out);

  /// Serves sequential connections on a TCP port (0 picks an ephemeral
  /// port). `on_listen` (if set) receives the bound port once the listener
  /// is ready. Each connection runs the line protocol; `quit` ends the
  /// connection, `shutdown` also stops the listener.
  Status ServePort(uint16_t port,
                   const std::function<void(uint16_t)>& on_listen = nullptr);

  ServeCore& core() { return core_; }

 private:
  /// Returns false when the stream asked the whole server to shut down.
  bool RunStream(std::istream& in, std::ostream& out);

  ServeCore core_;
};

}  // namespace serve
}  // namespace relmax

#endif  // RELMAX_SERVE_SERVER_H_
