#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <utility>

namespace relmax {
namespace serve {

void ResponseSequencer::Post(uint64_t seq, const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[seq] = line;
  bool wrote = false;
  while (!pending_.empty() && pending_.begin()->first == next_write_) {
    out_ << pending_.begin()->second << "\n";
    pending_.erase(pending_.begin());
    ++next_write_;
    wrote = true;
  }
  if (wrote) {
    out_.flush();
    cv_.notify_all();
  }
}

void ResponseSequencer::WaitForAll() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return next_write_ == next_claim_; });
}

ServeStats Server::Run(std::istream& in, std::ostream& out) {
  RunStream(in, out);
  return core_.Stats();
}

bool Server::RunStream(std::istream& in, std::ostream& out) {
  ResponseSequencer seq(out);
  std::string line;
  bool keep_listening = true;
  bool done = false;
  while (!done && std::getline(in, line)) {
    const StatusOr<Request> parsed = ParseRequest(line);
    if (!parsed.ok()) {
      seq.Post(seq.NextSeq(), ErrorResponse(parsed.status()));
      continue;
    }
    const Request request = *parsed;
    switch (request.kind) {
      case RequestKind::kComment:
        break;  // no response slot consumed
      case RequestKind::kQuery: {
        const uint64_t slot = seq.NextSeq();
        const NodeId s = request.s;
        const NodeId t = request.t;
        core_.Submit(s, t,
                     [&seq, slot, s, t](const StatusOr<double>& result,
                                        uint64_t /*epoch*/) {
                       seq.Post(slot, result.ok()
                                          ? QueryResponse(s, t, *result)
                                          : ErrorResponse(result.status()));
                     });
        break;
      }
      case RequestKind::kUpdate:
      case RequestKind::kAddEdge: {
        // Handled inline on the input thread so the stream's mutation order
        // is the publish order: queries before this line were pinned to the
        // old epoch at submit time, queries after it see the new one.
        const uint64_t slot = seq.NextSeq();
        const StatusOr<uint64_t> epoch =
            request.kind == RequestKind::kUpdate
                ? core_.UpdateEdgeProb(request.s, request.t, request.p)
                : core_.AddEdge(request.s, request.t, request.p);
        if (epoch.ok()) {
          seq.Post(slot,
                   PublishResponse(*epoch, core_.CurrentSnapshot()->version()));
        } else {
          seq.Post(slot, ErrorResponse(epoch.status()));
        }
        break;
      }
      case RequestKind::kStats: {
        // Drain first so the line is deterministic for scripted streams:
        // everything submitted earlier is answered and accounted.
        const uint64_t slot = seq.NextSeq();
        core_.Drain();
        seq.Post(slot, StatsResponse(core_.Stats()));
        break;
      }
      case RequestKind::kEpoch:
        seq.Post(seq.NextSeq(), EpochResponse(*core_.CurrentSnapshot()));
        break;
      case RequestKind::kQuit:
      case RequestKind::kShutdown: {
        const uint64_t slot = seq.NextSeq();
        core_.Drain();
        seq.Post(slot, "OK bye");
        keep_listening = request.kind != RequestKind::kShutdown;
        done = true;
        break;
      }
    }
  }
  // EOF or quit: finish in-flight queries and flush every claimed response.
  core_.Drain();
  seq.WaitForAll();
  return keep_listening;
}

namespace {

/// A std::streambuf over a connected socket fd, bidirectional, so one
/// std::iostream serves the whole connection. Unbuffered-ish: sync() after
/// each response line keeps latency flat.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, in_, sizeof(in_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (Flush() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return Flush(); }

 private:
  int Flush() {
    const char* p = pbase();
    while (p < pptr()) {
      ssize_t n;
      do {
        n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Status Server::ServePort(uint16_t port,
                         const std::function<void(uint16_t)>& on_listen) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const Status status = Errno("bind");
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 16) < 0) {
    const Status status = Errno("listen");
    ::close(listen_fd);
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  std::memset(&bound, 0, sizeof(bound));
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    const Status status = Errno("getsockname");
    ::close(listen_fd);
    return status;
  }
  if (on_listen) on_listen(ntohs(bound.sin_port));

  // Sequential connections: one scripted client at a time, which keeps the
  // response order of each stream trivially well-defined. Concurrency lives
  // below this layer (lanes), not across sockets.
  bool keep_listening = true;
  while (keep_listening) {
    int conn_fd;
    do {
      conn_fd = ::accept(listen_fd, nullptr, nullptr);
    } while (conn_fd < 0 && errno == EINTR);
    if (conn_fd < 0) {
      const Status status = Errno("accept");
      ::close(listen_fd);
      return status;
    }
    FdStreambuf buf(conn_fd);
    std::iostream stream(&buf);
    keep_listening = RunStream(stream, stream);
    stream.flush();
    ::close(conn_fd);
  }
  ::close(listen_fd);
  return Status::Ok();
}

}  // namespace serve
}  // namespace relmax
