#include "serve/protocol.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace relmax {
namespace serve {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

Status BadArity(const std::string& command, size_t want, size_t got) {
  return Status::InvalidArgument(command + " takes " + std::to_string(want) +
                                 " argument(s), got " + std::to_string(got));
}

Status ParseNode(const std::string& command, const std::string& token,
                 NodeId* out) {
  size_t pos = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(token, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != token.size() || token[0] == '-') {
    return Status::InvalidArgument(command + ": bad node id '" + token + "'");
  }
  *out = static_cast<NodeId>(value);
  return Status::Ok();
}

Status ParseProb(const std::string& command, const std::string& token,
                 double* out) {
  size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != token.size()) {
    return Status::InvalidArgument(command + ": bad probability '" + token +
                                   "'");
  }
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(command + ": probability " + token +
                                   " outside [0, 1]");
  }
  *out = value;
  return Status::Ok();
}

StatusOr<Request> ParsePair(RequestKind kind, const std::string& command,
                            const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) return BadArity(command, 2, tokens.size() - 1);
  Request request;
  request.kind = kind;
  RELMAX_RETURN_IF_ERROR(ParseNode(command, tokens[1], &request.s));
  RELMAX_RETURN_IF_ERROR(ParseNode(command, tokens[2], &request.t));
  return request;
}

StatusOr<Request> ParseMutation(RequestKind kind, const std::string& command,
                                const std::vector<std::string>& tokens) {
  if (tokens.size() != 4) return BadArity(command, 3, tokens.size() - 1);
  Request request;
  request.kind = kind;
  RELMAX_RETURN_IF_ERROR(ParseNode(command, tokens[1], &request.s));
  RELMAX_RETURN_IF_ERROR(ParseNode(command, tokens[2], &request.t));
  RELMAX_RETURN_IF_ERROR(ParseProb(command, tokens[3], &request.p));
  return request;
}

StatusOr<Request> ParseBare(RequestKind kind, const std::string& command,
                            const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) return BadArity(command, 0, tokens.size() - 1);
  Request request;
  request.kind = kind;
  return request;
}

}  // namespace

StatusOr<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') {
    Request request;
    request.kind = RequestKind::kComment;
    return request;
  }
  const std::string& command = tokens[0];
  if (command == "query") {
    return ParsePair(RequestKind::kQuery, command, tokens);
  }
  if (command == "update") {
    return ParseMutation(RequestKind::kUpdate, command, tokens);
  }
  if (command == "addedge") {
    return ParseMutation(RequestKind::kAddEdge, command, tokens);
  }
  if (command == "stats") {
    return ParseBare(RequestKind::kStats, command, tokens);
  }
  if (command == "epoch") {
    return ParseBare(RequestKind::kEpoch, command, tokens);
  }
  if (command == "quit") return ParseBare(RequestKind::kQuit, command, tokens);
  if (command == "shutdown") {
    return ParseBare(RequestKind::kShutdown, command, tokens);
  }
  return Status::InvalidArgument("unknown command: " + command);
}

std::string QueryResponse(NodeId s, NodeId t, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "R(%u, %u) = %.4f", s, t, value);
  return buf;
}

std::string ErrorResponse(const Status& status) {
  return "ERR " + status.ToString();
}

std::string PublishResponse(uint64_t epoch, uint64_t version) {
  return "OK epoch=" + std::to_string(epoch) +
         " version=" + std::to_string(version);
}

std::string StatsResponse(const ServeStats& stats) {
  std::ostringstream out;
  out << "stats: submitted=" << stats.submitted
      << " answered=" << stats.answered << " shed=" << stats.shed
      << " rejected=" << stats.rejected << " batches=" << stats.batches
      << " max_window=" << stats.max_window << " updates=" << stats.updates
      << " epoch=" << stats.epoch << " version=" << stats.graph_version
      << " floods=" << stats.floods << " index_answers=" << stats.index_answers
      << " fallback_estimates=" << stats.fallback_estimates
      << " cache_hits=" << stats.cache_hits
      << " cache_entries=" << stats.cache_entries
      << " cache_evictions_epoch=" << stats.cache_evictions_epoch
      << " cache_evictions_total=" << stats.cache_evictions_total;
  return out.str();
}

std::string EpochResponse(const GraphSnapshot& snapshot) {
  return "epoch: " + std::to_string(snapshot.epoch()) +
         " version=" + std::to_string(snapshot.version()) +
         " nodes=" + std::to_string(snapshot.graph().num_nodes()) +
         " edges=" + std::to_string(snapshot.graph().num_edges());
}

}  // namespace serve
}  // namespace relmax
