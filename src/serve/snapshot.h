#ifndef RELMAX_SERVE_SNAPSHOT_H_
#define RELMAX_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/uncertain_graph.h"

namespace relmax {
namespace serve {

/// One immutable published world-state: a private copy of the uncertain
/// graph frozen at publish time, tagged with the serving epoch and the
/// graph's own version() counter. Readers pin a snapshot by holding its
/// shared_ptr and keep answering on it even while newer epochs are
/// published; an old epoch dies when its last reader drops it.
class GraphSnapshot {
 public:
  GraphSnapshot(uint64_t epoch, UncertainGraph graph)
      : epoch_(epoch), graph_(std::move(graph)), version_(graph_.version()) {}

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  /// Serving epoch: 0 for the boot graph, +1 per published mutation.
  uint64_t epoch() const { return epoch_; }
  /// The frozen graph's UncertainGraph::version() — the counter every
  /// QueryEngine keys its result cache on. A copy preserves the source's
  /// version and each mutation bumps it, so replicas that replay the same
  /// mutation sequence land on this exact value.
  uint64_t version() const { return version_; }
  const UncertainGraph& graph() const { return graph_; }

 private:
  uint64_t epoch_;
  UncertainGraph graph_;
  uint64_t version_;
};

/// Atomically publishable current snapshot. Publish() swaps the current
/// shared_ptr under a mutex held for the duration of a pointer copy, so a
/// republish never blocks or invalidates in-flight readers.
class SnapshotStore {
 public:
  explicit SnapshotStore(UncertainGraph initial)
      : current_(std::make_shared<const GraphSnapshot>(0, std::move(initial))) {
  }

  std::shared_ptr<const GraphSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Publishes `next` as epoch current+1 and returns the new snapshot.
  std::shared_ptr<const GraphSnapshot> Publish(UncertainGraph next) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::make_shared<const GraphSnapshot>(current_->epoch() + 1,
                                                     std::move(next));
    return current_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const GraphSnapshot> current_;
};

}  // namespace serve
}  // namespace relmax

#endif  // RELMAX_SERVE_SNAPSHOT_H_
