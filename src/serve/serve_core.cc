#include "serve/serve_core.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"

namespace relmax {
namespace serve {

ServeCore::ServeCore(UncertainGraph initial, const ServeOptions& options)
    : options_(options),
      store_(std::move(initial)),
      num_nodes_(store_.Current()->graph().num_nodes()) {
  RELMAX_CHECK(options_.lanes >= 1);
  RELMAX_CHECK(options_.window_us >= 0);
  RELMAX_CHECK(options_.max_batch >= 1);
  const std::shared_ptr<const GraphSnapshot> boot = store_.Current();
  stats_.epoch = boot->epoch();
  stats_.graph_version = boot->version();
  lanes_.reserve(static_cast<size_t>(options_.lanes));
  for (int i = 0; i < options_.lanes; ++i) {
    // Only lane 0 keeps the persistent index file: one writer per path, so
    // republishes never race. Other lanes rebuild in memory; their answers
    // are bit-identical either way (pure function of the determinism tuple).
    QueryEngineOptions engine_options = options_.engine;
    if (i > 0) engine_options.index_file.clear();
    lanes_.push_back(std::make_unique<Lane>(boot->graph(), engine_options));
  }
  threads_.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    threads_.emplace_back([this, lane = lane.get()] { LaneLoop(lane); });
  }
}

ServeCore::~ServeCore() { Shutdown(); }

void ServeCore::Submit(NodeId s, NodeId t, QueryCallback done) {
  // The protocol cannot grow the node set, so validation needs no snapshot.
  if (s >= num_nodes_ || t >= num_nodes_) {
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      epoch = stats_.epoch;
    }
    done(Status::InvalidArgument(
             "query node out of range: (" + std::to_string(s) + ", " +
             std::to_string(t) + ") with " + std::to_string(num_nodes_) +
             " nodes"),
         epoch);
    return;
  }
  uint64_t epoch;
  Status shed = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Pin the epoch under mu_ (it is updated under mu_ on publish), so the
    // queue's epochs are non-decreasing in arrival order — the invariant
    // that lets lane replicas only ever roll forward.
    epoch = stats_.epoch;
    if (stopping_) {
      ++stats_.shed;
      shed = Status::Unavailable("shed: daemon is shutting down");
    } else if (queue_.size() >= options_.max_queue) {
      ++stats_.shed;
      shed = Status::Unavailable(
          "shed: admission queue full (" + std::to_string(queue_.size()) +
          " pending, cap " + std::to_string(options_.max_queue) + ")");
    } else {
      ++stats_.submitted;
      queue_.push_back(Pending{StQuery{s, t}, epoch, std::move(done)});
    }
  }
  if (!shed.ok()) {
    done(shed, epoch);
    return;
  }
  work_cv_.notify_one();
}

StatusOr<uint64_t> ServeCore::Publish(const Op& op) {
  // Copy-mutate-publish, serialized across writers. Readers never wait:
  // queries pinned to the previous epoch keep answering on replicas that
  // have not replayed the new op yet.
  std::lock_guard<std::mutex> write_lock(write_mu_);
  UncertainGraph next = store_.Current()->graph();
  const Status applied =
      op.add ? next.AddEdge(op.edge.src, op.edge.dst, op.edge.prob)
             : next.UpdateEdgeProb(op.edge.src, op.edge.dst, op.edge.prob);
  if (!applied.ok()) return applied;
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<const GraphSnapshot> snapshot =
      store_.Publish(std::move(next));
  ops_.push_back(op);
  RELMAX_CHECK(ops_.size() == snapshot->epoch());
  ++stats_.updates;
  stats_.epoch = snapshot->epoch();
  stats_.graph_version = snapshot->version();
  // Epoch-scoped result-cache stats reset with the epoch: the engines that
  // will serve it start from an empty cache, so carrying the previous
  // epoch's eviction count (or entry count) would describe caches that no
  // longer answer anything.
  stats_.cache_evictions_epoch = 0;
  stats_.cache_entries = 0;
  return snapshot->epoch();
}

StatusOr<uint64_t> ServeCore::UpdateEdgeProb(NodeId u, NodeId v, double p) {
  return Publish(Op{Edge{u, v, p}, /*add=*/false});
}

StatusOr<uint64_t> ServeCore::AddEdge(NodeId u, NodeId v, double p) {
  return Publish(Op{Edge{u, v, p}, /*add=*/true});
}

void ServeCore::LaneLoop(Lane* lane) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Bounded-delay micro-batch: wait up to window_us for more arrivals so
    // one shared flood can serve them all; a full window or shutdown cuts
    // the wait short. Skipped while draining a shutdown backlog.
    if (options_.window_us > 0 && !stopping_ &&
        queue_.size() < options_.max_batch) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.window_us);
      while (!stopping_ && queue_.size() < options_.max_batch) {
        if (work_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (queue_.empty()) continue;  // another lane drained it
    }
    // Take the longest same-epoch prefix (up to max_batch): one window is
    // answered by one engine over one graph state.
    const uint64_t epoch = queue_.front().epoch;
    std::vector<Pending> window;
    while (!queue_.empty() && window.size() < options_.max_batch &&
           queue_.front().epoch == epoch) {
      window.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    RELMAX_CHECK(epoch >= lane->epoch);  // queue epochs are non-decreasing
    const std::vector<Op> replay(ops_.begin() + lane->epoch,
                                 ops_.begin() + epoch);
    ++active_lanes_;
    lock.unlock();

    // Roll the private replica forward. The long-lived engine sees the
    // version bump on its next Answer() and runs the incremental index
    // maintenance path instead of rebuilding (when the index is enabled).
    for (const Op& op : replay) {
      const Status applied =
          op.add
              ? lane->graph.AddEdge(op.edge.src, op.edge.dst, op.edge.prob)
              : lane->graph.UpdateEdgeProb(op.edge.src, op.edge.dst,
                                           op.edge.prob);
      RELMAX_CHECK(applied.ok());  // already applied cleanly at publish
    }
    lane->epoch = epoch;

    QuerySet set;
    for (const Pending& p : window) set.AddSt(p.query.s, p.query.t);
    const StatusOr<BatchResult> result = lane->engine.Answer(set);
    for (size_t i = 0; i < window.size(); ++i) {
      if (result.ok()) {
        window[i].done(result->st_values[i], epoch);
      } else {
        window[i].done(result.status(), epoch);
      }
    }

    lock.lock();
    ++stats_.batches;
    stats_.max_window = std::max(stats_.max_window, window.size());
    if (result.ok()) {
      stats_.answered += window.size();
      stats_.floods += result->stats.floods;
      stats_.index_answers += result->stats.index_answers;
      stats_.fallback_estimates += result->stats.fallback_estimates;
      stats_.cache_hits += result->stats.cache_hits;
      stats_.cache_evictions_total += result->stats.cache_evictions;
      // Evictions are epoch-scoped only while this window's epoch is still
      // the published one; a straggler window on an old epoch must not be
      // charged to the live cache.
      if (epoch == stats_.epoch) {
        stats_.cache_evictions_epoch += result->stats.cache_evictions;
        if (lane == lanes_.front().get()) {
          stats_.cache_entries = lane->engine.cache_size();
        }
      }
    }
    --active_lanes_;
    drain_cv_.notify_all();
  }
}

ServeStats ServeCore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ServeCore::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock,
                 [this] { return queue_.empty() && active_lanes_ == 0; });
}

void ServeCore::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;  // claimed: this caller runs the join below
    stopping_ = true;
  }
  work_cv_.notify_all();
  Drain();
  work_cv_.notify_all();  // wake lanes to observe stopping_ with empty queue
  for (std::thread& t : threads_) t.join();
}

}  // namespace serve
}  // namespace relmax
