#ifndef RELMAX_COMMON_TABLE_H_
#define RELMAX_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace relmax {

/// ASCII table writer used by the benchmark harness to print paper-shaped
/// rows (reliability gains, running times, memory usage) with aligned
/// columns.
///
/// Usage:
///   TablePrinter t({"Method", "Gain", "Time (s)"});
///   t.AddRow({"BE", Fmt(0.33), Fmt(22.1)});
///   t.Print();
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (headers, separator, rows) to a string.
  std::string ToString() const;

  /// Prints the rendered table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` fractional digits (default 3).
std::string Fmt(double value, int precision = 3);

/// Formats an integral count.
std::string Fmt(int64_t value);
inline std::string Fmt(int value) { return Fmt(static_cast<int64_t>(value)); }
inline std::string Fmt(uint32_t value) {
  return Fmt(static_cast<int64_t>(value));
}
inline std::string Fmt(size_t value) {
  return Fmt(static_cast<int64_t>(value));
}

}  // namespace relmax

#endif  // RELMAX_COMMON_TABLE_H_
