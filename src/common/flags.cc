#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace relmax {
namespace {

std::string EnvName(const std::string& flag) {
  std::string out = "RELMAX_";
  for (char ch : flag) {
    if (ch == '-') {
      out += '_';
    } else {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
  }
  return out;
}

[[noreturn]] void Usage(const char* argv0, const char* bad) {
  std::fprintf(stderr,
               "%s: unrecognized argument '%s'\n"
               "flags take the form --name=value, --name value, or --name\n",
               argv0, bad);
  std::exit(2);
}

}  // namespace

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) Usage(argv[0], arg);
    std::string body = arg + 2;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

const std::string* Flags::Lookup(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) return &it->second;
  auto cached = env_cache_.find(name);
  if (cached != env_cache_.end()) return &cached->second;
  const char* env = std::getenv(EnvName(name).c_str());
  if (env != nullptr) {
    auto [inserted, _] = env_cache_.emplace(name, env);
    return &inserted->second;
  }
  return nullptr;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const std::string* v = Lookup(name);
  return v == nullptr ? def : std::strtoll(v->c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  const std::string* v = Lookup(name);
  return v == nullptr ? def : std::strtod(v->c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const std::string* v = Lookup(name);
  return v == nullptr ? def : *v;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const std::string* v = Lookup(name);
  if (v == nullptr) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

bool Flags::Has(const std::string& name) const {
  return Lookup(name) != nullptr;
}

}  // namespace relmax
