#ifndef RELMAX_COMMON_LOGGING_H_
#define RELMAX_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace relmax {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "RELMAX_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal
}  // namespace relmax

/// Fatal invariant check, enabled in all build modes. Use for conditions that
/// indicate a bug in the caller (contract violations), never for recoverable
/// errors — those return Status.
#define RELMAX_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond))                                                   \
      ::relmax::internal::CheckFailed(#cond, __FILE__, __LINE__);  \
  } while (0)

/// Debug-only invariant check (compiled out with NDEBUG).
#ifdef NDEBUG
#define RELMAX_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define RELMAX_DCHECK(cond) RELMAX_CHECK(cond)
#endif

#endif  // RELMAX_COMMON_LOGGING_H_
