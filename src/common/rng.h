#ifndef RELMAX_COMMON_RNG_H_
#define RELMAX_COMMON_RNG_H_

#include <cstdint>
#include <limits>

#include "common/logging.h"

namespace relmax {

/// Deterministic, splittable pseudo-random number generator.
///
/// Internally xoshiro256** seeded through SplitMix64. Every stochastic
/// component of the library (sampling, generators, query selection) draws from
/// an explicitly seeded Rng so that tests, benches, and examples are exactly
/// reproducible for a fixed seed. `Fork()` derives an independent child stream,
/// which lets parallel or repeated estimations decorrelate without sharing
/// mutable state.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Distinct seeds give streams that
  /// are independent for all practical purposes.
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Re-initializes the state from `seed` as if freshly constructed.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextUint64(uint64_t bound) {
    RELMAX_DCHECK(bound > 0);
    // Lemire's nearly-divisionless bounded rejection sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    RELMAX_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial: true with probability p.
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Standard normal via Box–Muller (single value; the pair's twin is
  /// discarded to keep the state trajectory simple and reproducible).
  double NextGaussian() {
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    constexpr double kTwoPi = 6.283185307179586;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(kTwoPi * u2);
  }

  /// Derives an independent child generator. The parent advances one step, so
  /// repeated forks yield distinct children.
  Rng Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ULL); }

  /// UniformRandomBitGenerator interface for <algorithm> shuffles.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return Next(); }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace relmax

#endif  // RELMAX_COMMON_RNG_H_
