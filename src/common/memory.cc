#include "common/memory.h"

#include <cstdio>
#include <cstring>

namespace relmax {
namespace {

// Parses a "VmXXX:   12345 kB" line value from /proc/self/status.
size_t ReadProcStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len, ": %llu", &value) == 1) kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

size_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS"); }

size_t PeakRssBytes() { return ReadProcStatusKb("VmHWM"); }

}  // namespace relmax
