#ifndef RELMAX_COMMON_FLAGS_H_
#define RELMAX_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace relmax {

/// Minimal command-line flag parser for the bench harness and examples.
///
/// Accepts `--name=value` and `--name value` forms plus bare `--name`
/// booleans. Unknown positional arguments are rejected so typos fail loudly.
/// Values can also be supplied via environment variables named
/// `RELMAX_<NAME>` (upper-cased, dashes to underscores); explicit flags win.
class Flags {
 public:
  /// Parses argv. Aborts with a usage message on malformed input.
  static Flags Parse(int argc, char** argv);

  /// Integer flag with default.
  int64_t GetInt(const std::string& name, int64_t def) const;
  /// Floating-point flag with default.
  double GetDouble(const std::string& name, double def) const;
  /// String flag with default.
  std::string GetString(const std::string& name, const std::string& def) const;
  /// Boolean flag: present without value, or =true/=false/=1/=0.
  bool GetBool(const std::string& name, bool def) const;

  bool Has(const std::string& name) const;

 private:
  // Returns flag value, env value, or nullptr.
  const std::string* Lookup(const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, std::string> env_cache_;
};

}  // namespace relmax

#endif  // RELMAX_COMMON_FLAGS_H_
