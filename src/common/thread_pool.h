#ifndef RELMAX_COMMON_THREAD_POOL_H_
#define RELMAX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relmax {

/// Fixed-size worker pool with a single FIFO task queue.
///
/// The pool exists so that the batched sampling executors (sampling/parallel.h)
/// can fan work out without paying thread creation on every estimate — solver
/// loops issue thousands of small estimates per query. Tasks must not block on
/// other tasks of the same pool; the executors keep the submitting thread
/// working alongside the pool, so a full queue can never deadlock a caller.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; any worker may pick it up.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing (not merely
  /// been dequeued). New tasks submitted while waiting extend the wait.
  void Wait();

  /// Runs one queued task on the calling thread, if any is pending; returns
  /// whether a task was run. Lets a thread that is waiting on a subset of
  /// tasks help drain the queue instead of blocking, which keeps nested
  /// fan-outs deadlock-free.
  bool TryRunOne();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of hardware threads, with a sane floor of 1.
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;   // signals workers
  std::condition_variable all_done_;     // signals Wait()
  std::deque<std::function<void()>> queue_;
  size_t pending_ = 0;  // queued + currently executing tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace relmax

#endif  // RELMAX_COMMON_THREAD_POOL_H_
