#ifndef RELMAX_COMMON_STATUS_H_
#define RELMAX_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace relmax {

/// Error codes for fallible library operations. Library code never throws;
/// recoverable failures are reported through Status / StatusOr (RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kInternal,
  kIoError,
  kUnavailable,
};

/// Lightweight success-or-error result for operations with no payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed result is a programmer error (DCHECK).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value — enables `return value;` in StatusOr functions.
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. `status.ok()` must be false.
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT
    RELMAX_DCHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& value() const& {
    RELMAX_DCHECK(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    RELMAX_DCHECK(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    RELMAX_DCHECK(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status to the caller.
#define RELMAX_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::relmax::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace relmax

#endif  // RELMAX_COMMON_STATUS_H_
