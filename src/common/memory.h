#ifndef RELMAX_COMMON_MEMORY_H_
#define RELMAX_COMMON_MEMORY_H_

#include <cstddef>

namespace relmax {

/// Current resident set size of this process in bytes (Linux /proc based;
/// returns 0 where unavailable).
size_t CurrentRssBytes();

/// Peak resident set size of this process in bytes (Linux /proc based;
/// returns 0 where unavailable). Reported in the paper's memory columns.
size_t PeakRssBytes();

/// Convenience: bytes -> fractional GiB for table output.
inline double BytesToGiB(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
}

/// Words in a world-indexed bitset: ceil(num_samples / 64).
inline size_t WorldWords(int num_samples) {
  return (static_cast<size_t>(num_samples) + 63) / 64;
}

/// Logical bytes of a `rows` × `num_samples` world bit-bank (lane padding
/// excluded) — the quantity the shared-world footprint budgets meter, and
/// what WorldView::ShardBankBytes reports per shard.
inline size_t BankBytes(size_t rows, int num_samples) {
  return rows * WorldWords(num_samples) * 8;
}

/// Balanced per-shard row estimate for admission decisions: ceil(rows /
/// num_shards). The partitioner's balance guard keeps real shards near this,
/// and at num_shards == 1 it degenerates to the old whole-bank check.
inline size_t BalancedShardRows(size_t rows, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  return (rows + static_cast<size_t>(num_shards) - 1) /
         static_cast<size_t>(num_shards);
}

}  // namespace relmax

#endif  // RELMAX_COMMON_MEMORY_H_
