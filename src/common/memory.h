#ifndef RELMAX_COMMON_MEMORY_H_
#define RELMAX_COMMON_MEMORY_H_

#include <cstddef>

namespace relmax {

/// Current resident set size of this process in bytes (Linux /proc based;
/// returns 0 where unavailable).
size_t CurrentRssBytes();

/// Peak resident set size of this process in bytes (Linux /proc based;
/// returns 0 where unavailable). Reported in the paper's memory columns.
size_t PeakRssBytes();

/// Convenience: bytes -> fractional GiB for table output.
inline double BytesToGiB(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace relmax

#endif  // RELMAX_COMMON_MEMORY_H_
