#ifndef RELMAX_COMMON_TIMER_H_
#define RELMAX_COMMON_TIMER_H_

#include <chrono>

namespace relmax {

/// Monotonic wall-clock stopwatch used by the bench harness and the solvers'
/// timing breakdowns.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace relmax

#endif  // RELMAX_COMMON_TIMER_H_
