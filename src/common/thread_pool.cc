#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace relmax {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) all_done_.notify_all();
  }
  return true;
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace relmax
