#include "common/table.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace relmax {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RELMAX_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  RELMAX_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    out += " |\n";
  };

  append_row(headers_);
  for (size_t c = 0; c < widths.size(); ++c) {
    out += (c == 0) ? "|-" : "-|-";
    out.append(widths[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Fmt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace relmax
