#ifndef RELMAX_PARTITION_PARTITIONER_H_
#define RELMAX_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// Hard ceiling on shards: per-node "which shards touch me" bookkeeping is a
/// single uint64_t bitmask, so boundary exchange stays one word per node.
inline constexpr int kMaxPartitionShards = 64;

struct PartitionOptions {
  /// Requested shard count; clamped to [1, min(num_nodes,
  /// kMaxPartitionShards)] so every shard owns at least one node.
  int num_shards = 1;
  /// Seed for the BFS growth phase's seed-node selection. The whole
  /// partition is a pure function of (graph shape, num_shards, seed).
  uint64_t seed = 42;
  /// Label-propagation refinement sweeps after BFS growth. Each sweep walks
  /// nodes in id order and moves a node to its majority neighbor shard when
  /// that strictly reduces the cut, under a balance guard.
  int refine_rounds = 4;
};

/// A deterministic edge-cut partition: node→shard map plus the boundary
/// structure shard-local algorithms need (which nodes straddle shards, which
/// shards touch each node). Produced once per bank build; immutable after.
struct Partition {
  /// Actual shard count after clamping (see PartitionOptions::num_shards).
  int num_shards = 1;
  /// node -> owning shard, in [0, num_shards).
  std::vector<uint32_t> node_shard;
  /// edge -> owning shard: min(node_shard[src], node_shard[dst]). Cut edges
  /// are owned by the lower-numbered endpoint shard — documented so the
  /// sharded bank's storage layout is reproducible from the node map alone.
  std::vector<uint32_t> edge_shard;
  /// Per shard, its owned edges in ascending edge-id order.
  std::vector<std::vector<EdgeId>> shard_edges;
  /// Per shard, sorted nodes that touch edges of more than one shard — the
  /// nodes whose reach lanes are swapped during boundary exchange.
  std::vector<std::vector<NodeId>> boundary_nodes;
  /// Bit k set iff the node is incident to an edge owned by shard k.
  /// Isolated nodes carry an empty mask.
  std::vector<uint64_t> node_shard_mask;
  /// Edges whose endpoints live in different shards.
  size_t cut_edges = 0;
  /// True when some shard ended up owning zero edges (more shards than the
  /// edge set can feed). PartitionGraph warns once per process on stderr.
  bool has_empty_shard = false;
};

/// BFS/label-propagation edge-cut partitioner. Deterministic for a given
/// (graph, options): seed nodes are drawn from Rng(options.seed), grown by a
/// single-queue multi-source BFS (nodes claimed in pop order, neighbors in
/// CSR arc order, both arc directions), leftover disconnected nodes are
/// assigned to the smallest shard, and `refine_rounds` label-propagation
/// sweeps shrink the cut without unbalancing (no shard may exceed
/// ~1.25 · n / num_shards nodes or be emptied).
Partition PartitionGraph(const UncertainGraph& g,
                         const PartitionOptions& options);

/// Derives the full partition structure — edge ownership, per-shard edge
/// lists, boundary nodes, shard masks — from a node→shard map alone.
/// PartitionGraph's growth/refinement phases produce the map and then call
/// this; a saved index file (index/index_io.h) stores only `node_shard` and
/// rebuilds the rest here on load, which works because every derived field
/// is a pure function of (graph shape, node_shard). Each entry must be in
/// [0, num_shards) and node_shard.size() must equal g.num_nodes() (CHECK —
/// callers deserializing untrusted data validate first).
Partition PartitionFromNodeShard(const UncertainGraph& g, int num_shards,
                                 std::vector<uint32_t> node_shard);

}  // namespace relmax

#endif  // RELMAX_PARTITION_PARTITIONER_H_
