#include "partition/partitioner.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace relmax {
namespace {

constexpr uint32_t kNoShard = UINT32_MAX;

std::atomic<bool> g_warned_empty_shard{false};

/// Visits u's neighbors over both arc directions (out + in when directed;
/// undirected CSRs already store both arc copies in the out view).
template <typename Fn>
void ForEachNeighbor(const UncertainGraph& g, NodeId u, Fn&& fn) {
  const CsrView out = g.OutCsr();
  for (size_t a = out.begin(u); a < out.end(u); ++a) fn(out.heads[a]);
  if (g.directed()) {
    const CsrView in = g.InCsr();
    for (size_t a = in.begin(u); a < in.end(u); ++a) fn(in.heads[a]);
  }
}

}  // namespace

Partition PartitionGraph(const UncertainGraph& g,
                         const PartitionOptions& options) {
  const NodeId n = g.num_nodes();

  int shards = std::min(options.num_shards, kMaxPartitionShards);
  if (shards < 1) shards = 1;
  if (n > 0 && static_cast<NodeId>(shards) > n) shards = static_cast<int>(n);

  std::vector<uint32_t> node_shard(n, 0);

  if (shards > 1) {
    // Phase 1: draw `shards` distinct seed nodes (rejection sampling off a
    // counter-free stream keeps this a pure function of options.seed).
    Rng rng(options.seed);
    std::vector<uint8_t> chosen(n, 0);
    std::vector<NodeId> seeds;
    seeds.reserve(shards);
    while (seeds.size() < static_cast<size_t>(shards)) {
      const NodeId v = static_cast<NodeId>(rng.NextUint64(n));
      if (!chosen[v]) {
        chosen[v] = 1;
        seeds.push_back(v);
      }
    }

    // Phase 2: single-queue multi-source BFS. Nodes are claimed in pop
    // order with neighbors visited in CSR arc order, so growth is
    // deterministic; ties go to whichever seed reaches a node first. Claims
    // stop at the balance cap — a full shard's frontier leaves nodes
    // unclaimed for slower-growing shards (or the leftover pass) to take,
    // so no single seed can sweep a whole sparse component.
    const size_t max_size = std::max<size_t>(
        1, (static_cast<size_t>(n) * 5 + 4 * shards - 1) / (4 * shards));
    node_shard.assign(n, kNoShard);
    std::vector<NodeId> queue;
    queue.reserve(n);
    std::vector<size_t> shard_size(shards, 0);
    for (int k = 0; k < shards; ++k) {
      node_shard[seeds[k]] = static_cast<uint32_t>(k);
      ++shard_size[k];
      queue.push_back(seeds[k]);
    }
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      const uint32_t k = node_shard[u];
      if (shard_size[k] >= max_size) continue;
      ForEachNeighbor(g, u, [&](NodeId v) {
        if (node_shard[v] == kNoShard && shard_size[k] < max_size) {
          node_shard[v] = k;
          ++shard_size[k];
          queue.push_back(v);
        }
      });
    }
    // Disconnected leftovers go to the currently-smallest shard (ties to
    // the lowest index), walked in node-id order for determinism.
    for (NodeId v = 0; v < n; ++v) {
      if (node_shard[v] != kNoShard) continue;
      const auto smallest =
          std::min_element(shard_size.begin(), shard_size.end());
      const uint32_t k =
          static_cast<uint32_t>(smallest - shard_size.begin());
      node_shard[v] = k;
      ++shard_size[k];
    }

    // Phase 3: label-propagation refinement. Move a node to its majority
    // neighbor shard when that strictly beats staying, under the same
    // balance guard (no shard above ~1.25·n/shards nodes, none emptied).
    std::array<uint32_t, kMaxPartitionShards> votes{};
    for (int round = 0; round < options.refine_rounds; ++round) {
      bool moved = false;
      for (NodeId v = 0; v < n; ++v) {
        votes.fill(0);
        bool any = false;
        ForEachNeighbor(g, v, [&](NodeId u) {
          if (u != v) {
            ++votes[node_shard[u]];
            any = true;
          }
        });
        if (!any) continue;
        const uint32_t cur = node_shard[v];
        uint32_t best = cur;
        for (int k = 0; k < shards; ++k) {
          if (votes[k] > votes[best]) best = static_cast<uint32_t>(k);
        }
        if (best == cur || votes[best] <= votes[cur]) continue;
        if (shard_size[best] + 1 > max_size || shard_size[cur] <= 1) continue;
        node_shard[v] = best;
        --shard_size[cur];
        ++shard_size[best];
        moved = true;
      }
      if (!moved) break;
    }
  }

  return PartitionFromNodeShard(g, shards, std::move(node_shard));
}

Partition PartitionFromNodeShard(const UncertainGraph& g, int num_shards,
                                 std::vector<uint32_t> node_shard) {
  const NodeId n = g.num_nodes();
  const size_t m = g.num_edges();
  RELMAX_CHECK(num_shards >= 1 && num_shards <= kMaxPartitionShards);
  RELMAX_CHECK(node_shard.size() == static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    RELMAX_CHECK(node_shard[v] < static_cast<uint32_t>(num_shards));
  }

  Partition part;
  part.num_shards = num_shards;
  part.node_shard = std::move(node_shard);
  part.edge_shard.assign(m, 0);
  part.shard_edges.resize(num_shards);
  part.boundary_nodes.resize(num_shards);
  part.node_shard_mask.assign(n, 0);

  // Edge ownership, boundary masks, and per-shard edge lists. Edge-id order
  // makes every shard_edges list ascending by construction.
  const std::vector<Edge>& edges = g.EdgesById();
  for (EdgeId e = 0; e < m; ++e) {
    const uint32_t ks = part.node_shard[edges[e].src];
    const uint32_t kt = part.node_shard[edges[e].dst];
    const uint32_t owner = std::min(ks, kt);
    part.edge_shard[e] = owner;
    part.shard_edges[owner].push_back(e);
    if (ks != kt) ++part.cut_edges;
    part.node_shard_mask[edges[e].src] |= uint64_t{1} << owner;
    part.node_shard_mask[edges[e].dst] |= uint64_t{1} << owner;
  }
  for (NodeId v = 0; v < n; ++v) {
    uint64_t mask = part.node_shard_mask[v];
    if (__builtin_popcountll(mask) < 2) continue;
    while (mask != 0) {
      const int k = __builtin_ctzll(mask);
      mask &= mask - 1;
      part.boundary_nodes[k].push_back(v);
    }
  }

  int empty = 0;
  for (int k = 0; k < num_shards; ++k) {
    if (part.shard_edges[k].empty()) ++empty;
  }
  if (empty > 0) {
    part.has_empty_shard = true;
    if (!g_warned_empty_shard.exchange(true)) {
      std::fprintf(stderr,
                   "relmax: partitioner: %d of %d shards own no edges "
                   "(graph too small for the requested --partitions); they "
                   "contribute nothing but bookkeeping\n",
                   empty, num_shards);
    }
  }
  return part;
}

}  // namespace relmax
