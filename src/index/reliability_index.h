#ifndef RELMAX_INDEX_RELIABILITY_INDEX_H_
#define RELMAX_INDEX_RELIABILITY_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/uncertain_graph.h"
#include "sampling/world_view.h"

namespace relmax {

/// Offline per-world connectivity index over a WorldView: answers
/// R(s, t) = |{worlds where t is reachable from s}| / Z with **no flood at
/// query time**.
///
/// The flood-per-source engine (PR 5) pays O(E · Z/64 · passes) per distinct
/// source; under random-pair workloads almost every query is a new source and
/// batching amortizes nothing. Following the indexing insight of Sasaki et
/// al. (PAPERS.md) — precompute structure over the sampled worlds once,
/// answer repeated queries from the digest — this index labels every world's
/// connectivity offline:
///
/// **Undirected:** each world w gets exact connected-component labels
/// (union-find per world at build time). Labels are stored as B =
/// ceil(log2 n) *bitplanes* packed across 64-world lanes: plane b of node v
/// is a Z-bit row whose bit w is bit b of v's component label in world w.
/// Then "s and t share a component in world w" for all Z worlds at once is
/// `~OR_b(plane_b(s) XOR plane_b(t))`, a B · Z/64 word sweep ending in a
/// popcount — O(Z/64 · log n) per query, no graph traversal.
///
/// **Directed:** per-world SCC condensation labels (iterative Tarjan per
/// world), stored in the same bitplane layout. SCC equality gives the worlds
/// where s and t are mutually reachable; when that covers every world the
/// query is answered outright (R = 1). Residual one-way reachability comes
/// from a lazily cached per-source reach row: the first query from source s
/// runs one word-parallel flood over the bank and memoizes all n target rows,
/// so subsequent queries from s are single-row popcounts. Rows are evicted
/// FIFO under `Options::max_reach_bytes`.
///
/// **Bit purity:** every answer equals the shared-flood path over the same
/// bank, bit for bit — components/SCCs and floods are exact per world, so the
/// connected-worlds bitsets are identical, not just statistically close.
///
/// **Incremental maintenance:** after a graph mutation the owner rebuilds the
/// bank (bank bits are a pure function of (probs, Z, seed), so the rebuilt
/// bank is bit-identical to a fresh engine's) and calls ApplyBankUpdate with
/// the affected-world mask from DiffWorlds — the XOR of old and new edge
/// rows. Only the affected worlds' label columns are recomputed; unaffected
/// worlds keep their labels untouched. A single-edge probability nudge
/// typically flips a small fraction of worlds, so relabeling — the expensive
/// part — scales with the size of the change, not with Z.
///
/// Determinism: labels are filled by the counter-seeded sharded executor
/// (shard i owns bit-word i of every plane), and per-world labeling is
/// canonical (components numbered by first appearance in node order), so the
/// whole index is a pure function of the bank bits — bit-identical for any
/// num_threads. Queries never depend on cache state: eviction changes which
/// floods re-run, never their results.
///
/// **Partition-sharded banks:** indexing works over any WorldView. For an
/// undirected sharded bank the per-world union-find runs shard-locally first
/// (each partition shard unions only its own intra-shard edges) and a
/// boundary merge pass over the cut edges then joins components across
/// shards; since union-find's final partition is order-independent and the
/// remap is canonical, the labels are bit-identical to the flat bank's.
/// Directed SCC labeling does not decompose along an edge cut (an SCC can
/// thread through several shards), so it keeps the global per-world Tarjan
/// over the universe CSR regardless of sharding.
class ReliabilityIndex {
 public:
  struct Options {
    /// Cap on the label-plane footprint (n · ceil(log2 n) · Z bits). Above
    /// it, construction refuses (Fits() returns false) — callers keep the
    /// flood path instead.
    size_t max_label_bytes = size_t{128} << 20;
    /// Cap on the directed lazy reach-row cache (n · Z bits per source).
    /// Oldest sources are evicted first.
    size_t max_reach_bytes = size_t{64} << 20;
    /// Lanes used while (re)labeling; <= 0 means all hardware threads. The
    /// stored bits do not depend on it.
    int num_threads = 1;
  };

  /// Build/maintenance accounting. builds / incremental_updates /
  /// worlds_relabeled / last_update_worlds are monotonic over the index
  /// lifetime. The reach_* counters describe the directed lazy reach cache
  /// **since it was last dropped**: ApplyBankUpdate clears the cache (its
  /// rows mixed pre-update worlds) and resets all three, so after an
  /// incremental update they match a fresh build's counters instead of
  /// carrying floods that served the previous bank.
  struct Stats {
    /// Full builds (constructor).
    size_t builds = 0;
    /// ApplyBankUpdate calls that kept unaffected worlds.
    size_t incremental_updates = 0;
    /// Worlds relabeled across all builds and updates.
    size_t worlds_relabeled = 0;
    /// Worlds relabeled by the most recent ApplyBankUpdate.
    size_t last_update_worlds = 0;
    /// Directed lazy floods actually run (one per uncached source).
    size_t reach_floods = 0;
    /// Directed reach rows currently cached / evicted so far.
    size_t reach_rows_cached = 0;
    size_t reach_row_evictions = 0;
  };

  /// Labels every world in `bank`. The bank (and its universe graph) must
  /// outlive the index or be replaced via ApplyBankUpdate. Callers should
  /// check Fits() first; an over-cap build is a programmer error (CHECK).
  explicit ReliabilityIndex(const WorldView& bank, const Options& options);

  /// Restores an index from previously saved label planes instead of
  /// relabeling — the deserialization path (index/index_io.h). `labels` must
  /// be the label_words() of an index built over a bit-identical bank (same
  /// universe shape, worlds, and draw stream; the load path validates this
  /// via the file's digest key before calling). The restored index answers
  /// bit-identically to the one that was saved; stats().builds and
  /// stats().worlds_relabeled stay 0 to record that no labeling ran.
  static std::unique_ptr<ReliabilityIndex> FromSavedLabels(
      const WorldView& bank, const Options& options,
      std::vector<uint64_t> labels);

  /// Whether the label planes for (g, num_samples) fit under
  /// `options.max_label_bytes`.
  static bool Fits(const UncertainGraph& g, int num_samples,
                   const Options& options);

  /// Label-plane bytes for (num_nodes, num_samples).
  static size_t LabelBytes(NodeId num_nodes, int num_samples);

  /// R(s, t): fraction of worlds where t is reachable from s. Non-const
  /// because directed queries may populate the lazy reach cache; answers are
  /// independent of cache state.
  double Query(NodeId s, NodeId t);

  /// World-indexed bitset with bit w set iff t is reachable from s in world
  /// w — bit-identical to ReachabilityFixpoint over the same bank.
  std::vector<uint64_t> ConnectedWorlds(NodeId s, NodeId t);

  /// Relabels exactly the worlds set in `affected` (world-indexed bitset)
  /// against `fresh`, keeping every other world's labels. `fresh` must have
  /// the same num_worlds and universe num_nodes as the indexed bank (edges
  /// may have been appended) and replaces it as the index's bank; the
  /// directed reach cache is dropped. Pass DiffWorlds(old, fresh) to get the
  /// exact mask.
  void ApplyBankUpdate(const WorldView& fresh, const std::vector<uint64_t>& affected);

  /// Worlds whose edge presence differs between the banks: XOR of the up
  /// rows of every common edge, plus the up row of every edge only in
  /// `fresh` (appended after the old bank was sampled). Banks must have the
  /// same num_worlds. The banks may use different partition counts — bank
  /// bits are layout-independent (canonical draw stream), so the diff is
  /// exact across flat and sharded views.
  static std::vector<uint64_t> DiffWorlds(const WorldView& old_bank,
                                          const WorldView& fresh);

  int num_worlds() const { return num_worlds_; }
  /// Bitplanes per node (ceil(log2 num_nodes); 0 for a 1-node graph).
  int label_bits() const { return label_bits_; }
  /// Bytes held by the label planes.
  size_t label_bytes() const { return labels_.size() * sizeof(uint64_t); }
  /// The raw label planes (plane b of node v starts at word
  /// (v * label_bits() + b) * world_words) — what index_io serializes and
  /// FromSavedLabels restores.
  std::span<const uint64_t> label_words() const { return labels_; }
  /// Bytes held by the directed reach-row cache right now.
  size_t reach_cache_bytes() const;
  const Stats& stats() const { return stats_; }

 private:
  // Tag for the label-adopting constructor behind FromSavedLabels.
  struct AdoptLabels {};
  ReliabilityIndex(const WorldView& bank, const Options& options,
                   std::vector<uint64_t> labels, AdoptLabels);

  // Recomputes the label columns of every world set in `mask` from bank_.
  // Affected bits are cleared first; other worlds' bits are untouched.
  void RelabelWorlds(const std::vector<uint64_t>& mask);

  // Flat reach rows (n · world_words words) for `s`, flooding on first use.
  const std::vector<uint64_t>& SourceReach(NodeId s);

  // OR_b(plane_b(s) XOR plane_b(t)) complemented and tail-masked: the worlds
  // where s and t carry equal labels.
  std::vector<uint64_t> EqualLabelWorlds(NodeId s, NodeId t) const;

  const WorldView* bank_;  // replaced by ApplyBankUpdate
  Options options_;
  NodeId num_nodes_;
  int num_worlds_;
  size_t world_words_;
  int label_bits_;
  bool directed_;
  // Plane b of node v is the world_words_-word row starting at
  // labels_[(v * label_bits_ + b) * world_words_].
  std::vector<uint64_t> labels_;
  std::vector<EdgeId> all_edges_;
  // Directed lazy per-source reach rows: n rows of world_words_ words, flat.
  std::unordered_map<NodeId, std::vector<uint64_t>> reach_cache_;
  std::deque<NodeId> reach_order_;
  Stats stats_;
};

}  // namespace relmax

#endif  // RELMAX_INDEX_RELIABILITY_INDEX_H_
