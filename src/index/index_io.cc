#include "index/index_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "partition/partitioner.h"
#include "sampling/bitlane.h"
#include "sampling/sharded_world_bank.h"
#include "sampling/world_bank.h"

namespace relmax {
namespace {

constexpr uint64_t kHashSeed = 0x52454c4d41585f49;  // "RELMAX_I"
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15;

/// splitmix64 finalizer: full-avalanche 64-bit mixing in a handful of ops.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9;
  x ^= x >> 27;
  x *= 0x94d049bb133111eb;
  x ^= x >> 31;
  return x;
}

size_t Align64(size_t x) { return (x + 63) & ~size_t{63}; }

/// ceil(log2 n), 0 for n <= 1 — must match the index's label sizing.
int LabelBitsFor(NodeId num_nodes) {
  int bits = 0;
  if (num_nodes > 1) {
    const NodeId max_label = num_nodes - 1;
    while ((max_label >> bits) != 0) ++bits;
  }
  return bits;
}

/// The shard count MakeWorldView actually builds for a request — the
/// partitioner's clamp to [1, min(num_nodes, kMaxPartitionShards)].
int ClampShards(NodeId num_nodes, int requested) {
  int shards = std::min(requested, kMaxPartitionShards);
  if (shards < 1) shards = 1;
  if (num_nodes > 0 && static_cast<NodeId>(shards) > num_nodes) {
    shards = static_cast<int>(num_nodes);
  }
  return shards;
}

/// Lane-padded words per stored bank row. Saved rows use the same stride
/// the in-memory BitMatrix allocates, which is what makes the mmap-ed
/// section directly adoptable (zero copy).
size_t StrideWords(size_t world_words) {
  return ((world_words + bitlane::kLaneWords - 1) / bitlane::kLaneWords) *
         bitlane::kLaneWords;
}

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status WriteAll(std::FILE* f, const void* data, size_t size,
                const std::string& path) {
  if (size != 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::IoError(Errno("write", path));
  }
  return Status::Ok();
}

Status WritePad(std::FILE* f, size_t from, size_t to,
                const std::string& path) {
  static const unsigned char kZeros[64] = {};
  RELMAX_DCHECK(to >= from && to - from <= sizeof(kZeros));
  return WriteAll(f, kZeros, to - from, path);
}

/// Per-world compact-label-domain sizes, recovered from the bit-planes: the
/// index numbers components by first appearance in node order, so a world's
/// domain size is its maximum label + 1.
std::vector<uint32_t> CompactionTable(const ReliabilityIndex& index,
                                      NodeId num_nodes, int num_worlds,
                                      size_t world_words) {
  std::vector<uint32_t> max_label(num_worlds, 0);
  const std::span<const uint64_t> labels = index.label_words();
  const int bits = index.label_bits();
  for (NodeId v = 0; v < num_nodes; ++v) {
    const uint64_t* const planes =
        labels.data() + static_cast<size_t>(v) * bits * world_words;
    for (size_t w = 0; w < world_words; ++w) {
      const int base = static_cast<int>(w * 64);
      const int limit = std::min(64, num_worlds - base);
      for (int bit = 0; bit < limit; ++bit) {
        uint32_t label = 0;
        for (int b = 0; b < bits; ++b) {
          label |= static_cast<uint32_t>(
                       (planes[static_cast<size_t>(b) * world_words + w] >>
                        bit) &
                       1)
                   << b;
        }
        if (label > max_label[base + bit]) max_label[base + bit] = label;
      }
    }
  }
  // Domain size = max label + 1 (a world always has at least one component
  // when the graph has nodes).
  for (uint32_t& m : max_label) m += (num_nodes > 0) ? 1 : 0;
  return max_label;
}

}  // namespace

uint64_t HashBytes(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = Mix64(kHashSeed ^ (kGolden * (size + 1)));
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = Mix64(h ^ w) + kGolden;
  }
  if (i < size) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    h = Mix64(h ^ w) + kGolden;
  }
  return Mix64(h);
}

uint64_t GraphContentDigest(const UncertainGraph& g) {
  uint64_t h = Mix64(kHashSeed ^ 0x4449474553543031);  // "DIGEST01"
  const auto absorb = [&h](uint64_t w) { h = Mix64(h ^ w) + kGolden; };
  absorb(g.directed() ? 1 : 0);
  absorb(g.num_nodes());
  absorb(g.num_edges());
  static_assert(sizeof(double) == sizeof(uint64_t));
  for (const Edge& e : g.EdgesById()) {
    absorb((static_cast<uint64_t>(e.src) << 32) | e.dst);
    uint64_t prob_bits;
    std::memcpy(&prob_bits, &e.prob, sizeof(prob_bits));
    absorb(prob_bits);
  }
  return Mix64(h);
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no index file at " + path);
    }
    return Status::IoError(Errno("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IoError(Errno("stat", path));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::IoError(path + ": truncated: file is empty");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError(Errno("mmap", path));
  }
  MappedFile mapped;
  mapped.addr_ = addr;
  mapped.size_ = size;
  return mapped;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

StatusOr<size_t> SaveIndex(const WorldView& bank,
                           const ReliabilityIndex& index,
                           const WorldViewOptions& world_options,
                           uint64_t generation, const std::string& path) {
  const UncertainGraph& g = bank.universe();
  const int num_worlds = bank.num_worlds();
  if (world_options.num_samples != num_worlds) {
    return Status::InvalidArgument(
        "SaveIndex: world_options.num_samples does not match the bank");
  }
  if (index.num_worlds() != num_worlds) {
    return Status::InvalidArgument(
        "SaveIndex: index and bank disagree on the number of worlds");
  }
  if (bank.num_edges() != g.num_edges()) {
    return Status::InvalidArgument(
        "SaveIndex: bank is stale (graph has edges the bank never sampled)");
  }
  const int num_partitions = std::max(1, world_options.num_partitions);
  const Partition* part = bank.partition();
  const bool sharded = num_partitions > 1;
  if (sharded != (part != nullptr)) {
    return Status::InvalidArgument(
        "SaveIndex: world_options.num_partitions does not match the bank's "
        "layout");
  }
  const NodeId num_nodes = g.num_nodes();
  const size_t world_words = bank.world_words();
  const size_t stride_words = StrideWords(world_words);
  const int num_shards = bank.num_shards();
  const int label_bits = index.label_bits();

  // Assemble every payload section in memory (sections are at most the bank
  // shards themselves, so this doubles the largest shard, not the file).
  struct Section {
    IndexSectionKind kind;
    std::vector<uint64_t> words;  // u64-backed so bank rows stay aligned
    size_t bytes = 0;
  };
  std::vector<Section> sections;
  for (int k = 0; k < num_shards; ++k) {
    Section s;
    s.kind = IndexSectionKind::kBankShard;
    const size_t rows =
        (part != nullptr) ? part->shard_edges[k].size() : bank.num_edges();
    s.words.assign(rows * stride_words, 0);
    for (size_t r = 0; r < rows; ++r) {
      const EdgeId e = (part != nullptr) ? part->shard_edges[k][r]
                                         : static_cast<EdgeId>(r);
      const std::span<const uint64_t> up = bank.EdgeUpWorlds(e);
      std::memcpy(s.words.data() + r * stride_words, up.data(),
                  world_words * sizeof(uint64_t));
    }
    s.bytes = s.words.size() * sizeof(uint64_t);
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.kind = IndexSectionKind::kLabelPlanes;
    const std::span<const uint64_t> labels = index.label_words();
    s.words.assign(labels.begin(), labels.end());
    s.bytes = s.words.size() * sizeof(uint64_t);
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.kind = IndexSectionKind::kLabelCompaction;
    const std::vector<uint32_t> counts =
        CompactionTable(index, num_nodes, num_worlds, world_words);
    s.bytes = counts.size() * sizeof(uint32_t);
    s.words.assign((s.bytes + 7) / 8, 0);
    std::memcpy(s.words.data(), counts.data(), s.bytes);
    sections.push_back(std::move(s));
  }
  if (part != nullptr) {
    Section s;
    s.kind = IndexSectionKind::kPartitionMap;
    s.bytes = part->node_shard.size() * sizeof(uint32_t);
    s.words.assign((s.bytes + 7) / 8, 0);
    std::memcpy(s.words.data(), part->node_shard.data(), s.bytes);
    sections.push_back(std::move(s));
  }

  IndexFileHeader header = {};
  header.magic = kIndexMagic;
  header.format_version = kIndexFormatVersion;
  header.endian_tag = kIndexEndianTag;
  header.graph_digest = GraphContentDigest(g);
  header.generation = generation;
  header.seed = world_options.seed;
  header.num_edges = g.num_edges();
  header.num_nodes = num_nodes;
  header.num_worlds = static_cast<uint32_t>(num_worlds);
  header.world_words = static_cast<uint32_t>(world_words);
  header.lane_words = static_cast<uint32_t>(bitlane::kLaneWords);
  header.label_bits = static_cast<uint32_t>(label_bits);
  header.flags = (g.directed() ? kIndexFlagDirected : 0) |
                 (sharded ? kIndexFlagSharded : 0);
  header.num_partitions = static_cast<uint32_t>(num_partitions);
  header.num_shards = static_cast<uint32_t>(num_shards);
  header.num_sections = static_cast<uint32_t>(sections.size());

  // Lay the sections out 64-byte aligned and checksum each payload.
  std::vector<IndexSectionEntry> table(sections.size());
  std::vector<uint64_t> section_checksums(sections.size());
  size_t cursor =
      Align64(sizeof(IndexFileHeader) +
              sections.size() * sizeof(IndexSectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    table[i].kind = static_cast<uint64_t>(sections[i].kind);
    table[i].offset = cursor;
    table[i].length = sections[i].bytes;
    section_checksums[i] =
        HashBytes(sections[i].words.data(), sections[i].bytes);
    cursor = Align64(cursor + sections[i].bytes);
  }
  const size_t footer_offset = cursor;
  const uint64_t footer_magic = kIndexFooterMagic;
  const uint64_t table_checksum =
      HashBytes(table.data(), table.size() * sizeof(IndexSectionEntry));
  const size_t total_bytes = footer_offset + 2 * sizeof(uint64_t) +
                             section_checksums.size() * sizeof(uint64_t);

  // Write-temp + rename: readers of `path` see the old complete file until
  // the new one is fully on disk, never a torn mix.
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(Errno("open", tmp_path));
  }
  const auto fail = [&](Status status) -> StatusOr<size_t> {
    std::fclose(f);
    std::remove(tmp_path.c_str());
    return status;
  };
  Status st = WriteAll(f, &header, sizeof(header), tmp_path);
  if (st.ok()) {
    st = WriteAll(f, table.data(), table.size() * sizeof(IndexSectionEntry),
                  tmp_path);
  }
  size_t written = sizeof(header) + table.size() * sizeof(IndexSectionEntry);
  for (size_t i = 0; st.ok() && i < sections.size(); ++i) {
    st = WritePad(f, written, table[i].offset, tmp_path);
    if (!st.ok()) break;
    st = WriteAll(f, sections[i].words.data(), sections[i].bytes, tmp_path);
    written = table[i].offset + sections[i].bytes;
  }
  if (st.ok()) st = WritePad(f, written, footer_offset, tmp_path);
  if (st.ok()) st = WriteAll(f, &footer_magic, sizeof(uint64_t), tmp_path);
  if (st.ok()) st = WriteAll(f, &table_checksum, sizeof(uint64_t), tmp_path);
  if (st.ok()) {
    st = WriteAll(f, section_checksums.data(),
                  section_checksums.size() * sizeof(uint64_t), tmp_path);
  }
  if (!st.ok()) return fail(st);
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    return fail(Status::IoError(Errno("flush", tmp_path)));
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError(Errno("close", tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status status = Status::IoError(Errno("rename", path));
    std::remove(tmp_path.c_str());
    return status;
  }
  return total_bytes;
}

StatusOr<IndexFileInfo> InspectIndexFile(const std::string& path) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  const MappedFile& file = *mapped;
  if (file.size() < sizeof(IndexFileHeader)) {
    return Status::IoError(path + ": truncated: smaller than the header");
  }
  IndexFileInfo info;
  std::memcpy(&info.header, file.data(), sizeof(IndexFileHeader));
  if (info.header.magic != kIndexMagic) {
    return Status::FailedPrecondition(path +
                                      ": not a relmax index file (bad magic)");
  }
  if (info.header.format_version != kIndexFormatVersion) {
    return Status::FailedPrecondition(
        path + ": unsupported index format version " +
        std::to_string(info.header.format_version));
  }
  if (info.header.endian_tag != kIndexEndianTag) {
    return Status::FailedPrecondition(
        path + ": index file was written on a different-endian machine");
  }
  const size_t table_end =
      sizeof(IndexFileHeader) +
      static_cast<size_t>(info.header.num_sections) *
          sizeof(IndexSectionEntry);
  if (info.header.num_sections >
          static_cast<uint32_t>(kMaxPartitionShards) + 3 ||
      file.size() < table_end) {
    return Status::IoError(path + ": truncated: section table out of bounds");
  }
  info.sections.resize(info.header.num_sections);
  std::memcpy(info.sections.data(), file.data() + sizeof(IndexFileHeader),
              info.sections.size() * sizeof(IndexSectionEntry));
  info.file_bytes = file.size();
  return info;
}

StatusOr<LoadedIndex> LoadIndex(
    const std::string& path, const UncertainGraph& g,
    const WorldViewOptions& world_options,
    const ReliabilityIndex::Options& index_options) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  LoadedIndex out;
  out.mapping = std::move(mapped).value();
  const unsigned char* const base = out.mapping.data();
  const size_t file_size = out.mapping.size();

  if (file_size < sizeof(IndexFileHeader)) {
    return Status::IoError(path + ": truncated: smaller than the header");
  }
  IndexFileHeader h;
  std::memcpy(&h, base, sizeof(h));
  if (h.magic != kIndexMagic) {
    return Status::FailedPrecondition(path +
                                      ": not a relmax index file (bad magic)");
  }
  if (h.format_version != kIndexFormatVersion) {
    return Status::FailedPrecondition(path +
                                      ": unsupported index format version " +
                                      std::to_string(h.format_version));
  }
  if (h.endian_tag != kIndexEndianTag) {
    return Status::FailedPrecondition(
        path + ": index file was written on a different-endian machine");
  }

  // Key check: the file must have been built for exactly this (graph,
  // options) tuple, or its bits answer a different question.
  const uint64_t digest = GraphContentDigest(g);
  if (h.graph_digest != digest) {
    return Status::FailedPrecondition(
        path + ": index was built for a different graph (content digest " +
        std::to_string(h.graph_digest) + ", expected " +
        std::to_string(digest) + ")");
  }
  const bool directed = (h.flags & kIndexFlagDirected) != 0;
  if (directed != g.directed() || h.num_nodes != g.num_nodes() ||
      h.num_edges != g.num_edges()) {
    return Status::FailedPrecondition(
        path + ": index was built for a different graph shape");
  }
  if (h.num_worlds != static_cast<uint32_t>(world_options.num_samples)) {
    return Status::FailedPrecondition(
        path + ": index has Z=" + std::to_string(h.num_worlds) +
        " worlds, expected Z=" + std::to_string(world_options.num_samples));
  }
  if (h.seed != world_options.seed) {
    return Status::FailedPrecondition(
        path + ": index was drawn with a different seed");
  }
  if (h.lane_words != static_cast<uint32_t>(bitlane::kLaneWords)) {
    return Status::FailedPrecondition(
        path + ": index uses a different lane layout (" +
        std::to_string(h.lane_words) + " words per lane block, expected " +
        std::to_string(bitlane::kLaneWords) + ")");
  }
  const int num_partitions = std::max(1, world_options.num_partitions);
  if (h.num_partitions != static_cast<uint32_t>(num_partitions)) {
    return Status::FailedPrecondition(
        path + ": index was built with --partitions " +
        std::to_string(h.num_partitions) + ", expected " +
        std::to_string(num_partitions));
  }

  // Internal-consistency checks: these fields are pure functions of the key
  // fields above, so a disagreement means a corrupt or hand-edited header.
  const NodeId num_nodes = g.num_nodes();
  const int num_worlds = world_options.num_samples;
  const size_t world_words = (static_cast<size_t>(num_worlds) + 63) / 64;
  const size_t stride_words = StrideWords(world_words);
  const bool sharded = num_partitions > 1;
  const int num_shards = ClampShards(num_nodes, num_partitions);
  const uint32_t expected_sections =
      static_cast<uint32_t>(num_shards) + 2 + (sharded ? 1 : 0);
  if (h.world_words != world_words ||
      h.label_bits != static_cast<uint32_t>(LabelBitsFor(num_nodes)) ||
      ((h.flags & kIndexFlagSharded) != 0) != sharded ||
      h.num_shards != static_cast<uint32_t>(num_shards) ||
      h.num_sections != expected_sections) {
    return Status::InvalidArgument(
        path + ": inconsistent header (corrupt or hand-edited)");
  }
  const int label_bits = static_cast<int>(h.label_bits);

  // Section table: exact expected kind sequence, 64-byte aligned offsets,
  // and a byte-exact total file size (anything shorter is truncation).
  const size_t table_offset = sizeof(IndexFileHeader);
  const size_t table_bytes = expected_sections * sizeof(IndexSectionEntry);
  if (file_size < table_offset + table_bytes) {
    return Status::IoError(path + ": truncated inside the section table");
  }
  std::vector<IndexSectionEntry> table(expected_sections);
  std::memcpy(table.data(), base + table_offset, table_bytes);
  std::vector<IndexSectionKind> expected_kinds;
  for (int k = 0; k < num_shards; ++k) {
    expected_kinds.push_back(IndexSectionKind::kBankShard);
  }
  expected_kinds.push_back(IndexSectionKind::kLabelPlanes);
  expected_kinds.push_back(IndexSectionKind::kLabelCompaction);
  if (sharded) expected_kinds.push_back(IndexSectionKind::kPartitionMap);
  size_t cursor = Align64(table_offset + table_bytes);
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i].kind != static_cast<uint64_t>(expected_kinds[i])) {
      return Status::InvalidArgument(
          path + ": unexpected section kind " + std::to_string(table[i].kind) +
          " at table slot " + std::to_string(i));
    }
    if (table[i].offset % 64 != 0) {
      return Status::InvalidArgument(
          path + ": section " + std::to_string(i) +
          " violates 64-byte alignment (offset " +
          std::to_string(table[i].offset) + ")");
    }
    if (table[i].offset != cursor || table[i].length > file_size ||
        table[i].offset + table[i].length > file_size) {
      return Status::IoError(path + ": truncated at section " +
                             std::to_string(i) + " (offset " +
                             std::to_string(table[i].offset) + " + " +
                             std::to_string(table[i].length) + " bytes)");
    }
    cursor = Align64(table[i].offset + table[i].length);
  }
  const size_t footer_offset = cursor;
  const size_t footer_bytes =
      (2 + static_cast<size_t>(expected_sections)) * sizeof(uint64_t);
  if (file_size != footer_offset + footer_bytes) {
    return Status::IoError(
        path + ": truncated: " + std::to_string(file_size) +
        " bytes, layout requires " +
        std::to_string(footer_offset + footer_bytes));
  }

  // Footer checksums, before any payload byte is interpreted.
  uint64_t footer_magic;
  uint64_t table_checksum;
  std::memcpy(&footer_magic, base + footer_offset, sizeof(uint64_t));
  std::memcpy(&table_checksum, base + footer_offset + sizeof(uint64_t),
              sizeof(uint64_t));
  if (footer_magic != kIndexFooterMagic) {
    return Status::IoError(path + ": checksum footer missing or corrupt");
  }
  if (table_checksum != HashBytes(base + table_offset, table_bytes)) {
    return Status::IoError(path + ": section table checksum mismatch");
  }
  for (size_t i = 0; i < table.size(); ++i) {
    uint64_t want;
    std::memcpy(&want,
                base + footer_offset + (2 + i) * sizeof(uint64_t),
                sizeof(uint64_t));
    if (HashBytes(base + table[i].offset, table[i].length) != want) {
      return Status::IoError(path + ": checksum mismatch in section " +
                             std::to_string(i) + " (kind " +
                             std::to_string(table[i].kind) + ")");
    }
  }

  // Payload shapes. For a sharded bank the partition map determines each
  // shard's row count, so parse it first (it is the last section).
  Partition partition;
  std::vector<size_t> shard_rows;
  if (sharded) {
    const IndexSectionEntry& pm = table.back();
    if (pm.length != static_cast<size_t>(num_nodes) * sizeof(uint32_t)) {
      return Status::InvalidArgument(path + ": partition map has " +
                                     std::to_string(pm.length) +
                                     " bytes, expected 4 per node");
    }
    std::vector<uint32_t> node_shard(num_nodes);
    std::memcpy(node_shard.data(), base + pm.offset, pm.length);
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (node_shard[v] >= static_cast<uint32_t>(num_shards)) {
        return Status::InvalidArgument(
            path + ": partition map assigns node " + std::to_string(v) +
            " to shard " + std::to_string(node_shard[v]) + " of " +
            std::to_string(num_shards));
      }
    }
    partition = PartitionFromNodeShard(g, num_shards, std::move(node_shard));
    for (int k = 0; k < num_shards; ++k) {
      shard_rows.push_back(partition.shard_edges[k].size());
    }
  } else {
    shard_rows.push_back(g.num_edges());
  }
  const size_t row_bytes = stride_words * sizeof(uint64_t);
  for (int k = 0; k < num_shards; ++k) {
    if (table[k].length != shard_rows[k] * row_bytes) {
      return Status::InvalidArgument(
          path + ": bank shard " + std::to_string(k) + " holds " +
          std::to_string(table[k].length) + " bytes, expected " +
          std::to_string(shard_rows[k] * row_bytes));
    }
  }
  const IndexSectionEntry& labels_entry = table[num_shards];
  const size_t label_words_expected = static_cast<size_t>(num_nodes) *
                                      label_bits * world_words;
  if (labels_entry.length != label_words_expected * sizeof(uint64_t)) {
    return Status::InvalidArgument(
        path + ": label planes hold " + std::to_string(labels_entry.length) +
        " bytes, expected " +
        std::to_string(label_words_expected * sizeof(uint64_t)));
  }
  const IndexSectionEntry& compaction_entry = table[num_shards + 1];
  if (compaction_entry.length !=
      static_cast<size_t>(num_worlds) * sizeof(uint32_t)) {
    return Status::InvalidArgument(path +
                                   ": label-compaction table has " +
                                   std::to_string(compaction_entry.length) +
                                   " bytes, expected 4 per world");
  }
  for (int w = 0; w < num_worlds; ++w) {
    uint32_t count;
    std::memcpy(&count,
                base + compaction_entry.offset +
                    static_cast<size_t>(w) * sizeof(uint32_t),
                sizeof(uint32_t));
    if (count > num_nodes || (num_nodes > 0 && count == 0)) {
      return Status::InvalidArgument(
          path + ": label-compaction table claims " + std::to_string(count) +
          " components in world " + std::to_string(w) + " of a " +
          std::to_string(num_nodes) + "-node graph");
    }
  }

  // Bank rows must keep the BitMatrix invariant the kernels rely on: bits
  // past num_worlds (the last logical word's tail and every pad word) are
  // zero. A corrupted-but-rewritten-checksum file cannot smuggle them in.
  const uint64_t tail_mask = (num_worlds & 63)
                                 ? (uint64_t{1} << (num_worlds & 63)) - 1
                                 : ~uint64_t{0};
  for (int k = 0; k < num_shards; ++k) {
    const uint64_t* const rows =
        reinterpret_cast<const uint64_t*>(base + table[k].offset);
    for (size_t r = 0; r < shard_rows[k]; ++r) {
      const uint64_t* const row = rows + r * stride_words;
      uint64_t bad = row[world_words - 1] & ~tail_mask;
      for (size_t w = world_words; w < stride_words; ++w) bad |= row[w];
      if (bad != 0) {
        return Status::InvalidArgument(
            path + ": bank shard " + std::to_string(k) + " row " +
            std::to_string(r) + " has nonzero tail/pad bits");
      }
    }
  }

  // Everything checks out — adopt the mapped bank rows zero-copy. The
  // const_cast is confined to here: the mapping is PROT_READ and neither
  // bank implementation writes its up-matrix after construction, so any
  // accidental write faults loudly instead of corrupting the file.
  std::vector<bitlane::BitMatrix> mats;
  for (int k = 0; k < num_shards; ++k) {
    uint64_t* const rows = reinterpret_cast<uint64_t*>(
        const_cast<unsigned char*>(base + table[k].offset));
    mats.push_back(
        bitlane::BitMatrix::External(rows, shard_rows[k], world_words));
  }
  if (sharded) {
    out.bank = std::make_unique<ShardedWorldBank>(
        g, std::move(partition), num_worlds, std::move(mats));
  } else {
    out.bank =
        std::make_unique<WorldBank>(g, num_worlds, std::move(mats[0]));
  }

  if (labels_entry.length > index_options.max_label_bytes) {
    return Status::FailedPrecondition(
        path + ": label planes (" + std::to_string(labels_entry.length) +
        " bytes) exceed max_label_bytes (" +
        std::to_string(index_options.max_label_bytes) + ")");
  }
  std::vector<uint64_t> labels(label_words_expected);
  std::memcpy(labels.data(), base + labels_entry.offset, labels_entry.length);
  out.index = ReliabilityIndex::FromSavedLabels(*out.bank, index_options,
                                                std::move(labels));
  out.generation = h.generation;
  out.file_bytes = file_size;
  return out;
}

}  // namespace relmax
