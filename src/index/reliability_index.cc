#include "index/reliability_index.h"

#include <algorithm>
#include <memory>
#include <span>

#include "common/logging.h"
#include "partition/partitioner.h"
#include "sampling/parallel.h"

namespace relmax {
namespace {

/// Bits needed for labels in [0, n): ceil(log2 n), 0 for n <= 1.
int LabelBits(NodeId num_nodes) {
  int bits = 0;
  if (num_nodes > 1) {
    const NodeId max_label = num_nodes - 1;
    while ((max_label >> bits) != 0) ++bits;
  }
  return bits;
}

/// World-indexed bitset with every world bit set (tail bits clear).
std::vector<uint64_t> AllWorlds(int num_worlds, size_t world_words) {
  std::vector<uint64_t> all(world_words, ~uint64_t{0});
  if (num_worlds & 63) {
    all.back() = (uint64_t{1} << (num_worlds & 63)) - 1;
  }
  return all;
}

/// Per-lane labeling scratch, reused across every world a lane relabels.
struct LabelScratch {
  // This 64-world word of every edge's up row, hoisted once per word so the
  // per-world inner loops index a flat array instead of calling the virtual
  // EdgeUpWorlds per (edge, world).
  std::vector<uint64_t> up_words;
  // Undirected union-find.
  std::vector<NodeId> parent;
  // Raw label -> compact label, keyed by first appearance in node order.
  std::vector<NodeId> remap;
  // Directed iterative Tarjan.
  std::vector<int> order;
  std::vector<int> low;
  std::vector<NodeId> comp;
  std::vector<uint8_t> on_stack;
  std::vector<NodeId> stack;
  struct Frame {
    NodeId v;
    size_t arc;
  };
  std::vector<Frame> frames;
};

NodeId Find(std::vector<NodeId>& parent, NodeId v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];  // path halving
    v = parent[v];
  }
  return v;
}

}  // namespace

size_t ReliabilityIndex::LabelBytes(NodeId num_nodes, int num_samples) {
  const size_t world_words = (static_cast<size_t>(num_samples) + 63) / 64;
  return static_cast<size_t>(num_nodes) * LabelBits(num_nodes) * world_words *
         sizeof(uint64_t);
}

bool ReliabilityIndex::Fits(const UncertainGraph& g, int num_samples,
                            const Options& options) {
  return LabelBytes(g.num_nodes(), num_samples) <= options.max_label_bytes;
}

ReliabilityIndex::ReliabilityIndex(const WorldView& bank,
                                   const Options& options)
    : bank_(&bank),
      options_(options),
      num_nodes_(bank.universe().num_nodes()),
      num_worlds_(bank.num_worlds()),
      world_words_(bank.world_words()),
      label_bits_(LabelBits(bank.universe().num_nodes())),
      directed_(bank.universe().directed()) {
  RELMAX_CHECK(Fits(bank.universe(), num_worlds_, options_));
  labels_.assign(static_cast<size_t>(num_nodes_) * label_bits_ * world_words_,
                 0);
  all_edges_ = bank.AllEdges();
  ++stats_.builds;
  stats_.worlds_relabeled += static_cast<size_t>(num_worlds_);
  RelabelWorlds(AllWorlds(num_worlds_, world_words_));
}

ReliabilityIndex::ReliabilityIndex(const WorldView& bank,
                                   const Options& options,
                                   std::vector<uint64_t> labels, AdoptLabels)
    : bank_(&bank),
      options_(options),
      num_nodes_(bank.universe().num_nodes()),
      num_worlds_(bank.num_worlds()),
      world_words_(bank.world_words()),
      label_bits_(LabelBits(bank.universe().num_nodes())),
      directed_(bank.universe().directed()),
      labels_(std::move(labels)) {
  RELMAX_CHECK(Fits(bank.universe(), num_worlds_, options_));
  RELMAX_CHECK(labels_.size() == static_cast<size_t>(num_nodes_) *
                                     label_bits_ * world_words_);
  all_edges_ = bank.AllEdges();
}

std::unique_ptr<ReliabilityIndex> ReliabilityIndex::FromSavedLabels(
    const WorldView& bank, const Options& options,
    std::vector<uint64_t> labels) {
  return std::unique_ptr<ReliabilityIndex>(
      new ReliabilityIndex(bank, options, std::move(labels), AdoptLabels{}));
}

void ReliabilityIndex::RelabelWorlds(const std::vector<uint64_t>& mask) {
  const UncertainGraph& universe = bank_->universe();
  const size_t num_rows = static_cast<size_t>(num_nodes_) * label_bits_;
  const std::vector<Edge>& edges = universe.EdgesById();
  const CsrView csr = directed_ ? universe.OutCsr() : CsrView{};
  // Undirected sharded banks label shard-locally first: each partition
  // shard's intra-shard edges are unioned on their own, then one boundary
  // merge pass over the cut edges joins components across shards. The final
  // union-find partition is independent of union order and the remap below
  // is canonical, so the resulting labels are bit-identical to a flat
  // bank's single pass. (Directed SCCs don't decompose along an edge cut,
  // so they keep the global Tarjan regardless of sharding.)
  const Partition* part = directed_ ? nullptr : bank_->partition();
  if (part != nullptr && part->num_shards <= 1) part = nullptr;
  std::vector<std::vector<EdgeId>> intra_edges;
  std::vector<EdgeId> cut_edges;
  if (part != nullptr) {
    intra_edges.resize(part->num_shards);
    for (size_t e = 0; e < edges.size(); ++e) {
      if (part->node_shard[edges[e].src] == part->node_shard[edges[e].dst]) {
        intra_edges[part->edge_shard[e]].push_back(static_cast<EdgeId>(e));
      } else {
        cut_edges.push_back(static_cast<EdgeId>(e));
      }
    }
  }
  // One shard per 64-world word: a shard writes only bit-word `word` of every
  // plane row, so shards are race-free, and per-world labels are a pure
  // function of the bank bits — bit-identical for any num_threads.
  ForEachShard(
      world_words_, options_.num_threads,
      [] { return std::make_unique<LabelScratch>(); },
      [&](std::unique_ptr<LabelScratch>& scratch, size_t word) {
        const uint64_t mask_word = mask[word];
        if (mask_word == 0) return;
        // Clear the affected worlds' columns; other worlds keep their bits.
        const uint64_t keep = ~mask_word;
        for (size_t row = 0; row < num_rows; ++row) {
          labels_[row * world_words_ + word] &= keep;
        }
        scratch->up_words.resize(edges.size());
        for (size_t e = 0; e < edges.size(); ++e) {
          scratch->up_words[e] =
              bank_->EdgeUpWorlds(static_cast<EdgeId>(e))[word];
        }
        for (int bit = 0; bit < 64; ++bit) {
          if (((mask_word >> bit) & 1) == 0) continue;
          if (static_cast<int>(word * 64) + bit >= num_worlds_) break;
          const uint64_t world_bit = uint64_t{1} << bit;
          LabelScratch& s = *scratch;
          // Writes bit `world_bit` of word `word` in v's planes for `label`.
          auto write_label = [&](NodeId v, NodeId label) {
            uint64_t* base =
                labels_.data() +
                static_cast<size_t>(v) * label_bits_ * world_words_ + word;
            for (int b = 0; b < label_bits_; ++b) {
              if ((label >> b) & 1) base[static_cast<size_t>(b) *
                                         world_words_] |= world_bit;
            }
          };
          auto edge_up = [&](EdgeId e) {
            return (s.up_words[e] & world_bit) != 0;
          };
          if (!directed_) {
            // Exact connected components: union-find over the world's up
            // edges, labels compacted by first appearance in node order.
            s.parent.resize(num_nodes_);
            for (NodeId v = 0; v < num_nodes_; ++v) s.parent[v] = v;
            auto union_edge = [&](EdgeId e) {
              if (!edge_up(e)) return;
              const NodeId a = Find(s.parent, edges[e].src);
              const NodeId b = Find(s.parent, edges[e].dst);
              if (a != b) s.parent[std::max(a, b)] = std::min(a, b);
            };
            if (part != nullptr) {
              // Shard-local labels, then the boundary merge pass.
              for (const std::vector<EdgeId>& shard : intra_edges) {
                for (EdgeId e : shard) union_edge(e);
              }
              for (EdgeId e : cut_edges) union_edge(e);
            } else {
              for (size_t e = 0; e < edges.size(); ++e) {
                union_edge(static_cast<EdgeId>(e));
              }
            }
            s.remap.assign(num_nodes_, kInvalidNode);
            NodeId next = 0;
            for (NodeId v = 0; v < num_nodes_; ++v) {
              const NodeId root = Find(s.parent, v);
              if (s.remap[root] == kInvalidNode) s.remap[root] = next++;
              write_label(v, s.remap[root]);
            }
            continue;
          }
          // Directed: SCC condensation by iterative Tarjan over the out-CSR,
          // skipping arcs that are down in this world.
          s.order.assign(num_nodes_, -1);
          s.low.resize(num_nodes_);
          s.comp.resize(num_nodes_);
          s.on_stack.assign(num_nodes_, 0);
          s.stack.clear();
          s.frames.clear();
          int next_order = 0;
          NodeId num_comps = 0;
          for (NodeId root = 0; root < num_nodes_; ++root) {
            if (s.order[root] >= 0) continue;
            s.order[root] = s.low[root] = next_order++;
            s.stack.push_back(root);
            s.on_stack[root] = 1;
            s.frames.push_back({root, csr.begin(root)});
            while (!s.frames.empty()) {
              LabelScratch::Frame& f = s.frames.back();
              const NodeId v = f.v;
              bool descended = false;
              while (f.arc < csr.end(v)) {
                const size_t a = f.arc++;
                if (!edge_up(csr.edge_ids[a])) continue;
                const NodeId to = csr.heads[a];
                if (s.order[to] < 0) {
                  s.order[to] = s.low[to] = next_order++;
                  s.stack.push_back(to);
                  s.on_stack[to] = 1;
                  s.frames.push_back({to, csr.begin(to)});  // invalidates f
                  descended = true;
                  break;
                }
                if (s.on_stack[to] && s.order[to] < s.low[v]) {
                  s.low[v] = s.order[to];
                }
              }
              if (descended) continue;
              s.frames.pop_back();
              if (s.low[v] == s.order[v]) {
                NodeId u;
                do {
                  u = s.stack.back();
                  s.stack.pop_back();
                  s.on_stack[u] = 0;
                  s.comp[u] = num_comps;
                } while (u != v);
                ++num_comps;
              }
              if (!s.frames.empty() && s.low[v] < s.low[s.frames.back().v]) {
                s.low[s.frames.back().v] = s.low[v];
              }
            }
          }
          // Tarjan numbers SCCs in completion order; renumber by first
          // appearance in node order so labels are canonical.
          s.remap.assign(num_nodes_, kInvalidNode);
          NodeId next = 0;
          for (NodeId v = 0; v < num_nodes_; ++v) {
            if (s.remap[s.comp[v]] == kInvalidNode) s.remap[s.comp[v]] = next++;
            write_label(v, s.remap[s.comp[v]]);
          }
        }
      },
      [](std::unique_ptr<LabelScratch>&) {});
}

std::vector<uint64_t> ReliabilityIndex::EqualLabelWorlds(NodeId s,
                                                         NodeId t) const {
  std::vector<uint64_t> diff(world_words_, 0);
  const uint64_t* s_planes =
      labels_.data() + static_cast<size_t>(s) * label_bits_ * world_words_;
  const uint64_t* t_planes =
      labels_.data() + static_cast<size_t>(t) * label_bits_ * world_words_;
  for (int b = 0; b < label_bits_; ++b) {
    const uint64_t* sp = s_planes + static_cast<size_t>(b) * world_words_;
    const uint64_t* tp = t_planes + static_cast<size_t>(b) * world_words_;
    for (size_t w = 0; w < world_words_; ++w) diff[w] |= sp[w] ^ tp[w];
  }
  std::vector<uint64_t> eq = AllWorlds(num_worlds_, world_words_);
  for (size_t w = 0; w < world_words_; ++w) eq[w] &= ~diff[w];
  return eq;
}

const std::vector<uint64_t>& ReliabilityIndex::SourceReach(NodeId s) {
  const auto it = reach_cache_.find(s);
  if (it != reach_cache_.end()) return it->second;
  bitlane::BitMatrix reach;
  bank_->ReachabilityFixpoint(s, /*backward=*/false, all_edges_, &reach);
  ++stats_.reach_floods;
  std::vector<uint64_t> flat(static_cast<size_t>(num_nodes_) * world_words_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const uint64_t* const row = reach.row(v);
    std::copy(row, row + world_words_,
              flat.begin() + static_cast<size_t>(v) * world_words_);
  }
  // FIFO eviction under the byte cap. A row larger than the whole cap is
  // still admitted (the caller holds a reference); it is evicted next time.
  const size_t row_bytes = flat.size() * sizeof(uint64_t);
  while (!reach_order_.empty() &&
         (reach_cache_.size() + 1) * row_bytes > options_.max_reach_bytes) {
    reach_cache_.erase(reach_order_.front());
    reach_order_.pop_front();
    ++stats_.reach_row_evictions;
  }
  const auto inserted = reach_cache_.emplace(s, std::move(flat));
  reach_order_.push_back(s);
  stats_.reach_rows_cached = reach_cache_.size();
  return inserted.first->second;
}

size_t ReliabilityIndex::reach_cache_bytes() const {
  return reach_cache_.size() * static_cast<size_t>(num_nodes_) *
         world_words_ * sizeof(uint64_t);
}

std::vector<uint64_t> ReliabilityIndex::ConnectedWorlds(NodeId s, NodeId t) {
  RELMAX_CHECK(s < num_nodes_ && t < num_nodes_);
  std::vector<uint64_t> eq = EqualLabelWorlds(s, t);
  if (!directed_) return eq;
  // Same SCC in every world ⇒ mutually reachable everywhere: answer without
  // any flood. (The flood would set exactly these bits too.)
  if (WorldView::CountBits(eq, static_cast<size_t>(num_worlds_)) ==
      num_worlds_) {
    return eq;
  }
  const std::vector<uint64_t>& rows = SourceReach(s);
  const uint64_t* row = rows.data() + static_cast<size_t>(t) * world_words_;
  return std::vector<uint64_t>(row, row + world_words_);
}

double ReliabilityIndex::Query(NodeId s, NodeId t) {
  return static_cast<double>(
             WorldView::CountBits(ConnectedWorlds(s, t),
                                  static_cast<size_t>(num_worlds_))) /
         num_worlds_;
}

std::vector<uint64_t> ReliabilityIndex::DiffWorlds(const WorldView& old_bank,
                                                   const WorldView& fresh) {
  RELMAX_CHECK(old_bank.num_worlds() == fresh.num_worlds());
  const size_t world_words = fresh.world_words();
  std::vector<uint64_t> mask(world_words, 0);
  // The banks' own row counts, not universe().num_edges(): the old bank's
  // graph has typically been mutated since that bank was sampled.
  const size_t old_edges = old_bank.num_edges();
  const size_t new_edges = fresh.num_edges();
  const size_t common = std::min(old_edges, new_edges);
  for (size_t e = 0; e < common; ++e) {
    const std::span<const uint64_t> before =
        old_bank.EdgeUpWorlds(static_cast<EdgeId>(e));
    const std::span<const uint64_t> after =
        fresh.EdgeUpWorlds(static_cast<EdgeId>(e));
    for (size_t w = 0; w < world_words; ++w) mask[w] |= before[w] ^ after[w];
  }
  // Edges present in only one bank affect every world they are up in.
  for (size_t e = common; e < new_edges; ++e) {
    const std::span<const uint64_t> up =
        fresh.EdgeUpWorlds(static_cast<EdgeId>(e));
    for (size_t w = 0; w < world_words; ++w) mask[w] |= up[w];
  }
  for (size_t e = common; e < old_edges; ++e) {
    const std::span<const uint64_t> up =
        old_bank.EdgeUpWorlds(static_cast<EdgeId>(e));
    for (size_t w = 0; w < world_words; ++w) mask[w] |= up[w];
  }
  return mask;
}

void ReliabilityIndex::ApplyBankUpdate(const WorldView& fresh,
                                       const std::vector<uint64_t>& affected) {
  RELMAX_CHECK(fresh.num_worlds() == num_worlds_);
  RELMAX_CHECK(fresh.universe().num_nodes() == num_nodes_);
  RELMAX_CHECK(fresh.universe().directed() == directed_);
  RELMAX_CHECK(affected.size() == world_words_);
  bank_ = &fresh;
  all_edges_ = fresh.AllEdges();
  // Reach rows mix affected and unaffected worlds in one flood; rebuild them
  // lazily rather than patching. The reach counters reset with the cache —
  // they describe the cache since its last drop (see Stats) — so incremental
  // stats stay comparable to a fresh build's instead of over-counting floods
  // that served the pre-update bank.
  reach_cache_.clear();
  reach_order_.clear();
  stats_.reach_rows_cached = 0;
  stats_.reach_floods = 0;
  stats_.reach_row_evictions = 0;
  const size_t worlds = static_cast<size_t>(
      WorldView::CountBits(affected, static_cast<size_t>(num_worlds_)));
  ++stats_.incremental_updates;
  stats_.last_update_worlds = worlds;
  stats_.worlds_relabeled += worlds;
  if (worlds > 0) RelabelWorlds(affected);
}

}  // namespace relmax
