#ifndef RELMAX_INDEX_INDEX_IO_H_
#define RELMAX_INDEX_INDEX_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "index/reliability_index.h"
#include "sampling/world_view.h"

namespace relmax {

/// Persistence for the offline reliability index: one mmap-able flat file
/// holding everything a process needs to answer queries without resampling
/// or relabeling — the bank's per-shard edge×world bit rows, the index's
/// label bit-planes, the per-world label-compaction tables, and (for a
/// sharded bank) the partition's node→shard map.
///
/// File layout (all integers little-endian, every payload section 64-byte
/// aligned so loaded bank rows drop straight into the lane-block kernels):
///
///     ┌────────────────────┐ offset 0
///     │ IndexFileHeader    │ fixed 96 bytes, keyed on (graph digest,
///     │                    │ directedness, Z, seed, lane layout, shards)
///     ├────────────────────┤
///     │ SectionEntry table │ num_sections × 24 bytes
///     ├────────────────────┤ pad to 64
///     │ kBankShard #0      │ shard 0's edge rows, lane-stride padded
///     │   …                │ (one section per shard, shard-id order)
///     ├────────────────────┤ pad to 64
///     │ kLabelPlanes       │ the index's raw label words
///     ├────────────────────┤ pad to 64
///     │ kLabelCompaction   │ per-world compact-label-domain sizes (u32 × Z)
///     ├────────────────────┤ pad to 64
///     │ kPartitionMap      │ node→shard map (u32 × n), sharded banks only
///     ├────────────────────┤ pad to 64
///     │ footer             │ magic, table checksum, per-section checksums
///     └────────────────────┘
///
/// Saving always writes `path + ".tmp"` and then rename()s over `path`
/// (atomic on POSIX), with the header's generation counter bumped by the
/// caller on each republish — readers either see the old complete file or
/// the new complete file, never a torn one.
///
/// Loading mmaps the file read-only and validates strictly before any
/// payload byte is interpreted: magic / version / endianness, the header
/// key against the caller's (graph, WorldViewOptions), exact file size
/// against the declared layout (truncation), section alignment, the footer
/// checksums, and payload invariants (node→shard range, zero tail/pad
/// bits). Every failure is a typed Status — never UB — so callers can fall
/// back loudly to a rebuild, mirroring the bank-fallback protocol.

/// On-disk header. Plain-old-data on purpose: the format IS this struct's
/// bytes (packed naturally — every field is aligned to its size), so tests
/// and tooling can corrupt or inspect specific fields by offset.
struct IndexFileHeader {
  uint64_t magic;           ///< kIndexMagic
  uint32_t format_version;  ///< kIndexFormatVersion
  uint32_t endian_tag;      ///< kIndexEndianTag as written by the saver
  uint64_t graph_digest;    ///< GraphContentDigest of the universe graph
  uint64_t generation;      ///< bumped on every atomic republish
  uint64_t seed;            ///< WorldViewOptions::seed of the draw stream
  uint64_t num_edges;
  uint32_t num_nodes;
  uint32_t num_worlds;      ///< Z
  uint32_t world_words;     ///< ceil(Z / 64)
  uint32_t lane_words;      ///< bitlane::kLaneWords at save time (layout key)
  uint32_t label_bits;      ///< ceil(log2 num_nodes)
  uint32_t flags;           ///< kIndexFlagDirected | kIndexFlagSharded
  uint32_t num_partitions;  ///< requested WorldViewOptions::num_partitions
  uint32_t num_shards;      ///< actual bank shard count after clamping
  uint32_t num_sections;
  uint32_t reserved0;
  uint64_t reserved1;
};
static_assert(sizeof(IndexFileHeader) == 96, "on-disk header layout");

inline constexpr uint64_t kIndexMagic = 0x3158444958494d52;   // "RMIXIDX1"
inline constexpr uint64_t kIndexFooterMagic =
    0x31444e4558494d52;                                       // "RMIXEND1"
inline constexpr uint32_t kIndexFormatVersion = 1;
inline constexpr uint32_t kIndexEndianTag = 0x01020304;
inline constexpr uint32_t kIndexFlagDirected = 1u << 0;
inline constexpr uint32_t kIndexFlagSharded = 1u << 1;

/// Payload section kinds, in their required file order.
enum class IndexSectionKind : uint64_t {
  kBankShard = 1,        ///< one per shard: owned-edge rows, stride-padded
  kLabelPlanes = 2,      ///< the index's raw label words
  kLabelCompaction = 3,  ///< u32 per world: compact label-domain size
  kPartitionMap = 4,     ///< u32 per node: owning shard (sharded banks only)
};

/// On-disk section-table entry. `offset` is from the file start and must be
/// 64-byte aligned; `length` is the exact payload byte count (the pad up to
/// the next section is not covered by the section's checksum).
struct IndexSectionEntry {
  uint64_t kind;  ///< IndexSectionKind
  uint64_t offset;
  uint64_t length;
};
static_assert(sizeof(IndexSectionEntry) == 24, "on-disk table layout");

/// 64-bit content digest of a graph: directedness, node count, and every
/// edge's (src, dst, probability bits) in id order. This keys the index
/// file to the exact graph it was built from — any reorder, endpoint, or
/// probability change produces a different digest, and the load path
/// rejects the file with a typed error instead of returning answers for the
/// wrong graph.
uint64_t GraphContentDigest(const UncertainGraph& g);

/// Word-wise 64-bit hash (splitmix64 mixing) used for the graph digest and
/// every file checksum. Not cryptographic — it guards against corruption
/// and truncation, not adversaries.
uint64_t HashBytes(const void* data, size_t size);

/// Move-only RAII wrapper over a read-only (PROT_READ) mmap of an entire
/// file. A missing file is Status::NotFound (callers treat "no file yet" as
/// the silent build-and-save path); everything else is kIoError.
class MappedFile {
 public:
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const unsigned char* data() const {
    return static_cast<const unsigned char*>(addr_);
  }
  size_t size() const { return size_; }
  bool empty() const { return addr_ == nullptr; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

/// Serializes (bank, index) into the flat file at `path` via write-temp +
/// rename. `world_options` provides the key fields the file records (seed,
/// requested partitions) and must match the bank (`num_samples` ==
/// bank.num_worlds(), partitioned iff num_partitions > 1); `generation`
/// is stamped into the header — pass previous generation + 1 when
/// republishing after an incremental relabel. Returns the file's total
/// byte size.
StatusOr<size_t> SaveIndex(const WorldView& bank,
                           const ReliabilityIndex& index,
                           const WorldViewOptions& world_options,
                           uint64_t generation, const std::string& path);

/// A loaded index and everything that keeps it alive. The bank's bit rows
/// point into `mapping` (zero copy), so members are ordered for correct
/// destruction: index first, then bank, then the mapping.
struct LoadedIndex {
  MappedFile mapping;
  std::unique_ptr<WorldView> bank;
  std::unique_ptr<ReliabilityIndex> index;
  uint64_t generation = 0;
  size_t file_bytes = 0;
};

/// Loads `path` for (g, world_options): O(file size) — mmap, validate,
/// checksum, adopt; no sampling and no relabeling. Typed failures:
///  - kNotFound: no file at `path`;
///  - kFailedPrecondition: not an index file (magic/version/endianness) or
///    built for a different key (digest, directedness, Z, seed, lane
///    layout, partition count) or over `index_options.max_label_bytes`;
///  - kIoError: truncation or checksum mismatch;
///  - kInvalidArgument: structurally malformed (inconsistent header fields,
///    misaligned or mis-sized sections, out-of-range payload values).
/// The returned bank reads directly from the read-only mapping; `g` must
/// outlive it.
StatusOr<LoadedIndex> LoadIndex(
    const std::string& path, const UncertainGraph& g,
    const WorldViewOptions& world_options,
    const ReliabilityIndex::Options& index_options);

/// Header + section table of an index file, without validating its key,
/// checksums, or payloads (magic/version/endianness and table bounds are
/// still checked). For tooling and tests.
struct IndexFileInfo {
  IndexFileHeader header;
  std::vector<IndexSectionEntry> sections;
  size_t file_bytes = 0;
};
StatusOr<IndexFileInfo> InspectIndexFile(const std::string& path);

}  // namespace relmax

#endif  // RELMAX_INDEX_INDEX_IO_H_
