#include "sampling/reliability.h"

#include <algorithm>
#include <cmath>

#include "sampling/parallel.h"

namespace relmax {
namespace {

// ceil(p * 2^53) <= 2^53 for p < 1, so anything above 2^53 marks "up without
// drawing" (p >= 1); 0 marks "down without drawing" (p <= 0).
constexpr uint64_t kP53 = uint64_t{1} << 53;
constexpr uint64_t kAlwaysUp = kP53 + 1;

// One integer threshold per CSR arc. `(Next() >> 11) < threshold` is exactly
// `NextDouble() < p`: the 53-bit draw and p * 2^53 are both exact in double,
// so the integer comparison decides identically and consumes the same single
// draw — the RNG stream stays bit-identical to the double-compare kernel.
void BuildThresholds(const CsrView& csr, NodeId n,
                     std::vector<uint64_t>* thresholds) {
  const size_t num_arcs = csr.offsets[n];
  thresholds->resize(num_arcs);
  for (size_t i = 0; i < num_arcs; ++i) {
    const double p = csr.probs[i];
    (*thresholds)[i] =
        p <= 0.0   ? 0
        : p >= 1.0 ? kAlwaysUp
                   : static_cast<uint64_t>(std::ceil(p * 0x1p53));
  }
}

}  // namespace

MonteCarloSampler::MonteCarloSampler(const UncertainGraph& g, uint64_t seed)
    : graph_(g),
      graph_version_(g.version()),
      rng_(seed),
      visited_(g.num_nodes()),
      queue_(g.num_nodes(), 0),
      edge_cache_(g.directed() ? 0 : g.num_edges()) {}

template <bool kReverse>
const uint64_t* MonteCarloSampler::Thresholds() {
  const bool use_in = kReverse && graph_.directed();
  std::vector<uint64_t>& thresholds =
      use_in ? in_thresholds_ : out_thresholds_;
  if (thresholds.empty() && graph_.num_edges() > 0) {
    BuildThresholds(use_in ? graph_.InCsr() : graph_.OutCsr(),
                    graph_.num_nodes(), &thresholds);
  }
  return thresholds.data();
}

void MonteCarloSampler::SyncWithGraph() {
  if (graph_.version() == graph_version_) return;
  graph_version_ = graph_.version();
  visited_ = VisitMarker(graph_.num_nodes());
  queue_.assign(graph_.num_nodes(), 0);
  queue_size_ = 0;
  edge_cache_.Reset(graph_.directed() ? 0 : graph_.num_edges());
  out_thresholds_.clear();
  in_thresholds_.clear();
}

template <bool kReverse>
bool MonteCarloSampler::SampleWorldBfs(const std::vector<NodeId>& seeds,
                                       NodeId stop_at) {
  SyncWithGraph();
  const CsrView csr = kReverse ? graph_.InCsr() : graph_.OutCsr();
  const uint64_t* const thresholds = Thresholds<kReverse>();
  return graph_.directed()
             ? RunWorldBfs<true>(csr, thresholds, seeds.data(), seeds.size(),
                                 stop_at)
             : RunWorldBfs<false>(csr, thresholds, seeds.data(), seeds.size(),
                                  stop_at);
}

template <bool kDirected>
bool MonteCarloSampler::RunWorldBfs(const CsrView& csr,
                                    const uint64_t* thresholds,
                                    const NodeId* seeds, size_t num_seeds,
                                    NodeId stop_at) {
  visited_.NewEpoch();
  edge_cache_.BeginWorld();
  // Everything the loop touches is hoisted to locals: the vectors never
  // reallocate mid-world (queue_ is pre-sized to num_nodes), and keeping raw
  // pointers in registers stops the stores from forcing per-arc reloads of
  // the member vectors' data pointers. The packed-state accesses below
  // follow the EdgeWorldCache contract.
  uint32_t* const stamp = visited_.stamp();
  const uint32_t vmark = visited_.epoch();
  uint32_t* const edge_state = edge_cache_.state();
  const uint32_t epoch = edge_cache_.epoch();
  NodeId* const queue = queue_.data();
  size_t qsize = 0;
  for (size_t k = 0; k < num_seeds; ++k) {
    const NodeId s = seeds[k];
    if (stamp[s] != vmark) {
      stamp[s] = vmark;
      if (s == stop_at) {
        queue_size_ = qsize;
        return true;
      }
      queue[qsize++] = s;
    }
  }
  for (size_t head = 0; head < qsize; ++head) {
    const NodeId u = queue[head];
    const size_t end = csr.offsets[u + 1];
    for (size_t i = csr.offsets[u]; i < end; ++i) {
      const NodeId v = csr.heads[i];
      if (stamp[v] == vmark) continue;
      if constexpr (kDirected) {
        // A directed arc is met at most once per world BFS (its tail is
        // dequeued once), so an independent flip is already world-coherent.
        const uint64_t t = thresholds[i];
        if (t == 0) continue;
        if (t <= kP53 && (rng_.Next() >> 11) >= t) continue;
      } else {
        // Undirected: both stored arcs share the logical edge id; flip once
        // per world and cache the outcome.
        uint32_t& state = edge_state[csr.edge_ids[i]];
        if ((state >> 1) != epoch) {
          const uint64_t t = thresholds[i];
          const bool up = t > kP53 || (t != 0 && (rng_.Next() >> 11) < t);
          state = (epoch << 1) | (up ? 1u : 0u);
        }
        if ((state & 1u) == 0) continue;
      }
      stamp[v] = vmark;
      if (v == stop_at) {
        queue_size_ = qsize;
        return true;
      }
      queue[qsize++] = v;
    }
  }
  queue_size_ = qsize;
  return stop_at != kInvalidNode && visited_.Visited(stop_at);
}

int MonteCarloSampler::ReliabilityHits(NodeId s, NodeId t, int num_samples) {
  RELMAX_CHECK(s < graph_.num_nodes() && t < graph_.num_nodes());
  RELMAX_CHECK(num_samples > 0);
  if (s == t) return num_samples;
  // The hot serial path: the flat arrays are fetched once for the whole
  // world batch instead of once per world.
  SyncWithGraph();
  const CsrView csr = graph_.OutCsr();
  const uint64_t* const thresholds = Thresholds<false>();
  int hits = 0;
  if (graph_.directed()) {
    for (int i = 0; i < num_samples; ++i) {
      hits += RunWorldBfs<true>(csr, thresholds, &s, 1, t) ? 1 : 0;
    }
  } else {
    for (int i = 0; i < num_samples; ++i) {
      hits += RunWorldBfs<false>(csr, thresholds, &s, 1, t) ? 1 : 0;
    }
  }
  return hits;
}

double MonteCarloSampler::Reliability(NodeId s, NodeId t, int num_samples) {
  return static_cast<double>(ReliabilityHits(s, t, num_samples)) / num_samples;
}

std::vector<double> MonteCarloSampler::FromSource(NodeId s, int num_samples) {
  return FromSourceSet({s}, num_samples);
}

void MonteCarloSampler::AccumulateFromSourceSet(
    const std::vector<NodeId>& sources, int num_samples,
    std::vector<int64_t>* counts) {
  RELMAX_CHECK(num_samples > 0);
  RELMAX_CHECK(counts->size() == graph_.num_nodes());
  for (int i = 0; i < num_samples; ++i) {
    SampleWorldBfs<false>(sources, kInvalidNode);
    for (size_t k = 0; k < queue_size_; ++k) ++(*counts)[queue_[k]];
  }
}

std::vector<double> MonteCarloSampler::FromSourceSet(
    const std::vector<NodeId>& sources, int num_samples) {
  std::vector<int64_t> counts(graph_.num_nodes(), 0);
  AccumulateFromSourceSet(sources, num_samples, &counts);
  std::vector<double> reliability(graph_.num_nodes());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    reliability[v] = static_cast<double>(counts[v]) / num_samples;
  }
  return reliability;
}

void MonteCarloSampler::AccumulateToTarget(NodeId t, int num_samples,
                                           std::vector<int64_t>* counts) {
  RELMAX_CHECK(num_samples > 0);
  RELMAX_CHECK(counts->size() == graph_.num_nodes());
  const std::vector<NodeId> seeds = {t};
  for (int i = 0; i < num_samples; ++i) {
    SampleWorldBfs<true>(seeds, kInvalidNode);
    for (size_t k = 0; k < queue_size_; ++k) ++(*counts)[queue_[k]];
  }
}

std::vector<double> MonteCarloSampler::ToTarget(NodeId t, int num_samples) {
  std::vector<int64_t> counts(graph_.num_nodes(), 0);
  AccumulateToTarget(t, num_samples, &counts);
  std::vector<double> reliability(graph_.num_nodes());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    reliability[v] = static_cast<double>(counts[v]) / num_samples;
  }
  return reliability;
}

int MonteCarloSampler::SetReliabilityHits(const std::vector<NodeId>& sources,
                                          NodeId t, int num_samples) {
  RELMAX_CHECK(num_samples > 0);
  for (NodeId s : sources) {
    if (s == t) return num_samples;
  }
  int hits = 0;
  for (int i = 0; i < num_samples; ++i) {
    hits += SampleWorldBfs<false>(sources, t) ? 1 : 0;
  }
  return hits;
}

double MonteCarloSampler::SetReliability(const std::vector<NodeId>& sources,
                                         NodeId t, int num_samples) {
  return static_cast<double>(SetReliabilityHits(sources, t, num_samples)) /
         num_samples;
}

double EstimateReliability(const UncertainGraph& g, NodeId s, NodeId t,
                           const SampleOptions& options) {
  return ParallelReliability(g, s, t, options);
}

std::vector<double> ReliabilityFromSource(const UncertainGraph& g, NodeId s,
                                          const SampleOptions& options) {
  RELMAX_CHECK(s < g.num_nodes());
  return ParallelFromSourceSet(g, {s}, options);
}

std::vector<double> ReliabilityToTarget(const UncertainGraph& g, NodeId t,
                                        const SampleOptions& options) {
  return ParallelToTarget(g, t, options);
}

}  // namespace relmax
