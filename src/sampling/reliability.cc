#include "sampling/reliability.h"

#include <algorithm>

#include "sampling/parallel.h"

namespace relmax {

MonteCarloSampler::MonteCarloSampler(const UncertainGraph& g, uint64_t seed)
    : graph_(g),
      rng_(seed),
      visited_(g.num_nodes()),
      edge_epoch_(g.directed() ? 0 : g.num_edges(), 0),
      edge_present_(g.directed() ? 0 : g.num_edges(), 0) {
  queue_.reserve(g.num_nodes());
}

bool MonteCarloSampler::ArcExists(const Arc& arc) {
  if (graph_.directed()) {
    // A directed arc is met at most once per world BFS (its tail is dequeued
    // once), so an independent flip is already world-coherent.
    return rng_.NextBernoulli(arc.prob);
  }
  // Undirected: both stored arcs share the logical edge id; flip once per
  // world and cache the outcome.
  if (edge_epoch_[arc.edge_id] != world_epoch_) {
    edge_epoch_[arc.edge_id] = world_epoch_;
    edge_present_[arc.edge_id] = rng_.NextBernoulli(arc.prob) ? 1 : 0;
  }
  return edge_present_[arc.edge_id] != 0;
}

template <bool kReverse>
bool MonteCarloSampler::SampleWorldBfs(const std::vector<NodeId>& seeds,
                                       NodeId stop_at) {
  visited_.NewEpoch();
  ++world_epoch_;
  queue_.clear();
  for (NodeId s : seeds) {
    if (visited_.Visit(s)) {
      if (s == stop_at) return true;
      queue_.push_back(s);
    }
  }
  for (size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    const std::vector<Arc>& arcs =
        kReverse ? graph_.InArcs(u) : graph_.OutArcs(u);
    for (const Arc& arc : arcs) {
      if (visited_.Visited(arc.to)) continue;
      if (!ArcExists(arc)) continue;
      visited_.Visit(arc.to);
      if (arc.to == stop_at) return true;
      queue_.push_back(arc.to);
    }
  }
  return stop_at != kInvalidNode && visited_.Visited(stop_at);
}

int MonteCarloSampler::ReliabilityHits(NodeId s, NodeId t, int num_samples) {
  RELMAX_CHECK(s < graph_.num_nodes() && t < graph_.num_nodes());
  RELMAX_CHECK(num_samples > 0);
  if (s == t) return num_samples;
  const std::vector<NodeId> seeds = {s};
  int hits = 0;
  for (int i = 0; i < num_samples; ++i) {
    hits += SampleWorldBfs<false>(seeds, t) ? 1 : 0;
  }
  return hits;
}

double MonteCarloSampler::Reliability(NodeId s, NodeId t, int num_samples) {
  return static_cast<double>(ReliabilityHits(s, t, num_samples)) / num_samples;
}

std::vector<double> MonteCarloSampler::FromSource(NodeId s, int num_samples) {
  return FromSourceSet({s}, num_samples);
}

void MonteCarloSampler::AccumulateFromSourceSet(
    const std::vector<NodeId>& sources, int num_samples,
    std::vector<int64_t>* counts) {
  RELMAX_CHECK(num_samples > 0);
  RELMAX_CHECK(counts->size() == graph_.num_nodes());
  for (int i = 0; i < num_samples; ++i) {
    SampleWorldBfs<false>(sources, kInvalidNode);
    for (NodeId v : queue_) ++(*counts)[v];
  }
}

std::vector<double> MonteCarloSampler::FromSourceSet(
    const std::vector<NodeId>& sources, int num_samples) {
  std::vector<int64_t> counts(graph_.num_nodes(), 0);
  AccumulateFromSourceSet(sources, num_samples, &counts);
  std::vector<double> reliability(graph_.num_nodes());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    reliability[v] = static_cast<double>(counts[v]) / num_samples;
  }
  return reliability;
}

void MonteCarloSampler::AccumulateToTarget(NodeId t, int num_samples,
                                           std::vector<int64_t>* counts) {
  RELMAX_CHECK(num_samples > 0);
  RELMAX_CHECK(counts->size() == graph_.num_nodes());
  const std::vector<NodeId> seeds = {t};
  for (int i = 0; i < num_samples; ++i) {
    SampleWorldBfs<true>(seeds, kInvalidNode);
    for (NodeId v : queue_) ++(*counts)[v];
  }
}

std::vector<double> MonteCarloSampler::ToTarget(NodeId t, int num_samples) {
  std::vector<int64_t> counts(graph_.num_nodes(), 0);
  AccumulateToTarget(t, num_samples, &counts);
  std::vector<double> reliability(graph_.num_nodes());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    reliability[v] = static_cast<double>(counts[v]) / num_samples;
  }
  return reliability;
}

int MonteCarloSampler::SetReliabilityHits(const std::vector<NodeId>& sources,
                                          NodeId t, int num_samples) {
  RELMAX_CHECK(num_samples > 0);
  for (NodeId s : sources) {
    if (s == t) return num_samples;
  }
  int hits = 0;
  for (int i = 0; i < num_samples; ++i) {
    hits += SampleWorldBfs<false>(sources, t) ? 1 : 0;
  }
  return hits;
}

double MonteCarloSampler::SetReliability(const std::vector<NodeId>& sources,
                                         NodeId t, int num_samples) {
  return static_cast<double>(SetReliabilityHits(sources, t, num_samples)) /
         num_samples;
}

double EstimateReliability(const UncertainGraph& g, NodeId s, NodeId t,
                           const SampleOptions& options) {
  return ParallelReliability(g, s, t, options);
}

std::vector<double> ReliabilityFromSource(const UncertainGraph& g, NodeId s,
                                          const SampleOptions& options) {
  RELMAX_CHECK(s < g.num_nodes());
  return ParallelFromSourceSet(g, {s}, options);
}

std::vector<double> ReliabilityToTarget(const UncertainGraph& g, NodeId t,
                                        const SampleOptions& options) {
  return ParallelToTarget(g, t, options);
}

}  // namespace relmax
