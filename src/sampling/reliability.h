#ifndef RELMAX_SAMPLING_RELIABILITY_H_
#define RELMAX_SAMPLING_RELIABILITY_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "graph/visit_marker.h"
#include "sampling/edge_world_cache.h"

namespace relmax {

/// Effort/seed knobs for Monte Carlo estimation (§3.1 of the paper).
struct SampleOptions {
  /// Number of sampled possible worlds Z.
  int num_samples = 1000;
  /// RNG seed; estimates are deterministic for a fixed seed.
  uint64_t seed = 42;
  /// Worker lanes for the batched executor (sampling/parallel.h); <= 0 means
  /// all hardware threads. Estimates are bit-identical for a fixed seed
  /// regardless of this value — it only changes wall-clock time.
  int num_threads = 1;
};

/// Reusable Monte Carlo reliability estimator over one uncertain graph.
///
/// Each sampled world is materialized lazily during BFS: an edge's coin is
/// flipped the first time the traversal meets it, and the outcome is cached
/// per world so that the two stored arcs of an undirected edge agree. Holding
/// the sampler across calls amortizes the scratch allocations; the
/// free-function wrappers below construct one per call.
class MonteCarloSampler {
 public:
  MonteCarloSampler(const UncertainGraph& g, uint64_t seed);

  /// Restarts the RNG stream as if constructed with `seed`. The batched
  /// executor reuses one sampler per worker lane and reseeds it per shard.
  void Reseed(uint64_t seed) { rng_.Reseed(seed); }

  /// Estimates R(s, t, G) from `num_samples` sampled worlds (Equation 2).
  double Reliability(NodeId s, NodeId t, int num_samples);

  /// Number of worlds (out of `num_samples`) in which t is reachable from s.
  /// Integer tallies are what the batched executor combines across shards:
  /// their sums are exact, so merge order cannot perturb the estimate.
  int ReliabilityHits(NodeId s, NodeId t, int num_samples);

  /// Number of worlds in which t is reachable from at least one source.
  int SetReliabilityHits(const std::vector<NodeId>& sources, NodeId t,
                         int num_samples);

  /// Adds per-node reach counts from the source set over `num_samples`
  /// worlds into `counts` (size num_nodes()).
  void AccumulateFromSourceSet(const std::vector<NodeId>& sources,
                               int num_samples, std::vector<int64_t>* counts);

  /// Adds per-node reverse-reach counts toward t into `counts`.
  void AccumulateToTarget(NodeId t, int num_samples,
                          std::vector<int64_t>* counts);

  /// Fraction of worlds in which each node is reachable from s — the paper's
  /// "reliability from the source" used by search-space elimination (§5.1.1).
  std::vector<double> FromSource(NodeId s, int num_samples);

  /// Fraction of worlds in which each node reaches t (reverse traversal).
  std::vector<double> ToTarget(NodeId t, int num_samples);

  /// Probability that *any* source reaches t, i.e. R(S, t) under the
  /// multi-source semantics of §8.4.2.
  double SetReliability(const std::vector<NodeId>& sources, NodeId t,
                        int num_samples);

  /// Fraction of worlds each node is reachable from at least one source.
  std::vector<double> FromSourceSet(const std::vector<NodeId>& sources,
                                    int num_samples);

  const UncertainGraph& graph() const { return graph_; }

 private:
  // One sampled-world BFS. Reverse=true walks in-arcs. Visits are recorded in
  // visited_; traversal stops early when `stop_at` is reached (pass
  // kInvalidNode to disable). Dispatches on directedness so the flat-CSR
  // inner loop carries no per-arc branch for the graph kind.
  template <bool kReverse>
  bool SampleWorldBfs(const std::vector<NodeId>& seeds, NodeId stop_at);

  // The world-BFS core over prefetched flat arrays. Direction is whatever
  // `csr`/`thresholds` encode; tight world loops (ReliabilityHits) fetch
  // them once and call this per world.
  template <bool kDirected>
  bool RunWorldBfs(const CsrView& csr, const uint64_t* thresholds,
                   const NodeId* seeds, size_t num_seeds, NodeId stop_at);

  // Per-arc integer draw thresholds for the traversed direction, built on
  // first use: `(rng.Next() >> 11) < threshold` decides exactly like
  // `NextDouble() < prob` (bit-identical, same draw count), with sentinels
  // for the no-draw p <= 0 / p >= 1 cases.
  template <bool kReverse>
  const uint64_t* Thresholds();

  // Re-sizes the scratch and drops cached thresholds when the graph mutated
  // since the last call (detected via UncertainGraph::version()), so edge
  // additions and probability updates between estimates are picked up
  // instead of read through stale caches.
  void SyncWithGraph();

  const UncertainGraph& graph_;
  uint64_t graph_version_;
  Rng rng_;
  VisitMarker visited_;
  // BFS frontier scratch, sized num_nodes up front; queue_size_ tracks the
  // live prefix so the hot loop writes through a stable raw pointer.
  std::vector<NodeId> queue_;
  size_t queue_size_ = 0;
  std::vector<uint64_t> out_thresholds_;
  std::vector<uint64_t> in_thresholds_;  // directed reverse walks only
  // Per-world edge outcome cache (undirected graphs only).
  EdgeWorldCache edge_cache_;
};

/// One-shot wrapper: Monte Carlo estimate of R(s, t, G) via the batched
/// executor (sampling/parallel.h). For a fixed (num_samples, seed) the
/// estimate is bit-identical across any options.num_threads.
double EstimateReliability(const UncertainGraph& g, NodeId s, NodeId t,
                           const SampleOptions& options = {});

/// One-shot wrapper: reliability of every node from source s.
std::vector<double> ReliabilityFromSource(const UncertainGraph& g, NodeId s,
                                          const SampleOptions& options = {});

/// One-shot wrapper: reliability of every node to target t.
std::vector<double> ReliabilityToTarget(const UncertainGraph& g, NodeId t,
                                        const SampleOptions& options = {});

}  // namespace relmax

#endif  // RELMAX_SAMPLING_RELIABILITY_H_
