#include "sampling/rss.h"

#include <algorithm>
#include <cmath>

namespace relmax {

RssSampler::RssSampler(const UncertainGraph& g, const RssOptions& options)
    : graph_(g),
      options_(options),
      rng_(options.seed),
      state_(g.num_edges(), EdgeState::kUndetermined),
      visited_(g.num_nodes()),
      edge_epoch_(g.directed() ? 0 : g.num_edges(), 0),
      edge_present_(g.directed() ? 0 : g.num_edges(), 0) {
  RELMAX_CHECK(options_.num_samples > 0);
  RELMAX_CHECK(options_.strata_width > 0);
  RELMAX_CHECK(options_.mc_threshold > 0);
  queue_.reserve(g.num_nodes());
}

template <bool kReverse>
std::vector<NodeId> RssSampler::CertainlyReached(
    const std::vector<NodeId>& roots) const {
  std::vector<char> seen(graph_.num_nodes(), 0);
  std::vector<NodeId> reached;
  for (NodeId r : roots) {
    if (!seen[r]) {
      seen[r] = 1;
      reached.push_back(r);
    }
  }
  for (size_t head = 0; head < reached.size(); ++head) {
    const NodeId u = reached[head];
    const std::vector<Arc>& arcs =
        kReverse ? graph_.InArcs(u) : graph_.OutArcs(u);
    for (const Arc& arc : arcs) {
      if (state_[arc.edge_id] == EdgeState::kPresent && !seen[arc.to]) {
        seen[arc.to] = 1;
        reached.push_back(arc.to);
      }
    }
  }
  return reached;
}

template <bool kReverse>
double RssSampler::ConditionedMc(const std::vector<NodeId>& roots,
                                 NodeId target, int num_samples,
                                 double weight) {
  int hits = 0;
  std::vector<int> counts;
  if (all_nodes_mode_) counts.assign(graph_.num_nodes(), 0);

  for (int sample = 0; sample < num_samples; ++sample) {
    visited_.NewEpoch();
    ++world_epoch_;
    queue_.clear();
    bool hit = false;
    for (NodeId r : roots) {
      if (visited_.Visit(r)) {
        if (r == target) hit = true;
        queue_.push_back(r);
      }
    }
    for (size_t head = 0; head < queue_.size() && !hit; ++head) {
      const NodeId u = queue_[head];
      const std::vector<Arc>& arcs =
          kReverse ? graph_.InArcs(u) : graph_.OutArcs(u);
      for (const Arc& arc : arcs) {
        if (visited_.Visited(arc.to)) continue;
        const EdgeState st = state_[arc.edge_id];
        bool exists;
        if (st == EdgeState::kPresent) {
          exists = true;
        } else if (st == EdgeState::kAbsent) {
          exists = false;
        } else if (graph_.directed()) {
          exists = rng_.NextBernoulli(arc.prob);
        } else {
          // Coherent flip for the undirected edge within this world.
          if (edge_epoch_[arc.edge_id] != world_epoch_) {
            edge_epoch_[arc.edge_id] = world_epoch_;
            edge_present_[arc.edge_id] = rng_.NextBernoulli(arc.prob) ? 1 : 0;
          }
          exists = edge_present_[arc.edge_id] != 0;
        }
        if (!exists) continue;
        visited_.Visit(arc.to);
        if (arc.to == target) {
          hit = true;
          break;
        }
        queue_.push_back(arc.to);
      }
    }
    if (hit) ++hits;
    if (all_nodes_mode_) {
      for (NodeId v : queue_) ++counts[v];
    }
  }

  if (all_nodes_mode_) {
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (counts[v] > 0) {
        acc_[v] += weight * static_cast<double>(counts[v]) / num_samples;
      }
    }
    return 0.0;
  }
  return static_cast<double>(hits) / num_samples;
}

template <bool kReverse>
double RssSampler::Recurse(const std::vector<NodeId>& roots, NodeId target,
                           double budget, double weight) {
  const std::vector<NodeId> reached = CertainlyReached<kReverse>(roots);
  if (!all_nodes_mode_) {
    for (NodeId v : reached) {
      if (v == target) return 1.0;
    }
  }

  if (budget < options_.mc_threshold) {
    const int samples =
        std::max(1, static_cast<int>(std::llround(std::ceil(budget))));
    return ConditionedMc<kReverse>(roots, target, samples, weight);
  }

  // Pivot on up to `strata_width` undetermined frontier edges: only edges
  // leaving the certainly-reached set can extend it, so conditioning on them
  // partitions the remaining uncertainty that matters.
  std::vector<char> in_reached(graph_.num_nodes(), 0);
  for (NodeId v : reached) in_reached[v] = 1;
  std::vector<EdgeId> pivots;
  std::vector<double> pivot_probs;
  for (NodeId u : reached) {
    const std::vector<Arc>& arcs =
        kReverse ? graph_.InArcs(u) : graph_.OutArcs(u);
    for (const Arc& arc : arcs) {
      if (state_[arc.edge_id] != EdgeState::kUndetermined) continue;
      if (in_reached[arc.to]) continue;
      pivots.push_back(arc.edge_id);
      pivot_probs.push_back(arc.prob);
      if (static_cast<int>(pivots.size()) >= options_.strata_width) break;
    }
    if (static_cast<int>(pivots.size()) >= options_.strata_width) break;
  }

  if (pivots.empty()) {
    // Reachability fully determined: t unreachable in s-t mode; contribute
    // the reached set with this stratum's full weight otherwise.
    if (all_nodes_mode_) {
      for (NodeId v : reached) acc_[v] += weight;
    }
    return 0.0;
  }

  double result = 0.0;
  double prefix_absent = 1.0;  // Π_{j<i} (1 − p(e_j))
  for (size_t i = 0; i < pivots.size(); ++i) {
    const double pi = prefix_absent * pivot_probs[i];
    if (pi > 0.0) {
      state_[pivots[i]] = EdgeState::kPresent;
      result += pi * Recurse<kReverse>(roots, target, budget * pi, weight * pi);
    }
    state_[pivots[i]] = EdgeState::kAbsent;
    prefix_absent *= 1.0 - pivot_probs[i];
    if (prefix_absent == 0.0) break;
  }
  if (prefix_absent > 0.0) {
    // Final stratum: all pivot edges absent (they are already marked so).
    result += prefix_absent *
              Recurse<kReverse>(roots, target, budget * prefix_absent,
                                weight * prefix_absent);
  }
  for (EdgeId e : pivots) state_[e] = EdgeState::kUndetermined;
  return result;
}

double RssSampler::Reliability(NodeId s, NodeId t) {
  RELMAX_CHECK(s < graph_.num_nodes() && t < graph_.num_nodes());
  if (s == t) return 1.0;
  std::fill(state_.begin(), state_.end(), EdgeState::kUndetermined);
  return Recurse<false>({s}, t, options_.num_samples, 1.0);
}

template <bool kReverse>
std::vector<double> RssSampler::AllNodes(NodeId root) {
  RELMAX_CHECK(root < graph_.num_nodes());
  std::fill(state_.begin(), state_.end(), EdgeState::kUndetermined);
  acc_.assign(graph_.num_nodes(), 0.0);
  all_nodes_mode_ = true;
  Recurse<kReverse>({root}, kInvalidNode, options_.num_samples, 1.0);
  all_nodes_mode_ = false;
  return std::move(acc_);
}

std::vector<double> RssSampler::FromSource(NodeId s) {
  return AllNodes<false>(s);
}

std::vector<double> RssSampler::ToTarget(NodeId t) { return AllNodes<true>(t); }

double EstimateReliabilityRss(const UncertainGraph& g, NodeId s, NodeId t,
                              const RssOptions& options) {
  RssSampler sampler(g, options);
  return sampler.Reliability(s, t);
}

}  // namespace relmax
