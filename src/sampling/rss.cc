#include "sampling/rss.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sampling/parallel.h"

namespace relmax {

RssSampler::RssSampler(const UncertainGraph& g, const RssOptions& options)
    : graph_(g),
      options_(options),
      rng_(options.seed),
      state_(g.num_edges(), EdgeState::kUndetermined),
      visited_(g.num_nodes()),
      edge_cache_(g.directed() ? 0 : g.num_edges()) {
  RELMAX_CHECK(options_.num_samples > 0);
  RELMAX_CHECK(options_.strata_width > 0);
  RELMAX_CHECK(options_.mc_threshold > 0);
  queue_.reserve(g.num_nodes());
}

template <bool kReverse>
std::vector<NodeId> RssSampler::CertainlyReached(
    const std::vector<NodeId>& roots) const {
  std::vector<char> seen(graph_.num_nodes(), 0);
  std::vector<NodeId> reached;
  for (NodeId r : roots) {
    if (!seen[r]) {
      seen[r] = 1;
      reached.push_back(r);
    }
  }
  const CsrView csr = kReverse ? graph_.InCsr() : graph_.OutCsr();
  for (size_t head = 0; head < reached.size(); ++head) {
    const NodeId u = reached[head];
    const size_t end = csr.end(u);
    for (size_t i = csr.begin(u); i < end; ++i) {
      const NodeId v = csr.heads[i];
      if (state_[csr.edge_ids[i]] == EdgeState::kPresent && !seen[v]) {
        seen[v] = 1;
        reached.push_back(v);
      }
    }
  }
  return reached;
}

template <bool kReverse>
double RssSampler::ConditionedMc(const std::vector<NodeId>& roots,
                                 NodeId target, int num_samples,
                                 double weight) {
  int hits = 0;
  std::vector<int> counts;
  if (all_nodes_mode_) counts.assign(graph_.num_nodes(), 0);

  const CsrView csr = kReverse ? graph_.InCsr() : graph_.OutCsr();
  const bool directed = graph_.directed();
  for (int sample = 0; sample < num_samples; ++sample) {
    visited_.NewEpoch();
    edge_cache_.BeginWorld();
    queue_.clear();
    bool hit = false;
    for (NodeId r : roots) {
      if (visited_.Visit(r)) {
        if (r == target) hit = true;
        queue_.push_back(r);
      }
    }
    for (size_t head = 0; head < queue_.size() && !hit; ++head) {
      const NodeId u = queue_[head];
      const size_t end = csr.end(u);
      for (size_t i = csr.begin(u); i < end; ++i) {
        const NodeId v = csr.heads[i];
        if (visited_.Visited(v)) continue;
        const EdgeId e = csr.edge_ids[i];
        const EdgeState st = state_[e];
        bool exists;
        if (st == EdgeState::kPresent) {
          exists = true;
        } else if (st == EdgeState::kAbsent) {
          exists = false;
        } else if (directed) {
          exists = rng_.NextBernoulli(csr.probs[i]);
        } else {
          // Coherent flip for the undirected edge within this world.
          exists = edge_cache_.UpOrFlip(
              e, [&] { return rng_.NextBernoulli(csr.probs[i]); });
        }
        if (!exists) continue;
        visited_.Visit(v);
        if (v == target) {
          hit = true;
          break;
        }
        queue_.push_back(v);
      }
    }
    if (hit) ++hits;
    if (all_nodes_mode_) {
      for (NodeId v : queue_) ++counts[v];
    }
  }

  if (all_nodes_mode_) {
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (counts[v] > 0) {
        acc_[v] += weight * static_cast<double>(counts[v]) / num_samples;
      }
    }
    return 0.0;
  }
  return static_cast<double>(hits) / num_samples;
}

template <bool kReverse>
void RssSampler::PickPivots(const std::vector<NodeId>& reached,
                            std::vector<EdgeId>* pivots,
                            std::vector<double>* pivot_probs) const {
  // Pivot on up to `strata_width` undetermined frontier edges: only edges
  // leaving the certainly-reached set can extend it, so conditioning on them
  // partitions the remaining uncertainty that matters.
  std::vector<char> in_reached(graph_.num_nodes(), 0);
  for (NodeId v : reached) in_reached[v] = 1;
  const CsrView csr = kReverse ? graph_.InCsr() : graph_.OutCsr();
  for (NodeId u : reached) {
    const size_t end = csr.end(u);
    for (size_t i = csr.begin(u); i < end; ++i) {
      const EdgeId e = csr.edge_ids[i];
      if (state_[e] != EdgeState::kUndetermined) continue;
      if (in_reached[csr.heads[i]]) continue;
      pivots->push_back(e);
      pivot_probs->push_back(csr.probs[i]);
      if (static_cast<int>(pivots->size()) >= options_.strata_width) return;
    }
  }
}

template <bool kReverse>
double RssSampler::Recurse(const std::vector<NodeId>& roots, NodeId target,
                           double budget, double weight) {
  const std::vector<NodeId> reached = CertainlyReached<kReverse>(roots);
  if (!all_nodes_mode_) {
    for (NodeId v : reached) {
      if (v == target) return 1.0;
    }
  }

  if (budget < options_.mc_threshold) {
    const int samples =
        std::max(1, static_cast<int>(std::llround(std::ceil(budget))));
    return ConditionedMc<kReverse>(roots, target, samples, weight);
  }

  std::vector<EdgeId> pivots;
  std::vector<double> pivot_probs;
  PickPivots<kReverse>(reached, &pivots, &pivot_probs);

  if (pivots.empty()) {
    // Reachability fully determined: t unreachable in s-t mode; contribute
    // the reached set with this stratum's full weight otherwise.
    if (all_nodes_mode_) {
      for (NodeId v : reached) acc_[v] += weight;
    }
    return 0.0;
  }

  double result = 0.0;
  double prefix_absent = 1.0;  // Π_{j<i} (1 − p(e_j))
  for (size_t i = 0; i < pivots.size(); ++i) {
    const double pi = prefix_absent * pivot_probs[i];
    if (pi > 0.0) {
      state_[pivots[i]] = EdgeState::kPresent;
      result += pi * Recurse<kReverse>(roots, target, budget * pi, weight * pi);
    }
    state_[pivots[i]] = EdgeState::kAbsent;
    prefix_absent *= 1.0 - pivot_probs[i];
    if (prefix_absent == 0.0) break;
  }
  if (prefix_absent > 0.0) {
    // Final stratum: all pivot edges absent (they are already marked so).
    result += prefix_absent *
              Recurse<kReverse>(roots, target, budget * prefix_absent,
                                weight * prefix_absent);
  }
  for (EdgeId e : pivots) state_[e] = EdgeState::kUndetermined;
  return result;
}

template <bool kReverse>
double RssSampler::TopLevelStrata(const std::vector<NodeId>& roots,
                                  NodeId target) {
  const double budget = options_.num_samples;
  const std::vector<NodeId> reached = CertainlyReached<kReverse>(roots);
  if (!all_nodes_mode_) {
    for (NodeId v : reached) {
      if (v == target) return 1.0;
    }
  }

  std::vector<EdgeId> pivots;
  std::vector<double> pivot_probs;
  if (budget >= options_.mc_threshold) {
    PickPivots<kReverse>(reached, &pivots, &pivot_probs);
  }
  if (pivots.empty()) {
    // Tiny budget or fully determined reachability: one stratum, one stream.
    rng_.Reseed(ShardSeed(options_.seed, 0));
    return Recurse<kReverse>(roots, target, budget, 1.0);
  }

  // First-level strata: stratum i fixes pivots 0..i-1 absent and pivot i
  // present; the final stratum fixes all pivots absent. Each is an
  // independent work item with weight π_i and its own counter-based stream.
  struct Stratum {
    size_t absent_prefix;  // pivots [0, absent_prefix) are conditioned absent
    bool pivot_present;    // pivots[absent_prefix] conditioned present
    double weight;
    uint64_t seed;
  };
  std::vector<Stratum> strata;
  double prefix_absent = 1.0;
  for (size_t i = 0; i < pivots.size(); ++i) {
    const double pi = prefix_absent * pivot_probs[i];
    if (pi > 0.0) {
      strata.push_back({i, true, pi, ShardSeed(options_.seed, i)});
    }
    prefix_absent *= 1.0 - pivot_probs[i];
    if (prefix_absent == 0.0) break;
  }
  if (prefix_absent > 0.0) {
    strata.push_back({pivots.size(), false, prefix_absent,
                      ShardSeed(options_.seed, pivots.size())});
  }

  // Resets `sampler` to the stratum's conditioning and stream.
  const auto enter_stratum = [&](RssSampler& sampler, const Stratum& stratum) {
    std::fill(sampler.state_.begin(), sampler.state_.end(),
              EdgeState::kUndetermined);
    for (size_t j = 0; j < stratum.absent_prefix; ++j) {
      sampler.state_[pivots[j]] = EdgeState::kAbsent;
    }
    if (stratum.pivot_present) {
      sampler.state_[pivots[stratum.absent_prefix]] = EdgeState::kPresent;
    }
    sampler.rng_.Reseed(stratum.seed);
  };

  const size_t lanes = std::min(
      static_cast<size_t>(ResolveNumThreads(options_.num_threads)),
      strata.size());
  if (lanes <= 1) {
    // Serial: run the strata in order on *this* sampler — no duplicate
    // scratch. All-nodes contributions are still summed per stratum and
    // folded afterwards, in the exact association the multi-lane fold below
    // uses, so the result stays bit-identical to any num_threads.
    std::vector<double> folded;
    if (all_nodes_mode_) folded = std::move(acc_);
    double total = 0.0;
    for (const Stratum& stratum : strata) {
      enter_stratum(*this, stratum);
      if (all_nodes_mode_) acc_.assign(graph_.num_nodes(), 0.0);
      total += stratum.weight * Recurse<kReverse>(
                                    roots, target, budget * stratum.weight,
                                    stratum.weight);
      if (all_nodes_mode_) {
        for (NodeId v = 0; v < graph_.num_nodes(); ++v) folded[v] += acc_[v];
      }
    }
    if (all_nodes_mode_) {
      acc_ = std::move(folded);
      return 0.0;
    }
    return total;
  }

  const bool all_nodes = all_nodes_mode_;
  std::vector<double> results(strata.size(), 0.0);
  std::vector<std::vector<double>> stratum_accs(all_nodes ? strata.size() : 0);
  ForEachShard(
      strata.size(), options_.num_threads,
      [this] {
        return std::unique_ptr<RssSampler>(new RssSampler(graph_, options_));
      },
      [&](std::unique_ptr<RssSampler>& worker, size_t i) {
        const Stratum& stratum = strata[i];
        enter_stratum(*worker, stratum);
        worker->all_nodes_mode_ = all_nodes;
        if (all_nodes) worker->acc_.assign(graph_.num_nodes(), 0.0);
        const double conditional = worker->Recurse<kReverse>(
            roots, target, budget * stratum.weight, stratum.weight);
        if (all_nodes) {
          stratum_accs[i] = std::move(worker->acc_);
        } else {
          results[i] = stratum.weight * conditional;
        }
      },
      [](std::unique_ptr<RssSampler>&) {});

  if (all_nodes) {
    // Fold per-stratum accumulators in stratum order — deterministic no
    // matter which lane produced which stratum.
    for (const std::vector<double>& acc : stratum_accs) {
      for (NodeId v = 0; v < graph_.num_nodes(); ++v) acc_[v] += acc[v];
    }
    return 0.0;
  }
  double total = 0.0;
  for (double r : results) total += r;
  return total;
}

double RssSampler::Reliability(NodeId s, NodeId t) {
  RELMAX_CHECK(s < graph_.num_nodes() && t < graph_.num_nodes());
  if (s == t) return 1.0;
  std::fill(state_.begin(), state_.end(), EdgeState::kUndetermined);
  return TopLevelStrata<false>({s}, t);
}

template <bool kReverse>
std::vector<double> RssSampler::AllNodes(NodeId root) {
  RELMAX_CHECK(root < graph_.num_nodes());
  std::fill(state_.begin(), state_.end(), EdgeState::kUndetermined);
  acc_.assign(graph_.num_nodes(), 0.0);
  all_nodes_mode_ = true;
  TopLevelStrata<kReverse>({root}, kInvalidNode);
  all_nodes_mode_ = false;
  return std::move(acc_);
}

std::vector<double> RssSampler::FromSource(NodeId s) {
  return AllNodes<false>(s);
}

std::vector<double> RssSampler::ToTarget(NodeId t) { return AllNodes<true>(t); }

double EstimateReliabilityRss(const UncertainGraph& g, NodeId s, NodeId t,
                              const RssOptions& options) {
  RssSampler sampler(g, options);
  return sampler.Reliability(s, t);
}

}  // namespace relmax
