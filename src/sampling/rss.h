#ifndef RELMAX_SAMPLING_RSS_H_
#define RELMAX_SAMPLING_RSS_H_

#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "graph/visit_marker.h"
#include "sampling/edge_world_cache.h"

namespace relmax {

/// Knobs for recursive stratified sampling (Li et al. [19], §5.3 of the
/// paper).
struct RssOptions {
  /// Total sample budget Z, divided among strata as Z_i = π_i · Z.
  int num_samples = 250;
  /// Edges r selected per stratification level (the paper's r).
  int strata_width = 6;
  /// Below this per-stratum budget, fall back to plain Monte Carlo on the
  /// simplified graph.
  int mc_threshold = 12;
  uint64_t seed = 42;
  /// Worker lanes for the top-level strata (sampling/parallel.h); <= 0 means
  /// all hardware threads. Each first-level stratum draws from its own
  /// counter-based stream, so estimates are bit-identical for a fixed seed
  /// regardless of this value.
  int num_threads = 1;
};

/// Recursive stratified sampling estimator.
///
/// The probability space is recursively partitioned by conditioning on r
/// frontier edges: stratum i fixes edges e_1..e_{i-1} absent and e_i present
/// (stratum r+1 fixes all r absent), contributing with weight
/// π_i = p(e_i)·Π_{j<i}(1−p(e_j)). Strata whose budget falls below
/// `mc_threshold` are estimated by Monte Carlo on the simplified
/// (conditioned) graph. The estimator is unbiased and has strictly smaller
/// variance than plain MC with the same budget, which is why the paper's
/// Tables 6–7 reach the convergence threshold with roughly half the samples.
class RssSampler {
 public:
  RssSampler(const UncertainGraph& g, const RssOptions& options);

  /// Estimates R(s, t, G).
  double Reliability(NodeId s, NodeId t);

  /// Reliability of every node from s (stratified analogue of
  /// MonteCarloSampler::FromSource), used by search-space elimination.
  std::vector<double> FromSource(NodeId s);

  /// Reliability of every node to t (reverse traversal).
  std::vector<double> ToTarget(NodeId t);

 private:
  enum class EdgeState : uint8_t { kUndetermined, kPresent, kAbsent };

  // Nodes certainly reachable from `roots` via kPresent edges.
  // kReverse walks in-arcs.
  template <bool kReverse>
  std::vector<NodeId> CertainlyReached(const std::vector<NodeId>& roots) const;

  // Up to strata_width undetermined frontier edges leaving `reached`, the
  // pivots the next stratification level conditions on.
  template <bool kReverse>
  void PickPivots(const std::vector<NodeId>& reached,
                  std::vector<EdgeId>* pivots,
                  std::vector<double>* pivot_probs) const;

  // Entry point shared by Reliability and AllNodes: partitions the space on
  // the first-level pivots and runs each stratum as an independent work item
  // on the batched executor. Stratum i draws from the counter-based stream
  // ShardSeed(seed, i) and results combine in stratum order, so the value is
  // bit-identical for any num_threads (1 included — the serial path runs the
  // same per-stratum streams).
  template <bool kReverse>
  double TopLevelStrata(const std::vector<NodeId>& roots, NodeId target);

  // Recursive stratification. `weight` is the probability mass π of the
  // current stratum; `budget` its sample allowance. In s-t mode (target !=
  // kInvalidNode) returns the conditional reliability estimate; in all-nodes
  // mode accumulates weight-scaled per-node reachability into acc_ at the
  // leaves and returns 0.
  template <bool kReverse>
  double Recurse(const std::vector<NodeId>& roots, NodeId target,
                 double budget, double weight);

  // Plain MC on the conditioned graph: kPresent edges are certain, kAbsent
  // edges are gone, the rest keep p(e).
  template <bool kReverse>
  double ConditionedMc(const std::vector<NodeId>& roots, NodeId target,
                       int num_samples, double weight);

  template <bool kReverse>
  std::vector<double> AllNodes(NodeId root);

  const UncertainGraph& graph_;
  RssOptions options_;
  Rng rng_;
  std::vector<EdgeState> state_;
  // All-nodes mode accumulator (weighted reach probability per node).
  std::vector<double> acc_;
  bool all_nodes_mode_ = false;
  // Scratch for ConditionedMc.
  VisitMarker visited_;
  std::vector<NodeId> queue_;
  // Coherent per-world flips for undirected edges (empty when directed).
  EdgeWorldCache edge_cache_;
};

/// One-shot wrapper: RSS estimate of R(s, t, G).
double EstimateReliabilityRss(const UncertainGraph& g, NodeId s, NodeId t,
                              const RssOptions& options = {});

}  // namespace relmax

#endif  // RELMAX_SAMPLING_RSS_H_
