#include "sampling/sharded_world_bank.h"

#include <array>
#include <memory>

#include "common/logging.h"
#include "sampling/world_bank.h"

namespace relmax {

ShardedWorldBank::ShardedWorldBank(const UncertainGraph& universe,
                                   const WorldViewOptions& options)
    : universe_(universe),
      num_worlds_(options.num_samples),
      world_words_((static_cast<size_t>(options.num_samples) + 63) / 64),
      num_edges_(universe.num_edges()),
      partition_(PartitionGraph(universe,
                                {.num_shards = options.num_partitions,
                                 .seed = options.seed})) {
  RELMAX_CHECK(options.num_samples > 0);
  const int num_shards = partition_.num_shards;
  // Shard-local row ids: ascending edge-id order within each shard, so the
  // whole layout is reproducible from the partition's node map alone.
  edge_local_.resize(num_edges_);
  std::vector<size_t> rows(num_shards, 0);
  for (size_t e = 0; e < num_edges_; ++e) {
    edge_local_[e] =
        static_cast<uint32_t>(rows[partition_.edge_shard[e]]++);
  }
  up_.reserve(num_shards);
  for (int k = 0; k < num_shards; ++k) up_.emplace_back(rows[k], world_words_);
  // The canonical fill: identical draw stream to the flat WorldBank; only
  // the scatter destination below differs (see the class comment).
  const uint32_t* const edge_shard = partition_.edge_shard.data();
  const uint32_t* const edge_local = edge_local_.data();
  internal::FillBankColumns(
      universe, options.num_samples, options.seed, options.num_threads,
      [&](size_t word, const uint64_t* col) {
        for (size_t e = 0; e < num_edges_; ++e) {
          up_[edge_shard[e]].row(edge_local[e])[word] = col[e];
        }
      });
  BuildShardCsrs();
}

ShardedWorldBank::ShardedWorldBank(const UncertainGraph& universe,
                                   Partition partition, int num_worlds,
                                   std::vector<bitlane::BitMatrix> up)
    : universe_(universe),
      num_worlds_(num_worlds),
      world_words_((static_cast<size_t>(num_worlds) + 63) / 64),
      num_edges_(universe.num_edges()),
      partition_(std::move(partition)),
      up_(std::move(up)) {
  RELMAX_CHECK(num_worlds > 0);
  RELMAX_CHECK(partition_.edge_shard.size() == num_edges_);
  RELMAX_CHECK(up_.size() == static_cast<size_t>(partition_.num_shards));
  edge_local_.resize(num_edges_);
  std::vector<size_t> rows(partition_.num_shards, 0);
  for (size_t e = 0; e < num_edges_; ++e) {
    edge_local_[e] = static_cast<uint32_t>(rows[partition_.edge_shard[e]]++);
  }
  for (int k = 0; k < partition_.num_shards; ++k) {
    RELMAX_CHECK(up_[k].rows() == rows[k]);
    RELMAX_CHECK(up_[k].words() == world_words_);
  }
  BuildShardCsrs();
}

std::vector<size_t> ShardedWorldBank::ShardBankBytes() const {
  std::vector<size_t> bytes(partition_.num_shards);
  for (int k = 0; k < partition_.num_shards; ++k) {
    bytes[k] = up_[k].rows() * world_words_ * sizeof(uint64_t);
  }
  return bytes;
}

void ShardedWorldBank::BuildShardCsrs() {
  const NodeId n = universe_.num_nodes();
  const int num_shards = partition_.num_shards;
  const auto build = [&](const CsrView& csr, std::vector<ShardCsr>* out,
                         std::vector<uint64_t>* mask) {
    out->assign(num_shards, ShardCsr{});
    mask->assign(n, 0);
    // Counting sort of arcs into (shard, node) buckets, preserving the
    // global CSR's arc order within each bucket.
    std::vector<std::vector<size_t>> counts(
        num_shards, std::vector<size_t>(static_cast<size_t>(n) + 1, 0));
    for (NodeId u = 0; u < n; ++u) {
      for (size_t a = csr.begin(u); a < csr.end(u); ++a) {
        ++counts[partition_.edge_shard[csr.edge_ids[a]]][u + 1];
      }
    }
    for (int k = 0; k < num_shards; ++k) {
      ShardCsr& sc = (*out)[k];
      sc.offsets.assign(static_cast<size_t>(n) + 1, 0);
      for (NodeId u = 0; u < n; ++u) {
        sc.offsets[u + 1] = sc.offsets[u] + counts[k][u + 1];
      }
      sc.heads.resize(sc.offsets[n]);
      sc.edge_ids.resize(sc.offsets[n]);
    }
    std::array<size_t, kMaxPartitionShards> pos;
    for (NodeId u = 0; u < n; ++u) {
      for (int k = 0; k < num_shards; ++k) pos[k] = (*out)[k].offsets[u];
      for (size_t a = csr.begin(u); a < csr.end(u); ++a) {
        const EdgeId e = csr.edge_ids[a];
        const uint32_t k = partition_.edge_shard[e];
        ShardCsr& sc = (*out)[k];
        sc.heads[pos[k]] = csr.heads[a];
        sc.edge_ids[pos[k]] = e;
        ++pos[k];
        (*mask)[u] |= uint64_t{1} << k;
      }
    }
  };
  build(universe_.OutCsr(), &fwd_, &fwd_node_mask_);
  if (universe_.directed()) {
    build(universe_.InCsr(), &bwd_, &bwd_node_mask_);
  }
}

int64_t ShardedWorldBank::ReachabilityFixpoint(
    NodeId source, bool backward, const std::vector<EdgeId>& active,
    bitlane::BitMatrix* reach, SeedPolicy seeds) const {
  RELMAX_CHECK(source < universe_.num_nodes());
  const size_t num_nodes = universe_.num_nodes();
  const int num_shards = partition_.num_shards;
  const bool reallocated = reach->EnsureShape(num_nodes, world_words_);
  if (!reallocated && seeds == SeedPolicy::kClearScratch) {
    reach->Clear();
  }
  uint64_t* const at_source = reach->row(source);
  for (size_t w = 0; w < world_words_; ++w) at_source[w] = ~uint64_t{0};
  if (num_worlds_ & 63) {
    at_source[world_words_ - 1] = (uint64_t{1} << (num_worlds_ & 63)) - 1;
  }

  // Boundary-exchange frontier flood. Bookkeeping mirrors the flat bank's
  // worklist (per-node dirty bits over lane blocks), but kept **per shard**:
  // dirty[(k·n + v)·mask_words + mw] says shard k still has to relax block
  // bits of node v. When shard k's local flood changes a block of node v,
  // the block is marked dirty in *every* shard with arcs out of v — that is
  // the boundary exchange; interior nodes have exactly one bit set in their
  // shard mask, so they re-enter only their own shard's worklist. Shards
  // drain one at a time (all writes to the shared reach matrix stay
  // single-threaded and deterministic); rounds repeat until no shard has
  // work, i.e. until no shard reported changed-block propagations.
  const size_t blocks = reach->blocks_per_row();
  const size_t mask_words = (blocks + 63) / 64;
  thread_local std::vector<uint64_t> dirty_storage;
  thread_local std::vector<uint8_t> queued_storage;
  thread_local std::vector<uint8_t> active_storage;
  thread_local std::vector<std::vector<NodeId>> worklists;
  thread_local std::vector<uint64_t> popped_mask;
  dirty_storage.assign(static_cast<size_t>(num_shards) * num_nodes *
                           mask_words,
                       0);
  queued_storage.assign(static_cast<size_t>(num_shards) * num_nodes, 0);
  active_storage.assign(num_edges_, 0);
  worklists.resize(num_shards);
  for (auto& wl : worklists) wl.clear();
  popped_mask.resize(mask_words);
  uint64_t* const dirty = dirty_storage.data();
  uint8_t* const queued = queued_storage.data();
  uint8_t* const active_flag = active_storage.data();
  for (EdgeId e : active) {
    if (e < num_edges_) active_flag[e] = 1;
  }

  const std::vector<ShardCsr>& csrs =
      (backward && universe_.directed()) ? bwd_ : fwd_;
  const std::vector<uint64_t>& node_mask =
      (backward && universe_.directed()) ? bwd_node_mask_ : fwd_node_mask_;

  // Hand (v, block bits at mask word mw) to every shard with arcs out of v.
  const auto enqueue = [&](NodeId v, size_t mw, uint64_t bits) {
    uint64_t shards = node_mask[v];
    while (shards != 0) {
      const size_t k = static_cast<size_t>(__builtin_ctzll(shards));
      shards &= shards - 1;
      const size_t slot = k * num_nodes + v;
      dirty[slot * mask_words + mw] |= bits;
      if (queued[slot] == 0) {
        queued[slot] = 1;
        worklists[k].push_back(v);
      }
    }
  };

  const uint64_t all_blocks_mask =
      (blocks & 63) ? (uint64_t{1} << (blocks & 63)) - 1 : ~uint64_t{0};
  if (seeds == SeedPolicy::kSeedsAreFacts && !reallocated) {
    for (size_t v = 0; v < num_nodes; ++v) {
      const uint64_t* const row = reach->row(v);
      for (size_t b = 0; b < blocks; ++b) {
        uint64_t any = 0;
        for (size_t i = 0; i < bitlane::kLaneWords; ++i) {
          any |= row[b * bitlane::kLaneWords + i];
        }
        if (any != 0) {
          enqueue(static_cast<NodeId>(v), b >> 6, uint64_t{1} << (b & 63));
        }
      }
    }
  } else {
    for (size_t mw = 0; mw + 1 < mask_words; ++mw) {
      enqueue(source, mw, ~uint64_t{0});
    }
    enqueue(source, mask_words - 1, all_blocks_mask);
  }

  const bool scalar = bitlane::Mode() == bitlane::LaneMode::kScalar;
  int64_t propagated = 0;
  bool any_work = true;
  while (any_work) {
    any_work = false;
    for (int k = 0; k < num_shards; ++k) {
      std::vector<NodeId>& worklist = worklists[k];
      if (worklist.empty()) continue;
      any_work = true;
      const ShardCsr& csr = csrs[k];
      // The drain below may push onto this same worklist (intra-shard
      // frontier growth), extending the loop — exactly the flat kernel's
      // FIFO behavior, scoped to shard k's arcs.
      for (size_t head = 0; head < worklist.size(); ++head) {
        const NodeId u = worklist[head];
        const size_t slot = static_cast<size_t>(k) * num_nodes + u;
        queued[slot] = 0;
        uint64_t* const du = dirty + slot * mask_words;
        for (size_t mw = 0; mw < mask_words; ++mw) {
          popped_mask[mw] = du[mw];
          du[mw] = 0;
        }
        const uint64_t* const src_row = reach->row(u);
        const size_t arcs_end = csr.offsets[u + 1];
        for (size_t a = csr.offsets[u]; a < arcs_end; ++a) {
          const EdgeId e = csr.edge_ids[a];
          if (active_flag[e] == 0) continue;
          const NodeId v = csr.heads[a];
          if (v == u) continue;  // self-loop: cannot change reachability
          const uint64_t* const up =
              up_[k].row(edge_local_[e]);
          uint64_t* const dst_row = reach->row(v);
          for (size_t mw = 0; mw < mask_words; ++mw) {
            uint64_t avail = popped_mask[mw];
            while (avail != 0) {
              const size_t b =
                  mw * 64 + static_cast<size_t>(__builtin_ctzll(avail));
              avail &= avail - 1;
              const size_t off = b * bitlane::kLaneWords;
              const uint64_t changed =
                  scalar ? bitlane::PropagateBlockScalar(src_row + off,
                                                         up + off,
                                                         dst_row + off)
                         : bitlane::PropagateBlock(src_row + off, up + off,
                                                   dst_row + off);
              if (changed != 0) {
                ++propagated;
                enqueue(v, mw, uint64_t{1} << (b & 63));
              }
            }
          }
        }
      }
      worklist.clear();
    }
  }
  return propagated;
}

std::unique_ptr<WorldView> MakeWorldView(const UncertainGraph& universe,
                                         const WorldViewOptions& options) {
  if (options.num_partitions <= 1) {
    return std::make_unique<WorldBank>(universe, options);
  }
  return std::make_unique<ShardedWorldBank>(universe, options);
}

}  // namespace relmax
