#ifndef RELMAX_SAMPLING_PARALLEL_H_
#define RELMAX_SAMPLING_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "graph/uncertain_graph.h"
#include "sampling/reliability.h"

namespace relmax {

/// Batched possible-world executor.
///
/// A Monte Carlo budget of Z worlds is cut into fixed-size shards whose count
/// and per-shard RNG seeds depend only on (Z, seed) — never on the thread
/// count. Worker lanes claim shards through an atomic cursor and tally
/// integer outcomes (hit counts, per-node reach counts), which combine
/// commutatively, so every estimate is **bit-identical for any num_threads**
/// while wall-clock scales with cores. This is the substrate behind
/// EstimateReliability, the RSS top-level strata, and the solver evaluation
/// loop in core/evaluate.cc.

/// Worlds per shard. Small enough that a typical budget (Z = 500) splits
/// across 8 lanes; large enough that the per-shard reseed is noise.
inline constexpr int kShardSamples = 64;

/// Counter-based stream seed for shard `index` of a run seeded with `seed`
/// (SplitMix64 of the pair). Shards are decorrelated without any sequential
/// RNG dependency between them.
uint64_t ShardSeed(uint64_t seed, uint64_t index);

/// One unit of sampling work: `num_samples` worlds drawn from the stream
/// seeded by `seed`.
struct SampleShard {
  int index;
  int num_samples;
  uint64_t seed;
};

/// Cuts `total_samples` into ceil(total / kShardSamples) shards. The layout
/// is a pure function of (total_samples, seed).
std::vector<SampleShard> MakeSampleShards(int total_samples, uint64_t seed);

/// Resolves a `num_threads` knob: values <= 0 mean "all hardware threads".
int ResolveNumThreads(int num_threads);

/// Runs body(worker_index) for worker_index in [0, num_workers) concurrently.
/// Lane 0 is the calling thread; the rest run on a process-wide sampling
/// pool sized to the hardware. While waiting, the caller helps drain the
/// pool queue, so nested fan-outs cannot deadlock.
void RunWorkers(int num_workers, const std::function<void(int)>& body);

/// Applies `shard_fn` to every shard index in [0, num_shards) using up to
/// `num_threads` lanes. Each lane builds one context via `make_context` and
/// reuses it for every shard it claims, amortizing scratch (samplers, BFS
/// buffers) across shards; `reduce_fn` then runs once per lane, serialized
/// under an internal mutex, to fold the lane's context into shared results.
///
/// Determinism contract: shard-to-lane assignment is racy, so `shard_fn`
/// results must depend only on the shard index (derive all randomness from
/// that shard's seed) and `reduce_fn` must be commutative (integer tallies
/// or per-shard slots written by index).
template <typename MakeContext, typename ShardFn, typename ReduceFn>
void ForEachShard(size_t num_shards, int num_threads,
                  MakeContext&& make_context, ShardFn&& shard_fn,
                  ReduceFn&& reduce_fn) {
  if (num_shards == 0) return;
  const size_t lanes =
      std::min(static_cast<size_t>(ResolveNumThreads(num_threads)),
               num_shards);
  if (lanes <= 1) {
    auto context = make_context();
    for (size_t i = 0; i < num_shards; ++i) shard_fn(context, i);
    reduce_fn(context);
    return;
  }
  std::atomic<size_t> cursor{0};
  std::mutex reduce_mu;
  RunWorkers(static_cast<int>(lanes), [&](int) {
    // Claim a shard before building the (potentially graph-sized) context:
    // a lane that arrives after the cursor drained does no work at all.
    size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_shards) return;
    auto context = make_context();
    do {
      shard_fn(context, i);
      i = cursor.fetch_add(1, std::memory_order_relaxed);
    } while (i < num_shards);
    std::lock_guard<std::mutex> lock(reduce_mu);
    reduce_fn(context);
  });
}

/// Parallel analogue of MonteCarloSampler::Reliability. Bit-identical for a
/// fixed (num_samples, seed) across any options.num_threads.
double ParallelReliability(const UncertainGraph& g, NodeId s, NodeId t,
                           const SampleOptions& options);

/// Parallel analogue of MonteCarloSampler::SetReliability.
double ParallelSetReliability(const UncertainGraph& g,
                              const std::vector<NodeId>& sources, NodeId t,
                              const SampleOptions& options);

/// Parallel analogue of MonteCarloSampler::FromSourceSet.
std::vector<double> ParallelFromSourceSet(const UncertainGraph& g,
                                          const std::vector<NodeId>& sources,
                                          const SampleOptions& options);

/// Parallel analogue of MonteCarloSampler::ToTarget.
std::vector<double> ParallelToTarget(const UncertainGraph& g, NodeId t,
                                     const SampleOptions& options);

}  // namespace relmax

#endif  // RELMAX_SAMPLING_PARALLEL_H_
