#ifndef RELMAX_SAMPLING_BITLANE_H_
#define RELMAX_SAMPLING_BITLANE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>

#include "common/logging.h"

namespace relmax {
namespace bitlane {

/// Words per lane block: 8 × 64 bits = 512 bits = one 64-byte cache line.
/// The blocked kernels walk whole blocks with no per-word branching, so the
/// compiler autovectorizes them at whatever width the target ISA offers
/// (SSE2 folds a block in 4 ops, AVX2 in 2, AVX-512 in 1), and a block load
/// never straddles a cache line. The CI vectorization gate
/// (tools/check_vectorization.sh) pins that PropagateBlock below actually
/// compiles to vector code.
inline constexpr size_t kLaneWords = 8;
inline constexpr size_t kLaneBytes = kLaneWords * sizeof(uint64_t);

/// Which inner kernel the world fixpoint runs. The result bits are
/// identical either way — the fixpoint of the monotone word algebra
/// (`reach[v] |= reach[u] & up[e]`) is unique regardless of evaluation
/// order or width — which the conformance sweeps pin. The knob exists so
/// tests can compare the paths and so codegen regressions can be bisected.
enum class LaneMode {
  kAuto,     ///< resolve to kBlocked
  kScalar,   ///< one word at a time, early-exit per word (pre-SIMD kernel)
  kBlocked,  ///< branch-free whole-block kernel (autovectorized)
};

/// Process-wide kernel selection. Mode() resolves kAuto to kBlocked.
LaneMode Mode();
void SetMode(LaneMode mode);
const char* ModeName(LaneMode mode);

/// RAII lane-mode override for tests.
class ScopedLaneMode {
 public:
  explicit ScopedLaneMode(LaneMode mode) : saved_(Mode()) { SetMode(mode); }
  ~ScopedLaneMode() { SetMode(saved_); }
  ScopedLaneMode(const ScopedLaneMode&) = delete;
  ScopedLaneMode& operator=(const ScopedLaneMode&) = delete;

 private:
  LaneMode saved_;
};

/// Blocked propagation step over one lane block:
/// `dst |= src & up & ~dst`, returning the OR of all newly-set words (zero
/// iff the block was already settled). Branch-free on purpose — the three
/// loads, two ANDs, ANDNOT, OR, and the running reduction all vectorize —
/// and `__restrict` holds because a propagation step never runs on a
/// self-loop (src and dst are distinct rows) and `up` lives in a different
/// matrix than either.
inline uint64_t PropagateBlock(const uint64_t* __restrict src,
                               const uint64_t* __restrict up,
                               uint64_t* __restrict dst) {
  uint64_t any = 0;
  for (size_t i = 0; i < kLaneWords; ++i) {
    const uint64_t add = src[i] & up[i] & ~dst[i];
    dst[i] |= add;
    any |= add;
  }
  return any;
}

/// Scalar reference for the same step: per-word early exit, no blocking.
/// Must compute exactly the same bits as PropagateBlock (pinned by the
/// lane-width conformance axis in the tests).
inline uint64_t PropagateBlockScalar(const uint64_t* src, const uint64_t* up,
                                     uint64_t* dst) {
  uint64_t any = 0;
  for (size_t i = 0; i < kLaneWords; ++i) {
    const uint64_t add = src[i] & up[i] & ~dst[i];
    if (add != 0) {
      dst[i] |= add;
      any |= add;
    }
  }
  return any;
}

/// Dense rows × words bit matrix in one flat, 64-byte-aligned allocation —
/// the storage behind the WorldBank's edge rows and every flood's reach
/// scratch. Each row is padded to a whole number of lane blocks
/// (stride_words()), so a row is a sequence of aligned blocks the blocked
/// kernels can walk without tail cases. Padding words are zero at
/// allocation and must stay zero: bank rows never set them, and the
/// fixpoint cannot turn them on because `up` is zero there (add = src & up
/// is identically zero in the pad).
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(size_t rows, size_t words) { EnsureShape(rows, words); }

  BitMatrix(BitMatrix&&) = default;
  BitMatrix& operator=(BitMatrix&&) = default;
  BitMatrix(const BitMatrix&) = delete;
  BitMatrix& operator=(const BitMatrix&) = delete;

  /// Wraps an externally owned buffer as a rows × words matrix **without
  /// copying or taking ownership** — the zero-copy path for mmap-ed index
  /// sections (index/index_io.h). `data` must be 64-byte aligned and hold
  /// `rows` rows of stride_words() (lane-padded) words each, with tail and
  /// pad bits zero — exactly the layout an owned matrix allocates. The
  /// caller keeps the buffer alive for the matrix's lifetime and must not
  /// write through the matrix if the buffer is read-only (a PROT_READ
  /// mapping faults loudly on write, never silently corrupts).
  static BitMatrix External(uint64_t* data, size_t rows, size_t words) {
    RELMAX_CHECK((reinterpret_cast<uintptr_t>(data) % kLaneBytes) == 0);
    BitMatrix m;
    m.rows_ = rows;
    m.words_ = words;
    m.stride_ = ((words + kLaneWords - 1) / kLaneWords) * kLaneWords;
    m.data_ = DataPtr(data, Deleter{/*owned=*/false});
    return m;
  }

  /// Reallocates (zero-filled) when the logical shape differs from the
  /// current one and returns true; returns false with contents untouched
  /// when the shape already matches. Mirrors the reuse contract of the
  /// fixpoint scratch: a shape-matched buffer keeps its bits unless the
  /// caller (or SeedPolicy::kClearScratch) wipes it.
  bool EnsureShape(size_t rows, size_t words) {
    if (rows == rows_ && words == words_ && data_ != nullptr) return false;
    rows_ = rows;
    words_ = words;
    stride_ = ((words + kLaneWords - 1) / kLaneWords) * kLaneWords;
    const size_t total = rows_ * stride_;
    // A fresh DataPtr (not reset()) so a matrix that previously wrapped an
    // external buffer regains an owning deleter.
    data_ = DataPtr(
        static_cast<uint64_t*>(::operator new[](
            total * sizeof(uint64_t), std::align_val_t{kLaneBytes})),
        Deleter{/*owned=*/true});
    std::memset(data_.get(), 0, total * sizeof(uint64_t));
    return true;
  }

  /// Zeroes every bit (rows, pads and all); shape is unchanged.
  void Clear() {
    if (data_ != nullptr) {
      std::memset(data_.get(), 0, rows_ * stride_ * sizeof(uint64_t));
    }
  }

  uint64_t* row(size_t r) {
    RELMAX_DCHECK(r < rows_);
    return data_.get() + r * stride_;
  }
  const uint64_t* row(size_t r) const {
    RELMAX_DCHECK(r < rows_);
    return data_.get() + r * stride_;
  }
  /// The row's logical words (pad excluded).
  std::span<const uint64_t> row_span(size_t r) const {
    return {row(r), words_};
  }

  size_t rows() const { return rows_; }
  /// Logical words per row (ceil(bits / 64) as sized by the caller).
  size_t words() const { return words_; }
  /// Allocated words per row: words() rounded up to whole lane blocks.
  size_t stride_words() const { return stride_; }
  size_t blocks_per_row() const { return stride_ / kLaneWords; }
  bool empty() const { return data_ == nullptr; }

 private:
  struct Deleter {
    // No default member initializer: an NSDMI would be parsed in the
    // complete-class context of BitMatrix, leaving Deleter (and thus
    // DataPtr) not default-constructible inside the class body.
    constexpr Deleter() : owned(true) {}
    constexpr explicit Deleter(bool o) : owned(o) {}
    /// false when the matrix wraps an External() buffer someone else owns.
    bool owned;
    void operator()(uint64_t* p) const {
      if (owned) ::operator delete[](p, std::align_val_t{kLaneBytes});
    }
  };
  using DataPtr = std::unique_ptr<uint64_t[], Deleter>;

  size_t rows_ = 0;
  size_t words_ = 0;
  size_t stride_ = 0;
  DataPtr data_;
};

}  // namespace bitlane
}  // namespace relmax

#endif  // RELMAX_SAMPLING_BITLANE_H_
