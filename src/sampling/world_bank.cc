#include "sampling/world_bank.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "sampling/parallel.h"

namespace relmax {
namespace {

// Same integer-threshold encoding as the MC kernel (sampling/reliability.cc):
// ceil(p * 2^53) <= 2^53 for p < 1, so anything above 2^53 marks "up without
// drawing" (p >= 1); 0 marks "down without drawing" (p <= 0). For p in (0,1),
// `(Next() >> 11) < threshold` is exactly `NextDouble() < p` and consumes the
// same single draw, so the bank's bits stay bit-identical to the
// NextBernoulli fill it replaces.
constexpr uint64_t kP53 = uint64_t{1} << 53;
constexpr uint64_t kAlwaysUp = kP53 + 1;

}  // namespace

namespace internal {

void FillBankColumns(
    const UncertainGraph& universe, int num_samples, uint64_t seed,
    int num_threads,
    const std::function<void(size_t word, const uint64_t* col)>& store) {
  RELMAX_CHECK(num_samples > 0);
  // Shard i covers worlds [i * kShardSamples, …): with kShardSamples == 64
  // that is exactly bit-word i of every edge row, so shards never produce
  // the same word and the fill is race-free without atomics as long as
  // `store` writes only word `word`'s storage.
  static_assert(kShardSamples == 64,
                "the word-per-shard bank fill requires 64-world shards");
  const size_t num_edges = universe.num_edges();
  // Flat structure-of-arrays probability vector, pre-folded into integer
  // thresholds so the inner loop compares a raw draw against a constant
  // instead of branching on a double inside NextBernoulli.
  const double* const probs = universe.EdgeProbs().data();
  std::vector<uint64_t> thresholds(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    const double p = probs[e];
    thresholds[e] = p <= 0.0   ? 0
                    : p >= 1.0 ? kAlwaysUp
                               : static_cast<uint64_t>(std::ceil(p * 0x1p53));
  }
  const uint64_t* const thr = thresholds.data();
  const std::vector<SampleShard> shards = MakeSampleShards(num_samples, seed);
  struct FillContext {
    Rng rng{0};
    // One word per edge: the shard's 64 worlds for that edge, accumulated
    // contiguously and handed to `store` once per shard instead of once per
    // draw.
    std::vector<uint64_t> col;
  };
  ForEachShard(
      shards.size(), num_threads,
      [num_edges] {
        auto context = std::make_unique<FillContext>();
        context->col.resize(num_edges);
        return context;
      },
      [&](std::unique_ptr<FillContext>& context, size_t i) {
        context->rng.Reseed(shards[i].seed);
        Rng& rng = context->rng;
        uint64_t* const col = context->col.data();
        std::fill_n(col, num_edges, uint64_t{0});
        for (int sample = 0; sample < shards[i].num_samples; ++sample) {
          const uint64_t bit = uint64_t{1} << sample;
          for (size_t e = 0; e < num_edges; ++e) {
            const uint64_t t = thr[e];
            // The two degenerate categories take no draw (NextBernoulli's
            // contract) and branch perfectly predictably — the threshold
            // pattern repeats identically every sample. The live category is
            // branch-free on the draw, which is the bit that used to
            // mispredict ~min(p, 1-p) of the time.
            if (t == 0) continue;
            if (t > kP53) {
              col[e] |= bit;
              continue;
            }
            col[e] |= ((rng.Next() >> 11) < t) ? bit : 0;
          }
        }
        store(static_cast<size_t>(shards[i].index), col);
      },
      [](std::unique_ptr<FillContext>&) {});
}

}  // namespace internal

WorldBank::WorldBank(const UncertainGraph& universe, const Options& options)
    : universe_(universe),
      num_worlds_(options.num_samples),
      world_words_((static_cast<size_t>(options.num_samples) + 63) / 64),
      up_(universe.num_edges(), (static_cast<size_t>(options.num_samples) +
                                 63) /
                                    64) {
  const size_t num_edges = universe.num_edges();
  internal::FillBankColumns(
      universe, options.num_samples, options.seed, options.num_threads,
      [this, num_edges](size_t word, const uint64_t* col) {
        for (size_t e = 0; e < num_edges; ++e) {
          up_.row(e)[word] = col[e];
        }
      });
}

WorldBank::WorldBank(const UncertainGraph& universe, int num_worlds,
                     bitlane::BitMatrix up)
    : universe_(universe),
      num_worlds_(num_worlds),
      world_words_((static_cast<size_t>(num_worlds) + 63) / 64),
      up_(std::move(up)) {
  RELMAX_CHECK(num_worlds > 0);
  RELMAX_CHECK(up_.rows() == universe.num_edges());
  RELMAX_CHECK(up_.words() == world_words_);
}

int64_t WorldBank::ReachabilityFixpoint(NodeId source, bool backward,
                                        const std::vector<EdgeId>& active,
                                        bitlane::BitMatrix* reach,
                                        SeedPolicy seeds) const {
  RELMAX_CHECK(source < universe_.num_nodes());
  const size_t num_nodes = universe_.num_nodes();
  const bool reallocated = reach->EnsureShape(num_nodes, world_words_);
  if (!reallocated && seeds == SeedPolicy::kClearScratch) {
    // The kernel owns the scratch hygiene: a shape-matched buffer reused
    // across sources is wiped here, never by caller convention.
    reach->Clear();
  }
  uint64_t* const at_source = reach->row(source);
  for (size_t w = 0; w < world_words_; ++w) at_source[w] = ~uint64_t{0};
  if (num_worlds_ & 63) {
    at_source[world_words_ - 1] = (uint64_t{1} << (num_worlds_ & 63)) - 1;
  }

  // Frontier-driven worklist over lane blocks. Per node, one dirty bit per
  // lane block ("this block gained worlds since the node was last relaxed").
  // Popping a node snapshots-and-clears its dirty mask, then relaxes only
  // those blocks along its incident arcs; a neighbor whose block actually
  // changes is (re)queued. Nodes and blocks that never change are never
  // touched — unlike the previous dense sweeps, which re-walked every word
  // of every active edge each pass until quiescence. The converged bits are
  // schedule-independent (the fixpoint of the monotone word algebra is
  // unique), so this keeps the (threads, lane-width)-invariance contract.
  // thread_local: floods are hot (per candidate, per source) and the masks
  // are small, so the allocations are paid once per thread, not per call.
  const size_t blocks = reach->blocks_per_row();
  const size_t mask_words = (blocks + 63) / 64;
  thread_local std::vector<uint64_t> dirty_storage;
  thread_local std::vector<uint8_t> queued_storage;
  thread_local std::vector<uint8_t> active_storage;
  thread_local std::vector<NodeId> worklist;
  thread_local std::vector<uint64_t> popped_mask;
  dirty_storage.assign(num_nodes * mask_words, 0);
  queued_storage.assign(num_nodes, 0);
  active_storage.assign(universe_.num_edges(), 0);
  worklist.clear();
  popped_mask.resize(mask_words);
  uint64_t* const dirty = dirty_storage.data();
  uint8_t* const queued = queued_storage.data();
  uint8_t* const active_flag = active_storage.data();
  for (EdgeId e : active) active_flag[e] = 1;

  const uint64_t all_blocks_mask =
      (blocks & 63) ? (uint64_t{1} << (blocks & 63)) - 1 : ~uint64_t{0};
  if (seeds == SeedPolicy::kSeedsAreFacts && !reallocated) {
    // Every nonzero block is a fact the flood must start from (the source
    // row included — it was just forced on above).
    for (size_t v = 0; v < num_nodes; ++v) {
      const uint64_t* const row = reach->row(v);
      uint64_t any_block = 0;
      for (size_t b = 0; b < blocks; ++b) {
        uint64_t any = 0;
        for (size_t i = 0; i < bitlane::kLaneWords; ++i) {
          any |= row[b * bitlane::kLaneWords + i];
        }
        if (any != 0) {
          dirty[v * mask_words + (b >> 6)] |= uint64_t{1} << (b & 63);
          any_block = 1;
        }
      }
      if (any_block != 0) {
        queued[v] = 1;
        worklist.push_back(static_cast<NodeId>(v));
      }
    }
  } else {
    // Fresh scratch: the source row is the only nonzero row, and it is
    // nonzero in every block that carries logical words.
    for (size_t mw = 0; mw + 1 < mask_words; ++mw) {
      dirty[source * mask_words + mw] = ~uint64_t{0};
    }
    dirty[source * mask_words + (mask_words - 1)] = all_blocks_mask;
    queued[source] = 1;
    worklist.push_back(source);
  }

  // Forward floods walk out-arcs; backward directed floods walk in-arcs
  // (reach-to-source flows from an arc's head to its tail, and InCsr(w)'s
  // heads are exactly w's predecessors). Undirected graphs keep both arc
  // copies in the out-CSR, so one view covers both directions.
  const CsrView csr = (backward && universe_.directed()) ? universe_.InCsr()
                                                         : universe_.OutCsr();
  const bool scalar = bitlane::Mode() == bitlane::LaneMode::kScalar;
  int64_t propagated = 0;
  for (size_t head = 0; head < worklist.size(); ++head) {
    const NodeId u = worklist[head];
    queued[u] = 0;
    uint64_t* const du = dirty + u * mask_words;
    for (size_t mw = 0; mw < mask_words; ++mw) {
      popped_mask[mw] = du[mw];
      du[mw] = 0;
    }
    const uint64_t* const src_row = reach->row(u);
    const size_t arcs_end = csr.end(u);
    for (size_t a = csr.begin(u); a < arcs_end; ++a) {
      const EdgeId e = csr.edge_ids[a];
      if (active_flag[e] == 0) continue;
      const NodeId v = csr.heads[a];
      if (v == u) continue;  // self-loop: cannot change reachability
      const uint64_t* const up = up_.row(e);
      uint64_t* const dst_row = reach->row(v);
      bool v_changed = false;
      for (size_t mw = 0; mw < mask_words; ++mw) {
        uint64_t avail = popped_mask[mw];
        while (avail != 0) {
          const size_t b =
              mw * 64 + static_cast<size_t>(__builtin_ctzll(avail));
          avail &= avail - 1;
          const size_t off = b * bitlane::kLaneWords;
          const uint64_t changed =
              scalar ? bitlane::PropagateBlockScalar(src_row + off, up + off,
                                                     dst_row + off)
                     : bitlane::PropagateBlock(src_row + off, up + off,
                                               dst_row + off);
          if (changed != 0) {
            dirty[v * mask_words + mw] |= uint64_t{1} << (b & 63);
            ++propagated;
            v_changed = true;
          }
        }
      }
      if (v_changed && queued[v] == 0) {
        queued[v] = 1;
        worklist.push_back(v);
      }
    }
  }
  return propagated;
}

namespace {

std::atomic<int64_t> g_bank_fallbacks{0};

}  // namespace

void NoteBankFallback(const char* consumer, size_t wanted_bytes,
                      size_t cap_bytes, int num_shards) {
  g_bank_fallbacks.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(
      stderr,
      "relmax: %s: shared-world bank needs %.1f MiB per shard "
      "(%d shard%s) > %.1f MiB per-shard cap; falling back to per-query "
      "re-sampling (slow path)\n",
      consumer, static_cast<double>(wanted_bytes) / (1024.0 * 1024.0),
      num_shards, num_shards == 1 ? "" : "s",
      static_cast<double>(cap_bytes) / (1024.0 * 1024.0));
}

int64_t BankFallbackCount() {
  return g_bank_fallbacks.load(std::memory_order_relaxed);
}

}  // namespace relmax
