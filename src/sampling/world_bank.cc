#include "sampling/world_bank.h"

#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "sampling/parallel.h"

namespace relmax {

WorldBank::WorldBank(const UncertainGraph& universe, const Options& options)
    : universe_(universe),
      num_worlds_(options.num_samples),
      world_words_((static_cast<size_t>(options.num_samples) + 63) / 64),
      up_(universe.num_edges(), std::vector<uint64_t>(
                                    (static_cast<size_t>(options.num_samples) +
                                     63) /
                                    64,
                                    0)) {
  RELMAX_CHECK(options.num_samples > 0);
  // Shard i covers worlds [i * kShardSamples, …): with kShardSamples == 64
  // that is exactly bit-word i of every edge row, so shards never touch the
  // same word and the fill is race-free without atomics.
  static_assert(kShardSamples == 64,
                "WorldBank's word-per-shard fill requires 64-world shards");
  const size_t num_edges = universe.num_edges();
  // Flat structure-of-arrays probability vector: the fill is a pure sweep of
  // (edge prob, RNG draw) pairs with no Edge-struct loads in the inner loop.
  const double* const probs = universe.EdgeProbs().data();
  const std::vector<SampleShard> shards =
      MakeSampleShards(options.num_samples, options.seed);
  ForEachShard(
      shards.size(), options.num_threads,
      [] { return std::make_unique<Rng>(0); },
      [&](std::unique_ptr<Rng>& rng, size_t i) {
        rng->Reseed(shards[i].seed);
        const size_t word = static_cast<size_t>(shards[i].index);
        for (int sample = 0; sample < shards[i].num_samples; ++sample) {
          const uint64_t bit = uint64_t{1} << sample;
          for (size_t e = 0; e < num_edges; ++e) {
            if (rng->NextBernoulli(probs[e])) {
              up_[e][word] |= bit;
            }
          }
        }
      },
      [](std::unique_ptr<Rng>&) {});
}

std::vector<uint64_t> WorldBank::WorldsWithAllEdges(
    const std::vector<EdgeId>& edges) const {
  std::vector<uint64_t> all(world_words_, ~uint64_t{0});
  // Clear the tail bits beyond num_worlds so counts stay exact.
  if (num_worlds_ & 63) {
    all.back() = (uint64_t{1} << (num_worlds_ & 63)) - 1;
  }
  for (EdgeId e : edges) {
    const std::vector<uint64_t>& up = up_[e];
    for (size_t w = 0; w < world_words_; ++w) all[w] &= up[w];
  }
  return all;
}

void WorldBank::ReachabilityFixpoint(
    NodeId source, bool backward, const std::vector<EdgeId>& active,
    std::vector<std::vector<uint64_t>>* reach, SeedPolicy seeds) const {
  RELMAX_CHECK(source < universe_.num_nodes());
  if (reach->size() != universe_.num_nodes() ||
      (!reach->empty() && reach->front().size() != world_words_)) {
    reach->assign(universe_.num_nodes(),
                  std::vector<uint64_t>(world_words_, 0));
  } else if (seeds == SeedPolicy::kClearScratch) {
    // The kernel owns the scratch hygiene: a size-matched buffer reused
    // across sources is wiped here, never by caller convention.
    for (std::vector<uint64_t>& row : *reach) {
      std::fill(row.begin(), row.end(), 0);
    }
  }
  std::vector<uint64_t>& at_source = (*reach)[source];
  for (size_t w = 0; w < world_words_; ++w) at_source[w] = ~uint64_t{0};
  if (num_worlds_ & 63) {
    at_source.back() = (uint64_t{1} << (num_worlds_ & 63)) - 1;
  }

  // Word-parallel Bellman-Ford-style sweeps: one pass relaxes every active
  // edge for all 64-world lanes at once; convergence takes ~(1 + number of
  // hops any reachability fact must travel against the edge order) passes —
  // near 2 when `active` is in path order. Endpoints come from the flat
  // by-EdgeId array, indexed directly per relaxed edge.
  const Edge* const edges = universe_.EdgesById().data();
  const bool undirected = !universe_.directed();
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e : active) {
      const Edge& edge = edges[e];
      const std::vector<uint64_t>& up = up_[e];
      NodeId from = edge.src;
      NodeId to = edge.dst;
      if (backward && !undirected) std::swap(from, to);
      for (int dir = 0; dir < (undirected ? 2 : 1); ++dir) {
        const std::vector<uint64_t>& src_bits = (*reach)[from];
        std::vector<uint64_t>& dst_bits = (*reach)[to];
        for (size_t w = 0; w < world_words_; ++w) {
          const uint64_t add = src_bits[w] & up[w] & ~dst_bits[w];
          if (add != 0) {
            dst_bits[w] |= add;
            changed = true;
          }
        }
        std::swap(from, to);
      }
    }
  }
}

double WorldBank::ConnectedFraction(
    NodeId s, NodeId t, const std::vector<EdgeId>& active,
    std::vector<uint64_t> seed_connected) const {
  RELMAX_CHECK(t < universe_.num_nodes());
  std::vector<std::vector<uint64_t>> reach;
  ReachabilityFixpoint(s, /*backward=*/false, active, &reach);
  if (seed_connected.empty()) seed_connected.assign(world_words_, 0);
  for (size_t w = 0; w < world_words_; ++w) {
    seed_connected[w] |= reach[t][w];
  }
  return static_cast<double>(
             CountBits(seed_connected, static_cast<size_t>(num_worlds_))) /
         num_worlds_;
}

std::vector<EdgeId> WorldBank::AllEdges() const {
  // Sized by the bank's own rows, not universe().num_edges(): the graph may
  // have grown edges since the bank was sampled.
  std::vector<EdgeId> edges(up_.size());
  for (size_t e = 0; e < edges.size(); ++e) edges[e] = static_cast<EdgeId>(e);
  return edges;
}

int64_t WorldBank::CountBits(const std::vector<uint64_t>& bits, size_t limit) {
  int64_t count = 0;
  for (size_t word = 0; word * 64 < limit && word < bits.size(); ++word) {
    uint64_t value = bits[word];
    const size_t remaining = limit - word * 64;
    if (remaining < 64) value &= (uint64_t{1} << remaining) - 1;
    count += __builtin_popcountll(value);
  }
  return count;
}

}  // namespace relmax
