#include "sampling/parallel.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace relmax {
namespace {

// Process-wide pool backing RunWorkers. Lane 0 of every fan-out is the
// calling thread, so the pool only needs hardware - 1 workers to saturate
// the machine.
ThreadPool& SamplingPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1, ThreadPool::HardwareConcurrency() - 1));
  return *pool;
}

}  // namespace

uint64_t ShardSeed(uint64_t seed, uint64_t index) {
  // SplitMix64 finalizer over a seed/index combination: shard streams are
  // derived by counter, not by advancing a shared generator, so shard i's
  // stream never depends on how many shards precede it or who runs them.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<SampleShard> MakeSampleShards(int total_samples, uint64_t seed) {
  RELMAX_CHECK(total_samples > 0);
  const int num_shards = (total_samples + kShardSamples - 1) / kShardSamples;
  std::vector<SampleShard> shards;
  shards.reserve(num_shards);
  int remaining = total_samples;
  for (int i = 0; i < num_shards; ++i) {
    const int n = std::min(kShardSamples, remaining);
    shards.push_back({i, n, ShardSeed(seed, static_cast<uint64_t>(i))});
    remaining -= n;
  }
  return shards;
}

int ResolveNumThreads(int num_threads) {
  return num_threads <= 0 ? ThreadPool::HardwareConcurrency() : num_threads;
}

void RunWorkers(int num_workers, const std::function<void(int)>& body) {
  const int n = std::max(1, num_workers);
  if (n == 1) {
    body(0);
    return;
  }
  ThreadPool& pool = SamplingPool();
  std::mutex mu;
  std::condition_variable done;
  int remaining = n - 1;
  for (int w = 1; w < n; ++w) {
    pool.Submit([&, w] {
      body(w);
      // Notify while holding the mutex: the waiter may only observe
      // remaining == 0 (and destroy mu/done on return) after this unlock,
      // so the notify can never touch a destroyed condition_variable.
      std::lock_guard<std::mutex> lock(mu);
      --remaining;
      done.notify_one();
    });
  }
  body(0);
  // Help drain the queue while waiting: our own lanes may still be queued
  // behind other fan-outs' tasks, and executing whatever is next keeps every
  // waiter making progress (nested fan-outs cannot deadlock). Once the
  // queue is empty, sleep on the condition variable instead of spinning —
  // lanes can be strongly imbalanced (RSS stratum weights) and burning a
  // core for the slowest lane's duration would waste it. The periodic
  // re-check picks up tasks queued after we went to sleep.
  for (;;) {
    while (pool.TryRunOne()) {
    }
    std::unique_lock<std::mutex> lock(mu);
    if (done.wait_for(lock, std::chrono::milliseconds(1),
                      [&remaining] { return remaining == 0; })) {
      return;
    }
  }
}

namespace {

// Shared scaffolding for the s-t estimators: shard the budget, tally integer
// hits per shard slot, sum in index order. `hits_fn(sampler, n)` draws n
// worlds from the already-reseeded sampler and returns its hit count.
template <typename HitsFn>
double ShardedHitRate(const UncertainGraph& g, const SampleOptions& options,
                      HitsFn&& hits_fn) {
  const std::vector<SampleShard> shards =
      MakeSampleShards(options.num_samples, options.seed);
  std::vector<int> hits(shards.size(), 0);
  ForEachShard(
      shards.size(), options.num_threads,
      [&g] { return std::make_unique<MonteCarloSampler>(g, 0); },
      [&](std::unique_ptr<MonteCarloSampler>& sampler, size_t i) {
        sampler->Reseed(shards[i].seed);
        hits[i] = hits_fn(*sampler, shards[i].num_samples);
      },
      [](std::unique_ptr<MonteCarloSampler>&) {});
  int64_t total = 0;
  for (int h : hits) total += h;
  return static_cast<double>(total) / options.num_samples;
}

// Per-lane context for the all-nodes estimators: a reusable sampler plus a
// private tally that folds into the shared one at lane end. Integer counts
// make the fold commutative, hence thread-count invariant.
struct CountContext {
  explicit CountContext(const UncertainGraph& g)
      : sampler(g, 0), counts(g.num_nodes(), 0) {}
  MonteCarloSampler sampler;
  std::vector<int64_t> counts;
};

// Shared scaffolding for the per-node estimators. `accumulate_fn(sampler, n,
// counts)` adds per-node reach counts over n worlds into the lane's tally.
template <typename AccumulateFn>
std::vector<double> ShardedCounts(const UncertainGraph& g,
                                  const SampleOptions& options,
                                  AccumulateFn&& accumulate_fn) {
  const std::vector<SampleShard> shards =
      MakeSampleShards(options.num_samples, options.seed);
  std::vector<int64_t> counts(g.num_nodes(), 0);
  ForEachShard(
      shards.size(), options.num_threads,
      [&g] { return std::make_unique<CountContext>(g); },
      [&](std::unique_ptr<CountContext>& ctx, size_t i) {
        ctx->sampler.Reseed(shards[i].seed);
        accumulate_fn(ctx->sampler, shards[i].num_samples, &ctx->counts);
      },
      [&](std::unique_ptr<CountContext>& ctx) {
        for (size_t v = 0; v < counts.size(); ++v) counts[v] += ctx->counts[v];
      });
  std::vector<double> reliability(counts.size());
  for (size_t v = 0; v < counts.size(); ++v) {
    reliability[v] = static_cast<double>(counts[v]) / options.num_samples;
  }
  return reliability;
}

}  // namespace

double ParallelReliability(const UncertainGraph& g, NodeId s, NodeId t,
                           const SampleOptions& options) {
  RELMAX_CHECK(s < g.num_nodes() && t < g.num_nodes());
  RELMAX_CHECK(options.num_samples > 0);
  if (s == t) return 1.0;
  return ShardedHitRate(g, options, [s, t](MonteCarloSampler& sampler, int n) {
    return sampler.ReliabilityHits(s, t, n);
  });
}

double ParallelSetReliability(const UncertainGraph& g,
                              const std::vector<NodeId>& sources, NodeId t,
                              const SampleOptions& options) {
  RELMAX_CHECK(options.num_samples > 0);
  for (NodeId s : sources) {
    RELMAX_CHECK(s < g.num_nodes());
    if (s == t) return 1.0;
  }
  return ShardedHitRate(
      g, options, [&sources, t](MonteCarloSampler& sampler, int n) {
        return sampler.SetReliabilityHits(sources, t, n);
      });
}

std::vector<double> ParallelFromSourceSet(const UncertainGraph& g,
                                          const std::vector<NodeId>& sources,
                                          const SampleOptions& options) {
  RELMAX_CHECK(options.num_samples > 0);
  for (NodeId s : sources) RELMAX_CHECK(s < g.num_nodes());
  return ShardedCounts(g, options,
                       [&sources](MonteCarloSampler& sampler, int n,
                                  std::vector<int64_t>* counts) {
                         sampler.AccumulateFromSourceSet(sources, n, counts);
                       });
}

std::vector<double> ParallelToTarget(const UncertainGraph& g, NodeId t,
                                     const SampleOptions& options) {
  RELMAX_CHECK(t < g.num_nodes());
  RELMAX_CHECK(options.num_samples > 0);
  return ShardedCounts(g, options,
                       [t](MonteCarloSampler& sampler, int n,
                           std::vector<int64_t>* counts) {
                         sampler.AccumulateToTarget(t, n, counts);
                       });
}

}  // namespace relmax
