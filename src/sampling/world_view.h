#ifndef RELMAX_SAMPLING_WORLD_VIEW_H_
#define RELMAX_SAMPLING_WORLD_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/uncertain_graph.h"
#include "sampling/bitlane.h"

namespace relmax {

struct Partition;

/// Construction knobs shared by every world-view implementation.
struct WorldViewOptions {
  int num_samples = 500;
  uint64_t seed = 42;
  int num_threads = 1;
  /// Number of partition shards for the bank's bit-matrix. 1 (the default)
  /// is the flat WorldBank; >1 builds a ShardedWorldBank whose answers are
  /// bit-identical to the 1-shard canonical layout (the world draws are the
  /// same stream, only their storage destination differs).
  int num_partitions = 1;
};

/// Read-only view over Z sampled possible worlds: per-edge world bitsets
/// plus a word-parallel reachability fixpoint across all worlds at once.
/// The flat `WorldBank` and the partition-sharded `ShardedWorldBank` both
/// implement it, so consumers (evaluator, greedy scorer, batch engine,
/// reliability index) are agnostic to how the bit-matrix is laid out.
class WorldView {
 public:
  /// What ReachabilityFixpoint may assume about a reused `reach` matrix.
  ///
  /// kClearScratch (the default): `reach` is scratch; the flood wipes it
  /// and seeds only the source row. Use this unless you prepared `reach`.
  ///
  /// kSeedsAreFacts: every bit already set in `reach` is a known-reachable
  /// fact to propagate from (the caller pre-seeded rows, e.g. path-derived
  /// reachability). The flood must not clear them. If the matrix had to be
  /// reallocated to fit the requested shape, the seeds are gone and the
  /// flood degrades to kClearScratch semantics on a fresh matrix.
  enum class SeedPolicy { kClearScratch, kSeedsAreFacts };

  virtual ~WorldView() = default;

  virtual const UncertainGraph& universe() const = 0;
  virtual int num_worlds() const = 0;
  virtual size_t world_words() const = 0;
  /// Rows in the bank: the universe's edge count at construction time.
  virtual size_t num_edges() const = 0;
  virtual int num_shards() const = 0;
  /// Logical bytes (rows × world_words × 8, pad excluded) each shard's
  /// bit-matrix holds; size() == num_shards(). This is the quantity the
  /// per-shard `max_*_bank_bytes` budgets meter.
  virtual std::vector<size_t> ShardBankBytes() const = 0;
  /// The worlds where edge e is up, as a span of world_words() words.
  virtual std::span<const uint64_t> EdgeUpWorlds(EdgeId e) const = 0;
  /// Word-parallel multi-world reachability: after the call,
  /// reach->row(v) bit w is set iff `source` reaches v in world w using
  /// only `active` edges (plus any pre-seeded facts, see SeedPolicy).
  /// Returns the number of changed-block propagations — 0 means the input
  /// was already a fixpoint. Deterministic for a given (view, arguments):
  /// the fixpoint of the monotone word algebra is unique, so the result is
  /// invariant under lane kernel, thread count, and shard layout.
  virtual int64_t ReachabilityFixpoint(
      NodeId source, bool backward, const std::vector<EdgeId>& active,
      bitlane::BitMatrix* reach,
      SeedPolicy seeds = SeedPolicy::kClearScratch) const = 0;
  /// The partition behind a sharded view; nullptr for the flat bank.
  virtual const Partition* partition() const { return nullptr; }

  /// True iff edge e is up in world w.
  bool EdgePresent(int w, EdgeId e) const {
    return (EdgeUpWorlds(e)[static_cast<size_t>(w) >> 6] >> (w & 63)) & 1;
  }

  /// Bitwise AND of the up-worlds of `edges` (all-ones when empty): the
  /// worlds in which every listed edge is simultaneously up.
  std::vector<uint64_t> WorldsWithAllEdges(
      const std::vector<EdgeId>& edges) const;

  /// Fraction of worlds where s reaches t over `active` edges. When
  /// `seed_connected` is non-empty (world_words() words), those worlds are
  /// counted as connected without flooding them again.
  double ConnectedFraction(NodeId s, NodeId t,
                           const std::vector<EdgeId>& active,
                           std::vector<uint64_t> seed_connected = {}) const;

  /// All bank edge ids, ascending — the "everything is active" edge set.
  std::vector<EdgeId> AllEdges() const;

  /// Popcount of the first `limit` bits of `bits`.
  static int64_t CountBits(std::span<const uint64_t> bits, size_t limit);
};

/// Builds the world view `options` asks for: the flat WorldBank when
/// num_partitions <= 1, a partition-sharded bank otherwise. Answers are
/// bit-identical either way (canonical-layout contract above).
std::unique_ptr<WorldView> MakeWorldView(const UncertainGraph& universe,
                                         const WorldViewOptions& options);

}  // namespace relmax

#endif  // RELMAX_SAMPLING_WORLD_VIEW_H_
