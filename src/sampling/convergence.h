#ifndef RELMAX_SAMPLING_CONVERGENCE_H_
#define RELMAX_SAMPLING_CONVERGENCE_H_

#include <functional>
#include <utility>
#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// An s-t reliability estimator under test: (graph, s, t, Z, seed) -> R̂.
using ReliabilityEstimatorFn = std::function<double(
    const UncertainGraph&, NodeId, NodeId, int, uint64_t)>;

/// Outcome of an index-of-dispersion measurement at one sample size Z
/// (paper §5.3: ρ_Z = V_Z / R_Z, converged when ρ_Z < 0.001).
struct DispersionResult {
  int num_samples = 0;
  /// R_Z: reliability averaged over queries and repeats.
  double mean = 0.0;
  /// V_Z: estimator variance averaged over queries.
  double variance = 0.0;
  /// ρ_Z = V_Z / R_Z (0 when the mean is 0).
  double index_of_dispersion = 0.0;
};

/// Repeats each query `repeats` times with independent seeds at sample size
/// `num_samples` and reports the dispersion statistics.
DispersionResult MeasureDispersion(
    const UncertainGraph& g,
    const std::vector<std::pair<NodeId, NodeId>>& queries, int num_samples,
    int repeats, const ReliabilityEstimatorFn& estimator, uint64_t seed = 42);

/// Walks `candidate_sizes` (ascending) and returns the first whose ρ_Z drops
/// below `threshold`, along with its measurement. Falls back to the largest
/// candidate when none converges.
DispersionResult FindConvergedSampleSize(
    const UncertainGraph& g,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    const std::vector<int>& candidate_sizes, int repeats, double threshold,
    const ReliabilityEstimatorFn& estimator, uint64_t seed = 42);

}  // namespace relmax

#endif  // RELMAX_SAMPLING_CONVERGENCE_H_
