#ifndef RELMAX_SAMPLING_SHARDED_WORLD_BANK_H_
#define RELMAX_SAMPLING_SHARDED_WORLD_BANK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/uncertain_graph.h"
#include "partition/partitioner.h"
#include "sampling/bitlane.h"
#include "sampling/world_view.h"

namespace relmax {

/// A WorldBank split across partition shards: the graph is edge-cut
/// partitioned (partition/partitioner.h) and each shard owns the BitMatrix
/// rows of its own edges, so no single allocation has to hold the whole
/// edges × worlds matrix. This lifts the flat bank's footprint cap from a
/// cliff ("fall back to re-sampling") into a per-shard budget ("add
/// shards").
///
/// Canonical-layout bit-identity: the fill runs the **exact same draw
/// stream** as the flat WorldBank (internal::FillBankColumns) — partitioning
/// changes only where each edge's words are stored, never which bits are
/// drawn. EdgeUpWorlds(e) therefore returns bit-identical words for any
/// shard count, and since the reachability fixpoint of the monotone word
/// algebra is unique, every flood answer is bit-identical to the 1-shard
/// canonical layout too. This is what lets tests pin answers across
/// {shards} × {threads} × {lanes} and lets the incremental index diff banks
/// built with different partition counts.
///
/// The fixpoint is a per-shard frontier worklist with boundary exchange:
/// each shard floods locally over its own sub-CSR (only arcs whose edge it
/// owns), and when a flood changes a lane block of a node that other shards
/// touch, that (node, block) is handed to those shards' worklists — the
/// "changed boundary lane blocks" swap. Rounds repeat until no shard has
/// work, i.e. no shard reported changed-block propagations. Shards drain
/// sequentially within a round, so all writes to the one global reach
/// matrix stay single-threaded and deterministic.
class ShardedWorldBank : public WorldView {
 public:
  /// Partitions `universe` into options.num_partitions shards (clamped, see
  /// PartitionOptions) using options.seed, then samples options.num_samples
  /// worlds through the canonical fill. The universe must outlive the bank.
  ShardedWorldBank(const UncertainGraph& universe,
                   const WorldViewOptions& options);

  /// Adopts an existing partition and pre-filled per-shard rows instead of
  /// partitioning and sampling — the deserialization path (index/index_io.h),
  /// where each matrix wraps an mmap-ed file section. `up[k]` must hold
  /// shard k's owned edges (ascending edge-id order, the reproducible layout
  /// documented on edge_local_) as rows of ceil(num_worlds / 64) logical
  /// words. The sub-CSRs are rebuilt from universe + partition, so floods
  /// behave exactly as over a sampled bank.
  ShardedWorldBank(const UncertainGraph& universe, Partition partition,
                   int num_worlds, std::vector<bitlane::BitMatrix> up);

  int num_worlds() const override { return num_worlds_; }
  const UncertainGraph& universe() const override { return universe_; }
  size_t num_edges() const override { return num_edges_; }
  size_t world_words() const override { return world_words_; }
  int num_shards() const override { return partition_.num_shards; }
  std::vector<size_t> ShardBankBytes() const override;
  const Partition* partition() const override { return &partition_; }

  std::span<const uint64_t> EdgeUpWorlds(EdgeId e) const override {
    return up_[partition_.edge_shard[e]].row_span(edge_local_[e]);
  }

  /// Same contract as WorldBank::ReachabilityFixpoint (same answers, bit
  /// for bit), computed shard-locally with boundary exchange. The returned
  /// changed-block count still satisfies "0 iff the seeded state was
  /// already a fixpoint", though the nonzero magnitude can differ from the
  /// flat bank's (blocks may cross shard seams in a different relaxation
  /// order).
  ///
  /// Note: the per-shard sub-CSRs are snapshotted at construction, so the
  /// flood only knows arcs that existed then — consistent with `active`
  /// edge ids being bounded by num_edges() (the construction-time count).
  int64_t ReachabilityFixpoint(
      NodeId source, bool backward, const std::vector<EdgeId>& active,
      bitlane::BitMatrix* reach,
      SeedPolicy seeds = SeedPolicy::kClearScratch) const override;

 private:
  /// Arcs of one direction restricted to one shard's owned edges, CSR over
  /// *global* node ids (offsets has num_nodes + 1 entries).
  struct ShardCsr {
    std::vector<size_t> offsets;
    std::vector<NodeId> heads;
    std::vector<EdgeId> edge_ids;
  };

  void BuildShardCsrs();

  const UncertainGraph& universe_;
  int num_worlds_;
  size_t world_words_;
  size_t num_edges_;
  Partition partition_;
  /// edge -> row within its owning shard's matrix (edges stay in ascending
  /// edge-id order within a shard, so the layout is reproducible from the
  /// partition alone).
  std::vector<uint32_t> edge_local_;
  /// One bit-matrix per shard: rows are the shard's owned edges.
  std::vector<bitlane::BitMatrix> up_;
  /// Per shard, out-direction arcs of owned edges; `bwd_` only for directed
  /// graphs (undirected out-CSRs already carry both arc copies).
  std::vector<ShardCsr> fwd_;
  std::vector<ShardCsr> bwd_;
  /// Bit k set iff node v has fwd_[k] (resp. bwd_[k]) arcs — the shards
  /// that must be told when v's reach row changes.
  std::vector<uint64_t> fwd_node_mask_;
  std::vector<uint64_t> bwd_node_mask_;
};

}  // namespace relmax

#endif  // RELMAX_SAMPLING_SHARDED_WORLD_BANK_H_
