#include "sampling/lazy_propagation.h"

#include <cmath>

namespace relmax {

LazyPropagationSampler::LazyPropagationSampler(const UncertainGraph& g,
                                               uint64_t seed)
    : graph_(g), rng_(seed), visited_(g.num_nodes()) {}

int64_t LazyPropagationSampler::NextGap(double p) {
  // Failures before the next success of a Bernoulli(p): floor(ln U / ln(1-p)).
  double u = rng_.NextDouble();
  while (u <= 0.0) u = rng_.NextDouble();
  return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<std::vector<EdgeId>> LazyPropagationSampler::BucketizeWorlds(
    int num_samples) {
  std::vector<std::vector<EdgeId>> buckets(num_samples);
  const std::vector<double>& probs = graph_.EdgeProbs();
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const double p = probs[e];
    if (p <= 0.0) continue;
    if (p >= 1.0) {
      for (int w = 0; w < num_samples; ++w) buckets[w].push_back(e);
      continue;
    }
    // Enumerate exactly the worlds in which this edge exists.
    int64_t world = NextGap(p);
    while (world < num_samples) {
      buckets[world].push_back(e);
      world += 1 + NextGap(p);
    }
  }
  return buckets;
}

double LazyPropagationSampler::Reliability(NodeId s, NodeId t,
                                           int num_samples) {
  RELMAX_CHECK(s < graph_.num_nodes() && t < graph_.num_nodes());
  RELMAX_CHECK(num_samples > 0);
  if (s == t) return 1.0;

  const auto buckets = BucketizeWorlds(num_samples);
  std::vector<uint32_t> present_epoch(graph_.num_edges(), 0);
  std::vector<NodeId> queue;
  queue.reserve(graph_.num_nodes());
  const CsrView csr = graph_.OutCsr();
  int hits = 0;
  for (int w = 0; w < num_samples; ++w) {
    const uint32_t epoch = static_cast<uint32_t>(w) + 1;
    for (EdgeId e : buckets[w]) present_epoch[e] = epoch;
    visited_.NewEpoch();
    queue.clear();
    visited_.Visit(s);
    queue.push_back(s);
    bool reached = false;
    for (size_t head = 0; head < queue.size() && !reached; ++head) {
      const NodeId u = queue[head];
      const size_t end = csr.end(u);
      for (size_t i = csr.begin(u); i < end; ++i) {
        const NodeId v = csr.heads[i];
        if (present_epoch[csr.edge_ids[i]] != epoch || visited_.Visited(v)) {
          continue;
        }
        visited_.Visit(v);
        if (v == t) {
          reached = true;
          break;
        }
        queue.push_back(v);
      }
    }
    hits += reached ? 1 : 0;
  }
  return static_cast<double>(hits) / num_samples;
}

std::vector<double> LazyPropagationSampler::FromSource(NodeId s,
                                                       int num_samples) {
  RELMAX_CHECK(s < graph_.num_nodes());
  RELMAX_CHECK(num_samples > 0);
  const auto buckets = BucketizeWorlds(num_samples);
  std::vector<uint32_t> present_epoch(graph_.num_edges(), 0);
  std::vector<int> counts(graph_.num_nodes(), 0);
  std::vector<NodeId> queue;
  queue.reserve(graph_.num_nodes());
  const CsrView csr = graph_.OutCsr();
  for (int w = 0; w < num_samples; ++w) {
    const uint32_t epoch = static_cast<uint32_t>(w) + 1;
    for (EdgeId e : buckets[w]) present_epoch[e] = epoch;
    visited_.NewEpoch();
    queue.clear();
    visited_.Visit(s);
    queue.push_back(s);
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      const size_t end = csr.end(u);
      for (size_t i = csr.begin(u); i < end; ++i) {
        const NodeId v = csr.heads[i];
        if (present_epoch[csr.edge_ids[i]] != epoch || visited_.Visited(v)) {
          continue;
        }
        visited_.Visit(v);
        queue.push_back(v);
      }
    }
    for (NodeId v : queue) ++counts[v];
  }
  std::vector<double> reliability(graph_.num_nodes());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    reliability[v] = static_cast<double>(counts[v]) / num_samples;
  }
  return reliability;
}

double EstimateReliabilityLazy(const UncertainGraph& g, NodeId s, NodeId t,
                               int num_samples, uint64_t seed) {
  LazyPropagationSampler sampler(g, seed);
  return sampler.Reliability(s, t, num_samples);
}

}  // namespace relmax
