#ifndef RELMAX_SAMPLING_WORLD_BANK_H_
#define RELMAX_SAMPLING_WORLD_BANK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/uncertain_graph.h"
#include "sampling/bitlane.h"

namespace relmax {

/// A bank of Z possible worlds sampled **once** over a (small) graph's edge
/// universe, stored as an edges × worlds presence bit-matrix.
///
/// Greedy selection loops (BE/IP, hill climbing) estimate reliability on many
/// near-identical subgraphs of one universe; re-sampling worlds for every
/// (round × candidate) pair makes sampling the dominant cost. A WorldBank
/// pays the RNG cost once and evaluates connectivity for **all worlds at
/// once**: reachability is iterated to fixpoint with word-parallel bit
/// operations (`reach[v] |= reach[u] & up[e]`), so one machine word carries
/// 64 worlds and no per-world BFS ever runs. Because every candidate is
/// scored against the same worlds (common random numbers), greedy
/// marginal-gain comparisons within a round share sampling noise.
///
/// Storage is one flat, 64-byte-aligned bitlane::BitMatrix whose rows are
/// whole 512-bit lane blocks, so the fixpoint inner step moves a cache line
/// per operation and autovectorizes (see bitlane.h). The fixpoint itself is
/// frontier-driven: it tracks which lane blocks of which nodes changed last
/// pass and only re-propagates those, instead of re-sweeping every word of
/// every row until quiescence.
///
/// Determinism: the matrix is filled by the counter-seeded sharded executor
/// (sampling/parallel.h). Shard `i` owns worlds [i * kShardSamples, …) —
/// exactly bit-word `i` of every edge row, since kShardSamples == 64 — and
/// draws them from the stream seeded by ShardSeed(seed, i), so every bit is
/// a pure function of (num_samples, seed): **bit-identical for any
/// num_threads**. Fixpoint answers are additionally invariant to the lane
/// kernel (scalar vs blocked/SIMD): the fixpoint of the monotone word
/// algebra is unique, so block scheduling cannot change the converged bits.
/// The bank is immutable after construction and safe to read from multiple
/// threads.
class WorldBank {
 public:
  struct Options {
    int num_samples = 500;
    uint64_t seed = 42;
    /// Lanes used only while filling the matrix; <= 0 means all hardware
    /// threads. The stored bits do not depend on it.
    int num_threads = 1;
  };

  /// Samples `options.num_samples` worlds over `universe`'s edges. The
  /// universe graph must outlive the bank.
  WorldBank(const UncertainGraph& universe, const Options& options);

  int num_worlds() const { return num_worlds_; }
  const UncertainGraph& universe() const { return universe_; }

  /// Edge rows in the bank — the universe's edge count **at construction**.
  /// If the graph is mutated afterwards, universe().num_edges() can exceed
  /// this; bank readers must size loops by this count, never the graph's.
  size_t num_edges() const { return up_.rows(); }

  /// Words in a world-indexed bitset (ceil(num_worlds / 64)).
  size_t world_words() const { return world_words_; }

  /// World-indexed bitset: the worlds in which logical edge `e` exists.
  /// A view into the bank's row (world_words() words); valid as long as the
  /// bank lives.
  std::span<const uint64_t> EdgeUpWorlds(EdgeId e) const {
    return up_.row_span(e);
  }

  /// Presence of logical edge `e` in world `w`.
  bool EdgePresent(int w, EdgeId e) const {
    return (up_.row(e)[static_cast<size_t>(w) >> 6] >> (w & 63)) & 1u;
  }

  /// World-indexed bitset with bit w set iff **every** edge in `edges` is
  /// present in world w — e.g. the worlds where a whole path is up.
  std::vector<uint64_t> WorldsWithAllEdges(
      const std::vector<EdgeId>& edges) const;

  /// What the fixpoint does with bits already set in a caller-provided
  /// `reach` scratch whose shape matches the bank.
  enum class SeedPolicy {
    /// Zero every non-source row first (the safe default). A scratch reused
    /// across sources needs no caller-side clear() — stale bits from the
    /// previous flood can never leak into the next answer.
    kClearScratch,
    /// Keep pre-set bits and treat them as already-reached facts. Explicit
    /// opt-in for callers that intentionally seed the scratch: per-path
    /// WorldsWithAllEdges bitsets OR-ed into row t, or a previous round's
    /// flood when the active edge set only ever grows.
    kSeedsAreFacts,
  };

  /// Computes, for every world simultaneously, which nodes are reachable
  /// from `source` using only `active` edges that are up in that world:
  /// on return `reach->row(v)` bit w is set iff v is reachable in world w.
  /// With `backward`, directed graphs propagate against arc direction
  /// (reachability *to* `source`). `*reach` is shaped to
  /// (num_nodes × world_words) and zeroed unless it already matches and
  /// `seeds == kSeedsAreFacts` (see SeedPolicy). Iterating `active` in
  /// rough path order converges in ~2 passes.
  ///
  /// Returns the number of (edge, lane-block) propagation steps that
  /// actually added bits — 0 iff the seeded state was already a fixpoint.
  /// The frontier pass only revisits blocks dirtied since they were last
  /// relaxed, so a converged re-run touches each seeded block once and
  /// changes nothing.
  int64_t ReachabilityFixpoint(
      NodeId source, bool backward, const std::vector<EdgeId>& active,
      bitlane::BitMatrix* reach,
      SeedPolicy seeds = SeedPolicy::kClearScratch) const;

  /// Convenience: fraction of worlds where t is reachable from s over the
  /// `active` edges (R(s, t) restricted to that edge subset), with
  /// `seed_connected` (may be empty) as trusted already-connected worlds.
  double ConnectedFraction(NodeId s, NodeId t,
                           const std::vector<EdgeId>& active,
                           std::vector<uint64_t> seed_connected) const;

  /// All universe edge ids, in id (insertion) order.
  std::vector<EdgeId> AllEdges() const;

  /// Popcount of a bitset, counting only bits below `limit`.
  static int64_t CountBits(std::span<const uint64_t> bits, size_t limit);

 private:
  const UncertainGraph& universe_;
  int num_worlds_;
  size_t world_words_;
  /// Row e = world bitset for edge e (bits beyond num_worlds stay zero,
  /// including the lane-block padding words — the fixpoint relies on it).
  bitlane::BitMatrix up_;
};

/// Telemetry for the shared-world fast path. Consumers that want a WorldBank
/// but exceed their footprint cap fall back to per-candidate / per-query
/// re-sampling — correct but much slower. Each such event calls
/// NoteBankFallback, which bumps a process-wide counter (surfaced as
/// `bank_fallbacks` in batch stats) and prints a one-line stderr warning so
/// operators can see they have fallen off the fast path.
void NoteBankFallback(const char* consumer, size_t wanted_bytes,
                      size_t cap_bytes);
int64_t BankFallbackCount();

}  // namespace relmax

#endif  // RELMAX_SAMPLING_WORLD_BANK_H_
