#ifndef RELMAX_SAMPLING_WORLD_BANK_H_
#define RELMAX_SAMPLING_WORLD_BANK_H_

#include <cstdint>
#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// A bank of Z possible worlds sampled **once** over a (small) graph's edge
/// universe, stored as an edges × worlds presence bit-matrix.
///
/// Greedy selection loops (BE/IP, hill climbing) estimate reliability on many
/// near-identical subgraphs of one universe; re-sampling worlds for every
/// (round × candidate) pair makes sampling the dominant cost. A WorldBank
/// pays the RNG cost once and evaluates connectivity for **all worlds at
/// once**: reachability is iterated to fixpoint with word-parallel bit
/// operations (`reach[v] |= reach[u] & up[e]`), so one machine word carries
/// 64 worlds and no per-world BFS ever runs. Because every candidate is
/// scored against the same worlds (common random numbers), greedy
/// marginal-gain comparisons within a round share sampling noise.
///
/// Determinism: the matrix is filled by the counter-seeded sharded executor
/// (sampling/parallel.h). Shard `i` owns worlds [i * kShardSamples, …) —
/// exactly bit-word `i` of every edge row, since kShardSamples == 64 — and
/// draws them from the stream seeded by ShardSeed(seed, i), so every bit is
/// a pure function of (num_samples, seed): **bit-identical for any
/// num_threads**. The bank is immutable after construction and safe to read
/// from multiple threads.
class WorldBank {
 public:
  struct Options {
    int num_samples = 500;
    uint64_t seed = 42;
    /// Lanes used only while filling the matrix; <= 0 means all hardware
    /// threads. The stored bits do not depend on it.
    int num_threads = 1;
  };

  /// Samples `options.num_samples` worlds over `universe`'s edges. The
  /// universe graph must outlive the bank.
  WorldBank(const UncertainGraph& universe, const Options& options);

  int num_worlds() const { return num_worlds_; }
  const UncertainGraph& universe() const { return universe_; }

  /// Edge rows in the bank — the universe's edge count **at construction**.
  /// If the graph is mutated afterwards, universe().num_edges() can exceed
  /// this; bank readers must size loops by this count, never the graph's.
  size_t num_edges() const { return up_.size(); }

  /// Words in a world-indexed bitset (ceil(num_worlds / 64)).
  size_t world_words() const { return world_words_; }

  /// World-indexed bitset: the worlds in which logical edge `e` exists.
  const std::vector<uint64_t>& EdgeUpWorlds(EdgeId e) const { return up_[e]; }

  /// Presence of logical edge `e` in world `w`.
  bool EdgePresent(int w, EdgeId e) const {
    return (up_[e][static_cast<size_t>(w) >> 6] >> (w & 63)) & 1u;
  }

  /// World-indexed bitset with bit w set iff **every** edge in `edges` is
  /// present in world w — e.g. the worlds where a whole path is up.
  std::vector<uint64_t> WorldsWithAllEdges(
      const std::vector<EdgeId>& edges) const;

  /// What the fixpoint does with bits already set in a caller-provided
  /// `reach` scratch whose shape matches the bank.
  enum class SeedPolicy {
    /// Zero every non-source row first (the safe default). A scratch reused
    /// across sources needs no caller-side clear() — stale bits from the
    /// previous flood can never leak into the next answer.
    kClearScratch,
    /// Keep pre-set bits and treat them as already-reached facts. Explicit
    /// opt-in for callers that intentionally seed the scratch: per-path
    /// WorldsWithAllEdges bitsets OR-ed into `(*reach)[t]`, or a previous
    /// round's flood when the active edge set only ever grows.
    kSeedsAreFacts,
  };

  /// Computes, for every world simultaneously, which nodes are reachable
  /// from `source` using only `active` edges that are up in that world:
  /// on return `(*reach)[v]` bit w is set iff v is reachable in world w.
  /// With `backward`, directed graphs propagate against arc direction
  /// (reachability *to* `source`). `*reach` is resized to num_nodes and
  /// zeroed unless `seeds == kSeedsAreFacts` (see SeedPolicy). Iterating
  /// `active` in rough path order converges in ~2 passes.
  void ReachabilityFixpoint(
      NodeId source, bool backward, const std::vector<EdgeId>& active,
      std::vector<std::vector<uint64_t>>* reach,
      SeedPolicy seeds = SeedPolicy::kClearScratch) const;

  /// Convenience: fraction of worlds where t is reachable from s over the
  /// `active` edges (R(s, t) restricted to that edge subset), with
  /// `seed_connected` (may be empty) as trusted already-connected worlds.
  double ConnectedFraction(NodeId s, NodeId t,
                           const std::vector<EdgeId>& active,
                           std::vector<uint64_t> seed_connected) const;

  /// All universe edge ids, in id (insertion) order.
  std::vector<EdgeId> AllEdges() const;

  /// Popcount of a bitset, counting only bits below `limit`.
  static int64_t CountBits(const std::vector<uint64_t>& bits, size_t limit);

 private:
  const UncertainGraph& universe_;
  int num_worlds_;
  size_t world_words_;
  /// up_[e] = world bitset for edge e (bits beyond num_worlds stay zero).
  std::vector<std::vector<uint64_t>> up_;
};

}  // namespace relmax

#endif  // RELMAX_SAMPLING_WORLD_BANK_H_
