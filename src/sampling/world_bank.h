#ifndef RELMAX_SAMPLING_WORLD_BANK_H_
#define RELMAX_SAMPLING_WORLD_BANK_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/uncertain_graph.h"
#include "sampling/bitlane.h"
#include "sampling/world_view.h"

namespace relmax {

namespace internal {

/// The canonical bank fill: samples `num_samples` worlds over `universe`'s
/// edges with the counter-seeded sharded executor and hands each completed
/// 64-world column batch to `store(word, col)`, where `col[e]` is bit-word
/// `word` of edge e's world bitset. Both the flat and the sharded bank are
/// filled through this one function, so their draws are the **same stream**
/// — only the storage destination differs. That is the canonical-layout
/// bit-identity contract: every stored bit is a pure function of
/// (edge probs, num_samples, seed), independent of threads and partitions.
/// `store` runs concurrently for distinct words; words never repeat.
void FillBankColumns(
    const UncertainGraph& universe, int num_samples, uint64_t seed,
    int num_threads,
    const std::function<void(size_t word, const uint64_t* col)>& store);

}  // namespace internal

/// A bank of Z possible worlds sampled **once** over a (small) graph's edge
/// universe, stored as an edges × worlds presence bit-matrix.
///
/// Greedy selection loops (BE/IP, hill climbing) estimate reliability on many
/// near-identical subgraphs of one universe; re-sampling worlds for every
/// (round × candidate) pair makes sampling the dominant cost. A WorldBank
/// pays the RNG cost once and evaluates connectivity for **all worlds at
/// once**: reachability is iterated to fixpoint with word-parallel bit
/// operations (`reach[v] |= reach[u] & up[e]`), so one machine word carries
/// 64 worlds and no per-world BFS ever runs. Because every candidate is
/// scored against the same worlds (common random numbers), greedy
/// marginal-gain comparisons within a round share sampling noise.
///
/// Storage is one flat, 64-byte-aligned bitlane::BitMatrix whose rows are
/// whole 512-bit lane blocks, so the fixpoint inner step moves a cache line
/// per operation and autovectorizes (see bitlane.h). The fixpoint itself is
/// frontier-driven: it tracks which lane blocks of which nodes changed last
/// pass and only re-propagates those, instead of re-sweeping every word of
/// every row until quiescence.
///
/// Determinism: the matrix is filled by the counter-seeded sharded executor
/// (sampling/parallel.h). Shard `i` owns worlds [i * kShardSamples, …) —
/// exactly bit-word `i` of every edge row, since kShardSamples == 64 — and
/// draws them from the stream seeded by ShardSeed(seed, i), so every bit is
/// a pure function of (num_samples, seed): **bit-identical for any
/// num_threads**. Fixpoint answers are additionally invariant to the lane
/// kernel (scalar vs blocked/SIMD): the fixpoint of the monotone word
/// algebra is unique, so block scheduling cannot change the converged bits.
/// The bank is immutable after construction and safe to read from multiple
/// threads.
///
/// This is the 1-shard WorldView; ShardedWorldBank (sharded_world_bank.h)
/// splits the same bits across partition shards for graphs whose flat
/// matrix would bust a footprint cap. MakeWorldView picks between them.
class WorldBank : public WorldView {
 public:
  /// num_partitions is accepted for WorldViewOptions compatibility but
  /// ignored here — the flat bank is always one shard. Use MakeWorldView
  /// to honor it.
  using Options = WorldViewOptions;

  /// Samples `options.num_samples` worlds over `universe`'s edges. The
  /// universe graph must outlive the bank.
  WorldBank(const UncertainGraph& universe, const Options& options);

  /// Adopts pre-filled rows instead of sampling — the deserialization path
  /// (index/index_io.h), where `up` wraps an mmap-ed file section. `up` must
  /// hold universe.num_edges() rows of ceil(num_worlds / 64) logical words
  /// in the canonical draw-stream layout (row e = edge e's world bitset,
  /// tail and pad bits zero). The bank never writes the matrix after
  /// construction, so a read-only external matrix is safe; whoever owns the
  /// underlying buffer must keep it alive for the bank's lifetime.
  WorldBank(const UncertainGraph& universe, int num_worlds,
            bitlane::BitMatrix up);

  int num_worlds() const override { return num_worlds_; }
  const UncertainGraph& universe() const override { return universe_; }

  /// Edge rows in the bank — the universe's edge count **at construction**.
  /// If the graph is mutated afterwards, universe().num_edges() can exceed
  /// this; bank readers must size loops by this count, never the graph's.
  size_t num_edges() const override { return up_.rows(); }

  /// Words in a world-indexed bitset (ceil(num_worlds / 64)).
  size_t world_words() const override { return world_words_; }

  int num_shards() const override { return 1; }
  std::vector<size_t> ShardBankBytes() const override {
    return {up_.rows() * world_words_ * sizeof(uint64_t)};
  }

  /// World-indexed bitset: the worlds in which logical edge `e` exists.
  /// A view into the bank's row (world_words() words); valid as long as the
  /// bank lives.
  std::span<const uint64_t> EdgeUpWorlds(EdgeId e) const override {
    return up_.row_span(e);
  }

  /// Computes, for every world simultaneously, which nodes are reachable
  /// from `source` using only `active` edges that are up in that world:
  /// on return `reach->row(v)` bit w is set iff v is reachable in world w.
  /// With `backward`, directed graphs propagate against arc direction
  /// (reachability *to* `source`). `*reach` is shaped to
  /// (num_nodes × world_words) and zeroed unless it already matches and
  /// `seeds == kSeedsAreFacts` (see WorldView::SeedPolicy). Iterating
  /// `active` in rough path order converges in ~2 passes.
  ///
  /// Returns the number of (edge, lane-block) propagation steps that
  /// actually added bits — 0 iff the seeded state was already a fixpoint.
  /// The frontier pass only revisits blocks dirtied since they were last
  /// relaxed, so a converged re-run touches each seeded block once and
  /// changes nothing.
  int64_t ReachabilityFixpoint(
      NodeId source, bool backward, const std::vector<EdgeId>& active,
      bitlane::BitMatrix* reach,
      SeedPolicy seeds = SeedPolicy::kClearScratch) const override;

 private:
  const UncertainGraph& universe_;
  int num_worlds_;
  size_t world_words_;
  /// Row e = world bitset for edge e (bits beyond num_worlds stay zero,
  /// including the lane-block padding words — the fixpoint relies on it).
  bitlane::BitMatrix up_;
};

/// Telemetry for the shared-world fast path. Consumers that want a WorldBank
/// but exceed their footprint cap fall back to per-candidate / per-query
/// re-sampling — correct but much slower. Each such event calls
/// NoteBankFallback, which bumps a process-wide counter (surfaced as
/// `bank_fallbacks` in batch stats) and prints a one-line stderr warning so
/// operators can see they have fallen off the fast path. The budget is
/// per-shard: `wanted_bytes` is the (balanced) footprint of one shard and
/// `num_shards` says how many shards that estimate assumed.
void NoteBankFallback(const char* consumer, size_t wanted_bytes,
                      size_t cap_bytes, int num_shards = 1);
int64_t BankFallbackCount();

}  // namespace relmax

#endif  // RELMAX_SAMPLING_WORLD_BANK_H_
