#include "sampling/world_view.h"

#include "common/logging.h"

namespace relmax {

// The shared non-virtual helpers live here, written against the virtual
// surface only, so both the flat and the sharded bank get them for free and
// bit-for-bit identically.

std::vector<uint64_t> WorldView::WorldsWithAllEdges(
    const std::vector<EdgeId>& edges) const {
  const size_t words = world_words();
  std::vector<uint64_t> all(words, ~uint64_t{0});
  // Clear the tail bits beyond num_worlds so counts stay exact.
  if (num_worlds() & 63) {
    all.back() = (uint64_t{1} << (num_worlds() & 63)) - 1;
  }
  for (EdgeId e : edges) {
    const std::span<const uint64_t> up = EdgeUpWorlds(e);
    for (size_t w = 0; w < words; ++w) all[w] &= up[w];
  }
  return all;
}

double WorldView::ConnectedFraction(
    NodeId s, NodeId t, const std::vector<EdgeId>& active,
    std::vector<uint64_t> seed_connected) const {
  RELMAX_CHECK(t < universe().num_nodes());
  const size_t words = world_words();
  bitlane::BitMatrix reach;
  ReachabilityFixpoint(s, /*backward=*/false, active, &reach);
  if (seed_connected.empty()) seed_connected.assign(words, 0);
  const uint64_t* const at_t = reach.row(t);
  for (size_t w = 0; w < words; ++w) {
    seed_connected[w] |= at_t[w];
  }
  return static_cast<double>(
             CountBits(seed_connected, static_cast<size_t>(num_worlds()))) /
         num_worlds();
}

std::vector<EdgeId> WorldView::AllEdges() const {
  // Sized by the bank's own rows, not universe().num_edges(): the graph may
  // have grown edges since the bank was sampled.
  std::vector<EdgeId> edges(num_edges());
  for (size_t e = 0; e < edges.size(); ++e) edges[e] = static_cast<EdgeId>(e);
  return edges;
}

int64_t WorldView::CountBits(std::span<const uint64_t> bits, size_t limit) {
  int64_t count = 0;
  for (size_t word = 0; word * 64 < limit && word < bits.size(); ++word) {
    uint64_t value = bits[word];
    const size_t remaining = limit - word * 64;
    if (remaining < 64) value &= (uint64_t{1} << remaining) - 1;
    count += __builtin_popcountll(value);
  }
  return count;
}

}  // namespace relmax
