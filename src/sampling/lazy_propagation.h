#ifndef RELMAX_SAMPLING_LAZY_PROPAGATION_H_
#define RELMAX_SAMPLING_LAZY_PROPAGATION_H_

#include <vector>

#include "common/rng.h"
#include "graph/uncertain_graph.h"
#include "graph/visit_marker.h"

namespace relmax {

/// Lazy-propagation Monte Carlo estimator (paper §7, after Li et al. [28]):
/// instead of flipping a coin per edge per sampled world, each edge's
/// *presence worlds* are enumerated directly with geometric skips —
/// next_world = current + Geometric(p) — so an edge with probability p costs
/// O(Z·p) work across Z worlds instead of O(Z). On low-probability graphs
/// (the paper's DBLP/Twitter models average p ≈ 0.1) this materializes
/// worlds several times faster than per-edge flipping, with an identical
/// sampling distribution.
class LazyPropagationSampler {
 public:
  LazyPropagationSampler(const UncertainGraph& g, uint64_t seed);

  /// Estimates R(s, t, G) over `num_samples` worlds.
  double Reliability(NodeId s, NodeId t, int num_samples);

  /// Reliability of every node from s over `num_samples` worlds.
  std::vector<double> FromSource(NodeId s, int num_samples);

 private:
  // Assigns every logical edge to the buckets of the worlds it exists in
  // (world-major processing order).
  std::vector<std::vector<EdgeId>> BucketizeWorlds(int num_samples);

  // Geometric skip: number of additional worlds until the next presence.
  int64_t NextGap(double p);

  const UncertainGraph& graph_;
  Rng rng_;
  VisitMarker visited_;
};

/// One-shot wrapper mirroring EstimateReliability.
double EstimateReliabilityLazy(const UncertainGraph& g, NodeId s, NodeId t,
                               int num_samples, uint64_t seed);

}  // namespace relmax

#endif  // RELMAX_SAMPLING_LAZY_PROPAGATION_H_
