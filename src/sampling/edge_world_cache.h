#ifndef RELMAX_SAMPLING_EDGE_WORLD_CACHE_H_
#define RELMAX_SAMPLING_EDGE_WORLD_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/uncertain_graph.h"

namespace relmax {

/// Per-world edge outcome cache shared by the sampling kernels (undirected
/// graphs only: both stored arcs of an edge must flip one coin per world).
///
/// Each per-edge word packs `(epoch << 1) | present`, so checking world
/// coherence and reading the cached flip is a single random access. The
/// epoch therefore lives in 31 bits; BeginWorld() re-zeroes the array on
/// wrap so a stale entry can never alias the current world. This wrap
/// protocol lives here, once, for every kernel that uses the cache.
///
/// Hot loops may bypass UpOrFlip and inline the protocol against `state()`
/// and `epoch()` hoisted into locals (so stores cannot force per-arc member
/// reloads); the packed layout above is the contract they follow.
class EdgeWorldCache {
 public:
  explicit EdgeWorldCache(size_t num_edges) : state_(num_edges, 0) {}

  /// Re-sizes for a mutated graph; every cached outcome is dropped.
  void Reset(size_t num_edges) {
    state_.assign(num_edges, 0);
    epoch_ = 0;
  }

  /// Starts the next sampled world.
  void BeginWorld() {
    if (++epoch_ == (1u << 31)) {
      std::fill(state_.begin(), state_.end(), 0u);
      epoch_ = 1;
    }
  }

  uint32_t epoch() const { return epoch_; }
  uint32_t* state() { return state_.data(); }

  /// Cached outcome of edge `e` in the current world, flipping via `flip()`
  /// (exactly once per world) on first encounter.
  template <typename FlipFn>
  bool UpOrFlip(EdgeId e, FlipFn&& flip) {
    uint32_t& packed = state_[e];
    if ((packed >> 1) != epoch_) {
      packed = (epoch_ << 1) | (flip() ? 1u : 0u);
    }
    return (packed & 1u) != 0;
  }

 private:
  std::vector<uint32_t> state_;
  uint32_t epoch_ = 0;
};

}  // namespace relmax

#endif  // RELMAX_SAMPLING_EDGE_WORLD_CACHE_H_
