#include "sampling/bitlane.h"

#include <atomic>

namespace relmax {
namespace bitlane {
namespace {

std::atomic<LaneMode> g_mode{LaneMode::kAuto};

}  // namespace

LaneMode Mode() {
  const LaneMode mode = g_mode.load(std::memory_order_relaxed);
  return mode == LaneMode::kAuto ? LaneMode::kBlocked : mode;
}

void SetMode(LaneMode mode) { g_mode.store(mode, std::memory_order_relaxed); }

const char* ModeName(LaneMode mode) {
  switch (mode) {
    case LaneMode::kAuto:
      return "auto";
    case LaneMode::kScalar:
      return "scalar";
    case LaneMode::kBlocked:
      return "blocked";
  }
  internal::CheckFailed("unhandled LaneMode", __FILE__, __LINE__);
}

}  // namespace bitlane
}  // namespace relmax
