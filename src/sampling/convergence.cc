#include "sampling/convergence.h"

#include "common/logging.h"
#include "common/rng.h"

namespace relmax {

DispersionResult MeasureDispersion(
    const UncertainGraph& g,
    const std::vector<std::pair<NodeId, NodeId>>& queries, int num_samples,
    int repeats, const ReliabilityEstimatorFn& estimator, uint64_t seed) {
  RELMAX_CHECK(!queries.empty());
  RELMAX_CHECK(repeats > 1);
  Rng rng(seed);

  double mean_sum = 0.0;
  double var_sum = 0.0;
  for (const auto& [s, t] : queries) {
    double sum = 0.0;
    double sq = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      const double estimate = estimator(g, s, t, num_samples, rng.Next());
      sum += estimate;
      sq += estimate * estimate;
    }
    const double mean = sum / repeats;
    const double var =
        std::max(0.0, (sq - repeats * mean * mean) / (repeats - 1));
    mean_sum += mean;
    var_sum += var;
  }

  DispersionResult result;
  result.num_samples = num_samples;
  result.mean = mean_sum / static_cast<double>(queries.size());
  result.variance = var_sum / static_cast<double>(queries.size());
  result.index_of_dispersion =
      result.mean > 0.0 ? result.variance / result.mean : 0.0;
  return result;
}

DispersionResult FindConvergedSampleSize(
    const UncertainGraph& g,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    const std::vector<int>& candidate_sizes, int repeats, double threshold,
    const ReliabilityEstimatorFn& estimator, uint64_t seed) {
  RELMAX_CHECK(!candidate_sizes.empty());
  DispersionResult last;
  for (int z : candidate_sizes) {
    last = MeasureDispersion(g, queries, z, repeats, estimator, seed);
    if (last.index_of_dispersion < threshold) return last;
  }
  return last;
}

}  // namespace relmax
