#ifndef RELMAX_QUERY_QUERY_ENGINE_H_
#define RELMAX_QUERY_QUERY_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"
#include "index/index_io.h"
#include "index/reliability_index.h"
#include "query/query_set.h"
#include "sampling/world_bank.h"

namespace relmax {

/// Knobs for the batch query engine. The estimator fields mirror
/// SolverOptions so CLI/bench flag plumbing stays uniform.
struct QueryEngineOptions {
  /// Number of sampled possible worlds Z shared by the whole batch.
  int num_samples = 2000;
  /// RNG seed; every answer is a pure function of (graph version, estimator,
  /// seed, Z, query) — independent of batch composition and thread count.
  uint64_t seed = 42;
  /// Worker lanes (<= 0 means all hardware threads). Answers are
  /// bit-identical for a fixed seed regardless of this value.
  int num_threads = 1;
  /// Estimator for reliability values. The shared-world fast path applies to
  /// Monte Carlo; RSS keeps its stratified per-query streams.
  Estimator estimator = Estimator::kMonteCarlo;
  /// Answer the whole batch from one shared WorldBank (sample Z worlds once,
  /// one word-parallel flood per distinct source). When off, every pair is
  /// estimated independently — exactly EstimateReliability(g, s, t) under
  /// the same (Z, seed, threads).
  bool reuse_worlds = true;
  /// Answer from the offline per-world connectivity index (src/index):
  /// labels are built once over the shared bank and every query becomes a
  /// popcount — bit-identical to the flood path over the same bank. Applies
  /// on top of reuse_worlds; when the index is disabled or over its caps the
  /// engine floods exactly as before.
  bool use_index = false;
  /// Persistent index file (index/index_io.h). Non-empty implies use_index.
  /// On the first indexed batch the engine tries to mmap-load this file
  /// (O(file size), no sampling or relabeling); a missing file is built and
  /// saved silently, while a stale or corrupt one warns on stderr and falls
  /// back to a full rebuild (then republishes). Incremental relabels after a
  /// graph mutation republish atomically (write-temp + rename) with the
  /// header's generation counter bumped.
  std::string index_file;
  /// Partition shards for the shared bank (`--partitions`). 1 keeps the
  /// flat WorldBank; >1 edge-cut partitions the graph and shards the bank's
  /// bit-matrix, turning max_bank_bytes into a per-shard budget. Answers
  /// are bit-identical for any value — the sharded fill replays the flat
  /// bank's canonical draw stream and floods converge to the same fixpoint.
  int num_partitions = 1;
  /// Footprint caps forwarded to the index (label planes, directed reach
  /// cache). num_threads is overridden by the engine's own knob.
  ReliabilityIndex::Options index;
  /// Remember per-pair answers across Answer() calls. Entries are keyed by
  /// the full determinism tuple — (graph version(), estimator, seed, Z,
  /// query); the first four are fixed per engine, so the cache stores
  /// (query -> value) and is dropped wholesale when the graph mutates.
  bool cache_results = true;
  /// Entry cap for that cache: oldest first-inserted pairs are evicted once
  /// the cap is crossed, so a long-lived engine's memory stays bounded under
  /// serving-style workloads. Generous by default (16 bytes per entry).
  size_t max_cache_entries = size_t{1} << 20;
  /// RSS-specific knobs when estimator == kRss (num_samples/seed/threads
  /// above override the matching RssOptions fields).
  RssOptions rss;
  /// Footprint caps for the shared-world fast path (mirroring the greedy
  /// baselines' bank cap): the bank is edges × worlds bits **per shard**
  /// (one balanced shard of ceil(E / num_partitions) rows is metered
  /// against max_bank_bytes, so more partitions admit bigger graphs), and
  /// each flood lane additionally holds a nodes × worlds reach matrix.
  /// Beyond either cap the engine falls back to per-query estimation rather
  /// than swapping; each such batch bumps BatchStats::bank_fallbacks and
  /// warns on stderr with the per-shard MiB wanted vs the cap.
  size_t max_bank_bytes = size_t{256} << 20;
  size_t max_flood_bytes_per_lane = size_t{64} << 20;
};

/// Engine-lifetime accounting for the persistent index file
/// (QueryEngineOptions::index_file). Monotonic except `generation` and
/// `file_bytes`, which track the most recent load or save.
struct IndexIoStats {
  /// Successful mmap-loads (index adopted with no rebuild).
  size_t loads = 0;
  /// Successful saves (fresh build or incremental republish).
  size_t saves = 0;
  /// Loads that failed for any reason other than the file not existing
  /// (each also warns on stderr before the engine rebuilds from scratch).
  size_t load_failures = 0;
  /// Generation of the current on-disk file (header counter; bumped on
  /// every republish).
  uint64_t generation = 0;
  /// Byte size of the current on-disk file.
  size_t file_bytes = 0;
};

/// Per-batch accounting, reported alongside the answers.
struct BatchStats {
  /// Total queries answered (all kinds).
  size_t num_queries = 0;
  /// Distinct (s, t) pairs the batch needed.
  size_t distinct_pairs = 0;
  /// Pairs served from the result cache (previous Answer() calls on the
  /// same graph version).
  size_t cache_hits = 0;
  /// Shared-world reachability floods actually run — one per distinct
  /// source among the non-cached pairs.
  size_t floods = 0;
  /// Pairs estimated independently on the per-query fallback path (shared
  /// worlds disabled or over the footprint cap). Previously misreported
  /// under `floods`.
  size_t fallback_estimates = 0;
  /// Times this batch *wanted* the shared-world fast path but fell off it
  /// because the bank/flood footprint caps were exceeded (0 when shared
  /// worlds are simply disabled or a non-MC estimator is configured). Each
  /// increment also warns once on stderr; the process-wide total is
  /// BankFallbackCount().
  size_t bank_fallbacks = 0;
  /// Pairs answered by the offline reliability index (no flood).
  size_t index_answers = 0;
  /// Result-cache entries evicted by this batch (max_cache_entries cap).
  size_t cache_evictions = 0;
  /// Logical bank bytes held per shard (WorldView::ShardBankBytes) — one
  /// entry for the flat bank, num_partitions entries for a sharded one;
  /// empty when no bank was built (fallback path / shared worlds off).
  std::vector<size_t> shard_bank_bytes;
  double seconds = 0.0;
};

/// Answers to one QuerySet, parallel to each kind's insertion order.
struct BatchResult {
  /// st_values[i] answers set.st_queries()[i].
  std::vector<double> st_values;
  /// aggregate_values[i] answers set.aggregate_queries()[i].
  std::vector<double> aggregate_values;
  /// top_k[i] answers set.top_k_queries()[i]: (candidate index, reliability)
  /// sorted by descending reliability, ties broken by candidate order.
  std::vector<std::vector<std::pair<size_t, double>>> top_k;
  BatchStats stats;
};

/// Batch multi-query reliability engine: many queries against one uncertain
/// graph, answered from one shared set of sampled worlds.
///
/// The paper's estimators pay Z sampled worlds per (s, t) query; under
/// multi-query traffic that re-sampling is almost entirely redundant. The
/// engine samples Z worlds once into a WorldBank (edges × worlds bit-matrix)
/// and runs one word-parallel reachability flood per **distinct source**:
/// `reach[v]` bit w says "v reachable from s in world w", so every query
/// sharing that source — s-t pairs, aggregate matrix cells, top-k candidates
/// — is a popcount of the flood's target row. Floods for different sources
/// are independent and fan out across the sampling thread pool; each answer
/// depends only on (bank bits, source), so results are **bit-identical for
/// any num_threads** and for any batch composition or order.
///
/// With `use_index` the engine goes one step further: it builds a
/// ReliabilityIndex (per-world component/SCC labels) over the bank once, and
/// every query becomes a popcount with no flood at all — bit-identical to
/// the flood path by construction. See src/index/reliability_index.h.
///
/// Answers are memoized: a pair asked again while the graph's version() is
/// unchanged is free. Any mutation (AddEdge/UpdateEdgeProb/assignment)
/// invalidates the cache on the next Answer(); a live index additionally
/// attempts incremental maintenance — resample the bank, relabel only the
/// worlds whose sampled edge presence actually changed — before falling back
/// to a wholesale rebuild.
///
/// The engine is not internally synchronized: Answer() mutates the cache,
/// so concurrent callers must serialize (or use one engine per thread —
/// answers are identical by construction).
class QueryEngine {
 public:
  /// `g` must outlive the engine.
  QueryEngine(const UncertainGraph& g, const QueryEngineOptions& options);

  /// Answers every query in `set`. Fails on validation errors (out-of-range
  /// nodes, empty aggregate sets, k < 1) without computing anything.
  StatusOr<BatchResult> Answer(const QuerySet& set);

  /// Single-pair convenience: exactly Answer() of a one-query batch.
  /// Propagates validation errors (out-of-range nodes) instead of aborting.
  StatusOr<double> EstimateSt(NodeId s, NodeId t);

  const UncertainGraph& graph() const { return graph_; }
  const QueryEngineOptions& options() const { return options_; }

  /// Pairs currently memoized (test/introspection hook).
  size_t cache_size() const { return cache_.size(); }

  /// The live reliability index, or nullptr when disabled / not yet built /
  /// over its caps (test/CLI introspection hook).
  const ReliabilityIndex* index() const { return index_.get(); }

  /// Persistent-index accounting (zeroes when options.index_file is empty).
  const IndexIoStats& index_io_stats() const { return index_io_stats_; }

 private:
  // Resyncs engine state after a graph mutation. The result cache always
  // drops (answers depend on probabilities). With a live index whose graph
  // shape is only extended (same nodes, same existing-edge endpoints), the
  // bank is resampled — bit-identical to a fresh engine's, bank bits being a
  // pure function of (probs, Z, seed) — and only the worlds whose edge
  // presence changed are relabeled; otherwise bank and index drop wholesale.
  void SyncWithGraph();

  // Samples the shared WorldBank if absent and snapshots the graph shape it
  // was built against.
  void EnsureBank();

  // True when the current graph is the indexed shape plus (possibly) new
  // edges — the prerequisite for incremental index maintenance.
  bool GraphExtendsIndexedShape() const;

  // Resolves reliabilities for `pairs` (deduplicated (s, t) keys), filling
  // `resolved` and `stats`. Runs floods / per-pair estimates as configured.
  void ResolvePairs(const std::vector<StQuery>& pairs,
                    std::unordered_map<uint64_t, double>* resolved,
                    BatchStats* stats);

  static uint64_t PairKey(NodeId s, NodeId t) {
    return (static_cast<uint64_t>(s) << 32) | t;
  }

  // True when the shared-world path is active (MC estimator, reuse enabled,
  // bank footprint under the cap).
  bool UseSharedWorlds() const;

  // True when queries should resolve through the reliability index (on top
  // of UseSharedWorlds, the label planes must fit their cap). A non-empty
  // options_.index_file implies use_index.
  bool UseIndex() const;

  // The WorldViewOptions every bank build / load / save keys on.
  WorldViewOptions WorldOptions() const;

  // Attempts to adopt bank + index from options_.index_file. NotFound is
  // silent (the build path will save); any other failure warns on stderr
  // and leaves the engine to rebuild from scratch.
  void TryLoadIndexFile();

  // Republishes bank + index to options_.index_file (write-temp + rename)
  // with the generation counter bumped. Failure warns on stderr only — the
  // in-memory engine stays fully functional.
  void SaveIndexFile();

  const UncertainGraph& graph_;
  QueryEngineOptions options_;
  uint64_t graph_version_;
  // Declared before bank_/index_ so it is destroyed after them: a loaded
  // bank's bit rows point into this read-only mapping (zero copy).
  MappedFile index_mapping_;
  std::unique_ptr<WorldView> bank_;
  std::unique_ptr<ReliabilityIndex> index_;
  std::vector<EdgeId> all_edges_;
  // Graph shape the bank was sampled against: node count plus the endpoints
  // of every edge, in id order. Incremental maintenance requires the mutated
  // graph to extend this shape (UpdateEdgeProb/AddEdge do; wholesale
  // assignment usually does not).
  NodeId indexed_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> indexed_endpoints_;
  // pair key -> reliability, valid for graph_version_ only, capped at
  // options_.max_cache_entries with first-inserted-first-evicted order.
  std::unordered_map<uint64_t, double> cache_;
  std::deque<uint64_t> cache_order_;
  IndexIoStats index_io_stats_;
};

}  // namespace relmax

#endif  // RELMAX_QUERY_QUERY_ENGINE_H_
