#ifndef RELMAX_QUERY_QUERY_SET_H_
#define RELMAX_QUERY_QUERY_SET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// One source-target reliability query: estimate R(s, t, G).
struct StQuery {
  NodeId s = 0;
  NodeId t = 0;

  bool operator==(const StQuery& o) const { return s == o.s && t == o.t; }
};

/// A multiple-source/multiple-target aggregate query: the aggregate F over
/// the pairwise reliability matrix R(s_i, t_j), the same semantics as
/// PairwiseReliability + AggregateMatrix in core/evaluate.h (§6).
struct AggregateQuery {
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  Aggregate aggregate = Aggregate::kAverage;
};

/// Top-k most-reliable pairs out of an explicit candidate pair list —
/// "which of these links matter most", answered without the caller issuing
/// |candidates| separate queries.
struct TopKQuery {
  std::vector<StQuery> candidates;
  int k = 1;
};

/// An ordered batch of queries against one uncertain graph. The engine
/// answers every query in the set from a single shared set of sampled
/// worlds (query/query_engine.h); results come back parallel to the
/// insertion order of each kind.
class QuerySet {
 public:
  void AddSt(NodeId s, NodeId t) { st_.push_back({s, t}); }
  void AddAggregate(AggregateQuery q) { aggregate_.push_back(std::move(q)); }
  void AddTopK(TopKQuery q) { top_k_.push_back(std::move(q)); }

  const std::vector<StQuery>& st_queries() const { return st_; }
  const std::vector<AggregateQuery>& aggregate_queries() const {
    return aggregate_;
  }
  const std::vector<TopKQuery>& top_k_queries() const { return top_k_; }

  /// Total query count across all kinds.
  size_t size() const {
    return st_.size() + aggregate_.size() + top_k_.size();
  }
  bool empty() const { return size() == 0; }

  /// Every referenced node must exist in `g`; aggregate source/target sets
  /// must be non-empty, top-k candidate lists non-empty with k >= 1.
  Status Validate(const UncertainGraph& g) const;

  /// Parses the batch file format: one `s t` pair per line, `#` starts a
  /// comment (whole-line or trailing), blank lines skipped, CRLF tolerated.
  static StatusOr<QuerySet> Parse(const std::string& text);

  /// Reads and parses a batch file (see Parse).
  static StatusOr<QuerySet> FromFile(const std::string& path);

 private:
  std::vector<StQuery> st_;
  std::vector<AggregateQuery> aggregate_;
  std::vector<TopKQuery> top_k_;
};

}  // namespace relmax

#endif  // RELMAX_QUERY_QUERY_SET_H_
