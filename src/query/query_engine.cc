#include "query/query_engine.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "common/logging.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/evaluate.h"
#include "sampling/parallel.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"
#include "sampling/world_view.h"

namespace relmax {

QueryEngine::QueryEngine(const UncertainGraph& g,
                         const QueryEngineOptions& options)
    : graph_(g), options_(options), graph_version_(g.version()) {
  RELMAX_CHECK(options_.num_samples > 0);
}

WorldViewOptions QueryEngine::WorldOptions() const {
  return WorldViewOptions{.num_samples = options_.num_samples,
                          .seed = options_.seed,
                          .num_threads = options_.num_threads,
                          .num_partitions = options_.num_partitions};
}

void QueryEngine::SyncWithGraph() {
  if (graph_.version() == graph_version_) return;
  graph_version_ = graph_.version();
  // Memoized answers depend on edge probabilities: always stale.
  cache_.clear();
  cache_order_.clear();
  if (index_ != nullptr && UseIndex() && GraphExtendsIndexedShape()) {
    // Incremental maintenance: resample the bank — its bits are a pure
    // function of (probs, Z, seed), so this is exactly what a fresh engine
    // would hold — and relabel only the worlds whose edge presence changed.
    std::unique_ptr<WorldView> fresh = MakeWorldView(graph_, WorldOptions());
    index_->ApplyBankUpdate(*fresh,
                            ReliabilityIndex::DiffWorlds(*bank_, *fresh));
    bank_ = std::move(fresh);
    // The old bank may have read from the mapped file; with the freshly
    // sampled bank adopted, the mapping holds nothing live.
    index_mapping_ = MappedFile();
    all_edges_ = bank_->AllEdges();
    indexed_nodes_ = graph_.num_nodes();
    indexed_endpoints_.clear();
    for (const Edge& e : graph_.EdgesById()) {
      indexed_endpoints_.emplace_back(e.src, e.dst);
    }
    if (!options_.index_file.empty()) SaveIndexFile();
    return;
  }
  // Destruction order matters: the index reads the bank, the bank may read
  // the mapped file.
  index_.reset();
  bank_.reset();
  index_mapping_ = MappedFile();
  all_edges_.clear();
}

void QueryEngine::EnsureBank() {
  if (bank_ != nullptr) return;
  bank_ = MakeWorldView(graph_, WorldOptions());
  all_edges_ = bank_->AllEdges();
  indexed_nodes_ = graph_.num_nodes();
  indexed_endpoints_.clear();
  for (const Edge& e : graph_.EdgesById()) {
    indexed_endpoints_.emplace_back(e.src, e.dst);
  }
}

bool QueryEngine::GraphExtendsIndexedShape() const {
  if (graph_.num_nodes() != indexed_nodes_) return false;
  const std::vector<Edge>& edges = graph_.EdgesById();
  if (edges.size() < indexed_endpoints_.size()) return false;
  for (size_t e = 0; e < indexed_endpoints_.size(); ++e) {
    if (edges[e].src != indexed_endpoints_[e].first ||
        edges[e].dst != indexed_endpoints_[e].second) {
      return false;
    }
  }
  return true;
}

bool QueryEngine::UseSharedWorlds() const {
  if (!options_.reuse_worlds) return false;
  if (options_.estimator != Estimator::kMonteCarlo) return false;
  // Admission is per shard: one balanced shard of ceil(E / P) bank rows must
  // fit max_bank_bytes (P == 1 reduces to the old whole-bank check).
  const int shards = std::max(options_.num_partitions, 1);
  return BankBytes(BalancedShardRows(graph_.num_edges(), shards),
                   options_.num_samples) <= options_.max_bank_bytes &&
         BankBytes(static_cast<size_t>(graph_.num_nodes()),
                   options_.num_samples) <= options_.max_flood_bytes_per_lane;
}

bool QueryEngine::UseIndex() const {
  return (options_.use_index || !options_.index_file.empty()) &&
         UseSharedWorlds() &&
         ReliabilityIndex::Fits(graph_, options_.num_samples, options_.index);
}

void QueryEngine::TryLoadIndexFile() {
  ReliabilityIndex::Options index_options = options_.index;
  index_options.num_threads = options_.num_threads;
  StatusOr<LoadedIndex> loaded =
      LoadIndex(options_.index_file, graph_, WorldOptions(), index_options);
  if (!loaded.ok()) {
    if (loaded.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr,
                   "relmax: query engine: index file load failed (%s); "
                   "rebuilding the index from scratch\n",
                   loaded.status().ToString().c_str());
      ++index_io_stats_.load_failures;
    }
    return;
  }
  LoadedIndex li = std::move(loaded).value();
  index_mapping_ = std::move(li.mapping);
  bank_ = std::move(li.bank);
  index_ = std::move(li.index);
  all_edges_ = bank_->AllEdges();
  indexed_nodes_ = graph_.num_nodes();
  indexed_endpoints_.clear();
  for (const Edge& e : graph_.EdgesById()) {
    indexed_endpoints_.emplace_back(e.src, e.dst);
  }
  ++index_io_stats_.loads;
  index_io_stats_.generation = li.generation;
  index_io_stats_.file_bytes = li.file_bytes;
}

void QueryEngine::SaveIndexFile() {
  RELMAX_DCHECK(bank_ != nullptr && index_ != nullptr);
  const uint64_t generation = index_io_stats_.generation + 1;
  const StatusOr<size_t> saved = SaveIndex(*bank_, *index_, WorldOptions(),
                                           generation, options_.index_file);
  if (!saved.ok()) {
    std::fprintf(stderr,
                 "relmax: query engine: index file save failed (%s); "
                 "continuing without persistence\n",
                 saved.status().ToString().c_str());
    return;
  }
  ++index_io_stats_.saves;
  index_io_stats_.generation = generation;
  index_io_stats_.file_bytes = *saved;
}

void QueryEngine::ResolvePairs(const std::vector<StQuery>& pairs,
                               std::unordered_map<uint64_t, double>* resolved,
                               BatchStats* stats) {
  if (pairs.empty()) return;
  if (UseIndex()) {
    // Load-else-build-and-save: a valid file for this (graph, options) key
    // adopts the mmap-ed bank and labels with no sampling or relabeling.
    if (index_ == nullptr && !options_.index_file.empty()) {
      TryLoadIndexFile();
    }
    EnsureBank();
    if (index_ == nullptr) {
      ReliabilityIndex::Options index_options = options_.index;
      index_options.num_threads = options_.num_threads;
      index_ = std::make_unique<ReliabilityIndex>(*bank_, index_options);
      if (!options_.index_file.empty()) SaveIndexFile();
    }
    // Every answer is a label-plane popcount (undirected / same-SCC) or a
    // cached reach-row popcount (directed residual); all are pure functions
    // of the bank bits, so batch order and thread count cannot matter.
    for (const StQuery& q : pairs) {
      (*resolved)[PairKey(q.s, q.t)] = index_->Query(q.s, q.t);
    }
    stats->index_answers += pairs.size();
    return;
  }
  if (UseSharedWorlds()) {
    EnsureBank();
    // Group pair indices by source (first-appearance order, so the flood
    // schedule is a pure function of the deduplicated pair list). Every
    // value below depends only on (bank bits, source, target); the bank is
    // thread-invariant by construction, so slot writes by pair index keep
    // the whole batch bit-identical for any num_threads.
    std::unordered_map<NodeId, size_t> source_slot;
    std::vector<NodeId> sources;
    std::vector<std::vector<size_t>> pairs_of_source;
    for (size_t i = 0; i < pairs.size(); ++i) {
      const auto [it, inserted] =
          source_slot.emplace(pairs[i].s, sources.size());
      if (inserted) {
        sources.push_back(pairs[i].s);
        pairs_of_source.emplace_back();
      }
      pairs_of_source[it->second].push_back(i);
    }
    std::vector<double> values(pairs.size());
    const WorldView& bank = *bank_;
    const int num_worlds = bank.num_worlds();
    ForEachShard(
        sources.size(), options_.num_threads,
        [] { return std::make_unique<bitlane::BitMatrix>(); },
        [&](std::unique_ptr<bitlane::BitMatrix>& reach, size_t i) {
          // The fixpoint wipes the reused scratch itself (kClearScratch).
          bank.ReachabilityFixpoint(sources[i], /*backward=*/false,
                                    all_edges_, reach.get());
          for (size_t idx : pairs_of_source[i]) {
            values[idx] = static_cast<double>(WorldView::CountBits(
                              reach->row_span(pairs[idx].t),
                              static_cast<size_t>(num_worlds))) /
                          num_worlds;
          }
        },
        [](std::unique_ptr<bitlane::BitMatrix>&) {});
    for (size_t i = 0; i < pairs.size(); ++i) {
      (*resolved)[PairKey(pairs[i].s, pairs[i].t)] = values[i];
    }
    stats->floods += sources.size();
    return;
  }
  // Per-query fallback: each pair is estimated independently, exactly the
  // single-query public API under the same (Z, seed, threads). When the
  // caller *asked* for shared worlds (MC + reuse_worlds) and only the
  // footprint caps pushed us here, that is a silent 10-100x slowdown unless
  // we surface it.
  if (options_.reuse_worlds && options_.estimator == Estimator::kMonteCarlo) {
    const int shards = std::max(options_.num_partitions, 1);
    const size_t shard_bytes =
        BankBytes(BalancedShardRows(graph_.num_edges(), shards),
                  options_.num_samples);
    const size_t flood_bytes = BankBytes(
        static_cast<size_t>(graph_.num_nodes()), options_.num_samples);
    if (shard_bytes > options_.max_bank_bytes) {
      NoteBankFallback("query engine", shard_bytes, options_.max_bank_bytes,
                       shards);
    } else {
      NoteBankFallback("query engine (flood lane)", flood_bytes,
                       options_.max_flood_bytes_per_lane);
    }
    ++stats->bank_fallbacks;
  }
  if (options_.estimator == Estimator::kRss) {
    RssOptions rss = options_.rss;
    rss.num_samples = options_.num_samples;
    rss.seed = options_.seed;
    rss.num_threads = options_.num_threads;
    for (const StQuery& q : pairs) {
      (*resolved)[PairKey(q.s, q.t)] =
          EstimateReliabilityRss(graph_, q.s, q.t, rss);
    }
  } else {
    const SampleOptions mc{.num_samples = options_.num_samples,
                           .seed = options_.seed,
                           .num_threads = options_.num_threads};
    for (const StQuery& q : pairs) {
      (*resolved)[PairKey(q.s, q.t)] =
          EstimateReliability(graph_, q.s, q.t, mc);
    }
  }
  stats->fallback_estimates += pairs.size();
}

StatusOr<BatchResult> QueryEngine::Answer(const QuerySet& set) {
  RELMAX_RETURN_IF_ERROR(set.Validate(graph_));
  SyncWithGraph();
  WallTimer timer;
  BatchResult result;
  result.stats.num_queries = set.size();

  // Deduplicate the (s, t) pairs the batch needs, across all query kinds, in
  // first-appearance order; pairs already memoized are cache hits.
  std::vector<StQuery> needed;
  std::unordered_set<uint64_t> seen;
  auto want = [&](NodeId s, NodeId t) {
    if (!seen.insert(PairKey(s, t)).second) return;
    if (cache_.count(PairKey(s, t)) != 0) {
      ++result.stats.cache_hits;
      return;
    }
    needed.push_back({s, t});
  };
  for (const StQuery& q : set.st_queries()) want(q.s, q.t);
  for (const AggregateQuery& q : set.aggregate_queries()) {
    for (NodeId s : q.sources) {
      for (NodeId t : q.targets) want(s, t);
    }
  }
  for (const TopKQuery& q : set.top_k_queries()) {
    for (const StQuery& c : q.candidates) want(c.s, c.t);
  }
  result.stats.distinct_pairs = seen.size();

  std::unordered_map<uint64_t, double> resolved;
  ResolvePairs(needed, &resolved, &result.stats);

  const auto value = [&](NodeId s, NodeId t) {
    const auto it = resolved.find(PairKey(s, t));
    if (it != resolved.end()) return it->second;
    const auto cached = cache_.find(PairKey(s, t));
    RELMAX_CHECK(cached != cache_.end());
    return cached->second;
  };

  result.st_values.reserve(set.st_queries().size());
  for (const StQuery& q : set.st_queries()) {
    result.st_values.push_back(value(q.s, q.t));
  }
  for (const AggregateQuery& q : set.aggregate_queries()) {
    std::vector<std::vector<double>> matrix(q.sources.size());
    for (size_t i = 0; i < q.sources.size(); ++i) {
      matrix[i].reserve(q.targets.size());
      for (NodeId t : q.targets) matrix[i].push_back(value(q.sources[i], t));
    }
    result.aggregate_values.push_back(AggregateMatrix(matrix, q.aggregate));
  }
  for (const TopKQuery& q : set.top_k_queries()) {
    std::vector<std::pair<size_t, double>> scored;
    scored.reserve(q.candidates.size());
    for (size_t i = 0; i < q.candidates.size(); ++i) {
      scored.emplace_back(i, value(q.candidates[i].s, q.candidates[i].t));
    }
    // stable_sort keeps candidate order among equal reliabilities, so the
    // ranking is deterministic and documented.
    std::stable_sort(scored.begin(), scored.end(),
                     [](const std::pair<size_t, double>& a,
                        const std::pair<size_t, double>& b) {
                       return a.second > b.second;
                     });
    const size_t k = std::min(static_cast<size_t>(q.k), scored.size());
    scored.resize(k);
    result.top_k.push_back(std::move(scored));
  }

  if (options_.cache_results) {
    // Insert in the deterministic deduplicated `needed` order (never map
    // iteration order), so eviction victims are identical across runs.
    for (const StQuery& q : needed) {
      const uint64_t key = PairKey(q.s, q.t);
      if (cache_.emplace(key, resolved.at(key)).second) {
        cache_order_.push_back(key);
      }
    }
    while (cache_.size() > options_.max_cache_entries &&
           !cache_order_.empty()) {
      cache_.erase(cache_order_.front());
      cache_order_.pop_front();
      ++result.stats.cache_evictions;
    }
  }
  if (bank_ != nullptr) {
    result.stats.shard_bank_bytes = bank_->ShardBankBytes();
  }
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

StatusOr<double> QueryEngine::EstimateSt(NodeId s, NodeId t) {
  QuerySet set;
  set.AddSt(s, t);
  const StatusOr<BatchResult> result = Answer(set);
  if (!result.ok()) return result.status();
  return result->st_values[0];
}

}  // namespace relmax
