#include "query/query_set.h"

#include <cctype>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph_io.h"

namespace relmax {
namespace {

Status CheckNode(NodeId v, const UncertainGraph& g, const char* what) {
  if (v < g.num_nodes()) return Status::Ok();
  return Status::InvalidArgument(std::string(what) + " node " +
                                 std::to_string(v) + " out of range [0, " +
                                 std::to_string(g.num_nodes()) + ")");
}

// Parses one query-file line into `set`: strips a trailing '#' comment,
// skips blank lines, and accepts exactly "s t". Anything but digits and
// whitespace — a sign, a third token, letters — is rejected, which also
// keeps sscanf's silent negative-wraparound out; ids past NodeId's range
// fail loudly instead of truncating to a different node.
Status ParseQueryLine(const std::string& raw, int line_no, QuerySet* set) {
  if (raw.find('\0') != std::string::npos) {
    return Status::InvalidArgument("NUL byte at line " +
                                   std::to_string(line_no) +
                                   " (binary file?)");
  }
  std::string line = raw;
  const size_t hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back()))) {
    line.pop_back();
  }
  size_t start = 0;
  while (start < line.size() &&
         std::isspace(static_cast<unsigned char>(line[start]))) {
    ++start;
  }
  if (start == line.size()) return Status::Ok();  // blank or comment-only
  const auto malformed = [&] {
    return Status::InvalidArgument("expected \"s t\" at line " +
                                   std::to_string(line_no) + ": " + line);
  };
  if (line.find_first_not_of("0123456789 \t", start) != std::string::npos) {
    return malformed();
  }
  unsigned long long s = 0;
  unsigned long long t = 0;
  int consumed = 0;
  if (std::sscanf(line.c_str() + start, "%llu %llu %n", &s, &t, &consumed) !=
          2 ||
      start + static_cast<size_t>(consumed) != line.size()) {
    return malformed();
  }
  constexpr unsigned long long kMaxNode = std::numeric_limits<NodeId>::max();
  if (s > kMaxNode || t > kMaxNode) {
    return Status::InvalidArgument("node id out of range at line " +
                                   std::to_string(line_no) + ": " + line);
  }
  set->AddSt(static_cast<NodeId>(s), static_cast<NodeId>(t));
  return Status::Ok();
}

StatusOr<QuerySet> FromLines(const std::vector<std::string>& lines) {
  QuerySet set;
  for (size_t i = 0; i < lines.size(); ++i) {
    RELMAX_RETURN_IF_ERROR(
        ParseQueryLine(lines[i], static_cast<int>(i) + 1, &set));
  }
  if (set.empty()) {
    return Status::InvalidArgument("query file contains no queries");
  }
  return set;
}

}  // namespace

Status QuerySet::Validate(const UncertainGraph& g) const {
  for (const StQuery& q : st_) {
    RELMAX_RETURN_IF_ERROR(CheckNode(q.s, g, "source"));
    RELMAX_RETURN_IF_ERROR(CheckNode(q.t, g, "target"));
  }
  for (const AggregateQuery& q : aggregate_) {
    if (q.sources.empty() || q.targets.empty()) {
      return Status::InvalidArgument(
          "aggregate query needs non-empty source and target sets");
    }
    for (NodeId s : q.sources) RELMAX_RETURN_IF_ERROR(CheckNode(s, g, "source"));
    for (NodeId t : q.targets) RELMAX_RETURN_IF_ERROR(CheckNode(t, g, "target"));
  }
  for (const TopKQuery& q : top_k_) {
    if (q.candidates.empty()) {
      return Status::InvalidArgument("top-k query needs candidate pairs");
    }
    if (q.k < 1) {
      return Status::InvalidArgument("top-k query needs k >= 1, got " +
                                     std::to_string(q.k));
    }
    for (const StQuery& pair : q.candidates) {
      RELMAX_RETURN_IF_ERROR(CheckNode(pair.s, g, "source"));
      RELMAX_RETURN_IF_ERROR(CheckNode(pair.t, g, "target"));
    }
  }
  return Status::Ok();
}

StatusOr<QuerySet> QuerySet::Parse(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return FromLines(lines);
}

StatusOr<QuerySet> QuerySet::FromFile(const std::string& path) {
  // The shared guarded reader (graph/graph_io.h) supplies the binary-file
  // and line-length protection, identically to every other text parser.
  auto lines = ReadTextLines(path);
  RELMAX_RETURN_IF_ERROR(lines.status());
  return FromLines(*lines);
}

}  // namespace relmax
