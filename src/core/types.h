#ifndef RELMAX_CORE_TYPES_H_
#define RELMAX_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "graph/uncertain_graph.h"
#include "sampling/rss.h"

namespace relmax {

/// Which s-t reliability estimator the solver pipeline uses (§5.3).
enum class Estimator {
  kMonteCarlo,  ///< plain Monte Carlo sampling [18]
  kRss,         ///< recursive stratified sampling [19]
};

/// Knobs for the budgeted reliability maximization solvers (§5). Field names
/// follow the paper's notation (Table 3).
struct SolverOptions {
  /// Budget k: number of new edges to add.
  int budget_k = 10;
  /// Probability ζ assigned to every new edge.
  double zeta = 0.5;
  /// r: nodes kept per side by reliability-based search-space elimination.
  int top_r = 100;
  /// l: number of most reliable paths extracted from the augmented graph.
  int top_l = 30;
  /// h: a candidate edge (u, v) is allowed only when u and v are within h
  /// hops in the input graph (ignoring direction); negative disables the
  /// constraint (the paper's "generalized case").
  int hop_h = 3;
  /// Z for the search-space-elimination estimates (from-s / to-t
  /// reliabilities).
  int elimination_samples = 500;
  /// Z for the selection-phase estimates and reported reliabilities.
  int num_samples = 500;
  /// Estimator used in both phases.
  Estimator estimator = Estimator::kMonteCarlo;
  /// RSS-specific knobs (strata width, MC fallback threshold) when
  /// estimator == kRss; its num_samples/seed fields are overridden by the
  /// fields above.
  RssOptions rss;
  /// Seed for all randomized steps; solutions are deterministic given it.
  uint64_t seed = 42;
  /// Worker lanes for every sampling step (estimation, elimination,
  /// selection); <= 0 means all hardware threads. Solutions are
  /// bit-identical for a fixed seed regardless of this value.
  int num_threads = 1;
  /// Run the top-l path search on the subgraph induced by C(s) ∪ C(t)
  /// (fast, the default) instead of on the full augmented graph.
  bool paths_on_eliminated_subgraph = true;
  /// Sample one shared set of `num_samples` possible worlds per solve
  /// (WorldBank) and score every greedy candidate against it — common random
  /// numbers — instead of re-sampling fresh worlds per (round × candidate)
  /// evaluation. Large selection speedup and within-round variance
  /// reduction; estimates stay unbiased and thread-count invariant. Applies
  /// to the Monte Carlo estimator (RSS keeps its stratified per-evaluation
  /// streams).
  bool reuse_worlds = true;
  /// Partition shards for the shared-world bank (`--partitions`). 1 keeps
  /// the flat WorldBank; >1 edge-cut partitions the graph and shards the
  /// bank so each shard is metered against `max_shared_world_bytes`
  /// separately. Answers are bit-identical for any value (the sharded fill
  /// replays the flat bank's canonical draw stream).
  int num_partitions = 1;
  /// **Per-shard** footprint budget for the shared-world fast path: when
  /// one (balanced) shard of the bank plus the per-node reach tables would
  /// exceed this many bytes, greedy selection falls back to per-evaluation
  /// re-sampling (counted by BankFallbackCount and warned once on stderr).
  /// With num_partitions == 1 this is the old whole-bank cap; raising
  /// num_partitions turns the cliff into "add shards until it fits". The
  /// default comfortably covers eliminated subgraphs; tests shrink it to
  /// exercise the fallback.
  size_t max_shared_world_bytes = size_t{1} << 28;  // 256 MB per shard
};

/// Timing/size breakdown reported alongside a solution — the quantities the
/// paper's tables split into "Time 1" (elimination) and "Time 2" (selection).
struct SolutionStats {
  double elimination_seconds = 0.0;
  double selection_seconds = 0.0;
  double total_seconds = 0.0;
  /// |E+| produced by reliability-based elimination.
  size_t candidate_edges = 0;
  /// Candidates surviving the top-l path filter.
  size_t candidate_edges_after_path_filter = 0;
  /// Number of top-l paths considered.
  size_t paths_considered = 0;
  /// Peak RSS observed at the end of the solve, bytes.
  size_t peak_rss_bytes = 0;
};

/// Result of a budgeted reliability maximization query.
struct Solution {
  /// The chosen new edges E1, each with probability ζ (|E1| ≤ k).
  std::vector<Edge> added_edges;
  /// Estimated R(s, t, G) before any addition.
  double reliability_before = 0.0;
  /// Estimated R(s, t, G ∪ E1).
  double reliability_after = 0.0;
  SolutionStats stats;

  double gain() const { return reliability_after - reliability_before; }
};

/// Aggregate function F for multiple-source-target queries (Problem 4).
enum class Aggregate { kAverage, kMinimum, kMaximum };

/// Human-readable aggregate name for harness output.
inline const char* AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kAverage:
      return "Avg";
    case Aggregate::kMinimum:
      return "Min";
    case Aggregate::kMaximum:
      return "Max";
  }
  internal::CheckFailed("unhandled Aggregate", __FILE__, __LINE__);
}

}  // namespace relmax

#endif  // RELMAX_CORE_TYPES_H_
