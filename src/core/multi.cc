#include "core/multi.h"

#include <algorithm>
#include <unordered_set>

#include "common/memory.h"
#include "common/timer.h"
#include "core/candidates.h"
#include "core/evaluate.h"
#include "core/selection.h"
#include "core/solver.h"
#include "paths/yen.h"

namespace relmax {
namespace {

Status ValidateMultiQuery(const UncertainGraph& g,
                          const std::vector<NodeId>& sources,
                          const std::vector<NodeId>& targets) {
  if (sources.empty() || targets.empty()) {
    return Status::InvalidArgument("sources and targets must be non-empty");
  }
  for (NodeId v : sources) {
    if (v >= g.num_nodes()) return Status::OutOfRange("source out of range");
  }
  std::unordered_set<NodeId> source_set(sources.begin(), sources.end());
  for (NodeId v : targets) {
    if (v >= g.num_nodes()) return Status::OutOfRange("target out of range");
    if (source_set.count(v) > 0) {
      return Status::InvalidArgument(
          "sources and targets must be disjoint (overlapping queries are "
          "trivial, paper §6.3)");
    }
  }
  return Status::Ok();
}

// §6.1: one shared elimination pass, per-pair top-l paths pooled, batch
// selection against the average objective.
StatusOr<MultiSolution> SolveAverage(const UncertainGraph& g,
                                     const std::vector<NodeId>& sources,
                                     const std::vector<NodeId>& targets,
                                     const SolverOptions& options) {
  MultiSolution solution;
  {
    const auto before =
        PairwiseReliability(g, sources, targets, options.num_samples,
                            options.seed ^ 0xbefe, options.num_threads);
    solution.aggregate_before = AggregateMatrix(before, Aggregate::kAverage);
  }

  WallTimer elimination_timer;
  auto candidates = SelectCandidatesMulti(g, sources, targets, options);
  RELMAX_RETURN_IF_ERROR(candidates.status());
  solution.stats.elimination_seconds = elimination_timer.ElapsedSeconds();
  solution.stats.candidate_edges = candidates->edges.size();

  WallTimer selection_timer;
  const UncertainGraph g_plus = AugmentGraph(g, candidates->edges);

  // Work on the subgraph induced by the eliminated node sets plus all query
  // nodes; paths are found and the objective evaluated there.
  std::vector<NodeId> nodes;
  std::unordered_set<NodeId> seen;
  auto push = [&](NodeId v) {
    if (seen.insert(v).second) nodes.push_back(v);
  };
  for (NodeId v : sources) push(v);
  for (NodeId v : targets) push(v);
  for (NodeId v : candidates->from_source) push(v);
  for (NodeId v : candidates->to_target) push(v);
  auto sub_or = g_plus.InducedSubgraph(nodes);
  RELMAX_RETURN_IF_ERROR(sub_or.status());
  const UncertainGraph& sub = *sub_or;
  std::vector<NodeId> to_sub(g_plus.num_nodes(), kInvalidNode);
  for (size_t i = 0; i < nodes.size(); ++i) {
    to_sub[nodes[i]] = static_cast<NodeId>(i);
  }

  // Pool the top-l most reliable paths of every pair (paper: |S||T|·l paths).
  std::vector<PathResult> pool;
  for (NodeId s : sources) {
    for (NodeId t : targets) {
      std::vector<PathResult> paths =
          TopLReliablePaths(sub, to_sub[s], to_sub[t], options.top_l);
      for (PathResult& path : paths) {
        for (NodeId& v : path.nodes) v = nodes[v];  // back to g_plus ids
        pool.push_back(std::move(path));
      }
    }
  }
  const std::vector<AnnotatedPath> annotated =
      AnnotatePaths(g_plus, pool, candidates->edges);
  solution.stats.paths_considered = annotated.size();

  // Average objective over the union subgraph of the selected paths; all
  // query nodes stay mapped so unreachable pairs count as 0.
  std::vector<NodeId> sub_sources;
  std::vector<NodeId> sub_targets;
  for (NodeId s : sources) sub_sources.push_back(to_sub[s]);
  for (NodeId t : targets) sub_targets.push_back(to_sub[t]);
  auto objective = [&](const std::vector<int>& selected, uint64_t salt) {
    // Union subgraph in *sub* coordinates (dense already).
    UncertainGraph union_graph =
        sub.directed() ? UncertainGraph::Directed(sub.num_nodes())
                       : UncertainGraph::Undirected(sub.num_nodes());
    for (int i : selected) {
      const PathResult& path = annotated[i].path;
      for (size_t j = 0; j + 1 < path.nodes.size(); ++j) {
        const NodeId u = to_sub[path.nodes[j]];
        const NodeId v = to_sub[path.nodes[j + 1]];
        if (union_graph.HasEdge(u, v)) continue;
        const auto prob = sub.EdgeProb(u, v);
        RELMAX_DCHECK(prob.has_value());
        (void)union_graph.AddEdge(u, v, *prob);
      }
    }
    const auto matrix =
        PairwiseReliability(union_graph, sub_sources, sub_targets,
                            options.num_samples, options.seed ^ salt,
                            options.num_threads);
    return AggregateMatrix(matrix, Aggregate::kAverage);
  };

  const std::vector<int> indices = SelectEdgesByPathBatchesObjective(
      annotated, options.budget_k, objective);
  for (int i : indices) {
    solution.added_edges.push_back(candidates->edges[i]);
  }
  solution.stats.selection_seconds = selection_timer.ElapsedSeconds();
  solution.stats.total_seconds =
      solution.stats.elimination_seconds + solution.stats.selection_seconds;

  const auto after = PairwiseReliability(
      AugmentGraph(g, solution.added_edges), sources, targets,
      options.num_samples, options.seed ^ 0xafe, options.num_threads);
  solution.aggregate_after = AggregateMatrix(after, Aggregate::kAverage);
  solution.stats.peak_rss_bytes = PeakRssBytes();
  return solution;
}

// §6.2 / §6.3: iterative extreme-pair refinement with per-round budget k1.
StatusOr<MultiSolution> SolveExtreme(const UncertainGraph& g,
                                     const std::vector<NodeId>& sources,
                                     const std::vector<NodeId>& targets,
                                     Aggregate aggregate,
                                     const SolverOptions& options,
                                     int batch_k1) {
  const bool minimize = aggregate == Aggregate::kMinimum;
  // Paper default: k1 = 10% of k (k1 = 10 at k = 100). The floor of 2 keeps
  // chain-building possible at small budgets — a single edge often cannot
  // bridge a weak pair on its own.
  const int k1 =
      batch_k1 > 0 ? batch_k1 : std::max(2, options.budget_k / 10);

  MultiSolution solution;
  WallTimer total_timer;
  UncertainGraph working = g;
  auto matrix = PairwiseReliability(working, sources, targets,
                                    options.num_samples,
                                    options.seed ^ 0xbefe,
                                    options.num_threads);
  solution.aggregate_before = AggregateMatrix(matrix, aggregate);

  // Pairs whose extreme-round solve produced nothing (e.g. unfixable under
  // the h-hop constraint); the refinement falls through to the next-most
  // extreme pair instead of stalling on them.
  std::unordered_set<uint64_t> exhausted;
  auto pair_key = [&](size_t si, size_t ti) {
    return static_cast<uint64_t>(si) * targets.size() + ti;
  };

  uint64_t round = 0;
  while (static_cast<int>(solution.added_edges.size()) < options.budget_k) {
    ++round;
    // Extract the non-exhausted pair with the extreme current reliability.
    size_t best_si = 0;
    size_t best_ti = 0;
    double extreme = minimize ? 2.0 : -1.0;
    bool found = false;
    for (size_t si = 0; si < sources.size(); ++si) {
      for (size_t ti = 0; ti < targets.size(); ++ti) {
        if (exhausted.count(pair_key(si, ti)) > 0) continue;
        const double r = matrix[si][ti];
        if (minimize ? r < extreme : r > extreme) {
          extreme = r;
          best_si = si;
          best_ti = ti;
          found = true;
        }
      }
    }
    if (!found) break;  // every pair is beyond further improvement

    SolverOptions round_options = options;
    round_options.budget_k =
        std::min(k1, options.budget_k -
                         static_cast<int>(solution.added_edges.size()));
    round_options.seed = options.seed + round * 0x9e3779b97f4a7c15ULL;
    auto sol = MaximizeReliability(working, sources[best_si],
                                   targets[best_ti], round_options,
                                   CoreMethod::kBatchEdges);
    RELMAX_RETURN_IF_ERROR(sol.status());
    solution.stats.elimination_seconds += sol->stats.elimination_seconds;
    solution.stats.selection_seconds += sol->stats.selection_seconds;
    solution.stats.candidate_edges =
        std::max(solution.stats.candidate_edges, sol->stats.candidate_edges);
    if (sol->added_edges.empty()) {
      exhausted.insert(pair_key(best_si, best_ti));
      continue;
    }

    for (const Edge& e : sol->added_edges) {
      if (working.AddEdge(e.src, e.dst, e.prob).ok()) {
        solution.added_edges.push_back(e);
      }
    }
    // Re-estimate every pair: the new edges may change any of them (§6.2),
    // and previously exhausted pairs may have become improvable.
    matrix = PairwiseReliability(working, sources, targets,
                                 options.num_samples,
                                 options.seed ^ (round * 1315423911ULL),
                                 options.num_threads);
    exhausted.clear();
  }

  solution.aggregate_after = AggregateMatrix(matrix, aggregate);
  solution.stats.total_seconds = total_timer.ElapsedSeconds();
  solution.stats.peak_rss_bytes = PeakRssBytes();
  return solution;
}

}  // namespace

StatusOr<MultiSolution> MaximizeMultiReliability(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, Aggregate aggregate,
    const SolverOptions& options, int batch_k1) {
  RELMAX_RETURN_IF_ERROR(ValidateMultiQuery(g, sources, targets));
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }
  switch (aggregate) {
    case Aggregate::kAverage:
      return SolveAverage(g, sources, targets, options);
    case Aggregate::kMinimum:
    case Aggregate::kMaximum:
      return SolveExtreme(g, sources, targets, aggregate, options, batch_k1);
  }
  // Exhaustive above; a corrupt enum value must not silently pick a solver.
  internal::CheckFailed("unhandled Aggregate", __FILE__, __LINE__);
}

}  // namespace relmax
