#ifndef RELMAX_CORE_BUDGET_EXTENSION_H_
#define RELMAX_CORE_BUDGET_EXTENSION_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// The paper's closing future-work problem (§9): instead of k new edges with
/// a fixed probability ζ each, the planner holds one *total reliability
/// budget* B to distribute across at most k new edges — "this will add more
/// complexity on selecting proper candidate edges and allocating reliability
/// budget to them".
///
/// This module implements that extension with a greedy unit-allocation
/// scheme: the budget is discretized into `units` increments; each increment
/// goes to the candidate edge (new or already part of the solution, as long
/// as at most k distinct edges are used) whose probability bump yields the
/// largest marginal s-t reliability gain, estimated on the union subgraph of
/// the top-l reliable paths. Increments that cannot improve any edge stop
/// the allocation early.
struct BudgetedSolution {
  /// Chosen edges with their allocated probabilities (sum ≤ budget).
  std::vector<Edge> added_edges;
  double reliability_before = 0.0;
  double reliability_after = 0.0;
  /// Probability mass actually allocated.
  double budget_used = 0.0;

  double gain() const { return reliability_after - reliability_before; }
};

struct BudgetOptions {
  /// Total probability mass to distribute (e.g. 2.0 = "two certain edges'
  /// worth of reliability").
  double total_budget = 2.0;
  /// Max distinct new edges (the physical constraint stays).
  int max_edges = 10;
  /// Number of discrete allocation units the budget is split into.
  int units = 20;
  /// Cap on any single edge's probability.
  double max_edge_prob = 0.95;
};

/// Solves the budgeted-probability variant on top of the standard pipeline
/// (elimination via `options`, then greedy unit allocation). The fixed-ζ
/// problem is the special case total_budget = k·ζ with all-or-nothing
/// allocation.
StatusOr<BudgetedSolution> MaximizeReliabilityWithProbabilityBudget(
    const UncertainGraph& g, NodeId s, NodeId t,
    const BudgetOptions& budget_options, const SolverOptions& options);

}  // namespace relmax

#endif  // RELMAX_CORE_BUDGET_EXTENSION_H_
