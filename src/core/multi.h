#ifndef RELMAX_CORE_MULTI_H_
#define RELMAX_CORE_MULTI_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Result of a multiple-source-target budgeted reliability maximization
/// query (Problem 4).
struct MultiSolution {
  /// The chosen new edges E1 (|E1| ≤ k), each with probability ζ.
  std::vector<Edge> added_edges;
  /// Aggregate F over all s-t pair reliabilities before / after.
  double aggregate_before = 0.0;
  double aggregate_after = 0.0;
  SolutionStats stats;

  double gain() const { return aggregate_after - aggregate_before; }
};

/// Solves Problem 4: add up to k edges maximizing the aggregate F (average,
/// minimum, or maximum) of R(s, t) over all pairs (s, t) ∈ S × T.
///
/// * Average (§6.1): one multi-pair candidate set, per-pair top-l paths, and
///   path-batch selection against the average objective.
/// * Minimum / Maximum (§6.2–6.3): iterative refinement — repeatedly run the
///   single-pair BE solver with a per-round budget k1 on the pair currently
///   attaining the extreme reliability, then re-estimate all pairs.
///
/// `batch_k1` is the per-round budget for Min/Max (paper's k1; defaults to
/// max(1, k/10) when non-positive). Sources and targets must be disjoint
/// non-empty sets.
StatusOr<MultiSolution> MaximizeMultiReliability(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, Aggregate aggregate,
    const SolverOptions& options, int batch_k1 = -1);

}  // namespace relmax

#endif  // RELMAX_CORE_MULTI_H_
