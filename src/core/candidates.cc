#include "core/candidates.h"

#include <algorithm>
#include <unordered_set>

#include "core/evaluate.h"
#include "graph/bfs.h"

namespace relmax {
namespace {

// Top-r node ids by score (descending), zero-score nodes excluded,
// deterministic tie-break on id. `always_include` is forced in.
std::vector<NodeId> TopRNodes(const std::vector<double>& scores, int r,
                              NodeId always_include) {
  std::vector<NodeId> order;
  order.reserve(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) {
    if (scores[v] > 0.0 || v == always_include) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  if (static_cast<int>(order.size()) > r) order.resize(r);
  if (std::find(order.begin(), order.end(), always_include) == order.end()) {
    order.back() = always_include;  // r slots, the anchor always qualifies
  }
  return order;
}

Status ValidateOptions(const SolverOptions& options) {
  if (options.top_r <= 0) {
    return Status::InvalidArgument("top_r must be positive");
  }
  if (options.zeta <= 0.0 || options.zeta > 1.0) {
    return Status::InvalidArgument("zeta must be in (0, 1]");
  }
  if (options.elimination_samples <= 0) {
    return Status::InvalidArgument("elimination_samples must be positive");
  }
  return Status::Ok();
}

// Emits missing (u, v) pairs from `from` × `to` honoring the h-hop
// constraint. Dedups undirected orientations.
std::vector<Edge> BuildCandidateEdges(const UncertainGraph& g,
                                      const std::vector<NodeId>& from,
                                      const std::vector<NodeId>& to,
                                      double zeta, int hop_h) {
  std::unordered_set<NodeId> target_set(to.begin(), to.end());
  std::unordered_set<uint64_t> emitted;
  std::vector<Edge> edges;
  for (NodeId u : from) {
    // One truncated BFS per source-side node covers the h-hop test for all
    // of C(t) at once.
    std::vector<int> dist;
    if (hop_h >= 0) dist = UndirectedHopDistances(g, u, hop_h);
    for (NodeId v : to) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (hop_h >= 0 && (dist[v] == kUnreachable || dist[v] > hop_h)) continue;
      uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
      if (!g.directed()) {
        const NodeId lo = std::min(u, v);
        const NodeId hi = std::max(u, v);
        key = (static_cast<uint64_t>(lo) << 32) | hi;
      }
      if (emitted.insert(key).second) edges.push_back({u, v, zeta});
    }
  }
  return edges;
}

}  // namespace

StatusOr<CandidateSet> SelectCandidates(const UncertainGraph& g, NodeId s,
                                        NodeId t,
                                        const SolverOptions& options) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  RELMAX_RETURN_IF_ERROR(ValidateOptions(options));

  CandidateSet result;
  result.from_source =
      TopRNodes(FromSourceWithOptions(g, s, options), options.top_r, s);
  result.to_target =
      TopRNodes(ToTargetWithOptions(g, t, options), options.top_r, t);
  result.edges = BuildCandidateEdges(g, result.from_source, result.to_target,
                                     options.zeta, options.hop_h);
  return result;
}

StatusOr<CandidateSet> SelectCandidatesMulti(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, const SolverOptions& options) {
  if (sources.empty() || targets.empty()) {
    return Status::InvalidArgument("sources and targets must be non-empty");
  }
  for (NodeId v : sources) {
    if (v >= g.num_nodes()) return Status::OutOfRange("source out of range");
  }
  for (NodeId v : targets) {
    if (v >= g.num_nodes()) return Status::OutOfRange("target out of range");
  }
  RELMAX_RETURN_IF_ERROR(ValidateOptions(options));

  CandidateSet result;
  std::unordered_set<NodeId> from_set;
  uint64_t salt = 101;
  for (NodeId s : sources) {
    for (NodeId v :
         TopRNodes(FromSourceWithOptions(g, s, options, salt++),
                   options.top_r, s)) {
      if (from_set.insert(v).second) result.from_source.push_back(v);
    }
  }
  std::unordered_set<NodeId> to_set;
  for (NodeId t : targets) {
    for (NodeId v : TopRNodes(ToTargetWithOptions(g, t, options, salt++),
                              options.top_r, t)) {
      if (to_set.insert(v).second) result.to_target.push_back(v);
    }
  }
  result.edges = BuildCandidateEdges(g, result.from_source, result.to_target,
                                     options.zeta, options.hop_h);
  return result;
}

std::vector<Edge> AllMissingEdges(const UncertainGraph& g, double zeta,
                                  int hop_h) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<int> dist;
    if (hop_h >= 0) dist = UndirectedHopDistances(g, u, hop_h);
    const NodeId v_begin = g.directed() ? 0 : u + 1;
    for (NodeId v = v_begin; v < g.num_nodes(); ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (hop_h >= 0 && (dist[v] == kUnreachable || dist[v] > hop_h)) continue;
      edges.push_back({u, v, zeta});
    }
  }
  return edges;
}

}  // namespace relmax
