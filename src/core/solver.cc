#include "core/solver.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/memory.h"
#include "common/timer.h"
#include "core/evaluate.h"
#include "core/selection.h"
#include "paths/layered_mrp.h"
#include "paths/yen.h"

namespace relmax {
namespace {

// Top-l most reliable s-t paths in g_plus, optionally computed on the
// subgraph induced by the eliminated node set (C(s) ∪ C(t) ∪ {s, t}) and
// mapped back to g_plus ids.
std::vector<PathResult> FindTopPaths(const UncertainGraph& g_plus, NodeId s,
                                     NodeId t, const CandidateSet& candidates,
                                     const SolverOptions& options) {
  if (!options.paths_on_eliminated_subgraph) {
    return TopLReliablePaths(g_plus, s, t, options.top_l);
  }
  // Dense node list: s, t first, then the eliminated sets.
  std::vector<NodeId> nodes;
  std::unordered_set<NodeId> seen;
  auto push = [&](NodeId v) {
    if (seen.insert(v).second) nodes.push_back(v);
  };
  push(s);
  push(t);
  for (NodeId v : candidates.from_source) push(v);
  for (NodeId v : candidates.to_target) push(v);
  // Caller-supplied candidate sets may omit the node lists; make sure every
  // candidate edge stays usable.
  for (const Edge& e : candidates.edges) {
    push(e.src);
    push(e.dst);
  }

  auto sub = g_plus.InducedSubgraph(nodes);
  RELMAX_CHECK(sub.ok());
  std::vector<PathResult> mapped =
      TopLReliablePaths(*sub, /*s=*/0, /*t=*/1, options.top_l);
  for (PathResult& path : mapped) {
    for (NodeId& v : path.nodes) v = nodes[v];
  }
  return mapped;
}

size_t CountDistinctCandidates(const std::vector<AnnotatedPath>& paths) {
  std::set<int> distinct;
  for (const AnnotatedPath& p : paths) {
    distinct.insert(p.candidate_indices.begin(), p.candidate_indices.end());
  }
  return distinct.size();
}

}  // namespace

StatusOr<Solution> MaximizeReliability(const UncertainGraph& g, NodeId s,
                                       NodeId t, const SolverOptions& options,
                                       CoreMethod method) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (s == t) {
    // Degenerate query: skip candidate elimination entirely — the answer is
    // known and paying the full elimination pass for it would be pure waste.
    return MaximizeReliabilityWithCandidates(g, s, t, CandidateSet{}, options,
                                             method);
  }
  WallTimer elimination_timer;
  auto candidates = SelectCandidates(g, s, t, options);
  RELMAX_RETURN_IF_ERROR(candidates.status());
  const double elimination_seconds = elimination_timer.ElapsedSeconds();

  auto solution =
      MaximizeReliabilityWithCandidates(g, s, t, *candidates, options, method);
  if (solution.ok()) {
    solution->stats.elimination_seconds = elimination_seconds;
    solution->stats.total_seconds += elimination_seconds;
  }
  return solution;
}

StatusOr<Solution> MaximizeReliabilityWithCandidates(
    const UncertainGraph& g, NodeId s, NodeId t, const CandidateSet& candidates,
    const SolverOptions& options, CoreMethod method) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (options.budget_k <= 0) {
    return Status::InvalidArgument("budget_k must be positive");
  }
  if (options.top_l <= 0) {
    return Status::InvalidArgument("top_l must be positive");
  }
  if (s == t) {  // degenerate query: reliability is already 1
    Solution solution;
    solution.reliability_before = 1.0;
    solution.reliability_after = 1.0;
    // Stats must stay populated on every return path — harness code reads
    // peak_rss_bytes / candidate_edges unconditionally.
    solution.stats.candidate_edges = candidates.edges.size();
    solution.stats.peak_rss_bytes = PeakRssBytes();
    return solution;
  }

  Solution solution;
  solution.stats.candidate_edges = candidates.edges.size();
  solution.reliability_before = EstimateWithOptions(g, s, t, options, 0xbefe);

  WallTimer selection_timer;
  if (method == CoreMethod::kMostReliablePath) {
    auto improvement = ImproveMostReliablePathWithCandidates(
        g, s, t, options.budget_k, candidates.edges);
    RELMAX_RETURN_IF_ERROR(improvement.status());
    solution.added_edges = improvement->added_edges;
  } else {
    const UncertainGraph g_plus = AugmentGraph(g, candidates.edges);
    const std::vector<PathResult> paths =
        FindTopPaths(g_plus, s, t, candidates, options);
    const std::vector<AnnotatedPath> annotated =
        AnnotatePaths(g_plus, paths, candidates.edges);
    solution.stats.paths_considered = annotated.size();
    solution.stats.candidate_edges_after_path_filter =
        CountDistinctCandidates(annotated);

    const std::vector<int> indices =
        method == CoreMethod::kBatchEdges
            ? SelectEdgesByPathBatches(g_plus, s, t, annotated, options)
            : SelectEdgesByIndividualPaths(g_plus, s, t, annotated, options);
    solution.added_edges.reserve(indices.size());
    for (int i : indices) solution.added_edges.push_back(candidates.edges[i]);
  }
  solution.stats.selection_seconds = selection_timer.ElapsedSeconds();
  solution.stats.total_seconds = solution.stats.selection_seconds;

  solution.reliability_after =
      solution.added_edges.empty()
          ? solution.reliability_before
          : EstimateWithOptions(AugmentGraph(g, solution.added_edges), s, t,
                                options, 0xafe);
  solution.stats.peak_rss_bytes = PeakRssBytes();
  return solution;
}

}  // namespace relmax
