#ifndef RELMAX_CORE_SOLVER_H_
#define RELMAX_CORE_SOLVER_H_

#include "common/status.h"
#include "core/candidates.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// The solver variants proposed in the paper (§4–§5).
enum class CoreMethod {
  /// Path-batches-based edge selection (Algorithm 6) — the paper's ultimate
  /// method "BE".
  kBatchEdges,
  /// Individual path-based edge selection (Algorithm 5) — "IP".
  kIndividualPaths,
  /// Most-reliable-path improvement (Algorithm 3, exact for Problem 2) used
  /// as an approximation for Problem 1 — "MRP".
  kMostReliablePath,
};

/// Human-readable method name for harness output.
inline const char* CoreMethodName(CoreMethod method) {
  switch (method) {
    case CoreMethod::kBatchEdges:
      return "BE";
    case CoreMethod::kIndividualPaths:
      return "IP";
    case CoreMethod::kMostReliablePath:
      return "MRP";
  }
  internal::CheckFailed("unhandled CoreMethod", __FILE__, __LINE__);
}

/// Solves the single-source-target budgeted reliability maximization problem
/// (Problem 1): find up to `options.budget_k` missing edges, each with
/// probability ζ, maximizing R(s, t).
///
/// Pipeline (§5): reliability-based search-space elimination (Algorithm 4) →
/// top-l most reliable paths in the candidate-augmented graph → edge
/// selection with the chosen method. Every step is deterministic given
/// `options.seed`.
StatusOr<Solution> MaximizeReliability(
    const UncertainGraph& g, NodeId s, NodeId t, const SolverOptions& options,
    CoreMethod method = CoreMethod::kBatchEdges);

/// Variant with a precomputed candidate set — lets callers share one
/// elimination pass across methods (as the paper's Table 5 does) or supply
/// custom candidate edges with per-edge probabilities (Table 16).
StatusOr<Solution> MaximizeReliabilityWithCandidates(
    const UncertainGraph& g, NodeId s, NodeId t,
    const CandidateSet& candidates, const SolverOptions& options,
    CoreMethod method = CoreMethod::kBatchEdges);

}  // namespace relmax

#endif  // RELMAX_CORE_SOLVER_H_
