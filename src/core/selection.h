#ifndef RELMAX_CORE_SELECTION_H_
#define RELMAX_CORE_SELECTION_H_

#include <functional>
#include <vector>

#include "core/types.h"
#include "graph/uncertain_graph.h"
#include "paths/most_reliable_path.h"

namespace relmax {

/// A path annotated with the candidate-edge indices it uses (indices into
/// the CandidateSet::edges / solver candidate list).
struct AnnotatedPath {
  PathResult path;
  /// Sorted candidate indices appearing on the path (its batch label).
  std::vector<int> candidate_indices;
};

/// Annotates each path with the candidate edges it traverses.
/// `candidate_index_of` maps a (u, v) pair in `g_plus` to a candidate index
/// or -1; build it with MakeCandidateIndex below.
std::vector<AnnotatedPath> AnnotatePaths(
    const UncertainGraph& g_plus, const std::vector<PathResult>& paths,
    const std::vector<Edge>& candidates);

/// A path batch (Algorithm 6): all paths sharing one candidate-edge label.
struct PathBatch {
  std::vector<int> label;         ///< sorted candidate indices (may be empty)
  std::vector<int> path_indices;  ///< indices into the annotated path list
};

/// Groups annotated paths into batches keyed by their candidate label
/// (Algorithm 6, Path Batch Construction).
std::vector<PathBatch> BuildPathBatches(
    const std::vector<AnnotatedPath>& paths);

/// Algorithm 5: individual path-based edge selection. Returns the indices of
/// the chosen candidate edges (≤ budget_k).
std::vector<int> SelectEdgesByIndividualPaths(
    const UncertainGraph& g_plus, NodeId s, NodeId t,
    const std::vector<AnnotatedPath>& paths, const SolverOptions& options);

/// Algorithm 6: path-batches-based edge selection with subset-batch
/// activation and per-new-edge normalized marginal gain. Returns the indices
/// of the chosen candidate edges (≤ budget_k).
std::vector<int> SelectEdgesByPathBatches(
    const UncertainGraph& g_plus, NodeId s, NodeId t,
    const std::vector<AnnotatedPath>& paths, const SolverOptions& options);

/// Objective evaluated on a set of selected paths (by index); `salt` keys the
/// round's common random numbers so competing candidates share worlds.
using PathSetObjective =
    std::function<double(const std::vector<int>& selected_paths,
                         uint64_t salt)>;

/// Objective-generic core of Algorithm 6 — the multi-source-target solvers
/// (§6) plug in aggregate objectives here. Returns chosen candidate indices.
std::vector<int> SelectEdgesByPathBatchesObjective(
    const std::vector<AnnotatedPath>& paths, int budget_k,
    const PathSetObjective& objective);

}  // namespace relmax

#endif  // RELMAX_CORE_SELECTION_H_
