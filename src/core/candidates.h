#ifndef RELMAX_CORE_CANDIDATES_H_
#define RELMAX_CORE_CANDIDATES_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Output of reliability-based search-space elimination (Algorithm 4).
struct CandidateSet {
  /// C(s): top-r nodes by reliability from the source(s), s itself included.
  std::vector<NodeId> from_source;
  /// C(t): top-r nodes by reliability to the target(s), t itself included.
  std::vector<NodeId> to_target;
  /// E+: missing edges from C(s) to C(t) satisfying the h-hop constraint,
  /// each with probability ζ.
  std::vector<Edge> edges;
};

/// Reliability-based search-space elimination for a single s-t query
/// (Algorithm 4): keeps the top-r nodes by reliability from s and to t, then
/// emits every missing (u, v) ∈ C(s) × C(t) pair whose endpoints are within
/// `options.hop_h` hops (ignoring direction) as a candidate edge with
/// probability ζ. This shrinks the candidate space from O(n²) to O(r²).
StatusOr<CandidateSet> SelectCandidates(const UncertainGraph& g, NodeId s,
                                        NodeId t,
                                        const SolverOptions& options);

/// Multi-source-target variant (§6.1): C(s) is the union of per-source top-r
/// sets, C(t) the union of per-target sets.
StatusOr<CandidateSet> SelectCandidatesMulti(const UncertainGraph& g,
                                             const std::vector<NodeId>& sources,
                                             const std::vector<NodeId>& targets,
                                             const SolverOptions& options);

/// All missing edges of the graph (each with probability ζ), optionally
/// restricted to the h-hop constraint — the baselines' candidate space when
/// elimination is disabled. Quadratic; intended for small/medium graphs.
std::vector<Edge> AllMissingEdges(const UncertainGraph& g, double zeta,
                                  int hop_h);

}  // namespace relmax

#endif  // RELMAX_CORE_CANDIDATES_H_
