#include "core/selection.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "core/evaluate.h"

namespace relmax {
namespace {

uint64_t PairKey(const UncertainGraph& g, NodeId u, NodeId v) {
  if (!g.directed() && u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Evaluates R(s, t) on the union subgraph of the given annotated paths by
// re-sampling fresh worlds (the reuse_worlds = false path; also the RSS
// estimator, whose stratified streams a shared world bank cannot replay).
double EvalPathSet(const UncertainGraph& g_plus, NodeId s, NodeId t,
                   const std::vector<AnnotatedPath>& paths,
                   const std::vector<int>& selected, int extra,
                   const SolverOptions& options, uint64_t salt) {
  PathUnionSubgraph subgraph(g_plus, s, t);
  for (int i : selected) subgraph.AddPath(paths[i].path);
  if (extra >= 0) subgraph.AddPath(paths[extra].path);
  return subgraph.Reliability(options, salt);
}

// One shared world set per solve when the options ask for it (and the
// estimator can honor it); nullptr falls back to per-evaluation sampling.
std::unique_ptr<PathSetEvaluator> MakeSharedEvaluator(
    const UncertainGraph& g_plus, NodeId s, NodeId t,
    const std::vector<AnnotatedPath>& paths, const SolverOptions& options) {
  if (!options.reuse_worlds || options.estimator != Estimator::kMonteCarlo) {
    return nullptr;
  }
  return std::make_unique<PathSetEvaluator>(g_plus, s, t, paths, options);
}

}  // namespace

std::vector<AnnotatedPath> AnnotatePaths(const UncertainGraph& g_plus,
                                         const std::vector<PathResult>& paths,
                                         const std::vector<Edge>& candidates) {
  std::unordered_map<uint64_t, int> index;
  index.reserve(candidates.size());
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    index.emplace(PairKey(g_plus, candidates[i].src, candidates[i].dst), i);
  }
  std::vector<AnnotatedPath> out;
  out.reserve(paths.size());
  for (const PathResult& path : paths) {
    AnnotatedPath annotated;
    annotated.path = path;
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      auto it = index.find(PairKey(g_plus, path.nodes[i], path.nodes[i + 1]));
      if (it != index.end()) annotated.candidate_indices.push_back(it->second);
    }
    std::sort(annotated.candidate_indices.begin(),
              annotated.candidate_indices.end());
    annotated.candidate_indices.erase(
        std::unique(annotated.candidate_indices.begin(),
                    annotated.candidate_indices.end()),
        annotated.candidate_indices.end());
    out.push_back(std::move(annotated));
  }
  return out;
}

std::vector<PathBatch> BuildPathBatches(
    const std::vector<AnnotatedPath>& paths) {
  std::map<std::vector<int>, std::vector<int>> groups;
  for (int i = 0; i < static_cast<int>(paths.size()); ++i) {
    groups[paths[i].candidate_indices].push_back(i);
  }
  std::vector<PathBatch> batches;
  batches.reserve(groups.size());
  for (auto& [label, path_indices] : groups) {
    batches.push_back({label, std::move(path_indices)});
  }
  return batches;
}

std::vector<int> SelectEdgesByIndividualPaths(
    const UncertainGraph& g_plus, NodeId s, NodeId t,
    const std::vector<AnnotatedPath>& paths, const SolverOptions& options) {
  const int k = options.budget_k;
  std::unique_ptr<PathSetEvaluator> shared =
      MakeSharedEvaluator(g_plus, s, t, paths, options);
  std::set<int> chosen_edges;
  std::vector<int> selected;  // path indices forming P1
  std::vector<char> used(paths.size(), 0);

  // Line 5: paths with no candidate edges seed P1 for free.
  for (int i = 0; i < static_cast<int>(paths.size()); ++i) {
    if (paths[i].candidate_indices.empty()) {
      selected.push_back(i);
      used[i] = 1;
    }
  }

  uint64_t round = 0;
  while (static_cast<int>(chosen_edges.size()) < k) {
    ++round;
    int best = -1;
    double best_rel = -1.0;
    for (int i = 0; i < static_cast<int>(paths.size()); ++i) {
      if (used[i]) continue;
      // Budget feasibility: edges this path would newly commit.
      int fresh = 0;
      for (int e : paths[i].candidate_indices) fresh += !chosen_edges.count(e);
      if (static_cast<int>(chosen_edges.size()) + fresh > k) {
        used[i] = 1;  // line 11-16: drop paths that can no longer fit
        continue;
      }
      const double rel =
          shared != nullptr
              ? shared->Reliability(selected, i)
              : EvalPathSet(g_plus, s, t, paths, selected, i, options, round);
      if (rel > best_rel) {
        best_rel = rel;
        best = i;
      }
    }
    if (best < 0) break;
    used[best] = 1;
    selected.push_back(best);
    for (int e : paths[best].candidate_indices) chosen_edges.insert(e);
  }
  return {chosen_edges.begin(), chosen_edges.end()};
}

std::vector<int> SelectEdgesByPathBatchesObjective(
    const std::vector<AnnotatedPath>& paths, int budget_k,
    const PathSetObjective& objective) {
  std::vector<PathBatch> batches = BuildPathBatches(paths);
  std::set<int> chosen_edges;
  std::vector<int> selected;
  std::vector<char> batch_done(batches.size(), 0);

  // Label-free batches seed P1.
  for (size_t b = 0; b < batches.size(); ++b) {
    if (batches[b].label.empty()) {
      for (int i : batches[b].path_indices) selected.push_back(i);
      batch_done[b] = 1;
    }
  }

  auto subset_of = [](const std::vector<int>& label,
                      const std::set<int>& universe) {
    for (int e : label) {
      if (universe.count(e) == 0) return false;
    }
    return true;
  };

  uint64_t round = 0;
  while (static_cast<int>(chosen_edges.size()) < budget_k) {
    ++round;
    const double base_rel = objective(selected, round);

    int best = -1;
    double best_norm_gain = -1.0;
    std::vector<int> best_paths;
    std::set<int> best_edges;
    for (size_t b = 0; b < batches.size(); ++b) {
      if (batch_done[b]) continue;
      std::set<int> union_edges = chosen_edges;
      union_edges.insert(batches[b].label.begin(), batches[b].label.end());
      if (static_cast<int>(union_edges.size()) > budget_k) continue;
      const int fresh =
          static_cast<int>(union_edges.size() - chosen_edges.size());

      // Activation: every pending batch whose label fits in the union rides
      // along for free (Algorithm 6's subset rule).
      std::vector<int> paths_to_add;
      for (size_t c = 0; c < batches.size(); ++c) {
        if (batch_done[c] || !subset_of(batches[c].label, union_edges)) {
          continue;
        }
        paths_to_add.insert(paths_to_add.end(),
                            batches[c].path_indices.begin(),
                            batches[c].path_indices.end());
      }

      std::vector<int> trial = selected;
      trial.insert(trial.end(), paths_to_add.begin(), paths_to_add.end());
      const double rel = objective(trial, round);
      // Marginal gain normalized by the number of newly committed edges.
      const double norm_gain =
          (rel - base_rel) / static_cast<double>(std::max(1, fresh));
      if (norm_gain > best_norm_gain) {
        best_norm_gain = norm_gain;
        best = static_cast<int>(b);
        best_paths = std::move(paths_to_add);
        best_edges = std::move(union_edges);
      }
    }
    if (best < 0) break;

    chosen_edges = std::move(best_edges);
    for (int i : best_paths) selected.push_back(i);
    for (size_t c = 0; c < batches.size(); ++c) {
      if (!batch_done[c] && subset_of(batches[c].label, chosen_edges)) {
        batch_done[c] = 1;
      }
    }
  }
  return {chosen_edges.begin(), chosen_edges.end()};
}

std::vector<int> SelectEdgesByPathBatches(
    const UncertainGraph& g_plus, NodeId s, NodeId t,
    const std::vector<AnnotatedPath>& paths, const SolverOptions& options) {
  const std::unique_ptr<PathSetEvaluator> shared =
      MakeSharedEvaluator(g_plus, s, t, paths, options);
  return SelectEdgesByPathBatchesObjective(
      paths, options.budget_k,
      [&](const std::vector<int>& selected, uint64_t salt) {
        if (shared != nullptr) return shared->Reliability(selected);
        return EvalPathSet(g_plus, s, t, paths, selected, -1, options, salt);
      });
}

}  // namespace relmax
