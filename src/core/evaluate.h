#ifndef RELMAX_CORE_EVALUATE_H_
#define RELMAX_CORE_EVALUATE_H_

#include <memory>
#include <vector>

#include "core/types.h"
#include "graph/uncertain_graph.h"
#include "paths/most_reliable_path.h"

namespace relmax {

struct AnnotatedPath;  // core/selection.h

/// Estimates R(s, t, g) with the estimator selected in `options` (MC or RSS)
/// at `options.num_samples` samples. `seed_salt` decorrelates repeated
/// evaluations inside iterative selection loops.
double EstimateWithOptions(const UncertainGraph& g, NodeId s, NodeId t,
                           const SolverOptions& options,
                           uint64_t seed_salt = 0);

/// Reliability of every node from s / to t with the selected estimator, at
/// `options.elimination_samples` samples.
std::vector<double> FromSourceWithOptions(const UncertainGraph& g, NodeId s,
                                          const SolverOptions& options,
                                          uint64_t seed_salt = 0);
std::vector<double> ToTargetWithOptions(const UncertainGraph& g, NodeId t,
                                        const SolverOptions& options,
                                        uint64_t seed_salt = 0);

/// Copy of `g` with `edges` added (existing duplicates are skipped).
UncertainGraph AugmentGraph(const UncertainGraph& g,
                            const std::vector<Edge>& edges);

/// A compact graph assembled from the union of a set of paths' edges — the
/// "subgraph induced by the path set" on which Algorithms 5/6 evaluate
/// marginal reliability gains. Nodes are remapped densely.
class PathUnionSubgraph {
 public:
  /// `base` supplies edge probabilities; paths refer to base node ids.
  PathUnionSubgraph(const UncertainGraph& base, NodeId s, NodeId t);

  /// Adds every edge of `path` (edges already present are shared, not
  /// duplicated). Node ids are remapped lazily. Returns the path's edge ids
  /// in the compact graph, in path order.
  std::vector<EdgeId> AddPath(const PathResult& path);

  /// R(s, t) on the current union, with the configured estimator.
  double Reliability(const SolverOptions& options, uint64_t seed_salt) const;

  /// The compact union graph; grows as paths are added.
  const UncertainGraph& graph() const { return graph_; }
  /// s and t in compact ids.
  NodeId s() const { return s_; }
  NodeId t() const { return t_; }

  size_t num_nodes() const { return graph_.num_nodes(); }
  size_t num_edges() const { return graph_.num_edges(); }

 private:
  NodeId Map(NodeId v);

  const UncertainGraph& base_;
  UncertainGraph graph_;
  std::vector<NodeId> remap_;  // base id -> compact id (kInvalidNode = none)
  NodeId s_;
  NodeId t_;
};

/// Shared-possible-world evaluator for the BE/IP selection inner loop
/// (SolverOptions::reuse_worlds).
///
/// Builds the union subgraph of **all** annotated paths once — the edge
/// universe, small by construction (≤ top-l short paths) — and samples
/// `options.num_samples` worlds over it into a WorldBank. Evaluating a path
/// set then draws no random numbers: worlds where some selected path is
/// fully up are connected for free (an OR of per-path precomputed world
/// bitsets), and only the remaining worlds run a BFS over the bank's bit
/// rows restricted to the selected paths' edges. Every candidate in every
/// round is scored against the same worlds (common random numbers), which
/// both removes the dominant re-sampling cost and makes greedy marginal-gain
/// comparisons consistent within a round.
class PathSetEvaluator {
 public:
  PathSetEvaluator(const UncertainGraph& g_plus, NodeId s, NodeId t,
                   const std::vector<AnnotatedPath>& paths,
                   const SolverOptions& options);
  ~PathSetEvaluator();

  PathSetEvaluator(const PathSetEvaluator&) = delete;
  PathSetEvaluator& operator=(const PathSetEvaluator&) = delete;

  /// R(s, t) on the union subgraph of paths[i] for i in `selected`, plus
  /// paths[extra] when extra >= 0. Deterministic given construction.
  double Reliability(const std::vector<int>& selected, int extra = -1);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Pairwise reliability matrix R(s_i, t_j) over shared sampled worlds —
/// the evaluation primitive for multiple-source-target objectives (§6).
/// result[i][j] = R(sources[i], targets[j]). Runs on the batched world
/// executor; bit-identical for a fixed seed across any num_threads.
std::vector<std::vector<double>> PairwiseReliability(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, int num_samples, uint64_t seed,
    int num_threads = 1);

/// Applies the aggregate F over a pairwise reliability matrix.
double AggregateMatrix(const std::vector<std::vector<double>>& matrix,
                       Aggregate agg);

/// Expected number of targets reachable from at least one source — the
/// independent-cascade influence spread restricted to the target set
/// (Equation 13, §8.4.2). Under possible-world semantics IC activation
/// equals reachability, so one shared world per sample suffices.
double InfluenceSpread(const UncertainGraph& g,
                       const std::vector<NodeId>& sources,
                       const std::vector<NodeId>& targets, int num_samples,
                       uint64_t seed, int num_threads = 1);

}  // namespace relmax

#endif  // RELMAX_CORE_EVALUATE_H_
