#include "core/evaluate.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "core/selection.h"
#include "graph/visit_marker.h"
#include "sampling/parallel.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"
#include "sampling/world_bank.h"
#include "sampling/world_view.h"

namespace relmax {
namespace {

RssOptions MakeRssOptions(const SolverOptions& options, int num_samples,
                          uint64_t seed_salt) {
  RssOptions rss = options.rss;
  rss.num_samples = num_samples;
  rss.seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 1);
  rss.num_threads = options.num_threads;
  return rss;
}

}  // namespace

double EstimateWithOptions(const UncertainGraph& g, NodeId s, NodeId t,
                           const SolverOptions& options, uint64_t seed_salt) {
  if (options.estimator == Estimator::kRss) {
    RssSampler sampler(g, MakeRssOptions(options, options.num_samples,
                                         seed_salt));
    return sampler.Reliability(s, t);
  }
  return EstimateReliability(
      g, s, t,
      {.num_samples = options.num_samples,
       .seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 1),
       .num_threads = options.num_threads});
}

std::vector<double> FromSourceWithOptions(const UncertainGraph& g, NodeId s,
                                          const SolverOptions& options,
                                          uint64_t seed_salt) {
  if (options.estimator == Estimator::kRss) {
    RssSampler sampler(
        g, MakeRssOptions(options, options.elimination_samples, seed_salt));
    return sampler.FromSource(s);
  }
  return ReliabilityFromSource(
      g, s,
      {.num_samples = options.elimination_samples,
       .seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 3),
       .num_threads = options.num_threads});
}

std::vector<double> ToTargetWithOptions(const UncertainGraph& g, NodeId t,
                                        const SolverOptions& options,
                                        uint64_t seed_salt) {
  if (options.estimator == Estimator::kRss) {
    RssSampler sampler(
        g, MakeRssOptions(options, options.elimination_samples, seed_salt));
    return sampler.ToTarget(t);
  }
  return ReliabilityToTarget(
      g, t,
      {.num_samples = options.elimination_samples,
       .seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 5),
       .num_threads = options.num_threads});
}

UncertainGraph AugmentGraph(const UncertainGraph& g,
                            const std::vector<Edge>& edges) {
  UncertainGraph augmented = g;
  for (const Edge& e : edges) {
    const Status st = augmented.AddEdge(e.src, e.dst, e.prob);
    RELMAX_DCHECK(st.ok() || st.code() == StatusCode::kAlreadyExists);
    (void)st;
  }
  return augmented;
}

PathUnionSubgraph::PathUnionSubgraph(const UncertainGraph& base, NodeId s,
                                     NodeId t)
    : base_(base),
      graph_(base.directed() ? UncertainGraph::Directed(0)
                             : UncertainGraph::Undirected(0)),
      remap_(base.num_nodes(), kInvalidNode) {
  s_ = Map(s);
  t_ = Map(t);
}

NodeId PathUnionSubgraph::Map(NodeId v) {
  RELMAX_DCHECK(v < remap_.size());
  if (remap_[v] == kInvalidNode) remap_[v] = graph_.AddNode();
  return remap_[v];
}

std::vector<EdgeId> PathUnionSubgraph::AddPath(const PathResult& path) {
  std::vector<EdgeId> edge_ids;
  if (!path.nodes.empty()) edge_ids.reserve(path.nodes.size() - 1);
  for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const NodeId u = path.nodes[i];
    const NodeId v = path.nodes[i + 1];
    const NodeId su = Map(u);
    const NodeId sv = Map(v);
    if (const auto existing = graph_.EdgeIndexOf(su, sv)) {
      edge_ids.push_back(*existing);
      continue;
    }
    const auto prob = base_.EdgeProb(u, v);
    RELMAX_DCHECK(prob.has_value());
    const Status st = graph_.AddEdge(su, sv, *prob);
    RELMAX_DCHECK(st.ok());
    (void)st;
    edge_ids.push_back(*graph_.EdgeIndexOf(su, sv));
  }
  return edge_ids;
}

double PathUnionSubgraph::Reliability(const SolverOptions& options,
                                      uint64_t seed_salt) const {
  return EstimateWithOptions(graph_, s_, t_, options, seed_salt);
}

struct PathSetEvaluator::Impl {
  /// Union of all annotated paths — the sampling universe.
  PathUnionSubgraph universe;
  std::unique_ptr<WorldView> bank;
  /// Per-path edge ids in the universe graph, in path order.
  std::vector<std::vector<EdgeId>> path_edges;
  /// Per-path world-indexed bitset: worlds where the whole path is up.
  std::vector<std::vector<uint64_t>> path_up;
  // Evaluation scratch, sized once and reused.
  std::vector<EdgeId> active;           ///< selected edges, in path order
  std::vector<uint32_t> edge_epoch;     ///< dedup stamp per universe edge
  uint32_t epoch = 0;
  bitlane::BitMatrix reach;

  Impl(const UncertainGraph& g_plus, NodeId s, NodeId t)
      : universe(g_plus, s, t) {}

  // Appends path i's edges to `active` (deduplicated, path order preserved
  // so the fixpoint converges in ~2 sweeps) and ORs its all-edges-up worlds
  // into the fast-path seed at reach[t].
  void MergePath(int i) {
    for (EdgeId e : path_edges[i]) {
      if (edge_epoch[e] == epoch) continue;
      edge_epoch[e] = epoch;
      active.push_back(e);
    }
    const std::vector<uint64_t>& up = path_up[i];
    uint64_t* const at_t = reach.row(universe.t());
    for (size_t w = 0; w < up.size(); ++w) at_t[w] |= up[w];
  }
};

// Seed tag decorrelating the bank's worlds from the solver's other sampling
// streams (elimination, before/after estimates) at the same options.seed.
namespace {
constexpr uint64_t kWorldBankSalt = 0x1d57a6b1e55ed5eeULL;
}  // namespace

PathSetEvaluator::PathSetEvaluator(const UncertainGraph& g_plus, NodeId s,
                                   NodeId t,
                                   const std::vector<AnnotatedPath>& paths,
                                   const SolverOptions& options)
    : impl_(std::make_unique<Impl>(g_plus, s, t)) {
  impl_->path_edges.reserve(paths.size());
  for (const AnnotatedPath& path : paths) {
    impl_->path_edges.push_back(impl_->universe.AddPath(path.path));
  }
  impl_->bank = MakeWorldView(
      impl_->universe.graph(),
      WorldViewOptions{.num_samples = options.num_samples,
                       .seed = options.seed ^ kWorldBankSalt,
                       .num_threads = options.num_threads,
                       .num_partitions = options.num_partitions});
  impl_->path_up.reserve(paths.size());
  for (const std::vector<EdgeId>& edges : impl_->path_edges) {
    impl_->path_up.push_back(impl_->bank->WorldsWithAllEdges(edges));
  }
  impl_->edge_epoch.assign(impl_->universe.num_edges(), 0);
  impl_->reach.EnsureShape(impl_->universe.num_nodes(),
                           impl_->bank->world_words());
}

PathSetEvaluator::~PathSetEvaluator() = default;

double PathSetEvaluator::Reliability(const std::vector<int>& selected,
                                     int extra) {
  Impl& impl = *impl_;
  const int num_worlds = impl.bank->num_worlds();
  impl.active.clear();
  ++impl.epoch;
  impl.reach.Clear();
  // Fast path: worlds where some selected path is fully up are connected
  // without any propagation — MergePath ORs them straight into reach[t].
  for (int i : selected) impl.MergePath(i);
  if (extra >= 0) impl.MergePath(extra);
  const NodeId t = impl.universe.t();
  const int64_t seeded = WorldBank::CountBits(impl.reach.row_span(t),
                                              static_cast<size_t>(num_worlds));
  if (seeded < num_worlds) {
    // Word-parallel sweeps settle the remaining worlds, where only a
    // combination of partial paths can connect s to t.
    impl.bank->ReachabilityFixpoint(impl.universe.s(), /*backward=*/false,
                                    impl.active, &impl.reach,
                                    WorldBank::SeedPolicy::kSeedsAreFacts);
  }
  return static_cast<double>(WorldBank::CountBits(
             impl.reach.row_span(t), static_cast<size_t>(num_worlds))) /
         num_worlds;
}

namespace {

// Per-lane scratch for the shared-world estimators below: one RNG (reseeded
// per shard from its counter-based stream) plus BFS buffers and an integer
// tally that folds commutatively into the shared result.
struct WorldContext {
  explicit WorldContext(const UncertainGraph& g, size_t tally_size)
      : rng(0),
        present(g.num_edges()),
        visited(g.num_nodes()),
        tally(tally_size, 0) {
    queue.reserve(g.num_nodes());
  }

  // Flips every logical edge once: one shared world for all pairs. The flat
  // structure-of-arrays probability vector keeps this a pure (prob, draw)
  // sweep.
  void SampleWorld(const UncertainGraph& g) {
    const double* const probs = g.EdgeProbs().data();
    for (size_t e = 0; e < g.num_edges(); ++e) {
      present[e] = rng.NextBernoulli(probs[e]) ? 1 : 0;
    }
  }

  // BFS from `seeds` over the sampled world.
  void Traverse(const UncertainGraph& g, const std::vector<NodeId>& seeds) {
    visited.NewEpoch();
    queue.clear();
    for (NodeId s : seeds) {
      if (visited.Visit(s)) queue.push_back(s);
    }
    Flood(g);
  }

  // Single-seed variant: no seed-vector temporary in the per-source loop.
  void Traverse(const UncertainGraph& g, NodeId seed) {
    visited.NewEpoch();
    queue.clear();
    visited.Visit(seed);
    queue.push_back(seed);
    Flood(g);
  }

  void Flood(const UncertainGraph& g) {
    const CsrView csr = g.OutCsr();
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      const size_t end = csr.end(u);
      for (size_t i = csr.begin(u); i < end; ++i) {
        const NodeId v = csr.heads[i];
        if (!present[csr.edge_ids[i]] || visited.Visited(v)) continue;
        visited.Visit(v);
        queue.push_back(v);
      }
    }
  }

  Rng rng;
  std::vector<char> present;
  VisitMarker visited;
  std::vector<NodeId> queue;
  std::vector<int64_t> tally;
};

}  // namespace

std::vector<std::vector<double>> PairwiseReliability(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, int num_samples, uint64_t seed,
    int num_threads) {
  RELMAX_CHECK(num_samples > 0);
  const NodeId n = g.num_nodes();
  for (NodeId v : sources) RELMAX_CHECK(v < n);
  for (NodeId v : targets) RELMAX_CHECK(v < n);

  const std::vector<SampleShard> shards = MakeSampleShards(num_samples, seed);
  // Flattened |S| x |T| hit counts.
  std::vector<int64_t> hits(sources.size() * targets.size(), 0);
  ForEachShard(
      shards.size(), num_threads,
      [&] { return std::make_unique<WorldContext>(g, hits.size()); },
      [&](std::unique_ptr<WorldContext>& ctx, size_t i) {
        ctx->rng.Reseed(shards[i].seed);
        for (int sample = 0; sample < shards[i].num_samples; ++sample) {
          ctx->SampleWorld(g);
          for (size_t si = 0; si < sources.size(); ++si) {
            ctx->Traverse(g, sources[si]);
            for (size_t ti = 0; ti < targets.size(); ++ti) {
              if (ctx->visited.Visited(targets[ti])) {
                ++ctx->tally[si * targets.size() + ti];
              }
            }
          }
        }
      },
      [&](std::unique_ptr<WorldContext>& ctx) {
        for (size_t i = 0; i < hits.size(); ++i) hits[i] += ctx->tally[i];
      });

  std::vector<std::vector<double>> result(
      sources.size(), std::vector<double>(targets.size(), 0.0));
  for (size_t si = 0; si < sources.size(); ++si) {
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      result[si][ti] =
          static_cast<double>(hits[si * targets.size() + ti]) / num_samples;
    }
  }
  return result;
}

double InfluenceSpread(const UncertainGraph& g,
                       const std::vector<NodeId>& sources,
                       const std::vector<NodeId>& targets, int num_samples,
                       uint64_t seed, int num_threads) {
  RELMAX_CHECK(num_samples > 0);
  const NodeId n = g.num_nodes();
  for (NodeId v : sources) RELMAX_CHECK(v < n);
  for (NodeId v : targets) RELMAX_CHECK(v < n);

  const std::vector<SampleShard> shards = MakeSampleShards(num_samples, seed);
  int64_t reached_targets = 0;
  ForEachShard(
      shards.size(), num_threads,
      [&] { return std::make_unique<WorldContext>(g, 1); },
      [&](std::unique_ptr<WorldContext>& ctx, size_t i) {
        ctx->rng.Reseed(shards[i].seed);
        for (int sample = 0; sample < shards[i].num_samples; ++sample) {
          ctx->SampleWorld(g);
          ctx->Traverse(g, sources);
          for (NodeId t : targets) {
            ctx->tally[0] += ctx->visited.Visited(t) ? 1 : 0;
          }
        }
      },
      [&](std::unique_ptr<WorldContext>& ctx) {
        reached_targets += ctx->tally[0];
      });
  return static_cast<double>(reached_targets) / num_samples;
}

double AggregateMatrix(const std::vector<std::vector<double>>& matrix,
                       Aggregate agg) {
  RELMAX_CHECK(!matrix.empty() && !matrix[0].empty());
  double sum = 0.0;
  double mn = 1.0;
  double mx = 0.0;
  size_t count = 0;
  for (const auto& row : matrix) {
    for (double r : row) {
      sum += r;
      mn = std::min(mn, r);
      mx = std::max(mx, r);
      ++count;
    }
  }
  switch (agg) {
    case Aggregate::kAverage:
      return sum / static_cast<double>(count);
    case Aggregate::kMinimum:
      return mn;
    case Aggregate::kMaximum:
      return mx;
  }
  // Exhaustive above; a corrupt enum value must not silently read as 0.0.
  internal::CheckFailed("unhandled Aggregate", __FILE__, __LINE__);
}

}  // namespace relmax
